#!/usr/bin/env python3
"""Perf gate over the bench_parallel_scale JSON trajectory.

Reads a google-benchmark JSON file containing the deep-tree scheduler
series `parallel_scale/scheduler_deep/threads:N` (google-benchmark
appends `/iterations:.../manual_time` to the names) and fails (exit 1,
one-line message -- never a traceback) when:

  * the file is missing, unreadable, or not benchmark-shaped JSON,
  * the expected series is missing or empty,
  * the 1- or 4-thread point is missing,
  * the 4-thread speedup over the 1-thread baseline is below the floor
    (BENCH_SMOKE_FLOOR env var, default 1.5), or
  * the work-stealing executor reports zero steals at 4 threads
    (meaning load never balanced / the parallel path didn't run).

Usage: check_bench_smoke.py bench_smoke.json
Self-test: check_bench_smoke.py --self-test
"""

import json
import os
import re
import sys

SERIES = re.compile(r"^parallel_scale/scheduler_deep/threads:(\d+)(/|$)")


def evaluate(report, floor):
    """Returns (ok, one_line_message) for a parsed benchmark report."""
    if not isinstance(report, dict):
        return False, "report is not a JSON object"
    benchmarks = report.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        return False, (
            "no benchmark series in the report (did bench_parallel_scale "
            "run with --benchmark_out and the scheduler_deep filter?)"
        )

    points = {}
    for bench in benchmarks:
        if not isinstance(bench, dict):
            continue
        match = SERIES.match(bench.get("name", ""))
        if match:
            points[int(match.group(1))] = bench

    if not points:
        return False, (
            "scheduler_deep series empty: the report has "
            f"{len(benchmarks)} benchmarks but none match "
            "parallel_scale/scheduler_deep/threads:N"
        )
    if 1 not in points or 4 not in points:
        return False, (
            "scheduler_deep series incomplete: got threads "
            f"{sorted(points)} (need 1 and 4)"
        )

    four = points[4]
    speedup = four.get("speedup_vs_1t")
    if speedup is None:
        return False, "threads:4 point has no speedup_vs_1t counter"
    steals = four.get("steals", 0.0)
    tasks = four.get("tasks", 0.0)

    summary = (
        f"4-thread speedup {speedup:.2f}x (floor {floor}x), "
        f"avg {tasks:.0f} tasks/query of which {steals:.0f} stolen"
    )
    if speedup < floor:
        return False, f"4-thread speedup {speedup:.2f}x below the {floor}x floor"
    if steals <= 0:
        return False, (
            "zero steals at 4 threads: the work-stealing executor did not "
            "balance load (or the parallel path did not run)"
        )
    return True, summary


def self_test():
    def series(entries):
        return {
            "benchmarks": [
                {
                    "name": f"parallel_scale/scheduler_deep/threads:{t}"
                            "/iterations:3/manual_time",
                    **counters,
                }
                for t, counters in entries.items()
            ]
        }

    good = series({
        1: {},
        4: {"speedup_vs_1t": 2.0, "steals": 10.0, "tasks": 100.0},
    })
    ok, _ = evaluate(good, 1.5)
    assert ok, "healthy series must pass"

    ok, message = evaluate({}, 1.5)
    assert not ok and "no benchmark series" in message

    ok, message = evaluate({"benchmarks": []}, 1.5)
    assert not ok and "no benchmark series" in message

    ok, message = evaluate(
        {"benchmarks": [{"name": "some_other_bench/threads:4"}]}, 1.5)
    assert not ok and "series empty" in message

    ok, message = evaluate(series({4: {"speedup_vs_1t": 2.0}}), 1.5)
    assert not ok and "incomplete" in message

    slow = series({1: {}, 4: {"speedup_vs_1t": 1.1, "steals": 10.0}})
    ok, message = evaluate(slow, 1.5)
    assert not ok and "below" in message

    stuck = series({1: {}, 4: {"speedup_vs_1t": 2.0, "steals": 0.0}})
    ok, message = evaluate(stuck, 1.5)
    assert not ok and "zero steals" in message

    ok, message = evaluate([1, 2], 1.5)
    assert not ok, "non-object JSON must fail, not crash"
    print("bench-smoke: self-test PASS")


def main():
    if len(sys.argv) == 2 and sys.argv[1] == "--self-test":
        self_test()
        return
    if len(sys.argv) != 2:
        print(
            f"bench-smoke: FAIL: usage: {sys.argv[0]} <benchmark_out.json>",
            file=sys.stderr,
        )
        sys.exit(1)
    floor = float(os.environ.get("BENCH_SMOKE_FLOOR", "1.5"))

    try:
        with open(sys.argv[1], "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(
            f"bench-smoke: FAIL: cannot read {sys.argv[1]}: {err}",
            file=sys.stderr,
        )
        sys.exit(1)

    ok, message = evaluate(report, floor)
    if not ok:
        print(f"bench-smoke: FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"bench-smoke: PASS: {message}")


if __name__ == "__main__":
    main()
