#!/usr/bin/env python3
"""Perf gate over the bench_parallel_scale JSON trajectory.

Reads a google-benchmark JSON file containing the deep-tree scheduler
series `parallel_scale/scheduler_deep/threads:N` (google-benchmark
appends `/iterations:.../manual_time` to the names) and fails (exit 1)
when:

  * the 1- or 4-thread point is missing,
  * the 4-thread speedup over the 1-thread baseline is below the floor
    (BENCH_SMOKE_FLOOR env var, default 1.5), or
  * the work-stealing executor reports zero steals at 4 threads
    (meaning load never balanced / the parallel path didn't run).

Usage: check_bench_smoke.py bench_smoke.json
"""

import json
import os
import re
import sys

SERIES = re.compile(r"^parallel_scale/scheduler_deep/threads:(\d+)(/|$)")


def fail(message: str) -> None:
    print(f"bench-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} <benchmark_out.json>")
    floor = float(os.environ.get("BENCH_SMOKE_FLOOR", "1.5"))

    with open(sys.argv[1], "r", encoding="utf-8") as handle:
        report = json.load(handle)

    points = {}
    for bench in report.get("benchmarks", []):
        match = SERIES.match(bench.get("name", ""))
        if match:
            points[int(match.group(1))] = bench

    if 1 not in points or 4 not in points:
        fail(
            "scheduler_deep series incomplete: got threads "
            f"{sorted(points)} (need 1 and 4)"
        )

    four = points[4]
    speedup = four.get("speedup_vs_1t")
    if speedup is None:
        fail("threads:4 point has no speedup_vs_1t counter")
    steals = four.get("steals", 0.0)
    tasks = four.get("tasks", 0.0)

    print(
        f"bench-smoke: 4-thread speedup {speedup:.2f}x (floor {floor}x), "
        f"avg {tasks:.0f} tasks/query of which {steals:.0f} stolen"
    )
    if speedup < floor:
        fail(f"4-thread speedup {speedup:.2f}x below the {floor}x floor")
    if steals <= 0:
        fail(
            "zero steals at 4 threads: the work-stealing executor did not "
            "balance load (or the parallel path did not run)"
        )
    print("bench-smoke: PASS")


if __name__ == "__main__":
    main()
