#!/usr/bin/env python3
"""Perf gates over the bench JSON trajectories.

Default mode reads a bench_parallel_scale JSON file containing the
deep-tree scheduler series `parallel_scale/scheduler_deep/threads:N`
(google-benchmark appends `/iterations:.../manual_time` to the names)
and fails (exit 1, one-line message -- never a traceback) when:

  * the file is missing, unreadable, or not benchmark-shaped JSON,
  * the expected series is missing or empty,
  * the 1- or 4-thread point is missing,
  * the 4-thread speedup over the 1-thread baseline is below the floor
    (BENCH_SMOKE_FLOOR env var, default 1.5), or
  * the work-stealing executor reports zero steals at 4 threads
    (meaning load never balanced / the parallel path didn't run).

--kernel mode reads a bench_score_kernel JSON file and fails when the
large configuration `score_kernel/soa/c:4096/v:16/d:4` is missing or its
`speedup_vs_naive` counter is below the floor (BENCH_KERNEL_FLOOR env
var, default 1.3) -- the SoA scoring kernel must beat the naive
per-vertex scan on scored-candidates/sec.

--geometry mode reads a bench_region_split JSON file and fails when the
large configuration `region_split/flat/d:4/r:8` is missing or its
`speedup_vs_legacy` counter is below the floor (BENCH_GEOM_FLOOR env
var, default 1.2) -- the flat-geometry split must beat the legacy
PrefRegion::Split on split/classify throughput.

--cache mode reads a bench_query_cache JSON file and fails when the
gated configuration `query_cache/warm/d:4/k:10` is missing, its
`speedup_vs_cold` counter is below the floor (BENCH_CACHE_FLOOR env var,
default 2.0), its zipf-replay `hit_rate` is below 0.5, or it saved zero
partition tasks -- the warm cross-query region cache must beat the
cache-off replay of the identical query sequence.

--snapshot mode reads a bench_snapshot_update JSON file and fails when
the gated configuration `snapshot_update/incremental/d:4/k:10/delta:1pct`
is missing, its `speedup_vs_rebuild` counter is below the floor
(BENCH_SNAPSHOT_FLOOR env var, default 5.0), or its `equal` counter is
not 1 -- incremental skyband maintenance across a <=1% publish delta
must beat a from-scratch rebuild while staying bit-identical to it.

Usage: check_bench_smoke.py bench_smoke.json
       check_bench_smoke.py --kernel score_kernel.json
       check_bench_smoke.py --geometry region_split.json
       check_bench_smoke.py --cache BENCH_query_cache.json
       check_bench_smoke.py --snapshot BENCH_snapshot_update.json
Self-test: check_bench_smoke.py --self-test
"""

import json
import os
import re
import sys

SERIES = re.compile(r"^parallel_scale/scheduler_deep/threads:(\d+)(/|$)")
KERNEL_LARGE = re.compile(r"^score_kernel/soa/c:4096/v:16/d:4(/|$)")
GEOM_LARGE = re.compile(r"^region_split/flat/d:4/r:8(/|$)")
CACHE_GATED = re.compile(r"^query_cache/warm/d:4/k:10(/|$)")
SNAPSHOT_GATED = re.compile(
    r"^snapshot_update/incremental/d:4/k:10/delta:1pct(/|$)")


def evaluate(report, floor):
    """Returns (ok, one_line_message) for a parsed benchmark report."""
    if not isinstance(report, dict):
        return False, "report is not a JSON object"
    benchmarks = report.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        return False, (
            "no benchmark series in the report (did bench_parallel_scale "
            "run with --benchmark_out and the scheduler_deep filter?)"
        )

    points = {}
    for bench in benchmarks:
        if not isinstance(bench, dict):
            continue
        match = SERIES.match(bench.get("name", ""))
        if match:
            points[int(match.group(1))] = bench

    if not points:
        return False, (
            "scheduler_deep series empty: the report has "
            f"{len(benchmarks)} benchmarks but none match "
            "parallel_scale/scheduler_deep/threads:N"
        )
    if 1 not in points or 4 not in points:
        return False, (
            "scheduler_deep series incomplete: got threads "
            f"{sorted(points)} (need 1 and 4)"
        )

    four = points[4]
    speedup = four.get("speedup_vs_1t")
    if speedup is None:
        return False, "threads:4 point has no speedup_vs_1t counter"
    steals = four.get("steals", 0.0)
    tasks = four.get("tasks", 0.0)

    summary = (
        f"4-thread speedup {speedup:.2f}x (floor {floor}x), "
        f"avg {tasks:.0f} tasks/query of which {steals:.0f} stolen"
    )
    if speedup < floor:
        return False, f"4-thread speedup {speedup:.2f}x below the {floor}x floor"
    if steals <= 0:
        return False, (
            "zero steals at 4 threads: the work-stealing executor did not "
            "balance load (or the parallel path did not run)"
        )
    return True, summary


def evaluate_kernel(report, floor):
    """Returns (ok, one_line_message) for a bench_score_kernel report."""
    if not isinstance(report, dict):
        return False, "report is not a JSON object"
    benchmarks = report.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        return False, (
            "no benchmark series in the report (did bench_score_kernel "
            "run with --benchmark_out?)"
        )
    large = None
    for bench in benchmarks:
        if isinstance(bench, dict) and KERNEL_LARGE.match(
                bench.get("name", "")):
            large = bench
            break
    if large is None:
        return False, (
            "large kernel config missing: the report has "
            f"{len(benchmarks)} benchmarks but none match "
            "score_kernel/soa/c:4096/v:16/d:4"
        )
    speedup = large.get("speedup_vs_naive")
    if speedup is None:
        return False, (
            "large kernel config has no speedup_vs_naive counter (did "
            "the naive series run first?)"
        )
    scored = large.get("scored_per_sec", 0.0)
    summary = (
        f"SoA kernel speedup {speedup:.2f}x over naive on the large "
        f"config (floor {floor}x), {scored / 1e6:.0f}M scored/s"
    )
    if speedup < floor:
        return False, (
            f"SoA kernel speedup {speedup:.2f}x below the {floor}x floor"
        )
    return True, summary


def evaluate_geometry(report, floor):
    """Returns (ok, one_line_message) for a bench_region_split report."""
    if not isinstance(report, dict):
        return False, "report is not a JSON object"
    benchmarks = report.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        return False, (
            "no benchmark series in the report (did bench_region_split "
            "run with --benchmark_out?)"
        )
    large = None
    for bench in benchmarks:
        if isinstance(bench, dict) and GEOM_LARGE.match(
                bench.get("name", "")):
            large = bench
            break
    if large is None:
        return False, (
            "large geometry config missing: the report has "
            f"{len(benchmarks)} benchmarks but none match "
            "region_split/flat/d:4/r:8"
        )
    speedup = large.get("speedup_vs_legacy")
    if speedup is None:
        return False, (
            "large geometry config has no speedup_vs_legacy counter (did "
            "the legacy series run first?)"
        )
    splits = large.get("splits_per_sec", 0.0)
    summary = (
        f"flat split speedup {speedup:.2f}x over legacy on the large "
        f"config (floor {floor}x), {splits / 1e3:.0f}k splits/s"
    )
    if speedup < floor:
        return False, (
            f"flat split speedup {speedup:.2f}x below the {floor}x floor"
        )
    return True, summary


def evaluate_cache(report, floor):
    """Returns (ok, one_line_message) for a bench_query_cache report."""
    if not isinstance(report, dict):
        return False, "report is not a JSON object"
    benchmarks = report.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        return False, (
            "no benchmark series in the report (did bench_query_cache "
            "run with --benchmark_out?)"
        )
    gated = None
    for bench in benchmarks:
        if isinstance(bench, dict) and CACHE_GATED.match(
                bench.get("name", "")):
            gated = bench
            break
    if gated is None:
        return False, (
            "gated cache config missing: the report has "
            f"{len(benchmarks)} benchmarks but none match "
            "query_cache/warm/d:4/k:10"
        )
    speedup = gated.get("speedup_vs_cold")
    if speedup is None:
        return False, (
            "gated cache config has no speedup_vs_cold counter (did the "
            "cold series run first, and did every query get classified?)"
        )
    hit_rate = gated.get("hit_rate", 0.0)
    tasks_saved = gated.get("tasks_saved", 0.0)
    summary = (
        f"warm region-cache replay {speedup:.2f}x over cold (floor "
        f"{floor}x), hit rate {hit_rate:.3f}, "
        f"{tasks_saved:.0f} partition tasks saved"
    )
    if speedup < floor:
        return False, (
            f"warm cache replay speedup {speedup:.2f}x below the "
            f"{floor}x floor"
        )
    if hit_rate < 0.5:
        return False, (
            f"zipf replay hit rate {hit_rate:.3f} below 0.5: the cache "
            "is not absorbing the repeated profiles"
        )
    if tasks_saved <= 0:
        return False, (
            "zero partition tasks saved: hits never clipped a stored "
            "region (cache plumbing broken?)"
        )
    return True, summary


def evaluate_snapshot(report, floor):
    """Returns (ok, one_line_message) for a bench_snapshot_update report."""
    if not isinstance(report, dict):
        return False, "report is not a JSON object"
    benchmarks = report.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        return False, (
            "no benchmark series in the report (did bench_snapshot_update "
            "run with --benchmark_out?)"
        )
    gated = None
    for bench in benchmarks:
        if isinstance(bench, dict) and SNAPSHOT_GATED.match(
                bench.get("name", "")):
            gated = bench
            break
    if gated is None:
        return False, (
            "gated snapshot config missing: the report has "
            f"{len(benchmarks)} benchmarks but none match "
            "snapshot_update/incremental/d:4/k:10/delta:1pct"
        )
    speedup = gated.get("speedup_vs_rebuild")
    if speedup is None:
        return False, (
            "gated snapshot config has no speedup_vs_rebuild counter (did "
            "the rebuild series run first?)"
        )
    equal = gated.get("equal")
    if equal != 1:
        return False, (
            "incremental skyband state is NOT bit-identical to the "
            f"rebuild (equal={equal}): maintenance correctness is broken"
        )
    publish_ms = gated.get("publish_ms", 0.0)
    summary = (
        f"incremental skyband maintenance {speedup:.2f}x over rebuild on "
        f"the gated 1% delta (floor {floor}x), bit-identical, publish "
        f"{publish_ms:.2f}ms"
    )
    if speedup < floor:
        return False, (
            f"incremental maintenance speedup {speedup:.2f}x below the "
            f"{floor}x floor"
        )
    return True, summary


def self_test():
    def series(entries):
        return {
            "benchmarks": [
                {
                    "name": f"parallel_scale/scheduler_deep/threads:{t}"
                            "/iterations:3/manual_time",
                    **counters,
                }
                for t, counters in entries.items()
            ]
        }

    good = series({
        1: {},
        4: {"speedup_vs_1t": 2.0, "steals": 10.0, "tasks": 100.0},
    })
    ok, _ = evaluate(good, 1.5)
    assert ok, "healthy series must pass"

    ok, message = evaluate({}, 1.5)
    assert not ok and "no benchmark series" in message

    ok, message = evaluate({"benchmarks": []}, 1.5)
    assert not ok and "no benchmark series" in message

    ok, message = evaluate(
        {"benchmarks": [{"name": "some_other_bench/threads:4"}]}, 1.5)
    assert not ok and "series empty" in message

    ok, message = evaluate(series({4: {"speedup_vs_1t": 2.0}}), 1.5)
    assert not ok and "incomplete" in message

    slow = series({1: {}, 4: {"speedup_vs_1t": 1.1, "steals": 10.0}})
    ok, message = evaluate(slow, 1.5)
    assert not ok and "below" in message

    stuck = series({1: {}, 4: {"speedup_vs_1t": 2.0, "steals": 0.0}})
    ok, message = evaluate(stuck, 1.5)
    assert not ok and "zero steals" in message

    ok, message = evaluate([1, 2], 1.5)
    assert not ok, "non-object JSON must fail, not crash"

    def kernel_report(name, counters):
        return {
            "benchmarks": [
                {"name": "score_kernel/naive/c:4096/v:16/d:4/manual_time"},
                {"name": name + "/manual_time", **counters},
            ]
        }

    good_kernel = kernel_report(
        "score_kernel/soa/c:4096/v:16/d:4",
        {"speedup_vs_naive": 2.0, "scored_per_sec": 3.0e8})
    ok, _ = evaluate_kernel(good_kernel, 1.3)
    assert ok, "healthy kernel report must pass"

    ok, message = evaluate_kernel({}, 1.3)
    assert not ok and "no benchmark series" in message

    ok, message = evaluate_kernel(
        kernel_report("score_kernel/soa/c:256/v:4/d:3",
                      {"speedup_vs_naive": 2.0}), 1.3)
    assert not ok and "large kernel config missing" in message

    ok, message = evaluate_kernel(
        kernel_report("score_kernel/soa/c:4096/v:16/d:4", {}), 1.3)
    assert not ok and "no speedup_vs_naive" in message

    ok, message = evaluate_kernel(
        kernel_report("score_kernel/soa/c:4096/v:16/d:4",
                      {"speedup_vs_naive": 1.1}), 1.3)
    assert not ok and "below" in message

    ok, message = evaluate_kernel([1, 2], 1.3)
    assert not ok, "non-object kernel JSON must fail, not crash"

    def geom_report(name, counters):
        return {
            "benchmarks": [
                {"name": "region_split/legacy/d:4/r:8/manual_time"},
                {"name": name + "/manual_time", **counters},
            ]
        }

    good_geom = geom_report(
        "region_split/flat/d:4/r:8",
        {"speedup_vs_legacy": 2.0, "splits_per_sec": 1.0e5})
    ok, _ = evaluate_geometry(good_geom, 1.2)
    assert ok, "healthy geometry report must pass"

    ok, message = evaluate_geometry({}, 1.2)
    assert not ok and "no benchmark series" in message

    ok, message = evaluate_geometry(
        geom_report("region_split/flat/d:2/r:4",
                    {"speedup_vs_legacy": 2.0}), 1.2)
    assert not ok and "large geometry config missing" in message

    ok, message = evaluate_geometry(
        geom_report("region_split/flat/d:4/r:8", {}), 1.2)
    assert not ok and "no speedup_vs_legacy" in message

    ok, message = evaluate_geometry(
        geom_report("region_split/flat/d:4/r:8",
                    {"speedup_vs_legacy": 1.05}), 1.2)
    assert not ok and "below" in message

    ok, message = evaluate_geometry([1, 2], 1.2)
    assert not ok, "non-object geometry JSON must fail, not crash"

    def cache_report(name, counters):
        return {
            "benchmarks": [
                {"name": "query_cache/cold/d:4/k:10/manual_time"},
                {"name": name + "/manual_time", **counters},
            ]
        }

    good_cache = cache_report(
        "query_cache/warm/d:4/k:10",
        {"speedup_vs_cold": 3.0, "hit_rate": 0.99, "tasks_saved": 4.0e5})
    ok, _ = evaluate_cache(good_cache, 2.0)
    assert ok, "healthy cache report must pass"

    ok, message = evaluate_cache({}, 2.0)
    assert not ok and "no benchmark series" in message

    ok, message = evaluate_cache(
        cache_report("query_cache/warm/d:3/k:5",
                     {"speedup_vs_cold": 3.0}), 2.0)
    assert not ok and "gated cache config missing" in message

    ok, message = evaluate_cache(
        cache_report("query_cache/warm/d:4/k:10",
                     {"hit_rate": 0.99, "tasks_saved": 1.0}), 2.0)
    assert not ok and "no speedup_vs_cold" in message

    ok, message = evaluate_cache(
        cache_report("query_cache/warm/d:4/k:10",
                     {"speedup_vs_cold": 1.4, "hit_rate": 0.99,
                      "tasks_saved": 1.0}), 2.0)
    assert not ok and "below" in message

    ok, message = evaluate_cache(
        cache_report("query_cache/warm/d:4/k:10",
                     {"speedup_vs_cold": 3.0, "hit_rate": 0.2,
                      "tasks_saved": 1.0}), 2.0)
    assert not ok and "hit rate" in message

    ok, message = evaluate_cache(
        cache_report("query_cache/warm/d:4/k:10",
                     {"speedup_vs_cold": 3.0, "hit_rate": 0.99,
                      "tasks_saved": 0.0}), 2.0)
    assert not ok and "zero partition tasks saved" in message

    ok, message = evaluate_cache([1, 2], 2.0)
    assert not ok, "non-object cache JSON must fail, not crash"

    def snapshot_report(name, counters):
        return {
            "benchmarks": [
                {"name": "snapshot_update/rebuild/d:4/k:10/delta:1pct"
                         "/manual_time"},
                {"name": name + "/manual_time", **counters},
            ]
        }

    good_snapshot = snapshot_report(
        "snapshot_update/incremental/d:4/k:10/delta:1pct",
        {"speedup_vs_rebuild": 40.0, "equal": 1.0, "publish_ms": 0.3})
    ok, _ = evaluate_snapshot(good_snapshot, 5.0)
    assert ok, "healthy snapshot report must pass"

    ok, message = evaluate_snapshot({}, 5.0)
    assert not ok and "no benchmark series" in message

    ok, message = evaluate_snapshot(
        snapshot_report("snapshot_update/incremental/d:3/k:5/delta:1pct",
                        {"speedup_vs_rebuild": 40.0, "equal": 1.0}), 5.0)
    assert not ok and "gated snapshot config missing" in message

    ok, message = evaluate_snapshot(
        snapshot_report("snapshot_update/incremental/d:4/k:10/delta:1pct",
                        {"equal": 1.0}), 5.0)
    assert not ok and "no speedup_vs_rebuild" in message

    ok, message = evaluate_snapshot(
        snapshot_report("snapshot_update/incremental/d:4/k:10/delta:1pct",
                        {"speedup_vs_rebuild": 40.0, "equal": 0.0}), 5.0)
    assert not ok and "NOT bit-identical" in message

    ok, message = evaluate_snapshot(
        snapshot_report("snapshot_update/incremental/d:4/k:10/delta:1pct",
                        {"speedup_vs_rebuild": 3.0, "equal": 1.0}), 5.0)
    assert not ok and "below" in message

    ok, message = evaluate_snapshot([1, 2], 5.0)
    assert not ok, "non-object snapshot JSON must fail, not crash"
    print("bench-smoke: self-test PASS")


def main():
    if len(sys.argv) == 2 and sys.argv[1] == "--self-test":
        self_test()
        return
    kernel_mode = len(sys.argv) == 3 and sys.argv[1] == "--kernel"
    geometry_mode = len(sys.argv) == 3 and sys.argv[1] == "--geometry"
    cache_mode = len(sys.argv) == 3 and sys.argv[1] == "--cache"
    snapshot_mode = len(sys.argv) == 3 and sys.argv[1] == "--snapshot"
    flagged = kernel_mode or geometry_mode or cache_mode or snapshot_mode
    if not flagged and len(sys.argv) != 2:
        print(
            f"bench-smoke: FAIL: usage: {sys.argv[0]} "
            "[--kernel|--geometry|--cache|--snapshot] <benchmark_out.json>",
            file=sys.stderr,
        )
        sys.exit(1)
    path = sys.argv[2] if flagged else sys.argv[1]

    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(
            f"bench-smoke: FAIL: cannot read {path}: {err}",
            file=sys.stderr,
        )
        sys.exit(1)

    if kernel_mode:
        floor = float(os.environ.get("BENCH_KERNEL_FLOOR", "1.3"))
        ok, message = evaluate_kernel(report, floor)
    elif geometry_mode:
        floor = float(os.environ.get("BENCH_GEOM_FLOOR", "1.2"))
        ok, message = evaluate_geometry(report, floor)
    elif cache_mode:
        floor = float(os.environ.get("BENCH_CACHE_FLOOR", "2.0"))
        ok, message = evaluate_cache(report, floor)
    elif snapshot_mode:
        floor = float(os.environ.get("BENCH_SNAPSHOT_FLOOR", "5.0"))
        ok, message = evaluate_snapshot(report, floor)
    else:
        floor = float(os.environ.get("BENCH_SMOKE_FLOOR", "1.5"))
        ok, message = evaluate(report, floor)
    if not ok:
        print(f"bench-smoke: FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"bench-smoke: PASS: {message}")


if __name__ == "__main__":
    main()
