#!/usr/bin/env python3
"""Gate over the toprr_loadgen JSON report (the serve-smoke CI job).

Reads the single JSON object toprr_loadgen writes and fails (exit 1,
one-line message) when:

  * the report is missing, unreadable, or not the expected shape,
  * zero queries completed (the serving path never worked end to end),
  * any protocol error occurred (framing/decoding must be airtight on
    loopback), or
  * the p99 RPC latency exceeds the bound (SERVE_SMOKE_P99_MS env var,
    default 10000 ms -- generous on purpose: this is a smoke test on a
    shared CI core, not a performance gate).

Rejected-by-admission-control queries are reported but do not fail the
gate: backpressure under a saturating loadgen is correct behavior.

--cache mode applies every check above to a `toprr_loadgen --zipf`
report taken against a `toprr_serve --cache` server, then additionally
fails when:

  * the report has no `cache` block (old loadgen, or --zipf not passed),
  * any query was classified bypass (the server ran without --cache, so
    the replay never exercised the region cache),
  * the zipf-replay hit rate is below the floor (SERVE_SMOKE_HIT_RATE
    env var, default 0.5), or
  * the hits saved zero partition tasks (cache plumbing broken).

--churn mode gates a `toprr_loadgen --zipf --churn` report (a writer
publishing mutation deltas during the replay against a cache-enabled
server): every base and cache check above (with the relaxed
SERVE_SMOKE_CHURN_HIT_RATE floor, default 0.4 -- each publish
invalidates cached regions, so some misses are the point), plus it
fails when:

  * the report has no `churn` block or the writer never ran
    (enabled false / zero publishes),
  * any stage/publish ack came back non-OK (publish_failures),
  * any post-publish query observed a snapshot_seq older than its own
    publish ack (ryw_violations -- the read-your-writes contract), or
  * any connection saw its snapshot_seq stream regress
    (seq_regressions -- the monotone stamp ordering).

Usage: check_serve_smoke.py loadgen.json
       check_serve_smoke.py --cache loadgen_cache.json
       check_serve_smoke.py --churn loadgen_churn.json
Self-test: check_serve_smoke.py --self-test
"""

import json
import os
import sys


def evaluate(report, p99_bound_ms):
    """Returns (ok, one_line_message) for a parsed loadgen report."""
    if not isinstance(report, dict):
        return False, "report is not a JSON object"
    completed = report.get("completed_queries")
    protocol_errors = report.get("protocol_errors")
    latency = report.get("latency_ms")
    if completed is None or protocol_errors is None or not isinstance(
            latency, dict):
        return False, (
            "report missing completed_queries/protocol_errors/latency_ms "
            "(did toprr_loadgen finish?)"
        )
    p99 = latency.get("p99", 0.0)
    summary = (
        f"{completed} completed, {report.get('rejected_queries', 0)} "
        f"rejected, {protocol_errors} protocol errors, "
        f"p99 {p99:.1f}ms (bound {p99_bound_ms:.0f}ms)"
    )
    if completed <= 0:
        return False, f"no queries completed -- {summary}"
    if protocol_errors != 0:
        first = report.get("first_error", "")
        return False, f"protocol errors -- {summary}" + (
            f" (first: {first})" if first else ""
        )
    if p99 > p99_bound_ms:
        return False, f"p99 over bound -- {summary}"
    return True, summary


def evaluate_cache(report, p99_bound_ms, hit_rate_floor):
    """Returns (ok, one_line_message) for a zipf replay against a
    cache-enabled server: the base gate plus cache-health checks."""
    ok, base = evaluate(report, p99_bound_ms)
    if not ok:
        return False, base
    cache = report.get("cache")
    if not isinstance(cache, dict):
        return False, (
            "report has no cache block (did toprr_loadgen run with "
            "--zipf against this server?)"
        )
    hit_rate = cache.get("hit_rate", 0.0)
    tasks_saved = cache.get("tasks_saved", 0)
    bypass = cache.get("bypass", 0)
    summary = (
        f"{base}; cache hit rate {hit_rate:.3f} "
        f"(floor {hit_rate_floor:.2f}), {cache.get('hits', 0)} hits / "
        f"{cache.get('partial_hits', 0)} partial / "
        f"{cache.get('misses', 0)} misses, "
        f"{tasks_saved} partition tasks saved"
    )
    if bypass != 0:
        return False, (
            f"{bypass} queries classified bypass -- the server is not "
            "running with --cache, so the replay never exercised the "
            "region cache"
        )
    if hit_rate < hit_rate_floor:
        return False, (
            f"zipf replay hit rate {hit_rate:.3f} below the "
            f"{hit_rate_floor:.2f} floor -- {summary}"
        )
    if tasks_saved <= 0:
        return False, (
            "zero partition tasks saved: hits never clipped a stored "
            f"region -- {summary}"
        )
    return True, summary


def evaluate_churn(report, p99_bound_ms, hit_rate_floor):
    """Returns (ok, one_line_message) for a zipf replay with a live
    mutation writer: the cache gate plus the protocol-v3 ordering
    contracts (writer health, read-your-writes, monotone stamps)."""
    ok, base = evaluate_cache(report, p99_bound_ms, hit_rate_floor)
    if not ok:
        return False, base
    churn = report.get("churn")
    if not isinstance(churn, dict) or not churn.get("enabled", False):
        return False, (
            "report has no active churn block (did toprr_loadgen run "
            "with --churn?)"
        )
    publishes = churn.get("publishes", 0)
    publish_failures = churn.get("publish_failures", 0)
    ryw_violations = churn.get("ryw_violations", 0)
    seq_regressions = churn.get("seq_regressions", 0)
    summary = (
        f"{base}; {publishes} publishes "
        f"({churn.get('staged_rows', 0)} rows / "
        f"{churn.get('staged_deletes', 0)} deletes staged), "
        f"{ryw_violations} ryw violations, "
        f"{seq_regressions} seq regressions, "
        f"last snapshot seq {churn.get('last_snapshot_seq', 0)}"
    )
    if publishes <= 0:
        return False, f"churn writer never published -- {summary}"
    if publish_failures != 0:
        return False, (
            f"{publish_failures} stage/publish acks were not OK -- "
            f"{summary}"
        )
    if ryw_violations != 0:
        return False, (
            f"read-your-writes broken: {ryw_violations} post-publish "
            f"queries saw a pre-publish snapshot -- {summary}"
        )
    if seq_regressions != 0:
        return False, (
            f"snapshot_seq regressed {seq_regressions} times on a "
            f"connection -- {summary}"
        )
    return True, summary


def self_test():
    good = {
        "completed_queries": 100,
        "rejected_queries": 5,
        "protocol_errors": 0,
        "latency_ms": {"p50": 1.0, "p90": 2.0, "p99": 3.0, "max": 4.0},
    }
    ok, _ = evaluate(good, 1000.0)
    assert ok, "well-formed passing report must pass"

    ok, message = evaluate({}, 1000.0)
    assert not ok and "missing" in message, "empty report must fail clearly"

    ok, message = evaluate(dict(good, completed_queries=0), 1000.0)
    assert not ok and "no queries completed" in message

    ok, message = evaluate(dict(good, protocol_errors=3), 1000.0)
    assert not ok and "protocol errors" in message

    slow = dict(good, latency_ms={"p99": 5000.0})
    ok, message = evaluate(slow, 1000.0)
    assert not ok and "p99 over bound" in message

    ok, message = evaluate([1, 2, 3], 1000.0)
    assert not ok, "non-object JSON must fail, not crash"

    # Rejections alone do not fail the gate.
    ok, _ = evaluate(dict(good, rejected_queries=10**6), 1000.0)
    assert ok

    good_cache = dict(good, cache={
        "hits": 90, "partial_hits": 5, "misses": 5, "bypass": 0,
        "hit_rate": 0.95, "tasks_saved": 12345,
    })
    ok, _ = evaluate_cache(good_cache, 1000.0, 0.5)
    assert ok, "healthy cache replay must pass"

    # The base gate still applies in --cache mode.
    ok, message = evaluate_cache(
        dict(good_cache, protocol_errors=1), 1000.0, 0.5)
    assert not ok and "protocol errors" in message

    ok, message = evaluate_cache(good, 1000.0, 0.5)
    assert not ok and "no cache block" in message

    ok, message = evaluate_cache(
        dict(good, cache=dict(good_cache["cache"], bypass=7)), 1000.0, 0.5)
    assert not ok and "bypass" in message

    ok, message = evaluate_cache(
        dict(good, cache=dict(good_cache["cache"], hit_rate=0.2)),
        1000.0, 0.5)
    assert not ok and "hit rate" in message

    ok, message = evaluate_cache(
        dict(good, cache=dict(good_cache["cache"], tasks_saved=0)),
        1000.0, 0.5)
    assert not ok and "zero partition tasks saved" in message

    good_churn = dict(good_cache, churn={
        "enabled": True, "publishes": 20, "staged_rows": 80,
        "staged_deletes": 60, "publish_failures": 0,
        "ryw_violations": 0, "seq_regressions": 0,
        "last_snapshot_seq": 21,
    })
    ok, _ = evaluate_churn(good_churn, 1000.0, 0.4)
    assert ok, "healthy churn replay must pass"

    # The base and cache gates still apply in --churn mode.
    ok, message = evaluate_churn(
        dict(good_churn, protocol_errors=2), 1000.0, 0.4)
    assert not ok and "protocol errors" in message
    ok, message = evaluate_churn(
        dict(good_churn, cache=dict(good_cache["cache"], hit_rate=0.1)),
        1000.0, 0.4)
    assert not ok and "hit rate" in message

    ok, message = evaluate_churn(good_cache, 1000.0, 0.4)
    assert not ok and "no active churn block" in message

    ok, message = evaluate_churn(
        dict(good_churn, churn=dict(good_churn["churn"], enabled=False)),
        1000.0, 0.4)
    assert not ok and "no active churn block" in message

    ok, message = evaluate_churn(
        dict(good_churn, churn=dict(good_churn["churn"], publishes=0)),
        1000.0, 0.4)
    assert not ok and "never published" in message

    ok, message = evaluate_churn(
        dict(good_churn,
             churn=dict(good_churn["churn"], publish_failures=3)),
        1000.0, 0.4)
    assert not ok and "not OK" in message

    ok, message = evaluate_churn(
        dict(good_churn,
             churn=dict(good_churn["churn"], ryw_violations=1)),
        1000.0, 0.4)
    assert not ok and "read-your-writes" in message

    ok, message = evaluate_churn(
        dict(good_churn,
             churn=dict(good_churn["churn"], seq_regressions=2)),
        1000.0, 0.4)
    assert not ok and "regressed" in message
    print("serve-smoke: self-test PASS")


def main():
    if len(sys.argv) == 2 and sys.argv[1] == "--self-test":
        self_test()
        return
    mode = "base"
    if len(sys.argv) == 3 and sys.argv[1] in ("--cache", "--churn"):
        mode = sys.argv[1][2:]
    elif len(sys.argv) != 2:
        print(
            f"serve-smoke: FAIL: usage: {sys.argv[0]} "
            "[--cache|--churn] <loadgen.json>",
            file=sys.stderr,
        )
        sys.exit(1)
    path = sys.argv[2] if mode != "base" else sys.argv[1]
    p99_bound_ms = float(os.environ.get("SERVE_SMOKE_P99_MS", "10000"))
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(
            f"serve-smoke: FAIL: cannot read {path}: {err}",
            file=sys.stderr,
        )
        sys.exit(1)
    if mode == "churn":
        hit_rate_floor = float(
            os.environ.get("SERVE_SMOKE_CHURN_HIT_RATE", "0.4"))
        ok, message = evaluate_churn(report, p99_bound_ms, hit_rate_floor)
    elif mode == "cache":
        hit_rate_floor = float(
            os.environ.get("SERVE_SMOKE_HIT_RATE", "0.5"))
        ok, message = evaluate_cache(report, p99_bound_ms, hit_rate_floor)
    else:
        ok, message = evaluate(report, p99_bound_ms)
    if not ok:
        print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"serve-smoke: PASS: {message}")


if __name__ == "__main__":
    main()
