#!/usr/bin/env python3
"""Gate over the toprr_loadgen JSON report (the serve-smoke CI job).

Reads the single JSON object toprr_loadgen writes and fails (exit 1,
one-line message) when:

  * the report is missing, unreadable, or not the expected shape,
  * zero queries completed (the serving path never worked end to end),
  * any protocol error occurred (framing/decoding must be airtight on
    loopback), or
  * the p99 RPC latency exceeds the bound (SERVE_SMOKE_P99_MS env var,
    default 10000 ms -- generous on purpose: this is a smoke test on a
    shared CI core, not a performance gate).

Rejected-by-admission-control queries are reported but do not fail the
gate: backpressure under a saturating loadgen is correct behavior.

Usage: check_serve_smoke.py loadgen.json
Self-test: check_serve_smoke.py --self-test
"""

import json
import os
import sys


def evaluate(report, p99_bound_ms):
    """Returns (ok, one_line_message) for a parsed loadgen report."""
    if not isinstance(report, dict):
        return False, "report is not a JSON object"
    completed = report.get("completed_queries")
    protocol_errors = report.get("protocol_errors")
    latency = report.get("latency_ms")
    if completed is None or protocol_errors is None or not isinstance(
            latency, dict):
        return False, (
            "report missing completed_queries/protocol_errors/latency_ms "
            "(did toprr_loadgen finish?)"
        )
    p99 = latency.get("p99", 0.0)
    summary = (
        f"{completed} completed, {report.get('rejected_queries', 0)} "
        f"rejected, {protocol_errors} protocol errors, "
        f"p99 {p99:.1f}ms (bound {p99_bound_ms:.0f}ms)"
    )
    if completed <= 0:
        return False, f"no queries completed -- {summary}"
    if protocol_errors != 0:
        first = report.get("first_error", "")
        return False, f"protocol errors -- {summary}" + (
            f" (first: {first})" if first else ""
        )
    if p99 > p99_bound_ms:
        return False, f"p99 over bound -- {summary}"
    return True, summary


def self_test():
    good = {
        "completed_queries": 100,
        "rejected_queries": 5,
        "protocol_errors": 0,
        "latency_ms": {"p50": 1.0, "p90": 2.0, "p99": 3.0, "max": 4.0},
    }
    ok, _ = evaluate(good, 1000.0)
    assert ok, "well-formed passing report must pass"

    ok, message = evaluate({}, 1000.0)
    assert not ok and "missing" in message, "empty report must fail clearly"

    ok, message = evaluate(dict(good, completed_queries=0), 1000.0)
    assert not ok and "no queries completed" in message

    ok, message = evaluate(dict(good, protocol_errors=3), 1000.0)
    assert not ok and "protocol errors" in message

    slow = dict(good, latency_ms={"p99": 5000.0})
    ok, message = evaluate(slow, 1000.0)
    assert not ok and "p99 over bound" in message

    ok, message = evaluate([1, 2, 3], 1000.0)
    assert not ok, "non-object JSON must fail, not crash"

    # Rejections alone do not fail the gate.
    ok, _ = evaluate(dict(good, rejected_queries=10**6), 1000.0)
    assert ok
    print("serve-smoke: self-test PASS")


def main():
    if len(sys.argv) == 2 and sys.argv[1] == "--self-test":
        self_test()
        return
    if len(sys.argv) != 2:
        print(
            f"serve-smoke: FAIL: usage: {sys.argv[0]} <loadgen.json>",
            file=sys.stderr,
        )
        sys.exit(1)
    p99_bound_ms = float(os.environ.get("SERVE_SMOKE_P99_MS", "10000"))
    try:
        with open(sys.argv[1], "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(
            f"serve-smoke: FAIL: cannot read {sys.argv[1]}: {err}",
            file=sys.stderr,
        )
        sys.exit(1)
    ok, message = evaluate(report, p99_bound_ms)
    if not ok:
        print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"serve-smoke: PASS: {message}")


if __name__ == "__main__":
    main()
