#!/usr/bin/env python3
"""Gate over the toprr_loadgen JSON report (the serve-smoke CI job).

Reads the single JSON object toprr_loadgen writes and fails (exit 1,
one-line message) when:

  * the report is missing, unreadable, or not the expected shape,
  * zero queries completed (the serving path never worked end to end),
  * any protocol error occurred (framing/decoding must be airtight on
    loopback), or
  * the p99 RPC latency exceeds the bound (SERVE_SMOKE_P99_MS env var,
    default 10000 ms -- generous on purpose: this is a smoke test on a
    shared CI core, not a performance gate).

Rejected-by-admission-control queries are reported but do not fail the
gate: backpressure under a saturating loadgen is correct behavior.

--cache mode applies every check above to a `toprr_loadgen --zipf`
report taken against a `toprr_serve --cache` server, then additionally
fails when:

  * the report has no `cache` block (old loadgen, or --zipf not passed),
  * any query was classified bypass (the server ran without --cache, so
    the replay never exercised the region cache),
  * the zipf-replay hit rate is below the floor (SERVE_SMOKE_HIT_RATE
    env var, default 0.5), or
  * the hits saved zero partition tasks (cache plumbing broken).

--churn mode gates a `toprr_loadgen --zipf --churn` report (a writer
publishing mutation deltas during the replay against a cache-enabled
server): every base and cache check above (with the relaxed
SERVE_SMOKE_CHURN_HIT_RATE floor, default 0.4 -- each publish
invalidates cached regions, so some misses are the point), plus it
fails when:

  * the report has no `churn` block or the writer never ran
    (enabled false / zero publishes),
  * any stage/publish ack came back non-OK (publish_failures),
  * any post-publish query observed a snapshot_seq older than its own
    publish ack (ryw_violations -- the read-your-writes contract), or
  * any connection saw its snapshot_seq stream regress
    (seq_regressions -- the monotone stamp ordering).

--chaos mode gates a `toprr_loadgen --retries --deadline_ms --churn`
report taken THROUGH toprr_chaosproxy (resets, truncations, stalls past
the idle timeout) with a server drain + restart mid-run. Transient
failure is the point of the exercise, so the base protocol-errors and
latency checks do NOT apply; what must hold is that the system degrades
and recovers cleanly:

  * the report carries the resilience fields (attempted_queries,
    retries, reconnects -- old loadgen or --retries not passed
    otherwise),
  * no worker thread died (dead_workers -- every error class must be
    survivable),
  * the run actually saw chaos (zero reconnects means the proxy never
    broke a connection and the phase tested nothing),
  * the churn writer stayed healthy end to end: publishes happened,
    every eventually-delivered ack was OK, zero duplicate publishes
    (idempotency dedupe held across retried Publish RPCs), zero
    read-your-writes violations, zero snapshot_seq regressions, and
  * the ultimately-completed fraction meets the floor
    (CHAOS_COMPLETION_FLOOR env var, default 0.9): retries must
    actually recover the load, not just count failures. Queries
    answered REJECTED_DRAINING during the scripted drain+restart are
    deliberate typed rejections (like admission control in the base
    gate) and leave the denominator; terminally-lost queries stay in.

--crash mode gates a `toprr_loadgen --retries --churn --expect_durable`
report taken against a `toprr_serve --data_dir` server that was killed
with SIGKILL mid-run and restarted from the same directory. Every
chaos-mode check applies (with the relaxed CRASH_COMPLETION_FLOOR,
default 0.5 -- the restart window swallows more attempts than proxy
chaos does), plus the durability contract:

  * the report has an enabled `durable` block (old loadgen, or
    --expect_durable not passed),
  * zero acked publishes were lost across the kill -9 (lost_publishes
    -- the WAL-before-ack invariant),
  * recovery was bit-identical: no snapshot seq ever came back with a
    different snapshot id before vs after the crash
    (snapshot_id_mismatches), and
  * the final catalog audit ran and passed (final_info_ok -- the
    served catalog's last seq covers every acked publish).

Usage: check_serve_smoke.py loadgen.json
       check_serve_smoke.py --cache loadgen_cache.json
       check_serve_smoke.py --churn loadgen_churn.json
       check_serve_smoke.py --chaos loadgen_chaos.json
       check_serve_smoke.py --crash loadgen_crash.json
Self-test: check_serve_smoke.py --self-test
"""

import json
import os
import sys


def evaluate(report, p99_bound_ms):
    """Returns (ok, one_line_message) for a parsed loadgen report."""
    if not isinstance(report, dict):
        return False, "report is not a JSON object"
    completed = report.get("completed_queries")
    protocol_errors = report.get("protocol_errors")
    latency = report.get("latency_ms")
    if completed is None or protocol_errors is None or not isinstance(
            latency, dict):
        return False, (
            "report missing completed_queries/protocol_errors/latency_ms "
            "(did toprr_loadgen finish?)"
        )
    p99 = latency.get("p99", 0.0)
    summary = (
        f"{completed} completed, {report.get('rejected_queries', 0)} "
        f"rejected, {protocol_errors} protocol errors, "
        f"p99 {p99:.1f}ms (bound {p99_bound_ms:.0f}ms)"
    )
    if completed <= 0:
        return False, f"no queries completed -- {summary}"
    if protocol_errors != 0:
        first = report.get("first_error", "")
        return False, f"protocol errors -- {summary}" + (
            f" (first: {first})" if first else ""
        )
    if p99 > p99_bound_ms:
        return False, f"p99 over bound -- {summary}"
    return True, summary


def evaluate_cache(report, p99_bound_ms, hit_rate_floor):
    """Returns (ok, one_line_message) for a zipf replay against a
    cache-enabled server: the base gate plus cache-health checks."""
    ok, base = evaluate(report, p99_bound_ms)
    if not ok:
        return False, base
    cache = report.get("cache")
    if not isinstance(cache, dict):
        return False, (
            "report has no cache block (did toprr_loadgen run with "
            "--zipf against this server?)"
        )
    hit_rate = cache.get("hit_rate", 0.0)
    tasks_saved = cache.get("tasks_saved", 0)
    bypass = cache.get("bypass", 0)
    summary = (
        f"{base}; cache hit rate {hit_rate:.3f} "
        f"(floor {hit_rate_floor:.2f}), {cache.get('hits', 0)} hits / "
        f"{cache.get('partial_hits', 0)} partial / "
        f"{cache.get('misses', 0)} misses, "
        f"{tasks_saved} partition tasks saved"
    )
    if bypass != 0:
        return False, (
            f"{bypass} queries classified bypass -- the server is not "
            "running with --cache, so the replay never exercised the "
            "region cache"
        )
    if hit_rate < hit_rate_floor:
        return False, (
            f"zipf replay hit rate {hit_rate:.3f} below the "
            f"{hit_rate_floor:.2f} floor -- {summary}"
        )
    if tasks_saved <= 0:
        return False, (
            "zero partition tasks saved: hits never clipped a stored "
            f"region -- {summary}"
        )
    return True, summary


def evaluate_churn(report, p99_bound_ms, hit_rate_floor):
    """Returns (ok, one_line_message) for a zipf replay with a live
    mutation writer: the cache gate plus the protocol-v3 ordering
    contracts (writer health, read-your-writes, monotone stamps)."""
    ok, base = evaluate_cache(report, p99_bound_ms, hit_rate_floor)
    if not ok:
        return False, base
    churn = report.get("churn")
    if not isinstance(churn, dict) or not churn.get("enabled", False):
        return False, (
            "report has no active churn block (did toprr_loadgen run "
            "with --churn?)"
        )
    publishes = churn.get("publishes", 0)
    publish_failures = churn.get("publish_failures", 0)
    ryw_violations = churn.get("ryw_violations", 0)
    seq_regressions = churn.get("seq_regressions", 0)
    summary = (
        f"{base}; {publishes} publishes "
        f"({churn.get('staged_rows', 0)} rows / "
        f"{churn.get('staged_deletes', 0)} deletes staged), "
        f"{ryw_violations} ryw violations, "
        f"{seq_regressions} seq regressions, "
        f"last snapshot seq {churn.get('last_snapshot_seq', 0)}"
    )
    if publishes <= 0:
        return False, f"churn writer never published -- {summary}"
    if publish_failures != 0:
        return False, (
            f"{publish_failures} stage/publish acks were not OK -- "
            f"{summary}"
        )
    if ryw_violations != 0:
        return False, (
            f"read-your-writes broken: {ryw_violations} post-publish "
            f"queries saw a pre-publish snapshot -- {summary}"
        )
    if seq_regressions != 0:
        return False, (
            f"snapshot_seq regressed {seq_regressions} times on a "
            f"connection -- {summary}"
        )
    return True, summary


def evaluate_chaos(report, completion_floor):
    """Returns (ok, one_line_message) for a retrying loadgen run driven
    through the chaos proxy: recovery and ordering contracts, not the
    zero-transient-errors contract of the clean-loopback modes."""
    if not isinstance(report, dict):
        return False, "report is not a JSON object"
    attempted = report.get("attempted_queries")
    completed = report.get("completed_queries")
    retries = report.get("retries")
    reconnects = report.get("reconnects")
    dead_workers = report.get("dead_workers")
    if attempted is None or retries is None or reconnects is None:
        return False, (
            "report missing attempted_queries/retries/reconnects "
            "(old toprr_loadgen, or --retries not passed?)"
        )
    completed = completed or 0
    # REJECTED_DRAINING is a deliberate typed answer during the scripted
    # drain+restart -- correct behavior, like admission-control
    # rejections in the base gate -- so it leaves the denominator.
    # Queries lost terminally (retries exhausted) stay in it.
    eligible = max(1, attempted - report.get("rejected_draining", 0))
    ratio = completed / eligible
    summary = (
        f"{completed}/{eligible} eligible completed ({ratio:.3f}, floor "
        f"{completion_floor:.2f}), {retries} retries, {reconnects} "
        f"reconnects, {report.get('deadline_exceeded', 0)} deadline "
        f"exceeded, {report.get('rejected_draining', 0)} rejected "
        f"draining, {dead_workers} dead workers"
    )
    if attempted <= 0 or completed <= 0:
        return False, f"no queries completed under chaos -- {summary}"
    if dead_workers is None or dead_workers != 0:
        return False, (
            f"{dead_workers} loadgen workers died: an error class was "
            f"not survivable -- {summary}"
        )
    if reconnects <= 0:
        return False, (
            "zero reconnects: the proxy never broke a connection, so "
            f"this phase tested nothing -- {summary}"
        )
    churn = report.get("churn")
    if not isinstance(churn, dict) or not churn.get("enabled", False):
        return False, (
            "report has no active churn block (the chaos phase must "
            "exercise the mutation path; pass --churn)"
        )
    publishes = churn.get("publishes", 0)
    duplicates = churn.get("duplicate_publishes", 0)
    summary += (
        f"; {publishes} publishes "
        f"({churn.get('publishes_deduped', 0)} deduped), "
        f"{duplicates} duplicates, "
        f"{churn.get('ryw_violations', 0)} ryw violations, "
        f"{churn.get('seq_regressions', 0)} seq regressions"
    )
    if publishes <= 0:
        return False, f"churn writer never published -- {summary}"
    if churn.get("publish_failures", 0) != 0:
        return False, (
            f"{churn['publish_failures']} mutation RPCs failed "
            f"terminally despite retries -- {summary}"
        )
    if duplicates != 0:
        return False, (
            f"idempotency dedupe broken: {duplicates} retried publishes "
            f"were applied twice -- {summary}"
        )
    if churn.get("ryw_violations", 0) != 0:
        return False, (
            "read-your-writes broken under chaos: "
            f"{churn['ryw_violations']} post-publish queries saw a "
            f"pre-publish snapshot -- {summary}"
        )
    if churn.get("seq_regressions", 0) != 0:
        return False, (
            f"snapshot_seq regressed {churn['seq_regressions']} times "
            f"on a stable connection -- {summary}"
        )
    if ratio < completion_floor:
        return False, (
            f"completion ratio {ratio:.3f} below the "
            f"{completion_floor:.2f} floor: retries did not recover the "
            f"load -- {summary}"
        )
    return True, summary


def evaluate_crash(report, completion_floor):
    """Returns (ok, one_line_message) for a retrying durable-churn run
    across a kill -9 server restart: every chaos-mode recovery check
    plus the crash-durability contract (no acked publish lost, recovery
    bit-identical, final catalog audit clean)."""
    ok, base = evaluate_chaos(report, completion_floor)
    if not ok:
        return False, base
    durable = report.get("durable")
    if not isinstance(durable, dict) or not durable.get("enabled", False):
        return False, (
            "report has no active durable block (the crash phase must "
            "verify durability; pass --expect_durable)"
        )
    lost = durable.get("lost_publishes", 0)
    mismatches = durable.get("snapshot_id_mismatches", 0)
    summary = (
        f"{base}; durable: {lost} lost publishes, {mismatches} "
        f"snapshot-id mismatches, final seq "
        f"{durable.get('final_snapshot_seq', 0)} "
        f"(id {durable.get('final_snapshot_id', '?')})"
    )
    if lost != 0:
        return False, (
            f"durability broken: {lost} acked publishes missing after "
            f"the kill -9 restart -- {summary}"
        )
    if mismatches != 0:
        return False, (
            f"recovery not bit-identical: {mismatches} snapshot seqs "
            f"came back with a different snapshot id -- {summary}"
        )
    if not durable.get("final_info_ok", False):
        return False, (
            "final catalog audit failed: the loadgen could not confirm "
            f"the served catalog covers every acked publish -- {summary}"
        )
    return True, summary


def self_test():
    good = {
        "completed_queries": 100,
        "rejected_queries": 5,
        "protocol_errors": 0,
        "latency_ms": {"p50": 1.0, "p90": 2.0, "p99": 3.0, "max": 4.0},
    }
    ok, _ = evaluate(good, 1000.0)
    assert ok, "well-formed passing report must pass"

    ok, message = evaluate({}, 1000.0)
    assert not ok and "missing" in message, "empty report must fail clearly"

    ok, message = evaluate(dict(good, completed_queries=0), 1000.0)
    assert not ok and "no queries completed" in message

    ok, message = evaluate(dict(good, protocol_errors=3), 1000.0)
    assert not ok and "protocol errors" in message

    slow = dict(good, latency_ms={"p99": 5000.0})
    ok, message = evaluate(slow, 1000.0)
    assert not ok and "p99 over bound" in message

    ok, message = evaluate([1, 2, 3], 1000.0)
    assert not ok, "non-object JSON must fail, not crash"

    # Rejections alone do not fail the gate.
    ok, _ = evaluate(dict(good, rejected_queries=10**6), 1000.0)
    assert ok

    good_cache = dict(good, cache={
        "hits": 90, "partial_hits": 5, "misses": 5, "bypass": 0,
        "hit_rate": 0.95, "tasks_saved": 12345,
    })
    ok, _ = evaluate_cache(good_cache, 1000.0, 0.5)
    assert ok, "healthy cache replay must pass"

    # The base gate still applies in --cache mode.
    ok, message = evaluate_cache(
        dict(good_cache, protocol_errors=1), 1000.0, 0.5)
    assert not ok and "protocol errors" in message

    ok, message = evaluate_cache(good, 1000.0, 0.5)
    assert not ok and "no cache block" in message

    ok, message = evaluate_cache(
        dict(good, cache=dict(good_cache["cache"], bypass=7)), 1000.0, 0.5)
    assert not ok and "bypass" in message

    ok, message = evaluate_cache(
        dict(good, cache=dict(good_cache["cache"], hit_rate=0.2)),
        1000.0, 0.5)
    assert not ok and "hit rate" in message

    ok, message = evaluate_cache(
        dict(good, cache=dict(good_cache["cache"], tasks_saved=0)),
        1000.0, 0.5)
    assert not ok and "zero partition tasks saved" in message

    good_churn = dict(good_cache, churn={
        "enabled": True, "publishes": 20, "staged_rows": 80,
        "staged_deletes": 60, "publish_failures": 0,
        "ryw_violations": 0, "seq_regressions": 0,
        "last_snapshot_seq": 21,
    })
    ok, _ = evaluate_churn(good_churn, 1000.0, 0.4)
    assert ok, "healthy churn replay must pass"

    # The base and cache gates still apply in --churn mode.
    ok, message = evaluate_churn(
        dict(good_churn, protocol_errors=2), 1000.0, 0.4)
    assert not ok and "protocol errors" in message
    ok, message = evaluate_churn(
        dict(good_churn, cache=dict(good_cache["cache"], hit_rate=0.1)),
        1000.0, 0.4)
    assert not ok and "hit rate" in message

    ok, message = evaluate_churn(good_cache, 1000.0, 0.4)
    assert not ok and "no active churn block" in message

    ok, message = evaluate_churn(
        dict(good_churn, churn=dict(good_churn["churn"], enabled=False)),
        1000.0, 0.4)
    assert not ok and "no active churn block" in message

    ok, message = evaluate_churn(
        dict(good_churn, churn=dict(good_churn["churn"], publishes=0)),
        1000.0, 0.4)
    assert not ok and "never published" in message

    ok, message = evaluate_churn(
        dict(good_churn,
             churn=dict(good_churn["churn"], publish_failures=3)),
        1000.0, 0.4)
    assert not ok and "not OK" in message

    ok, message = evaluate_churn(
        dict(good_churn,
             churn=dict(good_churn["churn"], ryw_violations=1)),
        1000.0, 0.4)
    assert not ok and "read-your-writes" in message

    ok, message = evaluate_churn(
        dict(good_churn,
             churn=dict(good_churn["churn"], seq_regressions=2)),
        1000.0, 0.4)
    assert not ok and "regressed" in message

    good_chaos = {
        "attempted_queries": 1000,
        "completed_queries": 960,
        "protocol_errors": 12,  # expected under chaos; must NOT fail
        "deadline_exceeded": 4,
        "rejected_draining": 3,
        "retries": 40,
        "reconnects": 9,
        "dead_workers": 0,
        "latency_ms": {"p99": 99999.0},  # latency gate must NOT apply
        "churn": {
            "enabled": True, "publishes": 30, "publishes_deduped": 2,
            "duplicate_publishes": 0, "publish_failures": 0,
            "ryw_violations": 0, "seq_regressions": 0,
        },
    }
    ok, _ = evaluate_chaos(good_chaos, 0.9)
    assert ok, "recovered chaos run must pass despite transient errors"

    ok, message = evaluate_chaos(good, 0.9)
    assert not ok and "missing attempted_queries" in message

    ok, message = evaluate_chaos(
        dict(good_chaos, completed_queries=500), 0.9)
    assert not ok and "completion ratio" in message

    ok, message = evaluate_chaos(dict(good_chaos, dead_workers=1), 0.9)
    assert not ok and "died" in message

    ok, message = evaluate_chaos(dict(good_chaos, reconnects=0), 0.9)
    assert not ok and "zero reconnects" in message

    ok, message = evaluate_chaos(
        dict(good_chaos,
             churn=dict(good_chaos["churn"], duplicate_publishes=1)),
        0.9)
    assert not ok and "dedupe broken" in message

    ok, message = evaluate_chaos(
        dict(good_chaos,
             churn=dict(good_chaos["churn"], ryw_violations=1)), 0.9)
    assert not ok and "read-your-writes" in message

    ok, message = evaluate_chaos(
        dict(good_chaos,
             churn=dict(good_chaos["churn"], publish_failures=2)), 0.9)
    assert not ok and "terminally" in message

    ok, message = evaluate_chaos(
        dict(good_chaos,
             churn=dict(good_chaos["churn"], seq_regressions=1)), 0.9)
    assert not ok and "regressed" in message

    ok, message = evaluate_chaos(dict(good_chaos, churn=None), 0.9)
    assert not ok and "no active churn block" in message

    good_crash = dict(good_chaos, durable={
        "enabled": True, "lost_publishes": 0,
        "snapshot_id_mismatches": 0, "final_info_ok": True,
        "final_snapshot_seq": 31, "final_snapshot_id": "00deadbeef00f00d",
    })
    ok, _ = evaluate_crash(good_crash, 0.5)
    assert ok, "recovered kill -9 run must pass"

    # The chaos gates still apply in --crash mode.
    ok, message = evaluate_crash(dict(good_crash, dead_workers=1), 0.5)
    assert not ok and "died" in message
    ok, message = evaluate_crash(
        dict(good_crash,
             churn=dict(good_chaos["churn"], duplicate_publishes=1)), 0.5)
    assert not ok and "dedupe broken" in message

    ok, message = evaluate_crash(good_chaos, 0.5)
    assert not ok and "no active durable block" in message

    ok, message = evaluate_crash(
        dict(good_crash,
             durable=dict(good_crash["durable"], enabled=False)), 0.5)
    assert not ok and "no active durable block" in message

    ok, message = evaluate_crash(
        dict(good_crash,
             durable=dict(good_crash["durable"], lost_publishes=2)), 0.5)
    assert not ok and "durability broken" in message

    ok, message = evaluate_crash(
        dict(good_crash,
             durable=dict(good_crash["durable"],
                          snapshot_id_mismatches=1)), 0.5)
    assert not ok and "bit-identical" in message

    ok, message = evaluate_crash(
        dict(good_crash,
             durable=dict(good_crash["durable"], final_info_ok=False)),
        0.5)
    assert not ok and "final catalog audit" in message
    print("serve-smoke: self-test PASS")


def main():
    if len(sys.argv) == 2 and sys.argv[1] == "--self-test":
        self_test()
        return
    mode = "base"
    if len(sys.argv) == 3 and sys.argv[1] in ("--cache", "--churn",
                                              "--chaos", "--crash"):
        mode = sys.argv[1][2:]
    elif len(sys.argv) != 2:
        print(
            f"serve-smoke: FAIL: usage: {sys.argv[0]} "
            "[--cache|--churn|--chaos|--crash] <loadgen.json>",
            file=sys.stderr,
        )
        sys.exit(1)
    path = sys.argv[2] if mode != "base" else sys.argv[1]
    p99_bound_ms = float(os.environ.get("SERVE_SMOKE_P99_MS", "10000"))
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(
            f"serve-smoke: FAIL: cannot read {path}: {err}",
            file=sys.stderr,
        )
        sys.exit(1)
    if mode == "crash":
        completion_floor = float(
            os.environ.get("CRASH_COMPLETION_FLOOR", "0.5"))
        ok, message = evaluate_crash(report, completion_floor)
    elif mode == "chaos":
        completion_floor = float(
            os.environ.get("CHAOS_COMPLETION_FLOOR", "0.9"))
        ok, message = evaluate_chaos(report, completion_floor)
    elif mode == "churn":
        hit_rate_floor = float(
            os.environ.get("SERVE_SMOKE_CHURN_HIT_RATE", "0.4"))
        ok, message = evaluate_churn(report, p99_bound_ms, hit_rate_floor)
    elif mode == "cache":
        hit_rate_floor = float(
            os.environ.get("SERVE_SMOKE_HIT_RATE", "0.5"))
        ok, message = evaluate_cache(report, p99_bound_ms, hit_rate_floor)
    else:
        ok, message = evaluate(report, p99_bound_ms)
    if not ok:
        print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"serve-smoke: PASS: {message}")


if __name__ == "__main__":
    main()
