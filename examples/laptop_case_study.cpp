// The paper's Sec. 6.2 case study (Figure 7), on the CNET-like laptop
// stand-in dataset (149 laptops, performance & battery ratings).
//
// Scenario (a): target designers, wR = [0.7, 0.8] -- performance-leaning.
// Scenario (b): target business users, wR = [0.1, 0.2] -- battery-leaning.
// For each, compute oR for k = 3, the cost-optimal placement under
// cost = performance^2 + battery^2, and the savings vs existing laptops
// already inside oR.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "core/placement.h"
#include "core/toprr.h"
#include "data/generator.h"
#include "pref/pref_space.h"

namespace {

void RunScenario(const toprr::Dataset& laptops, double wlo, double whi,
                 int k, const char* label) {
  using namespace toprr;
  PrefBox clientele;
  clientele.lo = Vec{wlo};
  clientele.hi = Vec{whi};
  const ToprrResult region = SolveToprr(laptops, k, clientele);
  const PlacementResult optimal = MinimumCostCreation(region);

  std::printf("--- %s: wR = [%.2f, %.2f], k = %d ---\n", label, wlo, whi, k);
  std::printf("solved in %.3fs; |Vall| = %zu, %zu impact halfspaces\n",
              region.stats.total_seconds, region.vall.size(),
              region.impact_halfspaces.size());
  if (!optimal.ok) {
    std::printf("no cost-optimal placement found (degenerate region)\n");
    return;
  }
  std::printf("cost-optimal placement: performance %.2f, battery %.2f "
              "(cost %.4f)\n",
              optimal.option[0], optimal.option[1], optimal.cost);

  // Competitors: existing laptops already inside oR.
  std::vector<double> competitor_costs;
  for (size_t i = 0; i < laptops.size(); ++i) {
    const Vec p = laptops.Option(i);
    if (region.Contains(p)) {
      competitor_costs.push_back(p.SquaredNorm());
    }
  }
  if (competitor_costs.empty()) {
    std::printf("no existing laptop is consistently top-%d for this "
                "clientele -- clear market gap\n", k);
    return;
  }
  std::sort(competitor_costs.begin(), competitor_costs.end());
  const double cheapest = competitor_costs.front();
  const double priciest = competitor_costs.back();
  std::printf("%zu existing competitors inside oR; our design is cheaper "
              "to build by %.1f%%-%.1f%%\n",
              competitor_costs.size(),
              100.0 * (1.0 - optimal.cost / cheapest),
              100.0 * (1.0 - optimal.cost / priciest));
}

}  // namespace

int main(int argc, char** argv) {
  toprr::FlagParser flags;
  int64_t seed = 2019;
  int k = 3;
  flags.AddInt("seed", &seed, "dataset seed");
  flags.AddInt("k", &k, "rank requirement");
  if (!flags.Parse(&argc, argv)) return 1;

  const toprr::Dataset laptops =
      toprr::GenerateCnetLaptops(static_cast<uint64_t>(seed));
  std::printf("CNET-like laptop dataset: %zu laptops, 2 attributes "
              "(performance, battery)\n\n", laptops.size());
  RunScenario(laptops, 0.7, 0.8, k, "designers (performance-leaning)");
  std::printf("\n");
  RunScenario(laptops, 0.1, 0.2, k, "business users (battery-leaning)");
  return 0;
}
