// Live catalog: serving TopRR queries while the option set changes.
//
// A MutableCatalog owns the writer side -- staged inserts and deletes
// become immutable, refcounted DatasetSnapshot versions on Publish() --
// while a ToprrEngine serves queries from whichever version it was last
// handed via SetSnapshot. Readers never block writers: an in-flight
// solve pins its snapshot for its whole duration and stamps the version
// it answered against into ToprrResult::snapshot_id, and the engine
// carries its per-k skyband cache across versions incrementally instead
// of recomputing it (see update_counters()).
#include <algorithm>
#include <cstdio>

#include "common/flags.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/toprr.h"
#include "data/generator.h"
#include "data/snapshot.h"
#include "pref/pref_space.h"

int main(int argc, char** argv) {
  using namespace toprr;
  FlagParser flags;
  int n = 2000;
  int k = 5;
  int rounds = 3;
  int batch = 25;
  flags.AddInt("n", &n, "initial catalog size");
  flags.AddInt("k", &k, "rank requirement");
  flags.AddInt("rounds", &rounds, "publish rounds to simulate");
  flags.AddInt("batch", &batch, "rows inserted (and deleted) per round");
  if (!flags.Parse(&argc, argv)) return 1;

  // Writer side: the catalog starts from a synthetic table and stages
  // row-level changes between publishes.
  auto catalog = std::make_shared<MutableCatalog>(GenerateSynthetic(
      static_cast<size_t>(n), 3, Distribution::kIndependent, 42));

  // Reader side: the engine adopts the current version; production
  // solver toggles come from the preset rather than hand-set flags.
  ToprrEngine engine(catalog->Current());
  const ToprrOptions options = EngineConfig::Production();

  PrefBox clientele;
  clientele.lo = Vec{0.2, 0.2};
  clientele.hi = Vec{0.7, 0.7};

  std::printf("initial catalog: %zu options, version %016llx\n",
              engine.dataset_rows(),
              static_cast<unsigned long long>(engine.snapshot_id()));

  Rng rng(7);
  for (int round = 0; round < rounds; ++round) {
    // Queries against the pinned version...
    const ToprrResult before = engine.Solve(k, clientele, options);
    // ...while the writer stages the next delta: `batch` new options and
    // `batch` retirements of current non-skyband rows (the cheap case
    // for the engine's incremental skyband maintenance).
    const SnapshotPtr current = catalog->Current();
    for (int i = 0; i < batch; ++i) {
      catalog->StageInsert(Vec{rng.Uniform(), rng.Uniform(), rng.Uniform()});
    }
    int staged = 0;
    const std::vector<int>& skyband = engine.KSkyband(k);
    for (const int id : current->live_ids()) {
      if (staged == batch) break;
      if (!std::binary_search(skyband.begin(), skyband.end(), id)) {
        catalog->StageDelete(id);
        ++staged;
      }
    }
    const SnapshotPtr next = catalog->Publish();
    engine.SetSnapshot(next);
    const ToprrResult after = engine.Solve(k, clientele, options);

    std::printf(
        "round %d: version %016llx -> %016llx, %zu live options, "
        "impact halfspaces %zu -> %zu\n",
        round + 1,
        static_cast<unsigned long long>(before.snapshot_id),
        static_cast<unsigned long long>(after.snapshot_id),
        engine.dataset_rows(), before.impact_halfspaces.size(),
        after.impact_halfspaces.size());
  }

  const ToprrEngine::UpdateCounters counters = engine.update_counters();
  std::printf(
      "\n%llu publishes adopted: %llu incremental skyband carries, "
      "%llu full rebuilds\n",
      static_cast<unsigned long long>(counters.publishes_seen),
      static_cast<unsigned long long>(counters.skyband_incremental),
      static_cast<unsigned long long>(counters.skyband_rebuilds));
  return 0;
}
