// Competitive impact analysis for an existing product line.
//
// For each product of interest this example reports (a) over which part of
// the target clientele it already ranks top-k (impact regions, the
// reverse-top-k view of Tang et al. [41] that the paper builds on), and
// (b) if coverage is partial, the minimum modification that would make it
// rank top-k for the entire clientele (the TopRR enhancement workflow).
#include <cstdio>

#include "common/flags.h"
#include "core/impact.h"
#include "core/placement.h"
#include "core/toprr.h"
#include "data/dataset.h"
#include "pref/pref_space.h"

int main(int argc, char** argv) {
  using namespace toprr;
  FlagParser flags;
  int k = 3;
  flags.AddInt("k", &k, "rank requirement");
  if (!flags.Parse(&argc, argv)) return 1;

  // The running example of the paper (Figure 1): six laptops.
  const Dataset laptops = Dataset::FromRows({
      Vec{0.9, 0.4},  // p1
      Vec{0.7, 0.9},  // p2
      Vec{0.6, 0.2},  // p3
      Vec{0.3, 0.8},  // p4
      Vec{0.2, 0.3},  // p5
      Vec{0.1, 0.1},  // p6
  });
  PrefBox clientele;
  clientele.lo = Vec{0.2};
  clientele.hi = Vec{0.8};

  std::printf("clientele: speed weight in [%.1f, %.1f]; k = %d\n\n",
              clientele.lo[0], clientele.hi[0], k);
  const ToprrResult region = SolveToprr(laptops, k, clientele);

  for (size_t i = 0; i < laptops.size(); ++i) {
    const Vec p = laptops.Option(i);
    const auto impact =
        ComputeImpactRegions(laptops, static_cast<int>(i), k, clientele);
    std::printf("p%zu (%.1f, %.1f): top-%d for %.1f%% of the clientele",
                i + 1, p[0], p[1], k, impact.volume_fraction * 100.0);
    if (!impact.favorable.empty()) {
      std::printf(" [");
      for (size_t c = 0; c < impact.favorable.size(); ++c) {
        const auto& verts = impact.favorable[c].vertices();
        double lo = 1.0;
        double hi = 0.0;
        for (const Vec& v : verts) {
          lo = std::min(lo, v[0]);
          hi = std::max(hi, v[0]);
        }
        std::printf("%s%.3f..%.3f", c > 0 ? ", " : "", lo, hi);
      }
      std::printf("]");
    }
    std::printf("\n");
    if (impact.cell_fraction < 1.0) {
      const PlacementResult fix = MinimumModification(region, p);
      if (fix.ok && fix.cost > 1e-9) {
        std::printf("    full-coverage revamp: (%.3f, %.3f), "
                    "modification cost %.4f\n",
                    fix.option[0], fix.option[1], fix.cost);
      }
    }
  }
  return 0;
}
