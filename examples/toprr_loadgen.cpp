// toprr_loadgen: closed-loop load generator for toprr_serve.
//
// Drives N concurrent connections, each issuing random query batches
// back-to-back for a fixed duration, and reports throughput and latency
// percentiles as a single JSON object (consumed by ci/check_serve_smoke.py;
// flag and reporting conventions follow bench/bench_common.h).
//
//   toprr_loadgen --port 7077 --connections 4 --duration 10 --batch 8
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/engine.h"
#include "pref/pref_space.h"
#include "serve/client.h"

namespace {

using namespace toprr;

// Outcome of one connection's run (merged after the join).
struct WorkerReport {
  std::vector<double> rpc_millis;  // per-round-trip latency
  uint64_t completed = 0;          // queries answered kOk
  uint64_t rejected = 0;           // kRejectedOverload
  uint64_t budget_exceeded = 0;
  uint64_t other_statuses = 0;     // kShutdown etc.
  uint64_t protocol_errors = 0;    // transport/decode failures
  std::string first_error;
};

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void RunConnection(const std::string& host, int port, size_t dim, int k,
                   double sigma, int batch, double budget_seconds,
                   double duration_seconds, uint64_t seed,
                   WorkerReport* report) {
  serve::ToprrClient client;
  if (!client.Connect(host, port)) {
    ++report->protocol_errors;
    report->first_error = client.last_error();
    return;
  }
  Rng rng(seed);
  Timer clock;
  while (clock.Seconds() < duration_seconds) {
    std::vector<ToprrQuery> queries;
    queries.reserve(static_cast<size_t>(batch));
    for (int q = 0; q < batch; ++q) {
      ToprrOptions options;
      options.build_geometry = false;  // serving latency, not geometry
      options.time_budget_seconds = budget_seconds;
      queries.push_back(
          ToprrQuery::FromBox(k, RandomPrefBox(dim, sigma, rng), options));
    }
    Timer rpc;
    auto responses = client.SolveBatch(queries);
    if (!responses.has_value()) {
      ++report->protocol_errors;
      if (report->first_error.empty()) {
        report->first_error = client.last_error();
      }
      // The client closed the broken connection; reconnect and go on so
      // one hiccup does not silence a whole worker.
      if (!client.Connect(host, port)) return;
      continue;
    }
    report->rpc_millis.push_back(rpc.Millis());
    for (const serve::ServeResponse& response : *responses) {
      switch (response.status) {
        case serve::ServeStatus::kOk:
          ++report->completed;
          break;
        case serve::ServeStatus::kRejectedOverload:
          ++report->rejected;
          break;
        case serve::ServeStatus::kBudgetExceeded:
          ++report->budget_exceeded;
          break;
        default:
          ++report->other_statuses;
          break;
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  std::string host = "127.0.0.1";
  std::string out_path;
  int port = 7077;
  int connections = 4;
  double duration = 10.0;
  int batch = 8;
  int k = 10;
  int d = 4;
  double sigma = 0.01;
  double budget = 0.0;
  int64_t seed = 2019;
  bool help = false;
  flags.AddString("host", &host, "server address");
  flags.AddString("out", &out_path, "write the JSON report here (default: stdout)");
  flags.AddInt("port", &port, "server port");
  flags.AddInt("connections", &connections, "concurrent connections");
  flags.AddDouble("duration", &duration, "run time in seconds");
  flags.AddInt("batch", &batch, "queries per request frame");
  flags.AddInt("k", &k, "rank requirement of the generated queries");
  flags.AddInt("d", &d, "dataset dimensionality the server was started with");
  flags.AddDouble("sigma", &sigma, "random wR side length");
  flags.AddDouble("budget", &budget,
                  "per-query budget request in seconds (0 = server default)");
  flags.AddInt("seed", &seed, "rng seed");
  flags.AddBool("help", &help, "print usage");
  if (!flags.Parse(&argc, argv)) return 1;
  if (help) {
    std::fputs(flags.HelpString().c_str(), stdout);
    return 0;
  }
  if (connections < 1 || batch < 1 || d < 2) {
    std::fprintf(stderr, "need --connections >= 1, --batch >= 1, --d >= 2\n");
    return 1;
  }

  std::vector<WorkerReport> reports(static_cast<size_t>(connections));
  std::vector<std::thread> workers;
  workers.reserve(reports.size());
  Timer wall;
  for (size_t c = 0; c < reports.size(); ++c) {
    workers.emplace_back(RunConnection, host, port,
                         static_cast<size_t>(d - 1), k, sigma, batch, budget,
                         duration, static_cast<uint64_t>(seed) + 31 * c,
                         &reports[c]);
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed = wall.Seconds();

  WorkerReport total;
  for (const WorkerReport& report : reports) {
    total.completed += report.completed;
    total.rejected += report.rejected;
    total.budget_exceeded += report.budget_exceeded;
    total.other_statuses += report.other_statuses;
    total.protocol_errors += report.protocol_errors;
    total.rpc_millis.insert(total.rpc_millis.end(),
                            report.rpc_millis.begin(),
                            report.rpc_millis.end());
    if (total.first_error.empty()) total.first_error = report.first_error;
  }
  std::sort(total.rpc_millis.begin(), total.rpc_millis.end());
  const double qps =
      elapsed > 0.0 ? static_cast<double>(total.completed) / elapsed : 0.0;

  std::string json;
  char line[256];
  std::snprintf(line, sizeof(line), "{\n  \"duration_seconds\": %.3f,\n",
                elapsed);
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"connections\": %d,\n  \"batch\": %d,\n", connections,
                batch);
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"completed_queries\": %llu,\n  \"rejected_queries\": "
                "%llu,\n",
                static_cast<unsigned long long>(total.completed),
                static_cast<unsigned long long>(total.rejected));
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"budget_exceeded_queries\": %llu,\n  "
                "\"other_status_queries\": %llu,\n",
                static_cast<unsigned long long>(total.budget_exceeded),
                static_cast<unsigned long long>(total.other_statuses));
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"protocol_errors\": %llu,\n  \"rpcs\": %zu,\n",
                static_cast<unsigned long long>(total.protocol_errors),
                total.rpc_millis.size());
  json += line;
  std::snprintf(line, sizeof(line), "  \"queries_per_second\": %.2f,\n",
                qps);
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"latency_ms\": {\"p50\": %.3f, \"p90\": %.3f, \"p99\": "
                "%.3f, \"max\": %.3f},\n",
                Percentile(total.rpc_millis, 0.50),
                Percentile(total.rpc_millis, 0.90),
                Percentile(total.rpc_millis, 0.99),
                total.rpc_millis.empty() ? 0.0 : total.rpc_millis.back());
  json += line;
  std::string safe_error = total.first_error.substr(0, 120);
  for (char& c : safe_error) {
    if (c == '"' || c == '\\') c = '\'';
  }
  std::snprintf(line, sizeof(line), "  \"first_error\": \"%s\"\n}\n",
                safe_error.c_str());
  json += line;

  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("toprr_loadgen: %llu queries ok (%.1f q/s), %llu rejected, "
                "%llu over budget, %llu protocol errors -> %s\n",
                static_cast<unsigned long long>(total.completed), qps,
                static_cast<unsigned long long>(total.rejected),
                static_cast<unsigned long long>(total.budget_exceeded),
                static_cast<unsigned long long>(total.protocol_errors),
                out_path.c_str());
  }
  return total.protocol_errors == 0 ? 0 : 1;
}
