// toprr_loadgen: closed-loop load generator for toprr_serve.
//
// Drives N concurrent connections, each issuing random query batches
// back-to-back for a fixed duration, and reports throughput and latency
// percentiles as a single JSON object (consumed by ci/check_serve_smoke.py;
// flag and reporting conventions follow bench/bench_common.h).
//
//   toprr_loadgen --port 7077 --connections 4 --duration 10 --batch 8
//
// --zipf switches from i.i.d. random boxes to a skewed repeated-query
// mix: a fixed set of --profiles clientele boxes is drawn once from the
// shared seed (identical across connections and runs), and every query
// samples a profile Zipf(s)-distributed, then jitters it by less than
// half a cache grid cell. Popular clienteles repeat, so a cache-enabled
// server converges to hits; the JSON report gains a "cache" block with
// per-class solve-time percentiles (consumed by
// ci/check_serve_smoke.py --cache).
//
// --churn adds one writer connection alongside the query workers: it
// stages --churn_rows random inserts (and, once its own inserts have
// landed, deletes of them) and publishes every --churn_interval seconds
// over the protocol v3 mutation RPCs. After each publish the writer
// issues a query on the same connection and requires the response's
// snapshot_seq to be >= the publish ack's seq (read-your-writes); query
// workers require their per-connection snapshot_seq stream to be
// monotone non-decreasing. Violations land in the JSON "churn" block
// (consumed by ci/check_serve_smoke.py --churn) and fail the exit code.
//
// --retries N (> 1) arms the client-side retry policy: workers survive
// connection loss, server restarts, and injected faults (see
// examples/toprr_chaosproxy.cpp), transparently reconnecting with
// backoff; per-error-class counts plus "retries"/"reconnects" land in
// the JSON (consumed by ci/check_serve_smoke.py --chaos), and only
// correctness violations -- duplicate publishes, read-your-writes or
// ordering breaks, dead workers -- fail the exit code. --deadline_ms
// attaches a deadline to every batch, enforced server-side
// (DEADLINE_EXCEEDED) and as a local socket timeout.
// --expect_durable (with --churn against a --data_dir server) switches
// the writer to durable verification: row-id bookkeeping and the
// publish-growth accounting survive reconnects instead of re-baselining,
// because a crash-restarted durable server must recover every acked
// publish bit-identically. Acked-row loss, duplicate applies, snapshot
// ids that differ across the restart for the same seq, and a final
// catalog seq below the max acked seq all land in the JSON "durable"
// block (consumed by ci/check_serve_smoke.py --crash) and fail the exit
// code.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/engine.h"
#include "pref/pref_space.h"
#include "serve/client.h"

namespace {

using namespace toprr;

// Per-worker failure-hardening knobs (defaults = the pre-retry behavior).
struct Resilience {
  int attempts = 1;               // client RetryPolicy::max_attempts
  double deadline_seconds = 0.0;  // per-batch deadline (0 = none)
};

// Outcome of one connection's run (merged after the join).
struct WorkerReport {
  std::vector<double> rpc_millis;  // per-round-trip latency
  uint64_t attempted = 0;          // queries sent (or retried to death)
  uint64_t completed = 0;          // queries answered kOk
  uint64_t rejected = 0;           // kRejectedOverload
  uint64_t budget_exceeded = 0;
  uint64_t deadline_exceeded = 0;  // kDeadlineExceeded answers
  uint64_t rejected_draining = 0;  // kRejectedDraining answers
  uint64_t other_statuses = 0;     // kShutdown etc.
  uint64_t protocol_errors = 0;    // decode/alignment failures
  uint64_t transport_errors = 0;   // connection-level failures
  uint64_t timeout_errors = 0;     // client-side deadline expiries
  uint64_t retries = 0;            // client's re-sent attempts
  uint64_t reconnects = 0;         // client's internal reconnect cycles
  bool died = false;               // gave up before the duration elapsed
  std::string first_error;

  // Region-cache outcomes reported back by the server (ServeQueryStats),
  // plus per-class server-side solve times for the percentile lines.
  uint64_t cache_hits = 0;
  uint64_t cache_partial_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_bypass = 0;
  uint64_t cache_tasks_saved = 0;
  std::vector<double> hit_solve_millis;
  std::vector<double> miss_solve_millis;

  // Snapshot-stamp ordering (protocol v3): every response carries the
  // served snapshot_seq, which must never regress on one connection.
  uint64_t seq_regressions = 0;
  uint64_t last_snapshot_seq = 0;
};

// Outcome of the single --churn writer connection.
struct ChurnReport {
  uint64_t publishes = 0;
  uint64_t staged_rows = 0;
  uint64_t staged_deletes = 0;
  uint64_t publish_failures = 0;   // stage/publish acks other than kOk
  uint64_t publishes_deduped = 0;  // retried Publish answered already_applied
  uint64_t duplicate_publishes = 0;  // the delta landed more than once
  uint64_t ryw_violations = 0;     // post-publish query saw an older seq
  uint64_t protocol_errors = 0;
  uint64_t retries = 0;
  uint64_t reconnects = 0;
  uint64_t last_snapshot_seq = 0;

  // Durable verification (--expect_durable): acked-publish loss,
  // double-applies, and snapshot-id identity across restarts.
  uint64_t lost_publishes = 0;   // catalog grew less than the acked delta
  uint64_t snapshot_id_mismatches = 0;  // same seq, different id
  uint64_t last_snapshot_id = 0;
  uint64_t final_snapshot_seq = 0;  // closing CatalogInfo after the run
  uint64_t final_snapshot_id = 0;
  bool final_info_ok = false;
  std::string final_info_message;  // the server's durability one-liner

  bool died = false;
  std::string first_error;
};

// The zipf query mix: profile boxes plus the sampling distribution.
struct ZipfMix {
  std::vector<PrefBox> profiles;
  std::vector<double> cdf;  // cumulative Zipf(s) weights, cdf.back() == 1
  double quantum = 1.0 / 256.0;
};

// Draws the shared profile set: boxes whose corners sit at grid-cell
// CENTERS ((m + 0.5) * quantum), so the later +-0.4-cell jitter never
// crosses a cell boundary and every jittered copy canonicalizes to the
// same cached box. Deterministic in `seed` alone -- every connection
// (and every run) sees the same profiles.
ZipfMix BuildZipfMix(size_t dim, double sigma, double s, int profiles,
                     double quantum, uint64_t seed) {
  ZipfMix mix;
  mix.quantum = quantum;
  const double cells = 1.0 / quantum;
  // Box side in whole cells (at least one).
  const int64_t width =
      std::max<int64_t>(1, static_cast<int64_t>(std::lround(sigma * cells)));
  Rng rng(seed);
  while (mix.profiles.size() < static_cast<size_t>(profiles)) {
    PrefBox box;
    box.lo = Vec(dim);
    box.hi = Vec(dim);
    PrefBox canonical;  // what the cache will snap the box out to
    canonical.lo = Vec(dim);
    canonical.hi = Vec(dim);
    bool in_range = true;
    for (size_t j = 0; j < dim; ++j) {
      const int64_t max_lo_cell =
          static_cast<int64_t>(cells) - width - 1;
      if (max_lo_cell < 1) {
        in_range = false;
        break;
      }
      const int64_t cell = rng.UniformInt(1, max_lo_cell);
      box.lo[j] = (static_cast<double>(cell) + 0.5) * quantum;
      box.hi[j] = (static_cast<double>(cell + width) + 0.5) * quantum;
      canonical.lo[j] = static_cast<double>(cell) * quantum;
      canonical.hi[j] = static_cast<double>(cell + width + 1) * quantum;
    }
    // The snapped-out canonical box is what must fit in the simplex;
    // rejection-sample until it does (cheap for the paper's sigma <= 5%).
    if (in_range && canonical.InsideSimplex()) {
      mix.profiles.push_back(std::move(box));
    }
  }
  // Zipf(s) over profile ranks: weight 1/(i+1)^s, as a sampling CDF.
  mix.cdf.resize(mix.profiles.size());
  double total = 0.0;
  for (size_t i = 0; i < mix.cdf.size(); ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    mix.cdf[i] = total;
  }
  for (double& c : mix.cdf) c /= total;
  return mix;
}

// One zipf query: sample a profile, shift the whole box by under half a
// grid cell per axis. The shift keeps every corner inside its original
// cell, so the canonical (cache) box is jitter-invariant.
PrefBox SampleZipfBox(const ZipfMix& mix, Rng& rng) {
  const double u = rng.Uniform();
  const size_t pick =
      std::lower_bound(mix.cdf.begin(), mix.cdf.end(), u) - mix.cdf.begin();
  PrefBox box = mix.profiles[std::min(pick, mix.profiles.size() - 1)];
  for (size_t j = 0; j < box.dim(); ++j) {
    const double delta = (rng.Uniform() - 0.5) * 0.8 * mix.quantum;
    box.lo[j] += delta;
    box.hi[j] += delta;
  }
  return box;
}

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

// Classifies a failed RPC into the per-error-class counters.
void CountClientError(const serve::ToprrClient& client, uint64_t* protocol,
                      uint64_t* transport, uint64_t* timeout,
                      std::string* first_error) {
  switch (client.last_error_code()) {
    case serve::ClientError::kTimeout:
      ++*timeout;
      break;
    case serve::ClientError::kProtocol:
      ++*protocol;
      break;
    default:
      ++*transport;
      break;
  }
  if (first_error->empty()) *first_error = client.last_error();
}

void RunConnection(const std::string& host, int port, size_t dim, int k,
                   double sigma, int batch, double budget_seconds,
                   double duration_seconds, uint64_t seed,
                   const ZipfMix* mix, const Resilience& resilience,
                   bool expect_durable, WorkerReport* report) {
  serve::ToprrClient client;
  const bool retrying = resilience.attempts > 1;
  if (retrying) {
    serve::RetryPolicy policy;
    policy.max_attempts = resilience.attempts;
    client.set_retry_policy(policy);
  }
  serve::QueryOptions query_options;
  query_options.deadline_seconds = resilience.deadline_seconds;
  if (!client.Connect(host, port)) {
    if (!retrying) {
      ++report->transport_errors;
      report->first_error = client.last_error();
      report->died = true;
      return;
    }
    // With retry on, the first QueryBatch below reconnects internally.
    if (report->first_error.empty()) report->first_error = client.last_error();
  }
  Rng rng(seed);
  Timer clock;
  while (clock.Seconds() < duration_seconds) {
    std::vector<ToprrQuery> queries;
    queries.reserve(static_cast<size_t>(batch));
    for (int q = 0; q < batch; ++q) {
      ToprrOptions options;
      options.build_geometry = false;  // serving latency, not geometry
      options.time_budget_seconds = budget_seconds;
      queries.push_back(ToprrQuery::FromBox(
          k,
          mix != nullptr ? SampleZipfBox(*mix, rng)
                         : RandomPrefBox(dim, sigma, rng),
          options));
    }
    report->attempted += queries.size();
    Timer rpc;
    auto responses = client.QueryBatch(queries, query_options);
    if (!responses.has_value()) {
      CountClientError(client, &report->protocol_errors,
                       &report->transport_errors, &report->timeout_errors,
                       &report->first_error);
      if (!retrying) {
        // The client closed the broken connection; reconnect and go on
        // so one hiccup does not silence a whole worker.
        if (!client.Connect(host, port)) {
          report->died = true;
          break;
        }
        continue;
      }
      // Retries are already spent; breathe so an extended outage does
      // not turn this worker into a busy loop, then try the next batch.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    report->rpc_millis.push_back(rpc.Millis());
    if (client.reconnects() != report->reconnects) {
      // The batch crossed an internal reconnect. If the server was
      // restarted, its snapshot seq restarted too -- re-baseline the
      // per-connection monotonicity check instead of flagging it.
      // UNLESS the server is durable: recovery resumes the seq chain
      // where the crash cut it, so a regression across the restart is a
      // real violation and the baseline must survive the reconnect.
      report->reconnects = client.reconnects();
      if (!expect_durable) report->last_snapshot_seq = 0;
    }
    for (const serve::ServeResponse& response : *responses) {
      switch (response.status) {
        case serve::ServeStatus::kOk:
          ++report->completed;
          break;
        case serve::ServeStatus::kRejectedOverload:
          ++report->rejected;
          break;
        case serve::ServeStatus::kBudgetExceeded:
          ++report->budget_exceeded;
          break;
        case serve::ServeStatus::kDeadlineExceeded:
          ++report->deadline_exceeded;
          break;
        case serve::ServeStatus::kRejectedDraining:
          ++report->rejected_draining;
          break;
        default:
          ++report->other_statuses;
          break;
      }
      const double solve_millis = response.stats.total_seconds * 1000.0;
      switch (static_cast<serve::CacheLookup>(response.stats.cache_lookup)) {
        case serve::CacheLookup::kHit:
          ++report->cache_hits;
          report->hit_solve_millis.push_back(solve_millis);
          break;
        case serve::CacheLookup::kPartial:
          ++report->cache_partial_hits;
          report->hit_solve_millis.push_back(solve_millis);
          break;
        case serve::CacheLookup::kMiss:
          ++report->cache_misses;
          report->miss_solve_millis.push_back(solve_millis);
          break;
        case serve::CacheLookup::kBypass:
          ++report->cache_bypass;
          break;
      }
      report->cache_tasks_saved += response.stats.cache_tasks_saved;
      if (response.snapshot_seq < report->last_snapshot_seq) {
        ++report->seq_regressions;
      } else {
        report->last_snapshot_seq = response.snapshot_seq;
      }
    }
  }
  report->retries = client.retries();
  report->reconnects = client.reconnects();
}

// The --churn writer: keeps publishing small deltas for the whole run.
// Inserted row ids are derived from the publish acks (single writer:
// the batch lands at [previous physical_rows, ack.physical_rows)), so
// once enough of its own rows are live it deletes the oldest ones back
// out and the dataset size stays roughly flat.
void RunChurnWriter(const std::string& host, int port, size_t data_dim,
                    int k, double sigma, double interval_seconds,
                    int rows_per_publish, double duration_seconds,
                    uint64_t seed, const Resilience& resilience,
                    bool expect_durable, ChurnReport* report) {
  serve::ToprrClient client;
  const bool retrying = resilience.attempts > 1;
  if (retrying) {
    serve::RetryPolicy policy;
    policy.max_attempts = resilience.attempts;
    client.set_retry_policy(policy);
  }
  if (!client.Connect(host, port) && !retrying) {
    ++report->protocol_errors;
    report->first_error = client.last_error();
    report->died = true;
    return;
  }
  // The hello is authoritative when available; before the first
  // successful handshake (retrying through an outage) trust the flag.
  const size_t dim =
      client.server().dim != 0 ? client.server().dim : data_dim;
  uint64_t physical_rows = client.server().physical_rows;
  uint64_t seen_reconnects = client.reconnects();
  std::vector<uint64_t> own_rows;  // our published inserts, oldest first
  // Durable verification state. `pending_*` mirror what the client has
  // staged-but-unpublished (surviving failed rounds), so the growth
  // check stays exact even when a publish spans a crash-restart.
  uint64_t pending_inserts = 0;
  size_t pending_deletes = 0;
  bool publish_pending = false;  // resolve the in-flight publish before
                                 // staging more (durable mode only)
  std::unordered_map<uint64_t, uint64_t> seq_to_id;
  // Snapshot-id identity: recovery must re-derive bit-identical ids, so
  // any two stamps with the same seq -- before or after the crash --
  // must carry the same id.
  const auto note_stamp = [&](uint64_t seq, uint64_t id) {
    if (!expect_durable || id == 0) return;
    const auto inserted = seq_to_id.emplace(seq, id);
    if (!inserted.second && inserted.first->second != id) {
      ++report->snapshot_id_mismatches;
    }
  };
  Rng rng(seed);
  Timer clock;
  const auto fail = [&](const std::string& what) {
    ++report->publish_failures;
    if (report->first_error.empty()) report->first_error = what;
  };
  // An RPC-level failure kills the whole writer without retry (the old
  // behavior); with retry it just skips this churn round -- the sleep at
  // the loop bottom paces the next try.
  const auto rpc_failed = [&]() {
    CountClientError(client, &report->protocol_errors,
                     &report->protocol_errors, &report->protocol_errors,
                     &report->first_error);
    if (!retrying) report->died = true;
    return !retrying;
  };
  // Derived row-id bookkeeping is only sound while the connection (and
  // the server incarnation behind it) is stable. After any reconnect the
  // server may have restarted with a fresh catalog, so drop the id state
  // and re-baseline from the new handshake's hello. A durable server is
  // the exception: its restart recovers the same catalog, so the
  // bookkeeping deliberately survives -- that IS the check.
  const auto rebaseline_if_reconnected = [&]() {
    if (client.reconnects() == seen_reconnects) return false;
    seen_reconnects = client.reconnects();
    if (expect_durable) return true;
    own_rows.clear();
    physical_rows = client.server().physical_rows;
    return true;
  };
  while (clock.Seconds() < duration_seconds) {
    const double sleep_left =
        std::min(interval_seconds, duration_seconds - clock.Seconds());
    size_t rows_this_round = 0;
    size_t deletes = 0;
    if (!publish_pending) {
      std::vector<Vec> rows(static_cast<size_t>(rows_per_publish), Vec(dim));
      for (Vec& row : rows) {
        for (size_t j = 0; j < dim; ++j) row[j] = rng.Uniform();
      }
      auto staged = client.StageInsert(rows);
      rebaseline_if_reconnected();
      if (!staged.has_value()) {
        if (rpc_failed()) return;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(sleep_left));
        continue;
      }
      if (staged->status != serve::MutationStatus::kOk) {
        fail("stage insert: " + staged->message);
        continue;
      }
      report->staged_rows += rows.size();
      pending_inserts += rows.size();
      rows_this_round = rows.size();
      // Delete our oldest inserts once a backlog has built up.
      if (own_rows.size() >= static_cast<size_t>(2 * rows_per_publish)) {
        deletes = static_cast<size_t>(rows_per_publish);
        std::vector<uint64_t> victims(own_rows.begin(),
                                      own_rows.begin() + deletes);
        auto staged_del = client.StageDelete(victims);
        if (rebaseline_if_reconnected() && !expect_durable) deletes = 0;
        if (!staged_del.has_value()) {
          if (rpc_failed()) return;
          deletes = 0;
        } else if (staged_del->status != serve::MutationStatus::kOk) {
          fail("stage delete: " + staged_del->message);
          deletes = 0;
        }
      }
      pending_deletes += deletes;
    }
    const uint64_t reconnects_before_publish = client.reconnects();
    auto published = client.Publish();
    if (!published.has_value()) {
      rebaseline_if_reconnected();
      if (rpc_failed()) return;
      // Durable mode: the delta may or may not have landed; staging MORE
      // on top before this publish resolves would entangle two deltas in
      // one accounting round. Retry the same publish next round instead.
      if (expect_durable) publish_pending = true;
      std::this_thread::sleep_for(std::chrono::duration<double>(sleep_left));
      continue;
    }
    if (published->status != serve::MutationStatus::kOk) {
      fail("publish: " + published->message);
      rebaseline_if_reconnected();
      if (expect_durable) publish_pending = true;
      continue;
    }
    ++report->publishes;
    if (published->already_applied) ++report->publishes_deduped;
    publish_pending = false;
    note_stamp(published->snapshot_seq, published->snapshot_id);
    report->last_snapshot_id = published->snapshot_id;
    if (expect_durable) {
      // Durable accounting holds across reconnects AND restarts: the
      // recovered catalog is the same catalog. The publish (fresh or
      // deduped -- either way applied exactly once) must have grown the
      // physical row count by exactly the staged inserts; more means a
      // double-apply, less means an acked row vanished. Netted
      // staged-then-deleted inserts still materialize as tombstones, so
      // physical growth equals staged inserts regardless of deletes.
      const uint64_t grew = published->physical_rows - physical_rows;
      if (grew > pending_inserts) {
        ++report->duplicate_publishes;
      } else if (grew < pending_inserts) {
        ++report->lost_publishes;
      }
      report->staged_deletes += pending_deletes;
      own_rows.erase(own_rows.begin(),
                     own_rows.begin() +
                         static_cast<ptrdiff_t>(
                             std::min(pending_deletes, own_rows.size())));
      for (uint64_t id = physical_rows; id < published->physical_rows;
           ++id) {
        own_rows.push_back(id);
      }
      physical_rows = published->physical_rows;
      pending_inserts = 0;
      pending_deletes = 0;
      seen_reconnects = client.reconnects();
    } else {
      const bool stable_connection =
          client.reconnects() == reconnects_before_publish &&
          reconnects_before_publish == seen_reconnects;
      if (stable_connection && !published->already_applied) {
        // Single writer on a stable incarnation: the publish must have
        // grown the catalog by exactly the rows staged this round. More
        // means the delta landed twice (idempotency failure).
        const uint64_t grew = published->physical_rows - physical_rows;
        if (grew > rows_this_round) ++report->duplicate_publishes;
        report->staged_deletes += deletes;
        own_rows.erase(own_rows.begin(),
                       own_rows.begin() + static_cast<ptrdiff_t>(deletes));
        for (uint64_t id = physical_rows; id < published->physical_rows;
             ++id) {
          own_rows.push_back(id);
        }
        physical_rows = published->physical_rows;
      } else {
        // The publish crossed a reconnect (or was deduped): derived ids
        // are unreliable, start the id bookkeeping over from the ack.
        own_rows.clear();
        physical_rows = published->physical_rows;
        seen_reconnects = client.reconnects();
      }
      pending_inserts = 0;
      pending_deletes = 0;
    }
    report->last_snapshot_seq =
        std::max(report->last_snapshot_seq, published->snapshot_seq);

    // Read-your-writes: the next query on this connection must already
    // be served at (or after) the version the publish ack promised.
    ToprrOptions options;
    options.build_geometry = false;
    auto response = client.Query(ToprrQuery::FromBox(
        k, RandomPrefBox(dim - 1, sigma, rng), options));
    if (!response.has_value()) {
      rebaseline_if_reconnected();
      if (rpc_failed()) return;
    } else {
      note_stamp(response->snapshot_seq, response->snapshot_id);
      if (expect_durable) {
        // A durable restart recovers at (or after) every acked seq, so
        // the promise holds even when a crash separated publish and
        // query -- no reconnect exemption.
        if (response->snapshot_seq < published->snapshot_seq) {
          ++report->ryw_violations;
        }
        rebaseline_if_reconnected();
      } else if (client.reconnects() == seen_reconnects &&
                 response->snapshot_seq < published->snapshot_seq) {
        // Only meaningful when no reconnect separated publish and query:
        // a restarted server legitimately serves a younger seq.
        ++report->ryw_violations;
      } else {
        rebaseline_if_reconnected();
      }
    }
    if (sleep_left > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(sleep_left));
    }
  }
  if (expect_durable) {
    // Closing audit: the catalog the server ends on must sit at (or
    // past) every seq it ever acked to this writer -- across however
    // many kill -9 restarts the run contained.
    auto info = client.CatalogInfo();
    if (info.has_value() && info->status == serve::MutationStatus::kOk) {
      report->final_info_ok = true;
      report->final_snapshot_seq = info->snapshot_seq;
      report->final_snapshot_id = info->snapshot_id;
      report->final_info_message = info->message;
      note_stamp(info->snapshot_seq, info->snapshot_id);
      if (info->snapshot_seq < report->last_snapshot_seq) {
        ++report->lost_publishes;
        if (report->first_error.empty()) {
          report->first_error = "final catalog seq below max acked seq";
        }
      }
    } else if (report->first_error.empty()) {
      report->first_error = "final catalog info failed";
    }
  }
  report->retries = client.retries();
  report->reconnects = client.reconnects();
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  std::string host = "127.0.0.1";
  std::string out_path;
  int port = 7077;
  int connections = 4;
  double duration = 10.0;
  int batch = 8;
  int k = 10;
  int d = 4;
  double sigma = 0.01;
  double budget = 0.0;
  int64_t seed = 2019;
  bool zipf = false;
  double zipf_s = 1.2;
  int profiles = 32;
  double quantum = 1.0 / 256.0;
  bool churn = false;
  double churn_interval = 0.25;
  int churn_rows = 4;
  int retries = 1;
  double deadline_ms = 0.0;
  bool expect_durable = false;
  bool help = false;
  flags.AddString("host", &host, "server address");
  flags.AddString("out", &out_path, "write the JSON report here (default: stdout)");
  flags.AddInt("port", &port, "server port");
  flags.AddInt("connections", &connections, "concurrent connections");
  flags.AddDouble("duration", &duration, "run time in seconds");
  flags.AddInt("batch", &batch, "queries per request frame");
  flags.AddInt("k", &k, "rank requirement of the generated queries");
  flags.AddInt("d", &d, "dataset dimensionality the server was started with");
  flags.AddDouble("sigma", &sigma, "random wR side length");
  flags.AddDouble("budget", &budget,
                  "per-query budget request in seconds (0 = server default)");
  flags.AddInt("seed", &seed, "rng seed");
  flags.AddBool("zipf", &zipf,
                "skewed repeated-query mix over a fixed profile set "
                "(exercises the server's region cache)");
  flags.AddDouble("zipf_s", &zipf_s, "zipf skew exponent");
  flags.AddInt("profiles", &profiles, "distinct clientele boxes in the mix");
  flags.AddDouble("quantum", &quantum,
                  "cache grid the profiles align to (must match the "
                  "server's --cache_quantum)");
  flags.AddBool("churn", &churn,
                "run a writer connection publishing mutation deltas "
                "during the replay (protocol v3)");
  flags.AddDouble("churn_interval", &churn_interval,
                  "seconds between churn publishes");
  flags.AddInt("churn_rows", &churn_rows, "rows staged per churn publish");
  flags.AddInt("retries", &retries,
               "attempts per RPC (>1 turns on the client retry policy: "
               "transparent reconnect + backoff; workers then survive "
               "connection loss and server restarts)");
  flags.AddDouble("deadline_ms", &deadline_ms,
                  "per-batch deadline in milliseconds (0 = none); enforced "
                  "server-side AND as a local socket timeout");
  flags.AddBool("expect_durable", &expect_durable,
                "the server runs with --data_dir: verify acked publishes "
                "survive restarts (no loss, no double-apply, bit-identical "
                "snapshot ids); requires --churn, pair with --retries");
  flags.AddBool("help", &help, "print usage");
  if (!flags.Parse(&argc, argv)) return 1;
  if (help) {
    std::fputs(flags.HelpString().c_str(), stdout);
    return 0;
  }
  if (connections < 1 || batch < 1 || d < 2) {
    std::fprintf(stderr, "need --connections >= 1, --batch >= 1, --d >= 2\n");
    return 1;
  }
  if (zipf && (profiles < 1 || zipf_s <= 0.0 || quantum <= 0.0 ||
               quantum >= 1.0)) {
    std::fprintf(stderr,
                 "need --profiles >= 1, --zipf_s > 0, 0 < --quantum < 1\n");
    return 1;
  }
  if (churn && (churn_rows < 1 || churn_interval < 0.0)) {
    std::fprintf(stderr, "need --churn_rows >= 1, --churn_interval >= 0\n");
    return 1;
  }
  if (expect_durable && !churn) {
    std::fprintf(stderr, "--expect_durable requires --churn\n");
    return 1;
  }

  // The profile set is shared: the zipf skew is over ONE set of boxes,
  // so different connections hammer the same popular clienteles
  // (cross-connection reuse is the whole point). Per-connection rngs
  // only drive the sampling and jitter.
  ZipfMix mix;
  if (zipf) {
    mix = BuildZipfMix(static_cast<size_t>(d - 1), sigma, zipf_s, profiles,
                       quantum, static_cast<uint64_t>(seed));
  }

  Resilience resilience;
  resilience.attempts = std::max(retries, 1);
  resilience.deadline_seconds = deadline_ms > 0.0 ? deadline_ms / 1000.0 : 0.0;

  std::vector<WorkerReport> reports(static_cast<size_t>(connections));
  std::vector<std::thread> workers;
  workers.reserve(reports.size());
  Timer wall;
  for (size_t c = 0; c < reports.size(); ++c) {
    workers.emplace_back(RunConnection, host, port,
                         static_cast<size_t>(d - 1), k, sigma, batch, budget,
                         duration, static_cast<uint64_t>(seed) + 31 * c,
                         zipf ? &mix : nullptr, resilience, expect_durable,
                         &reports[c]);
  }
  ChurnReport churn_report;
  std::thread churn_writer;
  if (churn) {
    churn_writer = std::thread(RunChurnWriter, host, port,
                               static_cast<size_t>(d), k, sigma,
                               churn_interval, churn_rows, duration,
                               static_cast<uint64_t>(seed) + 977, resilience,
                               expect_durable, &churn_report);
  }
  for (std::thread& worker : workers) worker.join();
  if (churn_writer.joinable()) churn_writer.join();
  const double elapsed = wall.Seconds();

  WorkerReport total;
  uint64_t dead_workers = 0;
  for (const WorkerReport& report : reports) {
    total.attempted += report.attempted;
    total.completed += report.completed;
    total.rejected += report.rejected;
    total.budget_exceeded += report.budget_exceeded;
    total.deadline_exceeded += report.deadline_exceeded;
    total.rejected_draining += report.rejected_draining;
    total.other_statuses += report.other_statuses;
    total.protocol_errors += report.protocol_errors;
    total.transport_errors += report.transport_errors;
    total.timeout_errors += report.timeout_errors;
    total.retries += report.retries;
    total.reconnects += report.reconnects;
    if (report.died) ++dead_workers;
    total.rpc_millis.insert(total.rpc_millis.end(),
                            report.rpc_millis.begin(),
                            report.rpc_millis.end());
    total.cache_hits += report.cache_hits;
    total.cache_partial_hits += report.cache_partial_hits;
    total.cache_misses += report.cache_misses;
    total.cache_bypass += report.cache_bypass;
    total.cache_tasks_saved += report.cache_tasks_saved;
    total.seq_regressions += report.seq_regressions;
    total.last_snapshot_seq =
        std::max(total.last_snapshot_seq, report.last_snapshot_seq);
    total.hit_solve_millis.insert(total.hit_solve_millis.end(),
                                  report.hit_solve_millis.begin(),
                                  report.hit_solve_millis.end());
    total.miss_solve_millis.insert(total.miss_solve_millis.end(),
                                   report.miss_solve_millis.begin(),
                                   report.miss_solve_millis.end());
    if (total.first_error.empty()) total.first_error = report.first_error;
  }
  total.protocol_errors += churn_report.protocol_errors;
  total.retries += churn_report.retries;
  total.reconnects += churn_report.reconnects;
  if (churn_report.died) ++dead_workers;
  if (total.first_error.empty()) total.first_error = churn_report.first_error;
  std::sort(total.rpc_millis.begin(), total.rpc_millis.end());
  std::sort(total.hit_solve_millis.begin(), total.hit_solve_millis.end());
  std::sort(total.miss_solve_millis.begin(), total.miss_solve_millis.end());
  const double qps =
      elapsed > 0.0 ? static_cast<double>(total.completed) / elapsed : 0.0;

  std::string json;
  char line[256];
  std::snprintf(line, sizeof(line), "{\n  \"duration_seconds\": %.3f,\n",
                elapsed);
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"connections\": %d,\n  \"batch\": %d,\n", connections,
                batch);
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"completed_queries\": %llu,\n  \"rejected_queries\": "
                "%llu,\n",
                static_cast<unsigned long long>(total.completed),
                static_cast<unsigned long long>(total.rejected));
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"budget_exceeded_queries\": %llu,\n  "
                "\"other_status_queries\": %llu,\n",
                static_cast<unsigned long long>(total.budget_exceeded),
                static_cast<unsigned long long>(total.other_statuses));
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"attempted_queries\": %llu,\n  \"deadline_exceeded\": "
                "%llu,\n  \"rejected_draining\": %llu,\n",
                static_cast<unsigned long long>(total.attempted),
                static_cast<unsigned long long>(total.deadline_exceeded),
                static_cast<unsigned long long>(total.rejected_draining));
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"retries\": %llu,\n  \"reconnects\": %llu,\n  "
                "\"dead_workers\": %llu,\n",
                static_cast<unsigned long long>(total.retries),
                static_cast<unsigned long long>(total.reconnects),
                static_cast<unsigned long long>(dead_workers));
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"protocol_errors\": %llu,\n  \"transport_errors\": "
                "%llu,\n  \"timeout_errors\": %llu,\n  \"rpcs\": %zu,\n",
                static_cast<unsigned long long>(total.protocol_errors),
                static_cast<unsigned long long>(total.transport_errors),
                static_cast<unsigned long long>(total.timeout_errors),
                total.rpc_millis.size());
  json += line;
  std::snprintf(line, sizeof(line), "  \"queries_per_second\": %.2f,\n",
                qps);
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"latency_ms\": {\"p50\": %.3f, \"p90\": %.3f, \"p99\": "
                "%.3f, \"max\": %.3f},\n",
                Percentile(total.rpc_millis, 0.50),
                Percentile(total.rpc_millis, 0.90),
                Percentile(total.rpc_millis, 0.99),
                total.rpc_millis.empty() ? 0.0 : total.rpc_millis.back());
  json += line;
  const uint64_t classified =
      total.cache_hits + total.cache_partial_hits + total.cache_misses;
  const double hit_rate =
      classified > 0
          ? static_cast<double>(total.cache_hits + total.cache_partial_hits) /
                static_cast<double>(classified)
          : 0.0;
  std::snprintf(line, sizeof(line),
                "  \"zipf\": %s,\n  \"profiles\": %d,\n",
                zipf ? "true" : "false", zipf ? profiles : 0);
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"cache\": {\"hits\": %llu, \"partial_hits\": %llu, "
                "\"misses\": %llu, \"bypass\": %llu,\n",
                static_cast<unsigned long long>(total.cache_hits),
                static_cast<unsigned long long>(total.cache_partial_hits),
                static_cast<unsigned long long>(total.cache_misses),
                static_cast<unsigned long long>(total.cache_bypass));
  json += line;
  std::snprintf(line, sizeof(line),
                "    \"hit_rate\": %.4f, \"tasks_saved\": %llu,\n", hit_rate,
                static_cast<unsigned long long>(total.cache_tasks_saved));
  json += line;
  std::snprintf(line, sizeof(line),
                "    \"hit_solve_ms\": {\"p50\": %.3f, \"p99\": %.3f},\n",
                Percentile(total.hit_solve_millis, 0.50),
                Percentile(total.hit_solve_millis, 0.99));
  json += line;
  std::snprintf(line, sizeof(line),
                "    \"miss_solve_ms\": {\"p50\": %.3f, \"p99\": %.3f}},\n",
                Percentile(total.miss_solve_millis, 0.50),
                Percentile(total.miss_solve_millis, 0.99));
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"churn\": {\"enabled\": %s, \"publishes\": %llu, "
                "\"staged_rows\": %llu, \"staged_deletes\": %llu,\n",
                churn ? "true" : "false",
                static_cast<unsigned long long>(churn_report.publishes),
                static_cast<unsigned long long>(churn_report.staged_rows),
                static_cast<unsigned long long>(churn_report.staged_deletes));
  json += line;
  std::snprintf(
      line, sizeof(line),
      "    \"publish_failures\": %llu, \"ryw_violations\": %llu,\n",
      static_cast<unsigned long long>(churn_report.publish_failures),
      static_cast<unsigned long long>(churn_report.ryw_violations));
  json += line;
  std::snprintf(
      line, sizeof(line),
      "    \"publishes_deduped\": %llu, \"duplicate_publishes\": %llu,\n",
      static_cast<unsigned long long>(churn_report.publishes_deduped),
      static_cast<unsigned long long>(churn_report.duplicate_publishes));
  json += line;
  std::snprintf(
      line, sizeof(line),
      "    \"seq_regressions\": %llu, \"last_snapshot_seq\": %llu},\n",
      static_cast<unsigned long long>(total.seq_regressions),
      static_cast<unsigned long long>(std::max(
          churn_report.last_snapshot_seq, total.last_snapshot_seq)));
  json += line;
  std::snprintf(
      line, sizeof(line),
      "  \"durable\": {\"enabled\": %s, \"lost_publishes\": %llu, "
      "\"snapshot_id_mismatches\": %llu,\n",
      expect_durable ? "true" : "false",
      static_cast<unsigned long long>(churn_report.lost_publishes),
      static_cast<unsigned long long>(churn_report.snapshot_id_mismatches));
  json += line;
  std::snprintf(
      line, sizeof(line),
      "    \"last_snapshot_id\": \"%016llx\", \"max_acked_seq\": %llu,\n",
      static_cast<unsigned long long>(churn_report.last_snapshot_id),
      static_cast<unsigned long long>(churn_report.last_snapshot_seq));
  json += line;
  std::snprintf(
      line, sizeof(line),
      "    \"final_snapshot_id\": \"%016llx\", \"final_snapshot_seq\": "
      "%llu, \"final_info_ok\": %s,\n",
      static_cast<unsigned long long>(churn_report.final_snapshot_id),
      static_cast<unsigned long long>(churn_report.final_snapshot_seq),
      churn_report.final_info_ok ? "true" : "false");
  json += line;
  std::string safe_info = churn_report.final_info_message.substr(0, 160);
  for (char& c : safe_info) {
    if (c == '"' || c == '\\') c = '\'';
  }
  std::snprintf(line, sizeof(line), "    \"server_info\": \"%s\"},\n",
                safe_info.c_str());
  json += line;
  std::string safe_error = total.first_error.substr(0, 120);
  for (char& c : safe_error) {
    if (c == '"' || c == '\\') c = '\'';
  }
  std::snprintf(line, sizeof(line), "  \"first_error\": \"%s\"\n}\n",
                safe_error.c_str());
  json += line;

  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("toprr_loadgen: %llu queries ok (%.1f q/s), %llu rejected, "
                "%llu over budget, %llu protocol errors",
                static_cast<unsigned long long>(total.completed), qps,
                static_cast<unsigned long long>(total.rejected),
                static_cast<unsigned long long>(total.budget_exceeded),
                static_cast<unsigned long long>(total.protocol_errors));
    if (churn) {
      std::printf(", %llu publishes (%llu failed, %llu ryw violations)",
                  static_cast<unsigned long long>(churn_report.publishes),
                  static_cast<unsigned long long>(
                      churn_report.publish_failures),
                  static_cast<unsigned long long>(
                      churn_report.ryw_violations));
    }
    std::printf(" -> %s\n", out_path.c_str());
  }
  const bool churn_clean =
      !churn || (churn_report.publish_failures == 0 &&
                 churn_report.ryw_violations == 0 &&
                 churn_report.duplicate_publishes == 0 &&
                 total.seq_regressions == 0);
  // Durable verification failures are always fatal: losing an acked
  // publish (or serving a different snapshot id for a seen seq) is the
  // exact crime the WAL exists to prevent.
  const bool durable_clean =
      !expect_durable || (churn_report.lost_publishes == 0 &&
                          churn_report.snapshot_id_mismatches == 0 &&
                          churn_report.final_info_ok);
  if (resilience.attempts > 1) {
    // Chaos semantics: transient errors are the point of the run -- the
    // retry layer is expected to absorb them. Only correctness failures
    // (ordering, duplicates) and workers that gave up are fatal; the
    // completion floor is the gate script's call, not an exit code.
    return churn_clean && durable_clean && dead_workers == 0 ? 0 : 1;
  }
  return total.protocol_errors == 0 && total.transport_errors == 0 &&
                 total.timeout_errors == 0 && dead_workers == 0 &&
                 churn_clean && durable_clean
             ? 0
             : 1;
}
