// Option enhancement & budget-constrained impact maximization (paper
// Sec. 1 and Sec. 3.1).
//
// A manufacturer revamps an existing mid-tier product so that it ranks
// among the top-k for a target clientele, at minimum modification cost
// (Euclidean distance old -> new). Given a redesign budget B, we also
// find the smallest k whose optimal redesign fits the budget.
#include <cstdio>

#include "common/flags.h"
#include "core/placement.h"
#include "core/toprr.h"
#include "data/generator.h"
#include "pref/pref_space.h"
#include "topk/topk.h"

int main(int argc, char** argv) {
  using namespace toprr;
  FlagParser flags;
  int64_t n = 20000;
  int64_t seed = 7;
  int k = 10;
  double budget = 0.85;
  flags.AddInt("n", &n, "dataset size");
  flags.AddInt("seed", &seed, "dataset seed");
  flags.AddInt("k", &k, "rank requirement");
  flags.AddDouble("budget", &budget, "redesign budget (distance)");
  if (!flags.Parse(&argc, argv)) return 1;

  // A 4-attribute product catalog.
  const Dataset catalog =
      GenerateSynthetic(static_cast<size_t>(n), 4,
                        Distribution::kIndependent,
                        static_cast<uint64_t>(seed));

  // Target clientele: balanced weights around (0.25, 0.25, 0.25, 0.25).
  PrefBox clientele;
  clientele.lo = Vec{0.22, 0.22, 0.22};
  clientele.hi = Vec{0.28, 0.28, 0.28};

  // The product we want to revamp: a mid-market model.
  const Vec current{0.55, 0.5, 0.6, 0.5};
  std::printf("catalog: %zu products, 4 attributes\n", catalog.size());
  std::printf("current product: %s\n", current.ToString(3).c_str());

  const ToprrResult region = SolveToprr(catalog, k, clientele);
  std::printf("TopRR(k=%d) solved in %.3fs; |D'|=%zu, |Vall|=%zu\n", k,
              region.stats.total_seconds,
              region.stats.candidates_after_filter, region.vall.size());

  if (region.Contains(current)) {
    std::printf("the current product is already consistently top-%d!\n", k);
  } else {
    const PlacementResult revamp = MinimumModification(region, current);
    if (revamp.ok) {
      std::printf("minimum-cost revamp: %s (modification cost %.4f)\n",
                  revamp.option.ToString(3).c_str(), revamp.cost);
    }
  }

  // Budget-constrained impact maximization: smallest achievable k.
  std::printf("\nbudget B = %.3f: searching smallest k in [1, %d]...\n",
              budget, k);
  const auto best =
      SmallestKWithinBudget(catalog, clientele, current, budget, k);
  if (best.has_value()) {
    std::printf("smallest k within budget: %d (cost %.4f, placement %s)\n",
                best->k, best->placement.cost,
                best->placement.option.ToString(3).c_str());
  } else {
    std::printf("even k = %d exceeds the budget; no feasible redesign\n", k);
  }
  return 0;
}
