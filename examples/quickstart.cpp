// Quickstart: solve TopRR on the paper's running example (Figure 1).
//
// A laptop market with six models rated on speed and battery life. We ask:
// where must a new laptop be placed so it ranks in the top-3 for every
// customer whose speed-weight lies in [0.2, 0.8]?
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/placement.h"
#include "core/toprr.h"
#include "data/dataset.h"
#include "pref/pref_space.h"

int main() {
  using namespace toprr;

  // The dataset of paper Figure 1(a): (speed, battery) in [0,1].
  const Dataset laptops = Dataset::FromRows({
      Vec{0.9, 0.4},  // p1
      Vec{0.7, 0.9},  // p2
      Vec{0.6, 0.2},  // p3
      Vec{0.3, 0.8},  // p4
      Vec{0.2, 0.3},  // p5
      Vec{0.1, 0.1},  // p6
  });

  // Target clientele: weight on speed anywhere in [0.2, 0.8].
  PrefBox clientele;
  clientele.lo = Vec{0.2};
  clientele.hi = Vec{0.8};
  const int k = 3;

  const ToprrResult region = SolveToprr(laptops, k, clientele);

  std::printf("TopRR for k=%d, wR=[%.1f, %.1f]\n", k, clientele.lo[0],
              clientele.hi[0]);
  std::printf("  r-skyband candidates: %zu of %zu options\n",
              region.stats.candidates_after_filter, laptops.size());
  std::printf("  |Vall| = %zu preference vertices\n", region.vall.size());
  std::printf("  oR = intersection of %zu impact halfspaces + unit box\n",
              region.impact_halfspaces.size());
  for (const Halfspace& h : region.impact_halfspaces) {
    std::printf("    %.3f*speed + %.3f*battery >= %.4f\n", -h.normal[0],
                -h.normal[1], -h.offset);
  }
  std::printf("  region vertices:\n");
  for (const Vec& v : region.vertices) {
    std::printf("    (%.4f, %.4f)\n", v[0], v[1]);
  }

  // Check a few placements.
  for (const Vec& o : {Vec{0.7, 0.9}, Vec{0.3, 0.8}, Vec{0.95, 0.95}}) {
    std::printf("  option (%.2f, %.2f): %s\n", o[0], o[1],
                region.Contains(o) ? "top-ranking" : "NOT top-ranking");
  }

  // Cost-optimal creation (manufacturing cost = speed^2 + battery^2).
  const PlacementResult cheapest = MinimumCostCreation(region);
  if (cheapest.ok) {
    std::printf("  cheapest top-ranking design: (%.4f, %.4f), cost %.4f\n",
                cheapest.option[0], cheapest.option[1], cheapest.cost);
  }
  return 0;
}
