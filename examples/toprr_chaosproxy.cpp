// toprr_chaosproxy: a fault-injecting TCP proxy for chaos testing the
// serving stack.
//
// Sits between a client (e.g. examples/toprr_loadgen.cpp) and a
// toprr_serve instance and misbehaves on purpose: it stalls forwarding
// long enough to trip the server's idle timeout, truncates frames
// mid-flight, fragments writes into tiny chunks, and resets connections
// abruptly. Every fault is drawn from a seeded RNG, so a chaos run is
// reproducible from its command line. The serve-smoke chaos CI phase
// drives loadgen through this proxy and asserts the system degrades
// cleanly: no crashes, no desyncs, no duplicate publishes, and a floor
// on ultimately-completed queries.
//
//   toprr_chaosproxy --port 7081 --upstream_port 7080 \
//     --reset_prob 0.002 --truncate_prob 0.002 \
//     --delay_prob 0.001 --delay_ms 2500 --short_prob 0.05 --seed 7
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/flags.h"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;
void HandleSignal(int) { g_shutdown = 1; }

struct FaultKnobs {
  double reset_prob = 0.0;
  double truncate_prob = 0.0;
  double delay_prob = 0.0;
  int delay_ms = 0;
  double short_prob = 0.0;
};

struct Telemetry {
  std::atomic<uint64_t> connections{0};
  std::atomic<uint64_t> upstream_failures{0};
  std::atomic<uint64_t> resets{0};
  std::atomic<uint64_t> truncations{0};
  std::atomic<uint64_t> delays{0};
  std::atomic<uint64_t> bytes{0};
};

Telemetry g_telemetry;

// Arms linger-0 so the eventual close() aborts the connection (RST
// instead of an orderly FIN) when data is in flight.
void ArmAbort(int fd) {
  struct linger lg;
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
}

// Kills both directions of a relayed connection from inside a relay
// thread. Deliberately shutdown(2), not close(2): the sibling relay
// thread may be blocked in recv on these fds, and closing an fd under a
// blocked reader races with fd reuse. The owner closes exactly once
// after both relays return; ArmAbort makes that close abortive.
void KillConnection(int a, int b) {
  ArmAbort(a);
  ArmAbort(b);
  ::shutdown(a, SHUT_RDWR);
  ::shutdown(b, SHUT_RDWR);
}

bool WriteAll(int fd, const char* data, size_t length) {
  size_t sent = 0;
  while (sent < length) {
    const ssize_t n = ::send(fd, data + sent, length - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Relays src -> dst until EOF/error or an injected fault kills the
// connection. Returns only when this direction is finished; it shuts
// the peer sockets down so the opposite relay unblocks too.
void Relay(int src, int dst, const FaultKnobs& knobs, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  char buffer[16384];
  for (;;) {
    ssize_t n = ::recv(src, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    g_telemetry.bytes.fetch_add(static_cast<uint64_t>(n),
                                std::memory_order_relaxed);
    if (knobs.reset_prob > 0.0 && coin(rng) < knobs.reset_prob) {
      g_telemetry.resets.fetch_add(1, std::memory_order_relaxed);
      KillConnection(src, dst);
      return;
    }
    if (knobs.truncate_prob > 0.0 && coin(rng) < knobs.truncate_prob) {
      // Forward a strict prefix of the chunk, then kill the stream:
      // whatever frame it belonged to arrives truncated.
      g_telemetry.truncations.fetch_add(1, std::memory_order_relaxed);
      WriteAll(dst, buffer, static_cast<size_t>(n) / 2);
      KillConnection(src, dst);
      return;
    }
    if (knobs.delay_prob > 0.0 && knobs.delay_ms > 0 &&
        coin(rng) < knobs.delay_prob) {
      g_telemetry.delays.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(knobs.delay_ms));
    }
    bool ok;
    if (knobs.short_prob > 0.0 && coin(rng) < knobs.short_prob) {
      // Dribble the chunk out in 1..7-byte pieces: every frame-resume
      // path on the receiving side gets exercised.
      ok = true;
      size_t off = 0;
      while (ok && off < static_cast<size_t>(n)) {
        const size_t piece =
            std::min<size_t>(1 + rng() % 7, static_cast<size_t>(n) - off);
        ok = WriteAll(dst, buffer + off, piece);
        off += piece;
      }
    } else {
      ok = WriteAll(dst, buffer, static_cast<size_t>(n));
    }
    if (!ok) break;
  }
  ::shutdown(src, SHUT_RD);
  ::shutdown(dst, SHUT_WR);
}

int DialUpstream(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace toprr;
  FlagParser flags;
  std::string host = "127.0.0.1";
  std::string upstream_host = "127.0.0.1";
  int port = 7081;
  int upstream_port = 7080;
  int64_t seed = 1;
  FaultKnobs knobs;
  bool help = false;
  flags.AddString("host", &host, "listen address");
  flags.AddString("upstream_host", &upstream_host, "forward to this host");
  flags.AddInt("port", &port, "listen port");
  flags.AddInt("upstream_port", &upstream_port, "forward to this port");
  flags.AddInt("seed", &seed, "fault-schedule seed (reproducible runs)");
  flags.AddDouble("reset_prob", &knobs.reset_prob,
                  "per-chunk probability of an abortive RST on both sides");
  flags.AddDouble("truncate_prob", &knobs.truncate_prob,
                  "per-chunk probability of forwarding half a chunk then "
                  "killing the connection");
  flags.AddDouble("delay_prob", &knobs.delay_prob,
                  "per-chunk probability of stalling forwarding");
  flags.AddInt("delay_ms", &knobs.delay_ms,
               "stall duration (set above the server idle timeout to "
               "exercise evictions)");
  flags.AddDouble("short_prob", &knobs.short_prob,
                  "per-chunk probability of dribbling it out in tiny writes");
  flags.AddBool("help", &help, "print usage");
  if (!flags.Parse(&argc, argv)) return 1;
  if (help) {
    std::fputs(flags.HelpString().c_str(), stdout);
    return 0;
  }

  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("toprr_chaosproxy: socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd, 64) < 0) {
    std::perror("toprr_chaosproxy: bind/listen");
    return 1;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  // SA_RESTART (glibc signal()) would resume a blocked accept after the
  // handler ran; a receive timeout on the listen socket turns the accept
  // loop into a poll of g_shutdown instead.
  struct timeval accept_tick;
  accept_tick.tv_sec = 0;
  accept_tick.tv_usec = 200 * 1000;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_RCVTIMEO, &accept_tick,
               sizeof(accept_tick));
  // The chaos CI phase waits for this exact line before starting load.
  std::printf("toprr_chaosproxy: listening on %s:%d -> %s:%d\n", host.c_str(),
              port, upstream_host.c_str(), upstream_port);
  std::fflush(stdout);

  std::vector<std::thread> workers;
  uint64_t next_connection = 0;
  while (g_shutdown == 0) {
    const int client_fd = ::accept(listen_fd, nullptr, nullptr);
    if (client_fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;
    }
    ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    g_telemetry.connections.fetch_add(1, std::memory_order_relaxed);
    const uint64_t conn_seed =
        static_cast<uint64_t>(seed) * 0x9e3779b97f4a7c15ull +
        ++next_connection;
    workers.emplace_back([client_fd, conn_seed, knobs, upstream_host,
                          upstream_port] {
      const int server_fd = DialUpstream(upstream_host, upstream_port);
      if (server_fd < 0) {
        // Upstream down (e.g. mid-restart in the chaos schedule): the
        // client sees an immediate abortive close and retries with
        // backoff. Safe to close directly -- no relay thread exists yet.
        g_telemetry.upstream_failures.fetch_add(1, std::memory_order_relaxed);
        ArmAbort(client_fd);
        ::close(client_fd);
        return;
      }
      std::thread reverse(
          [&] { Relay(server_fd, client_fd, knobs, conn_seed ^ 1); });
      Relay(client_fd, server_fd, knobs, conn_seed);
      reverse.join();
      ::close(client_fd);
      ::close(server_fd);
    });
  }
  ::close(listen_fd);
  for (auto& worker : workers) {
    if (worker.joinable()) worker.join();
  }
  std::printf(
      "toprr_chaosproxy: shut down; connections=%llu upstream_failures=%llu "
      "resets=%llu truncations=%llu delays=%llu bytes=%llu\n",
      static_cast<unsigned long long>(g_telemetry.connections.load()),
      static_cast<unsigned long long>(g_telemetry.upstream_failures.load()),
      static_cast<unsigned long long>(g_telemetry.resets.load()),
      static_cast<unsigned long long>(g_telemetry.truncations.load()),
      static_cast<unsigned long long>(g_telemetry.delays.load()),
      static_cast<unsigned long long>(g_telemetry.bytes.load()));
  return 0;
}
