// toprr_cli: a command-line driver for end users.
//
// Load a product catalog from CSV (or generate a synthetic one), solve
// TopRR for a clientele box, and print the region, optimal placements, and
// optionally an enhanced version of an existing product.
//
//   toprr_cli --csv products.csv --k 5 --wr 0.2,0.3x0.25,0.35
//   toprr_cli --n 100000 --d 4 --dist ANTI --k 10 --sigma 0.05
//   toprr_cli --csv products.csv --k 3 --wr 0.7x0.8 --enhance 17
//   toprr_cli --n 200000 --k 10 --threads 4 --batch 32   # serving mode
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/timer.h"
#include "core/engine.h"
#include "core/placement.h"
#include "core/toprr.h"
#include "data/csv.h"
#include "data/generator.h"
#include "geom/volume.h"
#include "pref/pref_space.h"

namespace {

using namespace toprr;

// Parses "l1,l2,..xh1,h2,.." into a PrefBox ("0.2,0.3x0.25,0.35").
std::optional<PrefBox> ParseBox(const std::string& text) {
  const auto parts = Split(text, 'x');
  if (parts.size() != 2) return std::nullopt;
  PrefBox box;
  for (int side = 0; side < 2; ++side) {
    const auto cells = Split(parts[side], ',');
    Vec v(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      char* end = nullptr;
      v[i] = std::strtod(cells[i].c_str(), &end);
      if (end == cells[i].c_str() || *end != '\0') return std::nullopt;
    }
    (side == 0 ? box.lo : box.hi) = std::move(v);
  }
  if (box.lo.dim() != box.hi.dim()) return std::nullopt;
  for (size_t j = 0; j < box.lo.dim(); ++j) {
    if (box.lo[j] > box.hi[j]) return std::nullopt;
  }
  return box;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  std::string csv_path;
  std::string wr_text;
  std::string dist_text = "IND";
  std::string log_level = "warning";
  int64_t n = 10000;
  int d = 4;
  int k = 10;
  double sigma = 0.01;
  int64_t seed = 2019;
  int enhance = -1;
  int threads = 1;
  int batch = 0;
  bool normalize = true;
  bool stats = false;
  bool cache = false;
  bool help = false;
  flags.AddString("csv", &csv_path, "load options from this CSV file");
  flags.AddString("wr", &wr_text,
                  "clientele box 'lo1,..xhi1,..' in reduced weights "
                  "(random box of side --sigma when omitted)");
  flags.AddString("dist", &dist_text, "synthetic distribution IND/COR/ANTI");
  flags.AddString("log", &log_level, "log level (debug/info/warning/error)");
  flags.AddInt("n", &n, "synthetic dataset size");
  flags.AddInt("d", &d, "synthetic dimensionality");
  flags.AddInt("k", &k, "rank requirement");
  flags.AddDouble("sigma", &sigma, "random wR side length");
  flags.AddInt("seed", &seed, "random seed");
  flags.AddInt("enhance", &enhance,
               "also compute the min-cost enhancement of this option id");
  flags.AddInt("threads", &threads,
               "scheduler worker threads (1 = sequential, 0 = all cores)");
  flags.AddInt("batch", &batch,
               "serving mode: solve this many random clientele boxes "
               "through the batch engine and report throughput");
  flags.AddBool("normalize", &normalize, "min-max normalize CSV columns");
  flags.AddBool("stats", &stats,
                "print scheduler telemetry (per-worker tasks/steals)");
  flags.AddBool("cache", &cache,
                "batch mode: serve queries through the cross-query region "
                "cache (repeated --wr boxes hit after the first solve)");
  flags.AddBool("help", &help, "print usage");
  if (!flags.Parse(&argc, argv)) return 1;
  if (help) {
    std::fputs(flags.HelpString().c_str(), stdout);
    return 0;
  }
  LogLevel level;
  if (ParseLogLevel(log_level, &level)) GlobalLogLevel() = level;

  // ---- Load or generate the catalog. ----
  Dataset data;
  if (!csv_path.empty()) {
    auto loaded = ReadCsv(csv_path);
    if (!loaded.has_value()) return 1;
    data = std::move(*loaded);
    if (normalize) data.NormalizeUnit();
    std::printf("loaded %zu options x %zu attributes from %s\n",
                data.size(), data.dim(), csv_path.c_str());
  } else {
    Distribution dist;
    if (!ParseDistribution(dist_text, &dist)) {
      std::fprintf(stderr, "unknown distribution '%s'\n", dist_text.c_str());
      return 1;
    }
    data = GenerateSynthetic(static_cast<size_t>(n), static_cast<size_t>(d),
                             dist, static_cast<uint64_t>(seed));
    std::printf("generated %zu x %d %s options (seed %lld)\n", data.size(),
                d, dist_text.c_str(), static_cast<long long>(seed));
  }
  if (data.dim() < 2) {
    std::fprintf(stderr, "need at least 2 attributes\n");
    return 1;
  }

  // ---- Clientele region. ----
  PrefBox box;
  const bool have_wr = !wr_text.empty();
  if (have_wr) {
    auto parsed = ParseBox(wr_text);
    if (!parsed.has_value() || parsed->dim() != data.dim() - 1) {
      std::fprintf(stderr,
                   "bad --wr (expected 'lo1,..xhi1,..' with %zu reduced "
                   "weights)\n",
                   data.dim() - 1);
      return 1;
    }
    box = std::move(*parsed);
  } else if (batch <= 0) {
    // Batch mode draws its own per-query boxes; only the single-query
    // path needs one here.
    Rng rng(static_cast<uint64_t>(seed) + 1);
    box = RandomPrefBox(data.dim() - 1, sigma, rng);
    std::printf("random clientele box: lo=%s hi=%s\n",
                box.lo.ToString(4).c_str(), box.hi.ToString(4).c_str());
  }

  // ---- Serving mode: a batch of random clientele boxes through the
  // engine (shared per-k skyband cache, pool-dispatched queries). ----
  if (batch > 0) {
    ToprrEngine engine(DatasetSnapshot::FromDataset(data));
    if (cache) engine.EnableRegionCache({});
    Rng rng(static_cast<uint64_t>(seed) + 2);
    std::vector<ToprrQuery> queries;
    queries.reserve(static_cast<size_t>(batch));
    for (int q = 0; q < batch; ++q) {
      ToprrOptions options;
      options.build_geometry = false;
      options.use_region_cache = cache;
      // --wr pins every query to the given clientele (repeated-query
      // serving); otherwise each query draws a fresh random box.
      queries.push_back(ToprrQuery::FromBox(
          k, have_wr ? box : RandomPrefBox(data.dim() - 1, sigma, rng),
          options));
    }
    Timer timer;
    // --threads drives the batch dispatch (1 = sequential, 0 = all
    // cores); per-query solves stay sequential to avoid oversubscription.
    const std::vector<ToprrResult> results =
        engine.SolveBatch(queries, threads);
    const double seconds = timer.Seconds();
    size_t vall_total = 0;
    int failed = 0;
    for (const ToprrResult& r : results) {
      vall_total += r.stats.vall_unique;
      failed += r.timed_out ? 1 : 0;
    }
    std::printf("batch of %d TopRR(k=%d) queries in %.3fs (%.1f q/s, "
                "avg |Vall| %.1f, %d failed)\n",
                batch, k, seconds, batch / seconds,
                static_cast<double>(vall_total) / batch, failed);
    if (stats) {
      // The snapshot stamp every response would carry if this batch had
      // come over the wire -- lets a human line this run up with server
      // logs and loadgen JSON (which print the same id/seq pair).
      std::printf("served snapshot: id=%016llx seq=%llu\n",
                  static_cast<unsigned long long>(engine.snapshot_id()),
                  static_cast<unsigned long long>(engine.snapshot_seq()));
      uint64_t executed = 0;
      uint64_t stolen = 0;
      uint64_t steal_failures = 0;
      uint64_t cands_scored = 0;
      uint64_t gather_bytes = 0;
      uint64_t reuse_hits = 0;
      uint64_t split_verts = 0;
      uint64_t geom_allocs = 0;
      uint64_t cache_hits = 0;
      uint64_t cache_partial = 0;
      uint64_t cache_misses = 0;
      uint64_t cache_tasks_saved = 0;
      for (const ToprrResult& r : results) {
        executed += r.stats.scheduler.TotalExecuted();
        stolen += r.stats.scheduler.TotalStolen();
        steal_failures += r.stats.scheduler.TotalStealFailures();
        cands_scored += r.stats.scheduler.TotalCandidatesScored();
        gather_bytes += r.stats.scheduler.TotalGatherBytes();
        reuse_hits += r.stats.scheduler.TotalReuseHits();
        split_verts += r.stats.scheduler.TotalSplitVerticesClassified();
        geom_allocs += r.stats.scheduler.TotalGeomArenaAllocations();
        cache_hits += r.stats.scheduler.cache_hits;
        cache_partial += r.stats.scheduler.cache_partial_hits;
        cache_misses += r.stats.scheduler.cache_misses;
        cache_tasks_saved += r.stats.scheduler.cache_tasks_saved;
      }
      std::printf("scheduler totals over the batch: executed=%llu "
                  "stolen=%llu steal_failures=%llu\n",
                  static_cast<unsigned long long>(executed),
                  static_cast<unsigned long long>(stolen),
                  static_cast<unsigned long long>(steal_failures));
      std::printf("scoring-kernel totals over the batch: "
                  "cands_scored=%llu gather_bytes=%llu reuse_hits=%llu\n",
                  static_cast<unsigned long long>(cands_scored),
                  static_cast<unsigned long long>(gather_bytes),
                  static_cast<unsigned long long>(reuse_hits));
      std::printf("flat-geometry totals over the batch: "
                  "split_verts=%llu geom_arena_allocs=%llu\n",
                  static_cast<unsigned long long>(split_verts),
                  static_cast<unsigned long long>(geom_allocs));
      if (cache) {
        std::printf("region-cache totals over the batch: hits=%llu "
                    "partial=%llu misses=%llu tasks_saved=%llu\n",
                    static_cast<unsigned long long>(cache_hits),
                    static_cast<unsigned long long>(cache_partial),
                    static_cast<unsigned long long>(cache_misses),
                    static_cast<unsigned long long>(cache_tasks_saved));
      }
    }
    return failed == 0 ? 0 : 1;
  }

  // ---- Solve. ----
  // Through the engine (not bare SolveToprr) so the result carries the
  // snapshot stamp that --stats prints: the id is the same content hash
  // a server over this catalog would advertise, greppable in its logs.
  ToprrOptions solve_options;
  solve_options.num_threads = threads;
  ToprrEngine engine(DatasetSnapshot::FromDataset(data));
  const ToprrResult region = engine.Solve(k, box, solve_options);
  if (region.timed_out) {
    std::fprintf(stderr, "solver exceeded its budget\n");
    return 1;
  }
  std::printf("\nTopRR(k=%d): %s\n", k, region.stats.DebugString().c_str());
  if (stats) {
    std::printf("served snapshot: id=%016llx seq=%llu\n",
                static_cast<unsigned long long>(region.snapshot_id),
                static_cast<unsigned long long>(region.snapshot_seq));
    std::printf("scheduler: %s\n",
                region.stats.scheduler.DebugString().c_str());
  }
  std::printf("oR: %zu impact halfspaces (+ unit box)%s%s\n",
              region.impact_halfspaces.size(),
              region.degenerate ? " [degenerate]" : "",
              region.geometry_skipped ? " [geometry skipped]" : "");
  if (!region.vertices.empty()) {
    std::printf("oR vertices: %zu; volume %.6g\n", region.vertices.size(),
                PolytopeVolume(region.AllHalfspaces(), data.dim()));
  }

  const PlacementResult creation = MinimumCostCreation(region);
  if (creation.ok) {
    std::printf("cheapest new option (cost = sum of squares): %s "
                "(cost %.4f)\n",
                creation.option.ToString(4).c_str(), creation.cost);
  }

  if (enhance >= 0 && static_cast<size_t>(enhance) < data.size()) {
    const Vec current = data.Option(static_cast<size_t>(enhance));
    if (region.Contains(current)) {
      std::printf("option %d is already top-ranking for this clientele\n",
                  enhance);
    } else {
      const PlacementResult revamp = MinimumModification(region, current);
      if (revamp.ok) {
        std::printf("option %d %s -> %s (modification cost %.4f)\n",
                    enhance, current.ToString(4).c_str(),
                    revamp.option.ToString(4).c_str(), revamp.cost);
      }
    }
  }
  return 0;
}
