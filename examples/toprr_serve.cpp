// toprr_serve: the long-lived serving front-end.
//
// Generates (or loads) a catalog, starts a ToprrServer on it, and serves
// query batches until SIGINT/SIGTERM. Pair with examples/toprr_loadgen.cpp
// or any client speaking the serve/ protocol.
//
//   toprr_serve --port 7077 --n 50000 --d 4 --dist IND
//   toprr_serve --csv products.csv --max_inflight 128 --max_budget 2.0
#include <csignal>
#include <cstdio>
#include <string>

#include <unistd.h>

#include "common/flags.h"
#include "common/logging.h"
#include "data/csv.h"
#include "data/generator.h"
#include "serve/server.h"

namespace {

// Signal handlers may only touch lock-free state; the main loop polls.
volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace toprr;
  FlagParser flags;
  std::string csv_path;
  std::string dist_text = "IND";
  std::string host = "127.0.0.1";
  std::string log_level = "warning";
  int port = 7077;
  int64_t n = 50000;
  int d = 4;
  int64_t seed = 2019;
  int max_inflight = 64;
  double max_budget = 10.0;
  int batch_threads = 1;
  int warm_k = 10;
  int max_staged = 4096;
  int idle_timeout_ms = 0;
  int header_timeout_ms = 0;
  int64_t max_deadline_ms = 30000;
  double drain_grace = 0.0;
  bool normalize = true;
  bool cache = false;
  double cache_budget_mb = 64.0;
  double cache_quantum = 1.0 / 256.0;
  bool help = false;
  flags.AddString("csv", &csv_path, "serve this CSV catalog");
  flags.AddString("dist", &dist_text, "synthetic distribution IND/COR/ANTI");
  flags.AddString("host", &host, "listen address");
  flags.AddString("log", &log_level, "log level (debug/info/warning/error)");
  flags.AddInt("port", &port, "TCP port (0 = ephemeral)");
  flags.AddInt("n", &n, "synthetic dataset size");
  flags.AddInt("d", &d, "synthetic dimensionality");
  flags.AddInt("seed", &seed, "random seed");
  flags.AddInt("max_inflight", &max_inflight,
               "admission control: max queries in flight across connections");
  flags.AddDouble("max_budget", &max_budget,
                  "per-query time budget ceiling in seconds (<= 0: no cap)");
  flags.AddInt("batch_threads", &batch_threads,
               "SolveBatch dispatch threads per request (0 = all cores)");
  flags.AddInt("warm_k", &warm_k,
               "pre-compute the k-skyband for this k at startup (0 = skip)");
  flags.AddInt("max_staged", &max_staged,
               "per-connection staged-mutation bound (inserts + deletes)");
  flags.AddInt("idle_timeout_ms", &idle_timeout_ms,
               "evict a connection idle between frames this long (0 = never)");
  flags.AddInt("header_timeout_ms", &header_timeout_ms,
               "evict a peer that stalls mid-frame this long (0 = never)");
  flags.AddInt("max_deadline_ms", &max_deadline_ms,
               "clamp client-requested query deadlines to this ceiling");
  flags.AddDouble("drain_grace", &drain_grace,
                  "on SIGTERM, drain: let in-flight work finish up to this "
                  "many seconds before stopping (<= 0: stop immediately)");
  flags.AddBool("normalize", &normalize, "min-max normalize CSV columns");
  flags.AddBool("cache", &cache,
                "enable the cross-query region cache for admitted queries");
  flags.AddDouble("cache_budget_mb", &cache_budget_mb,
                  "region cache byte budget in MiB (LRU-evicted)");
  flags.AddDouble("cache_quantum", &cache_quantum,
                  "region cache canonicalization grid (power-of-two "
                  "reciprocals stay exact)");
  flags.AddBool("help", &help, "print usage");
  if (!flags.Parse(&argc, argv)) return 1;
  if (help) {
    std::fputs(flags.HelpString().c_str(), stdout);
    return 0;
  }
  LogLevel level;
  if (ParseLogLevel(log_level, &level)) GlobalLogLevel() = level;

  Dataset data;
  if (!csv_path.empty()) {
    auto loaded = ReadCsv(csv_path);
    if (!loaded.has_value()) return 1;
    data = std::move(*loaded);
    if (normalize) data.NormalizeUnit();
  } else {
    Distribution dist;
    if (!ParseDistribution(dist_text, &dist)) {
      std::fprintf(stderr, "unknown distribution '%s'\n", dist_text.c_str());
      return 1;
    }
    data = GenerateSynthetic(static_cast<size_t>(n), static_cast<size_t>(d),
                             dist, static_cast<uint64_t>(seed));
  }
  if (data.dim() < 2) {
    std::fprintf(stderr, "need at least 2 attributes\n");
    return 1;
  }

  serve::ServerConfig config;
  config.host = host;
  config.port = port;
  config.max_inflight_queries = static_cast<size_t>(max_inflight);
  config.max_query_budget_seconds = max_budget;
  config.batch_threads = batch_threads;
  config.use_region_cache = cache;
  if (cache_budget_mb > 0.0) {
    config.region_cache_budget_bytes =
        static_cast<size_t>(cache_budget_mb * 1024.0 * 1024.0);
  }
  if (cache_quantum > 0.0 && cache_quantum < 1.0) {
    config.region_cache_quantum = cache_quantum;
  }
  if (max_staged > 0) {
    config.max_staged_mutations = static_cast<size_t>(max_staged);
  }
  config.idle_timeout_ms = idle_timeout_ms;
  config.header_read_timeout_ms = header_timeout_ms;
  config.max_deadline_ms =
      max_deadline_ms > 0 ? static_cast<uint64_t>(max_deadline_ms) : 0;
  serve::ToprrServer server(DatasetSnapshot::FromDataset(data), config);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "toprr_serve: start failed: %s\n", error.c_str());
    return 1;
  }
  if (warm_k > 0 && static_cast<size_t>(warm_k) <= data.size()) {
    server.WarmSkyband(warm_k);
  }
  // The loadgen and the serve-smoke CI job wait for this exact line.
  std::printf("toprr_serve: listening on %s:%d (n=%zu d=%zu)\n",
              host.c_str(), server.port(), data.size(), data.dim());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_shutdown == 0) {
    ::usleep(100 * 1000);
  }

  if (drain_grace > 0.0) {
    std::printf("toprr_serve: draining (grace %.1fs)\n", drain_grace);
    std::fflush(stdout);
    server.Drain(drain_grace);
  }
  server.Stop();
  const ServerStatsSnapshot stats = server.stats().Snapshot();
  std::printf("toprr_serve: shut down; %s\n", stats.DebugString().c_str());
  return 0;
}
