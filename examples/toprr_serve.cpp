// toprr_serve: the long-lived serving front-end.
//
// Generates (or loads) a catalog, starts a ToprrServer on it, and serves
// query batches until SIGINT/SIGTERM. Pair with examples/toprr_loadgen.cpp
// or any client speaking the serve/ protocol.
//
//   toprr_serve --port 7077 --n 50000 --d 4 --dist IND
//   toprr_serve --csv products.csv --max_inflight 128 --max_budget 2.0
//
// With --data_dir the catalog is crash-durable: publishes are WAL-logged
// (fsynced per --fsync) before they are acked, checkpoints land every
// --checkpoint_every publishes, and a restart from the same directory
// recovers every acked publish -- including across kill -9.
//
//   toprr_serve --port 7077 --data_dir /var/lib/toprr --fsync always
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include <unistd.h>

#include "common/flags.h"
#include "common/logging.h"
#include "data/csv.h"
#include "data/generator.h"
#include "data/recovery.h"
#include "serve/server.h"

namespace {

// Signal handlers may only touch lock-free state; the main loop polls.
volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace toprr;
  FlagParser flags;
  std::string csv_path;
  std::string dist_text = "IND";
  std::string host = "127.0.0.1";
  std::string log_level = "warning";
  int port = 7077;
  int64_t n = 50000;
  int d = 4;
  int64_t seed = 2019;
  int max_inflight = 64;
  double max_budget = 10.0;
  int batch_threads = 1;
  int warm_k = 10;
  int max_staged = 4096;
  int idle_timeout_ms = 0;
  int header_timeout_ms = 0;
  int64_t max_deadline_ms = 30000;
  double drain_grace = 0.0;
  std::string data_dir;
  std::string fsync_text = "always";
  int64_t checkpoint_every = 64;
  bool normalize = true;
  bool cache = false;
  double cache_budget_mb = 64.0;
  double cache_quantum = 1.0 / 256.0;
  bool help = false;
  flags.AddString("csv", &csv_path, "serve this CSV catalog");
  flags.AddString("dist", &dist_text, "synthetic distribution IND/COR/ANTI");
  flags.AddString("host", &host, "listen address");
  flags.AddString("log", &log_level, "log level (debug/info/warning/error)");
  flags.AddInt("port", &port, "TCP port (0 = ephemeral)");
  flags.AddInt("n", &n, "synthetic dataset size");
  flags.AddInt("d", &d, "synthetic dimensionality");
  flags.AddInt("seed", &seed, "random seed");
  flags.AddInt("max_inflight", &max_inflight,
               "admission control: max queries in flight across connections");
  flags.AddDouble("max_budget", &max_budget,
                  "per-query time budget ceiling in seconds (<= 0: no cap)");
  flags.AddInt("batch_threads", &batch_threads,
               "SolveBatch dispatch threads per request (0 = all cores)");
  flags.AddInt("warm_k", &warm_k,
               "pre-compute the k-skyband for this k at startup (0 = skip)");
  flags.AddInt("max_staged", &max_staged,
               "per-connection staged-mutation bound (inserts + deletes)");
  flags.AddInt("idle_timeout_ms", &idle_timeout_ms,
               "evict a connection idle between frames this long (0 = never)");
  flags.AddInt("header_timeout_ms", &header_timeout_ms,
               "evict a peer that stalls mid-frame this long (0 = never)");
  flags.AddInt("max_deadline_ms", &max_deadline_ms,
               "clamp client-requested query deadlines to this ceiling");
  flags.AddDouble("drain_grace", &drain_grace,
                  "on SIGTERM, drain: let in-flight work finish up to this "
                  "many seconds before stopping (<= 0: stop immediately)");
  flags.AddString("data_dir", &data_dir,
                  "durability directory (WAL + checkpoints); empty = "
                  "in-memory only. A populated directory recovers; the "
                  "--csv/--n bootstrap is then ignored");
  flags.AddString("fsync", &fsync_text,
                  "WAL fsync policy: always (every publish), batched "
                  "(group commit), off (page cache only)");
  flags.AddInt("checkpoint_every", &checkpoint_every,
               "publishes between checkpoints (0 = only at open/close)");
  flags.AddBool("normalize", &normalize, "min-max normalize CSV columns");
  flags.AddBool("cache", &cache,
                "enable the cross-query region cache for admitted queries");
  flags.AddDouble("cache_budget_mb", &cache_budget_mb,
                  "region cache byte budget in MiB (LRU-evicted)");
  flags.AddDouble("cache_quantum", &cache_quantum,
                  "region cache canonicalization grid (power-of-two "
                  "reciprocals stay exact)");
  flags.AddBool("help", &help, "print usage");
  if (!flags.Parse(&argc, argv)) return 1;
  if (help) {
    std::fputs(flags.HelpString().c_str(), stdout);
    return 0;
  }
  LogLevel level;
  if (ParseLogLevel(log_level, &level)) GlobalLogLevel() = level;

  Dataset data;
  if (!csv_path.empty()) {
    auto loaded = ReadCsv(csv_path);
    if (!loaded.has_value()) return 1;
    data = std::move(*loaded);
    if (normalize) data.NormalizeUnit();
  } else {
    Distribution dist;
    if (!ParseDistribution(dist_text, &dist)) {
      std::fprintf(stderr, "unknown distribution '%s'\n", dist_text.c_str());
      return 1;
    }
    data = GenerateSynthetic(static_cast<size_t>(n), static_cast<size_t>(d),
                             dist, static_cast<uint64_t>(seed));
  }
  if (data.dim() < 2) {
    std::fprintf(stderr, "need at least 2 attributes\n");
    return 1;
  }

  serve::ServerConfig config;
  config.host = host;
  config.port = port;
  config.max_inflight_queries = static_cast<size_t>(max_inflight);
  config.max_query_budget_seconds = max_budget;
  config.batch_threads = batch_threads;
  config.use_region_cache = cache;
  if (cache_budget_mb > 0.0) {
    config.region_cache_budget_bytes =
        static_cast<size_t>(cache_budget_mb * 1024.0 * 1024.0);
  }
  if (cache_quantum > 0.0 && cache_quantum < 1.0) {
    config.region_cache_quantum = cache_quantum;
  }
  if (max_staged > 0) {
    config.max_staged_mutations = static_cast<size_t>(max_staged);
  }
  config.idle_timeout_ms = idle_timeout_ms;
  config.header_read_timeout_ms = header_timeout_ms;
  config.max_deadline_ms =
      max_deadline_ms > 0 ? static_cast<uint64_t>(max_deadline_ms) : 0;
  std::shared_ptr<DurableCatalog> durable;
  if (!data_dir.empty()) {
    DurabilityOptions durability;
    durability.data_dir = data_dir;
    if (!ParseFsyncPolicy(fsync_text, &durability.fsync_policy)) {
      std::fprintf(stderr, "unknown --fsync policy '%s'\n",
                   fsync_text.c_str());
      return 1;
    }
    durability.checkpoint_every =
        checkpoint_every > 0 ? static_cast<uint64_t>(checkpoint_every) : 0;
    std::string open_error;
    durable = DurableCatalog::Open(durability, &data, &open_error);
    if (durable == nullptr) {
      std::fprintf(stderr, "toprr_serve: open %s failed: %s\n",
                   data_dir.c_str(), open_error.c_str());
      return 1;
    }
    // Greppable by operators and the --crash smoke gate: what recovery
    // found and where serving resumes.
    const RecoveryStats& recovery = durable->recovery();
    std::printf(
        "toprr_serve: durable catalog at %s recovered=%d "
        "checkpoint_seq=%llu replayed=%llu skipped=%llu torn_tail=%d "
        "snapshot=%016llx seq=%llu recovery_ms=%.2f\n",
        data_dir.c_str(), recovery.recovered ? 1 : 0,
        static_cast<unsigned long long>(recovery.checkpoint_seq),
        static_cast<unsigned long long>(recovery.replayed_records),
        static_cast<unsigned long long>(recovery.skipped_records),
        recovery.wal_tail_truncated ? 1 : 0,
        static_cast<unsigned long long>(recovery.snapshot_id),
        static_cast<unsigned long long>(recovery.snapshot_seq),
        recovery.recovery_seconds * 1e3);
    std::fflush(stdout);
  }
  std::unique_ptr<serve::ToprrServer> server_holder;
  if (durable != nullptr) {
    server_holder =
        std::make_unique<serve::ToprrServer>(durable, config);
  } else {
    server_holder = std::make_unique<serve::ToprrServer>(
        DatasetSnapshot::FromDataset(data), config);
  }
  serve::ToprrServer& server = *server_holder;
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "toprr_serve: start failed: %s\n", error.c_str());
    return 1;
  }
  // In the durable case recovery may have replayed past the bootstrap:
  // report what is actually being served, not what --n asked for.
  const size_t served_rows =
      durable != nullptr
          ? static_cast<size_t>(durable->catalog()->Current()->live_rows())
          : data.size();
  const size_t served_dim = durable != nullptr
                                ? durable->catalog()->Current()->dim()
                                : data.dim();
  if (warm_k > 0 && static_cast<size_t>(warm_k) <= served_rows) {
    server.WarmSkyband(warm_k);
  }
  // The loadgen and the serve-smoke CI job wait for this exact line.
  std::printf("toprr_serve: listening on %s:%d (n=%zu d=%zu)\n",
              host.c_str(), server.port(), served_rows, served_dim);
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_shutdown == 0) {
    ::usleep(100 * 1000);
  }

  if (drain_grace > 0.0) {
    std::printf("toprr_serve: draining (grace %.1fs)\n", drain_grace);
    std::fflush(stdout);
    server.Drain(drain_grace);
  }
  server.Stop();
  if (durable != nullptr) {
    // Shutdown barrier: push any group-committed WAL bytes to disk so a
    // clean exit never loses the batched tail.
    if (!durable->Flush()) {
      std::fprintf(stderr, "toprr_serve: WAL flush on shutdown failed\n");
    }
  }
  const ServerStatsSnapshot stats = server.stats().Snapshot();
  std::printf("toprr_serve: shut down; %s\n", stats.DebugString().c_str());
  return 0;
}
