// Market-coverage sweep: slide a clientele window across the preference
// space and report, for each window, how large the top-ranking region is
// and the cheapest top-ranking design. This is the kind of market-impact
// dashboard the paper's introduction motivates: where in the consumer
// spectrum is it cheap (or expensive) to launch a guaranteed top-k
// product?
#include <cstdio>

#include "core/placement.h"
#include "core/toprr.h"
#include "common/flags.h"
#include "data/generator.h"
#include "geom/convex_hull.h"
#include "pref/pref_space.h"

int main(int argc, char** argv) {
  using namespace toprr;
  FlagParser flags;
  int64_t n = 5000;
  int64_t seed = 11;
  int k = 5;
  int steps = 8;
  double width = 0.08;
  flags.AddInt("n", &n, "dataset size");
  flags.AddInt("seed", &seed, "dataset seed");
  flags.AddInt("k", &k, "rank requirement");
  flags.AddInt("steps", &steps, "number of window positions");
  flags.AddDouble("width", &width, "clientele window side length");
  if (!flags.Parse(&argc, argv)) return 1;

  const Dataset market = GenerateSynthetic(
      static_cast<size_t>(n), 3, Distribution::kAnticorrelated,
      static_cast<uint64_t>(seed));
  std::printf("market: %zu options, 3 attributes; k = %d\n\n",
              market.size(), k);
  std::printf("%-24s %8s %8s %10s %26s\n", "clientele window wR", "|D'|",
              "|Vall|", "volume", "cheapest design (cost)");

  for (int i = 0; i < steps; ++i) {
    const double start =
        (1.0 - 2.0 * width) * static_cast<double>(i) / (steps - 1);
    PrefBox window;
    window.lo = Vec{start, start};
    window.hi = Vec{start + width, start + width};
    if (!window.InsideSimplex()) continue;
    const ToprrResult region = SolveToprr(market, k, window);
    if (region.timed_out) continue;
    const double volume =
        region.vertices.empty() ? 0.0 : ConvexHullVolume(region.vertices);
    const PlacementResult design = MinimumCostCreation(region);
    char window_str[64];
    std::snprintf(window_str, sizeof(window_str), "[%.2f,%.2f]^2", start,
                  start + width);
    char design_str[64];
    if (design.ok) {
      std::snprintf(design_str, sizeof(design_str), "%s (%.3f)",
                    design.option.ToString(2).c_str(), design.cost);
    } else {
      std::snprintf(design_str, sizeof(design_str), "n/a");
    }
    std::printf("%-24s %8zu %8zu %10.5f %26s\n", window_str,
                region.stats.candidates_after_filter, region.vall.size(),
                volume, design_str);
  }
  std::printf("\nReading: low-volume windows are crowded market segments "
              "where a guaranteed top-%d design is expensive;\n"
              "high-volume windows are open segments.\n", k);
  return 0;
}
