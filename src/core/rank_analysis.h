// Rank analysis of an existing option over a preference region, built on
// the same kIPR machinery as TopRR:
//
//  * BestAchievableRank -- the smallest k such that the option enters the
//    top-k for at least one w in wR (cf. the maximum-rank query of
//    Mouratidis et al. [31], restricted to wR);
//  * GuaranteedRank -- the smallest k such that the option is in the
//    top-k for every w in wR (the "k-guarantee" of paper Sec. 3.1's
//    budget discussion: TopRR(k) contains the option iff k >= this).
//
// Both are computed by binary search on k over monotone predicates.
#ifndef TOPRR_CORE_RANK_ANALYSIS_H_
#define TOPRR_CORE_RANK_ANALYSIS_H_

#include <optional>

#include "data/dataset.h"
#include "pref/pref_space.h"

namespace toprr {

/// Smallest k in [1, max_k] such that `option_id` appears in some top-k
/// within wR; std::nullopt if it is outside the top-max_k everywhere.
std::optional<int> BestAchievableRank(const Dataset& data, int option_id,
                                      const PrefBox& region, int max_k);

/// Smallest k in [1, max_k] such that `option_id` is in the top-k for
/// every w in wR; std::nullopt if even top-max_k is not guaranteed.
std::optional<int> GuaranteedRank(const Dataset& data, int option_id,
                                  const PrefBox& region, int max_k);

}  // namespace toprr

#endif  // TOPRR_CORE_RANK_ANALYSIS_H_
