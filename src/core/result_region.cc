#include "core/result_region.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"
#include "common/logging.h"
#include "geom/halfspace_intersection.h"
#include "pref/pref_space.h"
#include "topk/score_kernel.h"
#include "topk/topk.h"

namespace toprr {
namespace {

std::vector<int64_t> QuantizeKey(const Vec& v, double tol) {
  std::vector<int64_t> key(v.dim());
  for (size_t i = 0; i < v.dim(); ++i) {
    key[i] = static_cast<int64_t>(std::llround(v[i] / tol));
  }
  return key;
}

}  // namespace

std::vector<Vec> DedupVertices(const std::vector<Vec>& vall, double tol) {
  std::vector<Vec> unique;
  std::map<std::vector<int64_t>, size_t> seen;
  for (const Vec& v : vall) {
    if (seen.emplace(QuantizeKey(v, tol), unique.size()).second) {
      unique.push_back(v);
    }
  }
  return unique;
}

void AssembleResultRegion(const DatasetView& data,
                          const std::vector<int>& candidates, int k,
                          const std::vector<Vec>& vall_unique,
                          const ToprrOptions& options, ToprrResult* result) {
  const size_t d = data.dim();
  CHECK(!vall_unique.empty());

  // Impact halfspace per vertex: S_w(o) >= TopK(w)  <=>  (-w).o <= -TopK.
  // Vall can hold thousands of vertices over one shared candidate pool,
  // so the top-k-th scores come from the SoA scoring kernel in chunked
  // sweeps (bit-identical to the naive scan; chunking keeps the score
  // matrix small) unless the naive path was requested.
  constexpr size_t kChunk = 64;
  ScoreArena arena;
  ScoreKernel kernel(arena);
  std::vector<Vec> chunk_vertices;
  TopkResult chunk_topk;
  std::vector<double> kth_scores;
  kth_scores.reserve(vall_unique.size());
  if (options.use_score_kernel) {
    kernel.LoadBlock(data, candidates);
    for (size_t begin = 0; begin < vall_unique.size(); begin += kChunk) {
      const size_t end = std::min(begin + kChunk, vall_unique.size());
      chunk_vertices.assign(vall_unique.begin() + begin,
                            vall_unique.begin() + end);
      kernel.ScoreVertices(chunk_vertices, nullptr);
      for (size_t v = 0; v < chunk_vertices.size(); ++v) {
        kernel.TopKInto(v, k, chunk_topk);
        kth_scores.push_back(chunk_topk.KthScore());
      }
    }
  } else {
    for (const Vec& x : vall_unique) {
      kth_scores.push_back(
          ComputeTopKReduced(data, candidates, x, k).KthScore());
    }
  }

  double min_margin = 1.0;  // min over v of (score of top corner - TopK(v))
  std::map<std::vector<int64_t>, bool> seen_halfspace;
  for (size_t i = 0; i < vall_unique.size(); ++i) {
    const Vec& x = vall_unique[i];
    const Vec w = FullWeight(x);
    const double kth = kth_scores[i];
    Vec normal(d);
    for (size_t j = 0; j < d; ++j) normal[j] = -w[j];
    Halfspace h(std::move(normal), -kth);
    // Dedup: identical constraints arise when adjacent kIPRs share both a
    // vertex (already deduped) or produce parallel equal planes.
    Vec key_vec(d + 1);
    for (size_t j = 0; j < d; ++j) key_vec[j] = h.normal[j];
    key_vec[d] = h.offset;
    if (!seen_halfspace.emplace(QuantizeKey(key_vec, 1e-10), true).second) {
      continue;
    }
    // Top-corner margin: S_w(1,..,1) = sum(w) = 1.
    min_margin = std::min(min_margin, 1.0 - kth);
    result->impact_halfspaces.push_back(std::move(h));
  }

  result->box_halfspaces = BoxHalfspaces(Vec(d, 0.0), Vec(d, 1.0));

  if (min_margin <= 1e-9) {
    // Some option already achieves score 1 at a Vall vertex: oR touches
    // the top corner with empty interior.
    result->degenerate = true;
    LOG(INFO) << "TopRR result region has (numerically) empty interior";
    return;
  }
  if (!options.build_geometry) return;
  if (d > options.geometry_dim_limit ||
      result->impact_halfspaces.size() > options.geometry_halfspace_limit) {
    LOG(INFO) << "skipping oR vertex enumeration (d=" << d << ", "
              << result->impact_halfspaces.size()
              << " constraints exceed the geometry limits); the halfspace "
              << "description is exact";
    result->geometry_skipped = true;
    return;
  }

  // Interior point: pull the top corner inward by half the smallest
  // margin. It satisfies box constraints with slack delta and every impact
  // halfspace with slack >= min_margin - delta > 0.
  const double delta = std::min(0.5 * min_margin, 0.25);
  const Vec interior(d, 1.0 - delta);

  std::vector<Halfspace> all = result->impact_halfspaces;
  for (const Halfspace& h : result->box_halfspaces) all.push_back(h);

  HalfspaceIntersectionOptions options;
  auto geometry = IntersectHalfspaces(all, interior, options);
  if (!geometry.has_value()) {
    LOG(WARNING) << "vertex enumeration failed (degenerate dual hull); "
                 << "halfspace description remains exact";
    result->degenerate = true;
    return;
  }
  CHECK(!geometry->unbounded) << "oR must be bounded inside the unit box";
  result->vertices = std::move(geometry->vertices);
  for (size_t idx : geometry->active_halfspaces) {
    if (idx < result->impact_halfspaces.size()) {
      result->supporting_halfspaces.push_back(idx);
    }
  }
}

}  // namespace toprr
