#include "core/rank_analysis.h"

#include <algorithm>

#include "common/check.h"
#include "core/impact.h"
#include "core/toprr.h"

namespace toprr {
namespace {

// Generic first-true binary search over a monotone predicate on [1, max_k].
template <typename Predicate>
std::optional<int> FirstTrue(int max_k, const Predicate& predicate) {
  int lo = 1;
  int hi = max_k;
  std::optional<int> best;
  while (lo <= hi) {
    const int mid = lo + (hi - lo) / 2;
    if (predicate(mid)) {
      best = mid;
      hi = mid - 1;
    } else {
      lo = mid + 1;
    }
  }
  return best;
}

}  // namespace

std::optional<int> BestAchievableRank(const Dataset& data, int option_id,
                                      const PrefBox& region, int max_k) {
  CHECK_GT(max_k, 0);
  CHECK_LE(static_cast<size_t>(max_k), data.size());
  // Monotone: if the option enters some top-k, it enters every top-k' with
  // k' > k (the top-k set only grows).
  return FirstTrue(max_k, [&](int k) {
    const ImpactRegionsResult impact =
        ComputeImpactRegions(data, option_id, k, region);
    return !impact.favorable.empty();
  });
}

std::optional<int> GuaranteedRank(const Dataset& data, int option_id,
                                  const PrefBox& region, int max_k) {
  CHECK_GT(max_k, 0);
  CHECK_LE(static_cast<size_t>(max_k), data.size());
  CHECK_GE(option_id, 0);
  CHECK_LT(static_cast<size_t>(option_id), data.size());
  const Vec option = data.Option(static_cast<size_t>(option_id));
  ToprrOptions options;
  options.build_geometry = false;
  // Monotone: TopRR regions are nested in k (paper Sec. 3.1).
  return FirstTrue(max_k, [&](int k) {
    const ToprrResult result = SolveToprr(data, k, region, options);
    return !result.timed_out && result.Contains(option);
  });
}

}  // namespace toprr
