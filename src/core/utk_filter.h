// The exact UTK option filter (Sec. 6.3, choice (iv); Mouratidis & Tang
// [30]): the precise set of options that appear in the top-k result of at
// least one weight vector in wR.
//
// Computed by partitioning wR into exact kIPRs (no Lemma 7 short-circuit,
// which could skip interior witnesses) and accumulating the union of the
// per-region top-k sets, including options pruned by Lemma 5 along the
// way (those are in every top-k of their branch).
#ifndef TOPRR_CORE_UTK_FILTER_H_
#define TOPRR_CORE_UTK_FILTER_H_

#include <vector>

#include "data/dataset.h"
#include "pref/pref_space.h"

namespace toprr {

/// Returns the sorted ids of options appearing in some top-k within the
/// preference box. `time_budget_seconds <= 0` means unlimited.
std::vector<int> ExactTopkUnion(const Dataset& data, const PrefBox& region,
                                int k, double time_budget_seconds = 0.0);

}  // namespace toprr

#endif  // TOPRR_CORE_UTK_FILTER_H_
