// Internal engine: recursive partitioning of a preference region until
// every sub-region passes its acceptance test, accumulating the union of
// defining vertices (the paper's set Vall, Theorem 1).
//
// One engine drives all three methods:
//  * TAS      -- kIPR acceptance (Lemma 3), violating-pair splits (Sec 4.2);
//  * TAS*     -- adds Lemma 5 pruning, Lemma 7 testing, k-switch splits;
//  * PAC/UTK  -- ordered-invariance acceptance (every vertex has the same
//                score-ordered top-k list), rank-conflict splits, faithful
//                to the UTK building block of [30] (see DESIGN.md).
//
// This header is internal to toprr_core; the public entry point is
// SolveToprr in core/toprr.h.
#ifndef TOPRR_CORE_PARTITION_H_
#define TOPRR_CORE_PARTITION_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/scheduler_stats.h"
#include "data/dataset.h"
#include "geom/vec.h"
#include "pref/flat_region.h"
#include "pref/region.h"

namespace toprr {

struct ToprrOptions;

struct PartitionConfig {
  /// PAC mode: accept only when the full score-ordered top-k lists agree.
  bool ordered_invariance = false;
  bool use_lemma5 = false;
  bool use_lemma7 = false;
  bool use_kswitch = false;
  double eps = 1e-10;
  double time_budget_seconds = 0.0;  // <= 0: unlimited
  size_t max_regions = 0;            // 0: default (16M)
  /// Cooperative cancellation flag, polled per claimed region by both
  /// executors (same cadence as the time budget). Null = never cancel.
  const std::atomic<bool>* cancel = nullptr;
  /// Worker threads for the partition scheduler: 1 = sequential executor,
  /// 0 = one worker per hardware thread, n > 1 = n workers. Both
  /// executors produce bit-identical output (see core/scheduler.h).
  int num_threads = 1;
  /// Score the per-vertex top-k profiles through the SoA scoring kernel
  /// (topk/score_kernel.h): blocked candidate sweeps, per-worker scratch
  /// arenas, and parent-to-child vertex-score reuse. Output is
  /// bit-identical to the naive per-vertex path (asserted by
  /// score_kernel_test); the toggle exists for that regression test and
  /// for the naive baseline of bench_score_kernel.
  bool use_score_kernel = true;
  /// Split regions through the flat-geometry engine
  /// (pref/flat_region.h): fused classification sweeps over the
  /// contiguous vertex buffer, packed-key dedup, and per-worker GeomArena
  /// scratch. Output is bit-identical to the legacy PrefRegion::Split
  /// path (asserted by flat_geometry_test); the toggle exists for that
  /// regression test and for the legacy baseline of bench_region_split.
  bool use_flat_geometry = true;
  /// Also accumulate the union of top-k option ids over all accepted
  /// regions (the exact UTK option filter, Sec. 6.3 choice (iv)).
  bool collect_topk_union = false;
  /// Also keep every accepted region with its top-k id set (the options
  /// pruned by Lemma 5 on that branch are included). Used by the
  /// reverse-top-k style impact-region API.
  bool collect_regions = false;
  /// Fill PartitionOutput::scheduler with per-worker executor telemetry
  /// (tasks executed/stolen, steal failures, deque high-water). The
  /// counters are kept worker-local either way; this only controls
  /// whether they are copied out, so leaving it on costs nothing.
  bool collect_scheduler_stats = true;
  /// Also keep every accepted cell's flat geometry with its heap-path id
  /// (ascending id order, same order their vertices enter `vall`). Feeds
  /// the cross-query region cache (core/region_cache.h), which replays
  /// the cells by clipping instead of re-partitioning.
  bool collect_flat_cells = false;
};

/// An accepted region together with its (order-insensitive) top-k set.
struct AcceptedRegion {
  PrefRegion region;
  std::vector<int> topk_ids;  // sorted; union over vertices + Lemma-5 set
};

/// One accepted cell of the partition, addressable by its deterministic
/// heap-path task id (root 1, split children 2*id and 2*id+1). The id
/// makes cached subtrees mergeable: cells from different solves of the
/// same tree share ids, and id order reproduces the merge order of the
/// scheduler's id-ordered assembly.
struct FlatCell {
  uint64_t id = 0;
  FlatRegion region;
};

struct PartitionOutput {
  std::vector<Vec> vall;        // accumulated defining vertices (raw)
  std::vector<int> topk_union;  // sorted ids (when collect_topk_union)
  std::vector<AcceptedRegion> regions;  // when collect_regions
  /// Executor telemetry (when collect_scheduler_stats). Unlike every
  /// other field, its per-worker breakdown depends on thread timing and
  /// is NOT covered by the bit-identical-output guarantee; the total
  /// tasks-executed count is (it equals regions_tested).
  SchedulerStats scheduler;
  std::vector<FlatCell> flat_cells;  // when collect_flat_cells; id order
  bool timed_out = false;
  bool cancelled = false;  // aborted via PartitionConfig::cancel

  size_t regions_tested = 0;
  size_t regions_accepted = 0;
  size_t regions_split = 0;
  size_t kipr_accepts = 0;
  size_t lemma7_accepts = 0;
  size_t lemma5_prunes = 0;
};

/// Partitions `root` over the candidate option ids (a guaranteed superset
/// of every top-k in the region, e.g. the r-skyband) for parameter k.
PartitionOutput PartitionPreferenceRegion(const DatasetView& data,
                                          const std::vector<int>& candidates,
                                          int k, const PrefRegion& root,
                                          const PartitionConfig& config);

/// The PartitionConfig implied by a ToprrOptions (method -> acceptance
/// test and lemma toggles, plus the shared knobs). Single source of truth
/// for both SolveToprr and the region cache, whose signature must agree
/// with the partition semantics. Implemented in toprr.cc where both
/// definitions are visible.
PartitionConfig PartitionConfigFromOptions(const ToprrOptions& options);

}  // namespace toprr

#endif  // TOPRR_CORE_PARTITION_H_
