// Impact regions of an existing option: the sub-regions of a preference
// region where the option ranks among the top-k. This is the
// monochromatic reverse top-k of Vlachou et al. [44] restricted to wR, as
// solved in the continuous preference space by Tang et al. [41] -- the
// machinery the paper builds on (Sec. 2.2), exposed here as a library
// feature on top of the same kIPR partitioner.
#ifndef TOPRR_CORE_IMPACT_H_
#define TOPRR_CORE_IMPACT_H_

#include <vector>

#include "data/dataset.h"
#include "pref/pref_space.h"
#include "pref/region.h"

namespace toprr {

struct ImpactRegionsResult {
  /// Convex cells of wR where `option_id` is in the top-k (a partition of
  /// the favorable part of wR into kIPRs; cells are not merged).
  std::vector<PrefRegion> favorable;
  /// Fraction of tested kIPR cells that are favorable (a cheap volume-free
  /// impact indicator; favorable cell count / total cell count).
  double cell_fraction = 0.0;
  /// Volume of the favorable cells divided by the volume of wR -- the
  /// probability that a uniformly drawn clientele member ranks the option
  /// top-k (cf. the volume-as-sensitivity measure of Zhang et al. [54]).
  double volume_fraction = 0.0;
  bool timed_out = false;
};

/// Computes where in wR the existing option `option_id` ranks top-k.
/// `time_budget_seconds <= 0` means unlimited.
ImpactRegionsResult ComputeImpactRegions(const Dataset& data, int option_id,
                                         int k, const PrefBox& region,
                                         double time_budget_seconds = 0.0);

}  // namespace toprr

#endif  // TOPRR_CORE_IMPACT_H_
