// Cross-query region cache: bounded reuse of solved preference boxes
// across queries (the ROADMAP's "single biggest lever for serving heavy
// traffic").
//
// The test-and-split partition of a box is a deterministic tree whose
// accepted leaves tile the box. The cache stores, per solved query, the
// canonical (grid-quantized, snapped-outward) box together with the
// candidate pool it was solved under and the accepted cells in heap-path
// id order. Reuse has two tiers:
//
//  * containment -- a query box inside a cached box is answered by
//    clipping the stored cells against the query box. The partition is a
//    refinement of any sub-box, so cells fully inside pass through
//    verbatim and boundary cells are cut by the box halfspaces; the
//    result is bit-identical to solving the query against the cache
//    entry cold (region_cache_test asserts this across methods, dims,
//    and k).
//  * partial overlap -- the overlapping core is clipped from the cached
//    cells while the uncovered remainder of the query box (a guillotine
//    decomposition, <= 2m sub-boxes) re-enters PartitionScheduler as a
//    frontier of fresh roots with same-bit-length heap-path ids, so the
//    resumed subtrees stay disjoint and merge deterministically.
//
// Entries are held by shared_ptr<const ...>: lookups pin a payload, so
// eviction, Clear(), and engine teardown never invalidate an in-flight
// solve (the serve Stop() contract). The cache itself is a sharded-mutex
// LRU with a per-shard slice of the byte budget; keys fold in k and a
// signature of every option that changes partition semantics, so entries
// are never reused across incompatible solves. The dataset version IS
// part of the key: the engine folds the 64-bit DatasetSnapshot id into
// the signature, so entries computed against an old snapshot can never
// be served to queries on a newer one -- they simply stop matching and
// age out of the LRU, no mass drop needed. Each entry additionally pins
// the snapshot it was solved from, keeping its candidate ids valid for
// as long as the entry lives.
#ifndef TOPRR_CORE_REGION_CACHE_H_
#define TOPRR_CORE_REGION_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/partition.h"
#include "pref/flat_region.h"
#include "pref/pref_space.h"

namespace toprr {

struct ToprrOptions;

struct RegionCacheConfig {
  /// Total byte budget across all shards; the LRU tail of a shard is
  /// evicted once the shard exceeds its slice. A single entry larger
  /// than a shard slice is kept (and alone) rather than thrashing.
  size_t byte_budget = size_t{64} << 20;
  size_t num_shards = 8;
  /// Grid pitch for canonicalization. A power of two keeps grid
  /// coordinates exact in floating point, so grid-aligned query boxes
  /// canonicalize to themselves bit-for-bit.
  double quantum = 1.0 / 256.0;
  /// Entries inspected (MRU-first, across shards) when the exact-key
  /// lookup misses, bounding the cost of containment/overlap probing.
  size_t max_probe = 32;
  /// Allow the partial-overlap tier (frontier resumption). Off =
  /// containment hits only.
  bool enable_partial = true;
};

/// One immutable cached solve. `box` is canonical; `cells` are the
/// accepted partition leaves in ascending heap-path id order; and
/// `candidates` is the pool the entry was solved under -- a valid
/// top-k superset for every sub-box, which is what makes clipped reuse
/// exact.
struct RegionCacheEntry {
  PrefBox box;
  int k = 0;
  std::string signature;
  std::vector<int> candidates;
  std::vector<FlatCell> cells;
  size_t regions_tested = 0;  // partition tasks a full hit saves
  size_t bytes = 0;           // footprint charged against the budget
  /// The dataset version this entry was solved from (data/snapshot.h).
  /// Pinning it keeps `candidates` meaningful for the entry's whole
  /// lifetime even after the engine moves to a newer snapshot. Null for
  /// entries built outside the snapshot path (tests).
  std::shared_ptr<const class DatasetSnapshot> snapshot;
};

/// Cumulative cache counters (monotone; snapshot via Counters()).
struct RegionCacheCounters {
  uint64_t hits = 0;
  uint64_t partial_hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t evicted_bytes = 0;
};

/// Byte-string fingerprint of every ToprrOptions field that changes the
/// partition or assembly output: method, lemma/filter toggles, eps.
/// Thread counts, kernel toggles, and geometry limits are excluded --
/// the solver is bit-identical across them (geometry is rebuilt per
/// query from the clipped Vall either way).
std::string CacheSignature(const ToprrOptions& options);

class RegionCache {
 public:
  explicit RegionCache(const RegionCacheConfig& config = {});

  RegionCache(const RegionCache&) = delete;
  RegionCache& operator=(const RegionCache&) = delete;

  /// Snaps a box outward onto the quantum grid (lo floors, hi ceils,
  /// clamped to lo >= 0). The result contains `box`; grid-aligned boxes
  /// are fixed points. May poke outside the preference simplex -- the
  /// engine clips the solve root against the simplex in that case.
  PrefBox Canonicalize(const PrefBox& box) const;

  /// Exact-key lookup of the canonicalization of `box`, then a bounded
  /// MRU-first probe for any same-(k, signature) entry whose box
  /// contains `box`. Touches the entry's LRU position and bumps the hit
  /// counter on success.
  std::shared_ptr<const RegionCacheEntry> FindContaining(
      int k, const std::string& signature, const PrefBox& box);

  /// Bounded MRU-first probe for the same-(k, signature) entry with the
  /// largest positive overlap volume with `box` (every dimension must
  /// overlap with positive width). Bumps the partial-hit counter on
  /// success. Disabled (always null) when !config.enable_partial.
  std::shared_ptr<const RegionCacheEntry> FindOverlap(
      int k, const std::string& signature, const PrefBox& box);

  /// Inserts a solved entry (computing entry->bytes) and evicts the
  /// shard's LRU tail past its budget slice. First insert wins: solves
  /// are deterministic, so a racing duplicate is simply dropped.
  /// Returns the bytes evicted by this insert.
  size_t Insert(std::shared_ptr<RegionCacheEntry> entry);

  /// Records a lookup that found nothing (counters only).
  void RecordMiss();

  /// Drops every entry. In-flight solves holding entry snapshots are
  /// unaffected (shared_ptr keeps their payload alive).
  void Clear();

  RegionCacheCounters Counters() const;
  size_t TotalBytes() const;
  size_t NumEntries() const;
  const RegionCacheConfig& config() const { return config_; }

 private:
  struct Shard {
    std::mutex mu;
    // front = MRU. The list owns the (key, entry) pairs; the index maps
    // keys to list positions for O(1) exact lookup + touch.
    std::list<std::pair<std::string,
                        std::shared_ptr<const RegionCacheEntry>>> lru;
    std::unordered_map<
        std::string,
        std::list<std::pair<std::string,
                            std::shared_ptr<const RegionCacheEntry>>>::
            iterator>
        index;
    size_t bytes = 0;
  };

  std::string KeyFor(int k, const std::string& signature,
                     const PrefBox& canonical) const;
  size_t ShardFor(const std::string& key) const;

  const RegionCacheConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> partial_hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> evicted_bytes_{0};
};

// ---- Geometry helpers of the reuse paths (exposed for unit tests). ----

/// Recovers the axis-aligned box a PrefRegion was built from, or nullopt
/// when the region is not exactly a (non-degenerate) box: 2^m distinct
/// vertices, each coordinate exactly at the per-dimension min or max.
std::optional<PrefBox> BoxFromRegion(const PrefRegion& region);

/// The intersection box, or nullopt when some dimension has no positive
/// overlap width.
std::optional<PrefBox> IntersectBoxes(const PrefBox& a, const PrefBox& b);

/// Guillotine decomposition of `outer` minus `core` (`core` must be
/// contained in `outer`): at most 2*dim disjoint boxes peeled slab by
/// slab whose union with `core` is exactly `outer`. Zero-width slabs are
/// dropped.
std::vector<PrefBox> GuillotineRemainder(const PrefBox& outer,
                                         const PrefBox& core);

/// Clips each cell against `box` and appends the surviving vertices to
/// `vall` in cell order. Cells whose vertices all lie within the box
/// (tolerance eps) are appended verbatim -- for a query box equal to the
/// cached box this reproduces the cold partition's vall byte-for-byte.
/// Boundary cells are cut by each violated box halfspace, keeping the
/// below side. Returns the number of cells that contributed vertices.
size_t AppendCellsClippedToBox(const std::vector<FlatCell>& cells,
                               const PrefBox& box, double eps,
                               GeomArena* arena, std::vector<Vec>* vall);

}  // namespace toprr

#endif  // TOPRR_CORE_REGION_CACHE_H_
