#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "topk/rskyband.h"
#include "topk/skyband.h"

namespace toprr {

ToprrEngine::ToprrEngine(const Dataset* data) : data_(data) {
  CHECK(data != nullptr);
#ifndef NDEBUG
  fingerprint_ = Fingerprint(*data);  // only the debug DCHECK reads it
#endif
}

double ToprrEngine::Fingerprint(const Dataset& data) {
  // Position-weighted sum: cheap, order-sensitive, and a single pass. Not
  // cryptographic -- it only needs to catch accidental in-place mutation.
  double digest = static_cast<double>(data.size()) * 1e9 +
                  static_cast<double>(data.dim()) * 1e6;
  for (size_t i = 0; i < data.size(); ++i) {
    const double* row = data.Row(i);
    for (size_t j = 0; j < data.dim(); ++j) {
      digest += row[j] * static_cast<double>((i * 31 + j) % 8191 + 1);
    }
  }
  return digest;
}

void ToprrEngine::CheckDatasetUnchanged() const {
#ifndef NDEBUG
  DCHECK_EQ(fingerprint_, Fingerprint(*data_))
      << "dataset mutated while a ToprrEngine was using it; call "
         "InvalidateCache() between mutation and the next query";
#endif
}

const std::vector<int>& ToprrEngine::KSkyband(int k) {
  SkybandSlot* slot;
  {
    // std::map nodes are stable: the slot pointer outlives later
    // insertions, and the contract forbids InvalidateCache while
    // queries hold references into it.
    std::lock_guard<std::mutex> lock(cache_mu_);
    slot = &skyband_cache_[k];
  }
  // The skyband build runs outside cache_mu_: concurrent queries with
  // distinct k compute their skybands in parallel, and callers of an
  // already-built k never contend with an in-flight build. call_once
  // makes duplicate first-touchers of the same k block only on each
  // other.
  std::call_once(slot->once,
                 [this, slot, k] { slot->ids = SortBasedKSkyband(*data_, k); });
  return slot->ids;
}

void ToprrEngine::InvalidateCache() {
  std::unique_lock<std::mutex> lock(cache_mu_);
  skyband_cache_.clear();
#ifndef NDEBUG
  fingerprint_ = Fingerprint(*data_);
#endif
}

ToprrResult ToprrEngine::Solve(int k, const PrefBox& region,
                               const ToprrOptions& options) {
  CheckDatasetUnchanged();
  const std::vector<int>& skyband = KSkyband(k);
  Timer filter_timer;
  const std::vector<int> candidates =
      options.use_rskyband_filter ? RSkyband(*data_, region, k, &skyband)
                                  : skyband;
  ToprrResult result = SolveToprrWithCandidates(
      *data_, k, PrefRegion::FromBox(region), candidates, options);
  result.stats.filter_seconds = filter_timer.Seconds();
  return result;
}

ToprrResult ToprrEngine::Solve(int k, const PrefRegion& region,
                               const ToprrOptions& options) {
  CheckDatasetUnchanged();
  const std::vector<int>& skyband = KSkyband(k);
  Timer filter_timer;
  const std::vector<int> candidates =
      options.use_rskyband_filter
          ? RSkybandVertices(*data_, region.vertices(), k, &skyband)
          : skyband;
  ToprrResult result =
      SolveToprrWithCandidates(*data_, k, region, candidates, options);
  result.stats.filter_seconds = filter_timer.Seconds();
  return result;
}

ToprrResult ToprrEngine::Solve(const ToprrQuery& query) {
  return Solve(query.k, query.region, query.options);
}

namespace {

// One query of a batch under a batch-level cancel flag: unclaimed work
// after cancellation resolves to an explicit cancelled result, claimed
// work inherits the flag so the scheduler aborts it at the next poll.
ToprrResult SolveOrCancel(ToprrEngine& engine, const ToprrQuery& query,
                          const std::atomic<bool>* cancel) {
  if (cancel == nullptr) return engine.Solve(query);
  if (cancel->load(std::memory_order_relaxed)) {
    ToprrResult result;
    result.timed_out = true;
    result.cancelled = true;
    return result;
  }
  if (query.options.cancel != nullptr) return engine.Solve(query);
  ToprrQuery cancellable = query;
  cancellable.options.cancel = cancel;
  return engine.Solve(cancellable);
}

}  // namespace

std::vector<ToprrResult> ToprrEngine::SolveBatch(
    const std::vector<ToprrQuery>& queries, int num_threads,
    const std::atomic<bool>* cancel) {
  std::vector<ToprrResult> results(queries.size());
  if (queries.empty()) return results;
  const size_t workers =
      std::min(ResolveThreadCount(num_threads), queries.size());
  if (workers <= 1) {
    for (size_t i = 0; i < queries.size(); ++i) {
      results[i] = SolveOrCancel(*this, queries[i], cancel);
    }
    return results;
  }

  // No skyband warm-up pass here: the per-k once slots let each worker
  // build its own query's skyband outside the cache lock, so a batch
  // mixing k values computes them concurrently instead of serially in
  // the dispatching thread.

  // Claim queries through an atomic ticket instead of a mutex: the
  // per-query shared-state traffic is one fetch_add to claim and one to
  // retire, so the dispatch never serializes workers (the mutex is only
  // taken around the final wakeup). The shared_ptr keeps the claim state
  // alive for helper tasks that the pool only schedules after the batch
  // is done; such stragglers claim an out-of-range ticket and never
  // touch the engine, queries, or results.
  struct BatchState {
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
  };
  auto state = std::make_shared<BatchState>();
  const size_t count = queries.size();
  const ToprrQuery* query_ptr = queries.data();
  ToprrResult* result_ptr = results.data();
  auto drain = [this, state, query_ptr, result_ptr, count, cancel] {
    for (;;) {
      const size_t index =
          state->next.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) return;
      result_ptr[index] = SolveOrCancel(*this, query_ptr[index], cancel);
      // acq_rel + the waiter's acquire read makes every result write
      // visible to the caller; locking mu around the notify pairs with
      // the waiter's predicate check so the last wakeup cannot be lost.
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  ThreadPool& pool = SharedThreadPool();
  for (size_t i = 0; i + 1 < workers; ++i) pool.Submit(drain);
  drain();
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&state, count] {
    return state->done.load(std::memory_order_acquire) == count;
  });
  return results;
}

}  // namespace toprr
