#include "core/engine.h"

#include "common/timer.h"
#include "topk/rskyband.h"
#include "topk/skyband.h"

namespace toprr {

const std::vector<int>& ToprrEngine::KSkyband(int k) {
  auto it = skyband_cache_.find(k);
  if (it == skyband_cache_.end()) {
    it = skyband_cache_.emplace(k, SortBasedKSkyband(*data_, k)).first;
  }
  return it->second;
}

ToprrResult ToprrEngine::Solve(int k, const PrefBox& region,
                               const ToprrOptions& options) {
  const std::vector<int>& skyband = KSkyband(k);
  Timer filter_timer;
  const std::vector<int> candidates =
      options.use_rskyband_filter ? RSkyband(*data_, region, k, &skyband)
                                  : skyband;
  ToprrResult result = SolveToprrWithCandidates(
      *data_, k, PrefRegion::FromBox(region), candidates, options);
  result.stats.filter_seconds = filter_timer.Seconds();
  return result;
}

ToprrResult ToprrEngine::Solve(int k, const PrefRegion& region,
                               const ToprrOptions& options) {
  const std::vector<int>& skyband = KSkyband(k);
  Timer filter_timer;
  const std::vector<int> candidates =
      options.use_rskyband_filter
          ? RSkybandVertices(*data_, region.vertices(), k, &skyband)
          : skyband;
  ToprrResult result =
      SolveToprrWithCandidates(*data_, k, region, candidates, options);
  result.stats.filter_seconds = filter_timer.Seconds();
  return result;
}

}  // namespace toprr
