#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/result_region.h"
#include "core/scheduler.h"
#include "geom/hyperplane.h"
#include "pref/flat_region.h"
#include "topk/rskyband.h"
#include "topk/skyband.h"

namespace toprr {

ToprrEngine::ToprrEngine(SnapshotPtr snapshot)
    : snapshot_(std::move(snapshot)) {
  CHECK(snapshot_ != nullptr);
}

SnapshotPtr ToprrEngine::PinSnapshot() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return snapshot_;
}

SnapshotPtr ToprrEngine::snapshot() const { return PinSnapshot(); }

uint64_t ToprrEngine::snapshot_id() const { return PinSnapshot()->id(); }

size_t ToprrEngine::dataset_rows() const {
  return PinSnapshot()->live_rows();
}

size_t ToprrEngine::dataset_dim() const { return PinSnapshot()->dim(); }

uint64_t ToprrEngine::snapshot_seq() const { return PinSnapshot()->seq(); }

ToprrEngine::UpdateCounters ToprrEngine::update_counters() const {
  UpdateCounters counters;
  counters.publishes_seen = publishes_seen_.load(std::memory_order_relaxed);
  counters.skyband_incremental =
      skyband_incremental_.load(std::memory_order_relaxed);
  counters.skyband_rebuilds =
      skyband_rebuilds_.load(std::memory_order_relaxed);
  return counters;
}

void ToprrEngine::BuildSkybandEntry(const SnapshotPtr& snap, int k,
                                    SkybandEntry* entry) {
  // Consume the parent-version base staged at entry creation; dropping it
  // here (not at GC time) keeps snapshot chains from accumulating.
  const SkybandEntryPtr base = std::move(entry->prev);
  const SnapshotDelta& delta = snap->delta();
  const DatasetView view = snap->View();
  if (base != nullptr && base->built.load(std::memory_order_acquire) &&
      !KSkybandDeleteHitsMember(delta.deleted, base->ids)) {
    // Incremental carry-forward: non-member deletions are free, inserts
    // are dominance-checked against the cached members (exact; see the
    // correctness argument in topk/skyband.h).
    KSkybandState state{base->ids, base->counts};
    KSkybandApplyInserts(view, k, delta.inserted, &state);
    entry->ids = std::move(state.ids);
    entry->counts = std::move(state.counts);
    entry->incremental = true;
    skyband_incremental_.fetch_add(1, std::memory_order_relaxed);
  } else {
    KSkybandState state = SortBasedKSkybandPool(view, snap->live_ids(), k);
    entry->ids = std::move(state.ids);
    entry->counts = std::move(state.counts);
    skyband_rebuilds_.fetch_add(1, std::memory_order_relaxed);
  }
  entry->built.store(true, std::memory_order_release);
}

ToprrEngine::SkybandEntryPtr ToprrEngine::GetSkyband(const SnapshotPtr& snap,
                                                     int k) {
  CHECK_GT(k, 0);
  // Bound by *physical* rows, which never shrink across publishes: a
  // server that validated k against live_rows() can then never abort on
  // a delete-publish racing the solve (the answer degrades to the
  // defined k-of-fewer-live-options case instead).
  CHECK_LE(static_cast<size_t>(k), snap->rows())
      << "k exceeds the snapshot's row count";
  SkybandEntryPtr entry;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    const auto key = std::make_pair(k, snap->id());
    auto it = skyband_cache_.find(key);
    if (it != skyband_cache_.end()) {
      entry = it->second;
    } else {
      entry = std::make_shared<SkybandEntry>();
      if (snap->parent_id() != 0) {
        auto parent =
            skyband_cache_.find(std::make_pair(k, snap->parent_id()));
        if (parent != skyband_cache_.end()) entry->prev = parent->second;
      }
      skyband_cache_.emplace(key, entry);
    }
  }
  // The build runs outside cache_mu_: concurrent queries with distinct
  // (k, version) compute their skybands in parallel, and callers of an
  // already-built entry never contend with an in-flight build. call_once
  // makes duplicate first-touchers block only on each other.
  SkybandEntry* raw = entry.get();
  std::call_once(raw->once,
                 [this, &snap, k, raw] { BuildSkybandEntry(snap, k, raw); });
  return entry;
}

const std::vector<int>& ToprrEngine::KSkyband(int k) {
  const SnapshotPtr snap = PinSnapshot();
  const SkybandEntryPtr entry = GetSkyband(snap, k);
  // The map keeps the entry alive until the next SetSnapshot garbage
  // collection, which is exactly the documented lifetime of this
  // reference.
  return entry->ids;
}

void ToprrEngine::SetSnapshot(SnapshotPtr snapshot) {
  CHECK(snapshot != nullptr);
  // (k, entry) pairs to build eagerly after the lock is released.
  std::vector<std::pair<int, SkybandEntryPtr>> to_build;
  SnapshotPtr pinned = snapshot;  // keep alive across the unlocked builds
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    const uint64_t old_id = snapshot_->id();
    const uint64_t new_id = snapshot->id();
    snapshot_ = std::move(snapshot);
    if (old_id == new_id) return;  // same content: every cache stays valid
    publishes_seen_.fetch_add(1, std::memory_order_relaxed);

    // Stage eager maintenance: one fresh entry per k cached at the old
    // current version, chained to it as the incremental base. Doing this
    // under the lock (building outside it) means a query racing with the
    // publish either finds the staged entry or creates an equivalent one.
    for (const auto& [key, entry] : skyband_cache_) {
      if (key.second != old_id) continue;
      const auto new_key = std::make_pair(key.first, new_id);
      if (skyband_cache_.count(new_key) != 0) continue;
      auto fresh = std::make_shared<SkybandEntry>();
      fresh->prev = entry;
      skyband_cache_.emplace(new_key, fresh);
      to_build.emplace_back(key.first, fresh);
    }
    // Garbage-collect entries of older versions. In-flight solves pinned
    // to an old snapshot are unaffected: they hold their entry by
    // shared_ptr (a late GetSkyband on a collected version simply
    // rebuilds a transient entry).
    for (auto it = skyband_cache_.begin(); it != skyband_cache_.end();) {
      if (it->first.second != new_id) {
        it = skyband_cache_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& [k, entry] : to_build) {
    SkybandEntry* raw = entry.get();
    std::call_once(raw->once, [this, &pinned, k, raw] {
      BuildSkybandEntry(pinned, k, raw);
    });
  }
}

void ToprrEngine::EnableRegionCache(const RegionCacheConfig& config) {
  region_cache_ = std::make_unique<RegionCache>(config);
}

namespace {

// Cacheable geometry: positive width everywhere (degenerate boxes cannot
// be partitioned) and inside the preference simplex (outside it the
// k-skyband is not a valid candidate superset, so such queries solve
// cold).
bool BoxIsCacheable(const PrefBox& box) {
  for (size_t j = 0; j < box.dim(); ++j) {
    if (!(box.lo[j] < box.hi[j])) return false;
  }
  return box.InsideSimplex();
}

// The region-cache signature: the option fingerprint plus the snapshot's
// content id. Folding the version into the signature is what lets stale
// entries age out of the LRU instead of requiring a mass drop on publish.
std::string SignatureFor(const ToprrOptions& options,
                         const DatasetSnapshot& snap) {
  std::string signature = CacheSignature(options);
  const uint64_t id = snap.id();
  signature.append(reinterpret_cast<const char*>(&id), sizeof(id));
  return signature;
}

}  // namespace

ToprrResult ToprrEngine::Solve(int k, const PrefBox& region,
                               const ToprrOptions& options) {
  const SnapshotPtr snap = PinSnapshot();
  ToprrResult result = SolveBox(snap, k, region, options);
  result.snapshot_id = snap->id();
  result.snapshot_seq = snap->seq();
  return result;
}

ToprrResult ToprrEngine::Solve(int k, const PrefRegion& region,
                               const ToprrOptions& options) {
  const SnapshotPtr snap = PinSnapshot();
  ToprrResult result = SolveRegion(snap, k, region, options);
  result.snapshot_id = snap->id();
  result.snapshot_seq = snap->seq();
  return result;
}

ToprrResult ToprrEngine::SolveBox(const SnapshotPtr& snap, int k,
                                  const PrefBox& box,
                                  const ToprrOptions& options) {
  if (options.use_region_cache && region_cache_ != nullptr &&
      BoxIsCacheable(box)) {
    return SolveCachedBox(snap, k, box, options);
  }
  const SkybandEntryPtr skyband = GetSkyband(snap, k);
  const DatasetView view = snap->View();
  Timer filter_timer;
  const std::vector<int> candidates =
      options.use_rskyband_filter ? RSkyband(view, box, k, &skyband->ids)
                                  : skyband->ids;
  ToprrResult result = SolveToprrWithCandidates(
      view, k, PrefRegion::FromBox(box), candidates, options);
  result.stats.filter_seconds = filter_timer.Seconds();
  return result;
}

ToprrResult ToprrEngine::SolveRegion(const SnapshotPtr& snap, int k,
                                     const PrefRegion& region,
                                     const ToprrOptions& options) {
  if (options.use_region_cache && region_cache_ != nullptr) {
    // Wire queries arrive as general PrefRegions; recover the box when
    // the region is exactly one so serving traffic reaches the cache.
    const std::optional<PrefBox> box = BoxFromRegion(region);
    if (box.has_value() && BoxIsCacheable(*box)) {
      return SolveCachedBox(snap, k, *box, options);
    }
  }
  const SkybandEntryPtr skyband = GetSkyband(snap, k);
  const DatasetView view = snap->View();
  Timer filter_timer;
  const std::vector<int> candidates =
      options.use_rskyband_filter
          ? RSkybandVertices(view, region.vertices(), k, &skyband->ids)
          : skyband->ids;
  ToprrResult result =
      SolveToprrWithCandidates(view, k, region, candidates, options);
  result.stats.filter_seconds = filter_timer.Seconds();
  return result;
}

ToprrResult ToprrEngine::SolveCachedBox(const SnapshotPtr& snap, int k,
                                        const PrefBox& box,
                                        const ToprrOptions& options) {
  RegionCache& cache = *region_cache_;
  const std::string signature = SignatureFor(options, *snap);
  Timer total;
  if (std::shared_ptr<const RegionCacheEntry> entry =
          cache.FindContaining(k, signature, box)) {
    ToprrResult result = AssembleFromCells(snap, entry->cells,
                                           entry->candidates, k, box,
                                           options);
    result.stats.scheduler.cache_hits = 1;
    result.stats.scheduler.cache_tasks_saved = entry->regions_tested;
    result.stats.total_seconds = total.Seconds();
    return result;
  }
  if (cache.config().enable_partial) {
    if (std::shared_ptr<const RegionCacheEntry> entry =
            cache.FindOverlap(k, signature, box)) {
      ToprrResult result =
          SolvePartialOverlap(snap, k, box, options, std::move(entry));
      result.stats.total_seconds = total.Seconds();
      return result;
    }
  }
  cache.RecordMiss();
  ToprrResult result = SolveColdAndInsert(snap, k, box, options, signature);
  result.stats.total_seconds = total.Seconds();
  return result;
}

ToprrResult ToprrEngine::AssembleFromCells(
    const SnapshotPtr& snap, const std::vector<FlatCell>& cells,
    const std::vector<int>& candidates, int k, const PrefBox& box,
    const ToprrOptions& options) {
  ToprrResult result;
  result.stats.candidates_after_filter = candidates.size();
  GeomArena arena;
  std::vector<Vec> vall;
  AppendCellsClippedToBox(cells, box, options.eps, &arena, &vall);
  Timer phase;
  result.stats.vall_raw = vall.size();
  result.vall = DedupVertices(vall);
  result.stats.vall_unique = result.vall.size();
  AssembleResultRegion(snap->View(), candidates, k, result.vall, options,
                       &result);
  result.stats.assemble_seconds = phase.Seconds();
  return result;
}

ToprrResult ToprrEngine::SolvePartialOverlap(
    const SnapshotPtr& snap, int k, const PrefBox& box,
    const ToprrOptions& options,
    std::shared_ptr<const RegionCacheEntry> entry) {
  const std::optional<PrefBox> core = IntersectBoxes(box, entry->box);
  CHECK(core.has_value());  // FindOverlap guarantees positive widths
  const std::vector<PrefBox> remainder = GuillotineRemainder(box, *core);
  const DatasetView view = snap->View();

  // Fresh candidates for the whole query box: a valid superset for the
  // frontier sub-boxes and for the reused core alike.
  const SkybandEntryPtr skyband = GetSkyband(snap, k);
  Timer filter_timer;
  std::vector<int> candidates =
      options.use_rskyband_filter ? RSkyband(view, box, k, &skyband->ids)
                                  : skyband->ids;
  const double filter_seconds = filter_timer.Seconds();

  // Resume the uncovered remainder as a scheduler frontier. Root ids sit
  // in one power-of-two band (base .. base + n - 1, base = smallest
  // power of two >= n), so every root's heap-path subtree is disjoint
  // and the id-ordered merge stays deterministic.
  Timer phase;
  uint64_t base = 1;
  while (base < remainder.size()) base <<= 1;
  std::vector<RegionTask> roots;
  roots.reserve(remainder.size());
  for (size_t i = 0; i < remainder.size(); ++i) {
    RegionTask task;
    task.id = base + i;
    task.region = FlatRegion::FromBox(remainder[i]);
    task.candidates = candidates;
    task.k = k;
    roots.push_back(std::move(task));
  }
  const PartitionConfig config = PartitionConfigFromOptions(options);
  PartitionScheduler scheduler(view, config);
  PartitionOutput frontier = scheduler.RunFrontier(std::move(roots));

  ToprrResult result;
  result.stats.candidates_after_filter = candidates.size();
  result.stats.filter_seconds = filter_seconds;
  result.stats.partition_seconds = phase.Seconds();
  result.stats.regions_tested = frontier.regions_tested;
  result.stats.regions_accepted = frontier.regions_accepted;
  result.stats.regions_split = frontier.regions_split;
  result.stats.kipr_accepts = frontier.kipr_accepts;
  result.stats.lemma7_accepts = frontier.lemma7_accepts;
  result.stats.lemma5_prunes = frontier.lemma5_prunes;
  result.stats.scheduler = std::move(frontier.scheduler);
  result.stats.scheduler.cache_partial_hits = 1;
  if (frontier.timed_out) {
    result.timed_out = true;
    result.cancelled = frontier.cancelled;
    return result;
  }

  // Merge: reused core cells (stored id order) first, then the frontier
  // vall -- deterministic for a given cache state.
  GeomArena arena;
  std::vector<Vec> vall;
  const size_t reused =
      AppendCellsClippedToBox(entry->cells, *core, options.eps, &arena,
                              &vall);
  result.stats.scheduler.cache_tasks_saved = reused;
  for (Vec& v : frontier.vall) vall.push_back(std::move(v));
  Timer assemble;
  result.stats.vall_raw = vall.size();
  result.vall = DedupVertices(vall);
  result.stats.vall_unique = result.vall.size();
  AssembleResultRegion(view, candidates, k, result.vall, options, &result);
  result.stats.assemble_seconds = assemble.Seconds();
  return result;
}

ToprrResult ToprrEngine::SolveColdAndInsert(const SnapshotPtr& snap, int k,
                                            const PrefBox& box,
                                            const ToprrOptions& options,
                                            const std::string& signature) {
  RegionCache& cache = *region_cache_;
  const PrefBox canon = cache.Canonicalize(box);
  const DatasetView view = snap->View();

  // The canonical root, clipped against the preference simplex when the
  // outward snap poked past it (the clipped region still contains every
  // in-simplex query box that canonicalizes here).
  const SkybandEntryPtr skyband = GetSkyband(snap, k);
  Timer filter_timer;
  PrefRegion root;
  std::vector<int> candidates;
  bool root_ok = true;
  if (canon.InsideSimplex()) {
    root = PrefRegion::FromBox(canon);
    candidates = options.use_rskyband_filter
                     ? RSkyband(view, canon, k, &skyband->ids)
                     : skyband->ids;
  } else {
    const Hyperplane simplex(Vec(canon.dim(), 1.0), 1.0);
    PrefRegionSplit split =
        PrefRegion::FromBox(canon).Split(simplex, options.eps);
    if (split.below.has_value() && !split.below->empty()) {
      root = std::move(*split.below);
      candidates = options.use_rskyband_filter
                       ? RSkybandVertices(view, root.vertices(), k,
                                          &skyband->ids)
                       : skyband->ids;
    } else {
      root_ok = false;
    }
  }
  if (!root_ok) {
    // Clipping degenerated (a sliver box hugging the simplex facet):
    // solve the query cold, uncached, on the same pinned snapshot.
    ToprrOptions cold = options;
    cold.use_region_cache = false;
    ToprrResult result = SolveBox(snap, k, box, cold);
    result.stats.scheduler.cache_misses = 1;
    return result;
  }
  const double filter_seconds = filter_timer.Seconds();

  std::vector<FlatCell> cells;
  ToprrResult canon_result = SolveToprrWithCandidates(
      view, k, root, candidates, options, &cells);
  if (canon_result.timed_out) {
    // Incomplete partitions are never cached, and a timed-out result is
    // unusable by contract, so hand it back as-is.
    canon_result.stats.filter_seconds = filter_seconds;
    canon_result.stats.scheduler.cache_misses = 1;
    return canon_result;
  }

  auto entry = std::make_shared<RegionCacheEntry>();
  entry->box = canon;
  entry->k = k;
  entry->signature = signature;
  entry->candidates = std::move(candidates);
  entry->cells = std::move(cells);
  entry->regions_tested = canon_result.stats.regions_tested;
  entry->snapshot = snap;  // keeps the candidate ids valid entry-long

  // Assemble the query's own result from the entry cells -- the same
  // tail as a cache hit, which is what makes hits bit-identical to the
  // miss that populated them.
  ToprrResult result = AssembleFromCells(snap, entry->cells,
                                         entry->candidates, k, box,
                                         options);
  const size_t evicted = cache.Insert(entry);

  // Graft the canonical solve's partition telemetry onto the clipped
  // result.
  result.stats.regions_tested = canon_result.stats.regions_tested;
  result.stats.regions_accepted = canon_result.stats.regions_accepted;
  result.stats.regions_split = canon_result.stats.regions_split;
  result.stats.kipr_accepts = canon_result.stats.kipr_accepts;
  result.stats.lemma7_accepts = canon_result.stats.lemma7_accepts;
  result.stats.lemma5_prunes = canon_result.stats.lemma5_prunes;
  result.stats.scheduler = std::move(canon_result.stats.scheduler);
  result.stats.scheduler.cache_misses = 1;
  result.stats.scheduler.cache_evicted_bytes = evicted;
  result.stats.filter_seconds = filter_seconds;
  result.stats.partition_seconds = canon_result.stats.partition_seconds;
  return result;
}

ToprrResult ToprrEngine::Solve(const ToprrQuery& query) {
  return Solve(query.k, query.region, query.options);
}

namespace {

// One query of a batch under a batch-level cancel flag: unclaimed work
// after cancellation resolves to an explicit cancelled result, claimed
// work inherits the flag so the scheduler aborts it at the next poll.
ToprrResult SolveOrCancel(ToprrEngine& engine, const ToprrQuery& query,
                          const std::atomic<bool>* cancel) {
  if (cancel == nullptr) return engine.Solve(query);
  if (cancel->load(std::memory_order_relaxed)) {
    ToprrResult result;
    result.timed_out = true;
    result.cancelled = true;
    return result;
  }
  if (query.options.cancel != nullptr) return engine.Solve(query);
  ToprrQuery cancellable = query;
  cancellable.options.cancel = cancel;
  return engine.Solve(cancellable);
}

}  // namespace

std::vector<ToprrResult> ToprrEngine::SolveBatch(
    const std::vector<ToprrQuery>& queries, int num_threads,
    const std::atomic<bool>* cancel) {
  std::vector<ToprrResult> results(queries.size());
  if (queries.empty()) return results;
  const size_t workers =
      std::min(ResolveThreadCount(num_threads), queries.size());
  if (workers <= 1) {
    for (size_t i = 0; i < queries.size(); ++i) {
      results[i] = SolveOrCancel(*this, queries[i], cancel);
    }
    return results;
  }

  // No skyband warm-up pass here: the per-(k, version) once entries let
  // each worker build its own query's skyband outside the cache lock, so
  // a batch mixing k values computes them concurrently instead of
  // serially in the dispatching thread.

  // Claim queries through an atomic ticket instead of a mutex: the
  // per-query shared-state traffic is one fetch_add to claim and one to
  // retire, so the dispatch never serializes workers (the mutex is only
  // taken around the final wakeup). The shared_ptr keeps the claim state
  // alive for helper tasks that the pool only schedules after the batch
  // is done; such stragglers claim an out-of-range ticket and never
  // touch the engine, queries, or results.
  struct BatchState {
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
  };
  auto state = std::make_shared<BatchState>();
  const size_t count = queries.size();
  const ToprrQuery* query_ptr = queries.data();
  ToprrResult* result_ptr = results.data();
  auto drain = [this, state, query_ptr, result_ptr, count, cancel] {
    for (;;) {
      const size_t index =
          state->next.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) return;
      result_ptr[index] = SolveOrCancel(*this, query_ptr[index], cancel);
      // acq_rel + the waiter's acquire read makes every result write
      // visible to the caller; locking mu around the notify pairs with
      // the waiter's predicate check so the last wakeup cannot be lost.
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  ThreadPool& pool = SharedThreadPool();
  for (size_t i = 0; i + 1 < workers; ++i) pool.Submit(drain);
  drain();
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&state, count] {
    return state->done.load(std::memory_order_acquire) == count;
  });
  return results;
}

}  // namespace toprr
