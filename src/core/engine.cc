#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/result_region.h"
#include "core/scheduler.h"
#include "geom/hyperplane.h"
#include "pref/flat_region.h"
#include "topk/rskyband.h"
#include "topk/skyband.h"

namespace toprr {

ToprrEngine::ToprrEngine(const Dataset* data) : data_(data) {
  CHECK(data != nullptr);
#ifndef NDEBUG
  fingerprint_ = Fingerprint(*data);  // only the debug DCHECK reads it
#endif
}

double ToprrEngine::Fingerprint(const Dataset& data) {
  // Position-weighted sum: cheap, order-sensitive, and a single pass. Not
  // cryptographic -- it only needs to catch accidental in-place mutation.
  double digest = static_cast<double>(data.size()) * 1e9 +
                  static_cast<double>(data.dim()) * 1e6;
  for (size_t i = 0; i < data.size(); ++i) {
    const double* row = data.Row(i);
    for (size_t j = 0; j < data.dim(); ++j) {
      digest += row[j] * static_cast<double>((i * 31 + j) % 8191 + 1);
    }
  }
  return digest;
}

void ToprrEngine::CheckDatasetUnchanged() const {
#ifndef NDEBUG
  DCHECK_EQ(fingerprint_, Fingerprint(*data_))
      << "dataset mutated while a ToprrEngine was using it; call "
         "InvalidateCache() between mutation and the next query";
#endif
}

const std::vector<int>& ToprrEngine::KSkyband(int k) {
  SkybandSlot* slot;
  {
    // std::map nodes are stable: the slot pointer outlives later
    // insertions, and the contract forbids InvalidateCache while
    // queries hold references into it.
    std::lock_guard<std::mutex> lock(cache_mu_);
    slot = &skyband_cache_[k];
  }
  // The skyband build runs outside cache_mu_: concurrent queries with
  // distinct k compute their skybands in parallel, and callers of an
  // already-built k never contend with an in-flight build. call_once
  // makes duplicate first-touchers of the same k block only on each
  // other.
  std::call_once(slot->once,
                 [this, slot, k] { slot->ids = SortBasedKSkyband(*data_, k); });
  return slot->ids;
}

void ToprrEngine::InvalidateCache() {
  std::unique_lock<std::mutex> lock(cache_mu_);
  skyband_cache_.clear();
  if (region_cache_ != nullptr) region_cache_->Clear();
#ifndef NDEBUG
  fingerprint_ = Fingerprint(*data_);
#endif
}

void ToprrEngine::EnableRegionCache(const RegionCacheConfig& config) {
  region_cache_ = std::make_unique<RegionCache>(config);
}

namespace {

// Cacheable geometry: positive width everywhere (degenerate boxes cannot
// be partitioned) and inside the preference simplex (outside it the
// k-skyband is not a valid candidate superset, so such queries solve
// cold).
bool BoxIsCacheable(const PrefBox& box) {
  for (size_t j = 0; j < box.dim(); ++j) {
    if (!(box.lo[j] < box.hi[j])) return false;
  }
  return box.InsideSimplex();
}

}  // namespace

ToprrResult ToprrEngine::Solve(int k, const PrefBox& region,
                               const ToprrOptions& options) {
  CheckDatasetUnchanged();
  if (options.use_region_cache && region_cache_ != nullptr &&
      BoxIsCacheable(region)) {
    return SolveCachedBox(k, region, options);
  }
  const std::vector<int>& skyband = KSkyband(k);
  Timer filter_timer;
  const std::vector<int> candidates =
      options.use_rskyband_filter ? RSkyband(*data_, region, k, &skyband)
                                  : skyband;
  ToprrResult result = SolveToprrWithCandidates(
      *data_, k, PrefRegion::FromBox(region), candidates, options);
  result.stats.filter_seconds = filter_timer.Seconds();
  return result;
}

ToprrResult ToprrEngine::Solve(int k, const PrefRegion& region,
                               const ToprrOptions& options) {
  CheckDatasetUnchanged();
  if (options.use_region_cache && region_cache_ != nullptr) {
    // Wire queries arrive as general PrefRegions; recover the box when
    // the region is exactly one so serving traffic reaches the cache.
    const std::optional<PrefBox> box = BoxFromRegion(region);
    if (box.has_value() && BoxIsCacheable(*box)) {
      return SolveCachedBox(k, *box, options);
    }
  }
  const std::vector<int>& skyband = KSkyband(k);
  Timer filter_timer;
  const std::vector<int> candidates =
      options.use_rskyband_filter
          ? RSkybandVertices(*data_, region.vertices(), k, &skyband)
          : skyband;
  ToprrResult result =
      SolveToprrWithCandidates(*data_, k, region, candidates, options);
  result.stats.filter_seconds = filter_timer.Seconds();
  return result;
}

ToprrResult ToprrEngine::SolveCachedBox(int k, const PrefBox& box,
                                        const ToprrOptions& options) {
  RegionCache& cache = *region_cache_;
  const std::string signature = CacheSignature(options);
  Timer total;
  if (std::shared_ptr<const RegionCacheEntry> entry =
          cache.FindContaining(k, signature, box)) {
    ToprrResult result =
        AssembleFromCells(entry->cells, entry->candidates, k, box, options);
    result.stats.scheduler.cache_hits = 1;
    result.stats.scheduler.cache_tasks_saved = entry->regions_tested;
    result.stats.total_seconds = total.Seconds();
    return result;
  }
  if (cache.config().enable_partial) {
    if (std::shared_ptr<const RegionCacheEntry> entry =
            cache.FindOverlap(k, signature, box)) {
      ToprrResult result =
          SolvePartialOverlap(k, box, options, std::move(entry));
      result.stats.total_seconds = total.Seconds();
      return result;
    }
  }
  cache.RecordMiss();
  ToprrResult result = SolveColdAndInsert(k, box, options, signature);
  result.stats.total_seconds = total.Seconds();
  return result;
}

ToprrResult ToprrEngine::AssembleFromCells(const std::vector<FlatCell>& cells,
                                           const std::vector<int>& candidates,
                                           int k, const PrefBox& box,
                                           const ToprrOptions& options) {
  ToprrResult result;
  result.stats.candidates_after_filter = candidates.size();
  GeomArena arena;
  std::vector<Vec> vall;
  AppendCellsClippedToBox(cells, box, options.eps, &arena, &vall);
  Timer phase;
  result.stats.vall_raw = vall.size();
  result.vall = DedupVertices(vall);
  result.stats.vall_unique = result.vall.size();
  AssembleResultRegion(*data_, candidates, k, result.vall, options, &result);
  result.stats.assemble_seconds = phase.Seconds();
  return result;
}

ToprrResult ToprrEngine::SolvePartialOverlap(
    int k, const PrefBox& box, const ToprrOptions& options,
    std::shared_ptr<const RegionCacheEntry> entry) {
  const std::optional<PrefBox> core = IntersectBoxes(box, entry->box);
  CHECK(core.has_value());  // FindOverlap guarantees positive widths
  const std::vector<PrefBox> remainder = GuillotineRemainder(box, *core);

  // Fresh candidates for the whole query box: a valid superset for the
  // frontier sub-boxes and for the reused core alike.
  const std::vector<int>& skyband = KSkyband(k);
  Timer filter_timer;
  std::vector<int> candidates = options.use_rskyband_filter
                                    ? RSkyband(*data_, box, k, &skyband)
                                    : skyband;
  const double filter_seconds = filter_timer.Seconds();

  // Resume the uncovered remainder as a scheduler frontier. Root ids sit
  // in one power-of-two band (base .. base + n - 1, base = smallest
  // power of two >= n), so every root's heap-path subtree is disjoint
  // and the id-ordered merge stays deterministic.
  Timer phase;
  uint64_t base = 1;
  while (base < remainder.size()) base <<= 1;
  std::vector<RegionTask> roots;
  roots.reserve(remainder.size());
  for (size_t i = 0; i < remainder.size(); ++i) {
    RegionTask task;
    task.id = base + i;
    task.region = FlatRegion::FromBox(remainder[i]);
    task.candidates = candidates;
    task.k = k;
    roots.push_back(std::move(task));
  }
  const PartitionConfig config = PartitionConfigFromOptions(options);
  PartitionScheduler scheduler(*data_, config);
  PartitionOutput frontier = scheduler.RunFrontier(std::move(roots));

  ToprrResult result;
  result.stats.candidates_after_filter = candidates.size();
  result.stats.filter_seconds = filter_seconds;
  result.stats.partition_seconds = phase.Seconds();
  result.stats.regions_tested = frontier.regions_tested;
  result.stats.regions_accepted = frontier.regions_accepted;
  result.stats.regions_split = frontier.regions_split;
  result.stats.kipr_accepts = frontier.kipr_accepts;
  result.stats.lemma7_accepts = frontier.lemma7_accepts;
  result.stats.lemma5_prunes = frontier.lemma5_prunes;
  result.stats.scheduler = std::move(frontier.scheduler);
  result.stats.scheduler.cache_partial_hits = 1;
  if (frontier.timed_out) {
    result.timed_out = true;
    result.cancelled = frontier.cancelled;
    return result;
  }

  // Merge: reused core cells (stored id order) first, then the frontier
  // vall -- deterministic for a given cache state.
  GeomArena arena;
  std::vector<Vec> vall;
  const size_t reused =
      AppendCellsClippedToBox(entry->cells, *core, options.eps, &arena,
                              &vall);
  result.stats.scheduler.cache_tasks_saved = reused;
  for (Vec& v : frontier.vall) vall.push_back(std::move(v));
  Timer assemble;
  result.stats.vall_raw = vall.size();
  result.vall = DedupVertices(vall);
  result.stats.vall_unique = result.vall.size();
  AssembleResultRegion(*data_, candidates, k, result.vall, options, &result);
  result.stats.assemble_seconds = assemble.Seconds();
  return result;
}

ToprrResult ToprrEngine::SolveColdAndInsert(int k, const PrefBox& box,
                                            const ToprrOptions& options,
                                            const std::string& signature) {
  RegionCache& cache = *region_cache_;
  const PrefBox canon = cache.Canonicalize(box);

  // The canonical root, clipped against the preference simplex when the
  // outward snap poked past it (the clipped region still contains every
  // in-simplex query box that canonicalizes here).
  const std::vector<int>& skyband = KSkyband(k);
  Timer filter_timer;
  PrefRegion root;
  std::vector<int> candidates;
  bool root_ok = true;
  if (canon.InsideSimplex()) {
    root = PrefRegion::FromBox(canon);
    candidates = options.use_rskyband_filter
                     ? RSkyband(*data_, canon, k, &skyband)
                     : skyband;
  } else {
    const Hyperplane simplex(Vec(canon.dim(), 1.0), 1.0);
    PrefRegionSplit split =
        PrefRegion::FromBox(canon).Split(simplex, options.eps);
    if (split.below.has_value() && !split.below->empty()) {
      root = std::move(*split.below);
      candidates = options.use_rskyband_filter
                       ? RSkybandVertices(*data_, root.vertices(), k,
                                          &skyband)
                       : skyband;
    } else {
      root_ok = false;
    }
  }
  if (!root_ok) {
    // Clipping degenerated (a sliver box hugging the simplex facet):
    // solve the query cold, uncached.
    ToprrOptions cold = options;
    cold.use_region_cache = false;
    ToprrResult result = Solve(k, box, cold);
    result.stats.scheduler.cache_misses = 1;
    return result;
  }
  const double filter_seconds = filter_timer.Seconds();

  std::vector<FlatCell> cells;
  ToprrResult canon_result = SolveToprrWithCandidates(
      *data_, k, root, candidates, options, &cells);
  if (canon_result.timed_out) {
    // Incomplete partitions are never cached, and a timed-out result is
    // unusable by contract, so hand it back as-is.
    canon_result.stats.filter_seconds = filter_seconds;
    canon_result.stats.scheduler.cache_misses = 1;
    return canon_result;
  }

  auto entry = std::make_shared<RegionCacheEntry>();
  entry->box = canon;
  entry->k = k;
  entry->signature = signature;
  entry->candidates = std::move(candidates);
  entry->cells = std::move(cells);
  entry->regions_tested = canon_result.stats.regions_tested;

  // Assemble the query's own result from the entry cells -- the same
  // tail as a cache hit, which is what makes hits bit-identical to the
  // miss that populated them.
  ToprrResult result =
      AssembleFromCells(entry->cells, entry->candidates, k, box, options);
  const size_t evicted = cache.Insert(entry);

  // Graft the canonical solve's partition telemetry onto the clipped
  // result.
  result.stats.regions_tested = canon_result.stats.regions_tested;
  result.stats.regions_accepted = canon_result.stats.regions_accepted;
  result.stats.regions_split = canon_result.stats.regions_split;
  result.stats.kipr_accepts = canon_result.stats.kipr_accepts;
  result.stats.lemma7_accepts = canon_result.stats.lemma7_accepts;
  result.stats.lemma5_prunes = canon_result.stats.lemma5_prunes;
  result.stats.scheduler = std::move(canon_result.stats.scheduler);
  result.stats.scheduler.cache_misses = 1;
  result.stats.scheduler.cache_evicted_bytes = evicted;
  result.stats.filter_seconds = filter_seconds;
  result.stats.partition_seconds = canon_result.stats.partition_seconds;
  return result;
}

ToprrResult ToprrEngine::Solve(const ToprrQuery& query) {
  return Solve(query.k, query.region, query.options);
}

namespace {

// One query of a batch under a batch-level cancel flag: unclaimed work
// after cancellation resolves to an explicit cancelled result, claimed
// work inherits the flag so the scheduler aborts it at the next poll.
ToprrResult SolveOrCancel(ToprrEngine& engine, const ToprrQuery& query,
                          const std::atomic<bool>* cancel) {
  if (cancel == nullptr) return engine.Solve(query);
  if (cancel->load(std::memory_order_relaxed)) {
    ToprrResult result;
    result.timed_out = true;
    result.cancelled = true;
    return result;
  }
  if (query.options.cancel != nullptr) return engine.Solve(query);
  ToprrQuery cancellable = query;
  cancellable.options.cancel = cancel;
  return engine.Solve(cancellable);
}

}  // namespace

std::vector<ToprrResult> ToprrEngine::SolveBatch(
    const std::vector<ToprrQuery>& queries, int num_threads,
    const std::atomic<bool>* cancel) {
  std::vector<ToprrResult> results(queries.size());
  if (queries.empty()) return results;
  const size_t workers =
      std::min(ResolveThreadCount(num_threads), queries.size());
  if (workers <= 1) {
    for (size_t i = 0; i < queries.size(); ++i) {
      results[i] = SolveOrCancel(*this, queries[i], cancel);
    }
    return results;
  }

  // No skyband warm-up pass here: the per-k once slots let each worker
  // build its own query's skyband outside the cache lock, so a batch
  // mixing k values computes them concurrently instead of serially in
  // the dispatching thread.

  // Claim queries through an atomic ticket instead of a mutex: the
  // per-query shared-state traffic is one fetch_add to claim and one to
  // retire, so the dispatch never serializes workers (the mutex is only
  // taken around the final wakeup). The shared_ptr keeps the claim state
  // alive for helper tasks that the pool only schedules after the batch
  // is done; such stragglers claim an out-of-range ticket and never
  // touch the engine, queries, or results.
  struct BatchState {
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
  };
  auto state = std::make_shared<BatchState>();
  const size_t count = queries.size();
  const ToprrQuery* query_ptr = queries.data();
  ToprrResult* result_ptr = results.data();
  auto drain = [this, state, query_ptr, result_ptr, count, cancel] {
    for (;;) {
      const size_t index =
          state->next.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) return;
      result_ptr[index] = SolveOrCancel(*this, query_ptr[index], cancel);
      // acq_rel + the waiter's acquire read makes every result write
      // visible to the caller; locking mu around the notify pairs with
      // the waiter's predicate check so the last wakeup cannot be lost.
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  ThreadPool& pool = SharedThreadPool();
  for (size_t i = 0; i + 1 < workers; ++i) pool.Submit(drain);
  drain();
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&state, count] {
    return state->done.load(std::memory_order_acquire) == count;
  });
  return results;
}

}  // namespace toprr
