#include "core/impact.h"

#include <algorithm>

#include "common/check.h"
#include "core/partition.h"
#include "geom/convex_hull.h"
#include "topk/rskyband.h"

namespace toprr {

ImpactRegionsResult ComputeImpactRegions(const Dataset& data, int option_id,
                                         int k, const PrefBox& region,
                                         double time_budget_seconds) {
  CHECK_GE(option_id, 0);
  CHECK_LT(static_cast<size_t>(option_id), data.size());
  const std::vector<int> candidates = RSkyband(data, region, k);

  PartitionConfig config;
  config.use_lemma5 = true;   // pruned options are recorded per region
  config.use_lemma7 = false;  // need true kIPRs: membership must be exact
  config.use_kswitch = true;
  config.collect_regions = true;
  config.time_budget_seconds = time_budget_seconds;

  const PartitionOutput out = PartitionPreferenceRegion(
      data, candidates, k, PrefRegion::FromBox(region), config);

  ImpactRegionsResult result;
  result.timed_out = out.timed_out;
  size_t favorable = 0;
  double favorable_volume = 0.0;
  double total_volume = 0.0;
  for (const AcceptedRegion& cell : out.regions) {
    // Cell volumes for the impact probability (1-D cells are intervals;
    // higher dimensions triangulate the vertex hull).
    double cell_volume = 0.0;
    if (cell.region.dim() == 1) {
      double lo = 1.0;
      double hi = 0.0;
      for (const Vec& v : cell.region.vertices()) {
        lo = std::min(lo, v[0]);
        hi = std::max(hi, v[0]);
      }
      cell_volume = std::max(0.0, hi - lo);
    } else {
      cell_volume = ConvexHullVolume(cell.region.vertices());
    }
    total_volume += cell_volume;
    if (std::binary_search(cell.topk_ids.begin(), cell.topk_ids.end(),
                           option_id)) {
      ++favorable;
      favorable_volume += cell_volume;
      result.favorable.push_back(cell.region);
    }
  }
  if (!out.regions.empty()) {
    result.cell_fraction =
        static_cast<double>(favorable) / out.regions.size();
  }
  if (total_volume > 0.0) {
    result.volume_fraction = favorable_volume / total_volume;
  }
  return result;
}

}  // namespace toprr
