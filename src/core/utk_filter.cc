#include "core/utk_filter.h"

#include "core/partition.h"
#include "pref/region.h"
#include "topk/rskyband.h"

namespace toprr {

std::vector<int> ExactTopkUnion(const Dataset& data, const PrefBox& region,
                                int k, double time_budget_seconds) {
  const std::vector<int> candidates = RSkyband(data, region, k);
  PartitionConfig config;
  config.use_lemma5 = true;    // safe: pruned options are recorded
  config.use_lemma7 = false;   // must reach true kIPRs for exactness
  config.use_kswitch = true;   // fewer splits, still exact
  config.collect_topk_union = true;
  config.time_budget_seconds = time_budget_seconds;
  const PartitionOutput out = PartitionPreferenceRegion(
      data, candidates, k, PrefRegion::FromBox(region), config);
  return out.topk_union;
}

}  // namespace toprr
