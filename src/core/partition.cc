#include "core/partition.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "core/scheduler.h"
#include "pref/flat_region.h"
#include "pref/pref_space.h"
#include "topk/score_kernel.h"
#include "topk/topk.h"

namespace toprr {
namespace {

// A view over the first `size` pooled profiles of a ScoreArena (or a
// plain local vector on the naive path). The arena's profile pool never
// shrinks, so the region's vertex count is carried here instead of in
// the container's size.
struct ProfileSpan {
  TopkResult* data = nullptr;
  size_t count = 0;

  TopkResult& operator[](size_t i) const { return data[i]; }
  size_t size() const { return count; }
  TopkResult* begin() const { return data; }
  TopkResult* end() const { return data + count; }
};

// Per-vertex top-k profiles for a region: the kernel path gathers the
// candidate pool into the arena's SoA block once and sweeps the task's
// flat vertex buffer in place (reusing rows memoized by the parent
// split, if any); the naive path is the reference per-vertex scan it
// must match bit for bit.
void ComputeProfiles(const DatasetView& data, const RegionTask& work,
                     ScoreKernel* kernel, const ProfileSpan& profiles) {
  const FlatRegion& region = work.region;
  const size_t num_vertices = region.num_vertices();
  if (kernel != nullptr) {
    kernel->LoadBlock(data, work.candidates);
    kernel->ScoreVertices(region.coords().data(), num_vertices,
                          work.parent_scores.get());
    for (size_t v = 0; v < num_vertices; ++v) {
      kernel->TopKInto(v, work.k, profiles[v]);
    }
  } else {
    for (size_t v = 0; v < num_vertices; ++v) {
      profiles[v] = ComputeTopKReduced(data, work.candidates,
                                       region.VertexVec(v), work.k);
    }
  }
}

// True if the first `count` entries of every profile form the same id set.
bool SamePrefixSet(const ProfileSpan& profiles, size_t count) {
  std::vector<int> reference;
  for (size_t p = 0; p < profiles.size(); ++p) {
    std::vector<int> ids;
    ids.reserve(count);
    for (size_t i = 0; i < count; ++i) ids.push_back(profiles[p].entries[i].id);
    std::sort(ids.begin(), ids.end());
    if (p == 0) {
      reference = std::move(ids);
    } else if (ids != reference) {
      return false;
    }
  }
  return true;
}

// Applies Lemma 5: removes the largest common top-lambda prefix set
// (lambda < k) from the candidate pool and decrements k. Profiles are
// updated in place by dropping their first lambda entries (the remaining
// entries are exactly the top-(k-lambda) of the reduced pool).
// Returns lambda (0 when nothing was pruned).
int ApplyLemma5(const ProfileSpan& profiles, RegionTask& work) {
  const int k = work.k;
  if (k <= 1) return 0;
  int lambda = 0;
  for (int cand = k - 1; cand >= 1; --cand) {
    if (SamePrefixSet(profiles, static_cast<size_t>(cand))) {
      lambda = cand;
      break;
    }
  }
  if (lambda == 0) return 0;

  std::vector<int> phi;
  phi.reserve(lambda);
  for (int i = 0; i < lambda; ++i) phi.push_back(profiles[0].entries[i].id);
  std::sort(phi.begin(), phi.end());

  std::vector<int> reduced;
  reduced.reserve(work.candidates.size() - phi.size());
  for (int id : work.candidates) {
    if (!std::binary_search(phi.begin(), phi.end(), id)) {
      reduced.push_back(id);
    }
  }
  work.candidates = std::move(reduced);
  work.k -= lambda;
  work.pruned.insert(work.pruned.end(), phi.begin(), phi.end());
  for (TopkResult& profile : profiles) {
    profile.entries.erase(profile.entries.begin(),
                          profile.entries.begin() + lambda);
  }
  return lambda;
}

// Candidate splitting pair (pz1, pz2) whose score-equality hyperplane is
// proposed as the cut.
using SplitPair = std::pair<int, int>;

// k-switch hyperplane selection (Definition 4) for a Case-1 violation
// between vertices va and vb. Returns (-1, -1) when LC is empty for both
// orientations. With a live kernel the vertex scores are read from its
// scored buffer (bit-identical to rescoring, see topk/score_kernel.h);
// without one they are recomputed from the flat vertex buffer.
SplitPair KSwitchPair(const DatasetView& data, const FlatRegion& region,
                      const ProfileSpan& profiles, const ScoreKernel* kernel,
                      size_t va, size_t vb) {
  const size_t m = region.dim();
  const auto attempt = [&](size_t a, size_t b) -> SplitPair {
    const double* xa = region.vertex(a);
    const int pz1 = profiles[a].KthId();
    const double pz1_at_a = kernel != nullptr
                                ? kernel->ScoreOf(a, pz1)
                                : ReducedScore(data.Row(pz1), xa, m);
    const double pz1_at_b =
        kernel != nullptr
            ? kernel->ScoreOf(b, pz1)
            : ReducedScore(data.Row(pz1), region.vertex(b), m);
    int best = -1;
    double best_gap = 0.0;
    for (const ScoredOption& entry : profiles[b].entries) {
      const int p = entry.id;
      if (p == pz1) continue;
      const double p_at_a = kernel != nullptr
                                ? kernel->ScoreOf(a, p)
                                : ReducedScore(data.Row(p), xa, m);
      const double p_at_b = entry.score;
      if (p_at_a < pz1_at_a && p_at_b > pz1_at_b) {
        const double gap = pz1_at_a - p_at_a;
        if (best < 0 || gap < best_gap) {
          best = p;
          best_gap = gap;
        }
      }
    }
    return {pz1, best};
  };
  SplitPair pair = attempt(va, vb);
  if (pair.second >= 0) return pair;
  pair = attempt(vb, va);
  if (pair.second >= 0) return pair;
  return {-1, -1};
}

// Builds an ordered list of splitting pairs to try. The first entry is the
// method's primary choice; the rest are fallbacks guaranteeing progress
// under numeric ties. `salt` drives the pseudo-random pair choice of the
// non-k-switch strategy (the paper's TAS picks a violating pair at
// random; we use a deterministic per-region hash for reproducibility).
std::vector<SplitPair> ChooseSplitPairs(
    const DatasetView& data, const FlatRegion& region,
    const ProfileSpan& profiles, const ScoreKernel* kernel,
    const PartitionConfig& config, uint64_t salt) {
  std::vector<SplitPair> pairs;
  const size_t nv = profiles.size();
  const auto push_unique = [&pairs](int a, int b) {
    if (a == b || a < 0 || b < 0) return;
    for (const SplitPair& p : pairs) {
      if ((p.first == a && p.second == b) ||
          (p.first == b && p.second == a)) {
        return;
      }
    }
    pairs.emplace_back(a, b);
  };

  if (config.ordered_invariance) {
    // PAC: first rank position where two vertices' ordered lists differ.
    for (size_t a = 0; a < nv; ++a) {
      for (size_t b = a + 1; b < nv; ++b) {
        const auto& ea = profiles[a].entries;
        const auto& eb = profiles[b].entries;
        for (size_t r = 0; r < ea.size(); ++r) {
          if (ea[r].id != eb[r].id) {
            push_unique(ea[r].id, eb[r].id);
            break;
          }
        }
      }
    }
    return pairs;
  }

  // Locate a Case-1 violation (different top-k sets). Each vertex's
  // sorted id set is materialized once; the old code re-sorted inside
  // every pairwise comparison.
  std::vector<std::vector<int>> id_sets(nv);
  for (size_t v = 0; v < nv; ++v) id_sets[v] = profiles[v].IdSet();
  size_t va = nv;
  size_t vb = nv;
  for (size_t a = 0; a < nv && va == nv; ++a) {
    for (size_t b = a + 1; b < nv; ++b) {
      if (id_sets[a] != id_sets[b]) {
        va = a;
        vb = b;
        break;
      }
    }
  }

  if (va < nv) {
    if (config.use_kswitch) {
      const SplitPair ks =
          KSwitchPair(data, region, profiles, kernel, va, vb);
      if (ks.second >= 0) push_unique(ks.first, ks.second);
    }
    // Plain Case-1 pairs: options in one set but not the other, tried in
    // a pseudo-random rotation (the paper's TAS chooses among them at
    // random).
    const std::vector<int>& sa = id_sets[va];
    const std::vector<int>& sb = id_sets[vb];
    std::vector<int> only_a;
    std::vector<int> only_b;
    std::set_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(only_a));
    std::set_difference(sb.begin(), sb.end(), sa.begin(), sa.end(),
                        std::back_inserter(only_b));
    const size_t combos = only_a.size() * only_b.size();
    if (combos > 0) {
      // splitmix64 step over the salt for a well-scrambled start index.
      uint64_t z = salt + 0x9e3779b97f4a7c15ULL;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      z ^= z >> 31;
      const size_t start = static_cast<size_t>(z % combos);
      for (size_t step = 0; step < combos; ++step) {
        const size_t idx = (start + step) % combos;
        push_unique(only_a[idx / only_b.size()],
                    only_b[idx % only_b.size()]);
      }
    }
  }

  // Case-2 pairs: same sets, different top-k-th options.
  for (size_t a = 0; a < nv; ++a) {
    for (size_t b = a + 1; b < nv; ++b) {
      if (profiles[a].KthId() != profiles[b].KthId()) {
        push_unique(profiles[a].KthId(), profiles[b].KthId());
      }
    }
  }
  return pairs;
}

// Sorted deduplicated union of the profiles' entry ids (ascending), the
// sorted-vector replacement for the old throwaway std::set unions.
std::vector<int> SortedEntryUnion(const ProfileSpan& profiles,
                                  std::vector<int> seed) {
  std::vector<int> ids = std::move(seed);
  size_t total = ids.size();
  for (const TopkResult& profile : profiles) total += profile.entries.size();
  ids.reserve(total);
  for (const TopkResult& profile : profiles) {
    for (const ScoredOption& e : profile.entries) ids.push_back(e.id);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

// Exhaustive fallback when every preferred pair's hyperplane fails to cut
// (possible under exact score ties at region vertices, where Lemma 4's
// strictness argument degenerates): any pair of options from the union of
// the vertices' top-k sets whose *strict* score order flips between two
// vertices is guaranteed to strictly separate those vertices, hence to
// cut the region. If no such pair exists, every ranking difference across
// the region is a tie and accepting the region is correct.
std::vector<SplitPair> ExhaustiveFlipPairs(
    const DatasetView& data, const FlatRegion& region,
    const ProfileSpan& profiles, double eps) {
  const std::vector<int> options = SortedEntryUnion(profiles, {});
  const size_t num_vertices = region.num_vertices();
  const size_t m = region.dim();
  std::vector<SplitPair> pairs;
  for (size_t i = 0; i < options.size(); ++i) {
    for (size_t j = i + 1; j < options.size(); ++j) {
      bool positive = false;
      bool negative = false;
      for (size_t v = 0; v < num_vertices; ++v) {
        const double diff =
            ReducedScoreDiff(data.Row(options[i]), data.Row(options[j]),
                             region.vertex(v), m);
        if (diff > eps) positive = true;
        if (diff < -eps) negative = true;
        if (positive && negative) break;
      }
      if (positive && negative) pairs.emplace_back(options[i], options[j]);
    }
  }
  return pairs;
}

// Fills the acceptance payload of `out` from an accepted task.
void FillAcceptPayload(const DatasetView& data, const PartitionConfig& config,
                       RegionTask& work, const ProfileSpan& profiles,
                       RegionOutcome& out) {
  out.accepted = true;
  const size_t num_vertices = work.region.num_vertices();
  out.vall.reserve(num_vertices);
  for (size_t v = 0; v < num_vertices; ++v) {
    out.vall.push_back(work.region.VertexVec(v));
  }
  if (config.collect_topk_union) {
    out.topk_ids = SortedEntryUnion(profiles, work.pruned);
  }
  if (config.collect_regions) {
    // Evaluate the set at the centroid: ties are confined to cell
    // boundaries, so the interior point reports the cell's true top-k
    // set even when vertex evaluations are tie-ambiguous.
    const TopkResult center_topk = ComputeTopKReduced(
        data, work.candidates, work.region.Centroid(), work.k);
    std::vector<int> ids = work.pruned;
    ids.reserve(ids.size() + center_topk.entries.size());
    for (const ScoredOption& e : center_topk.entries) ids.push_back(e.id);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    out.cell = AcceptedRegion{work.region.ToRegion(), std::move(ids)};
  }
  if (config.collect_flat_cells) {
    // Copy (not move): `vall` above already snapshotted the vertices, and
    // the region itself must survive for the cache entry.
    out.flat_cell = work.region;
  }
}

}  // namespace

RegionOutcome TestAndSplitRegion(const DatasetView& data,
                                 const PartitionConfig& config,
                                 RegionTask work, ScoreArena* arena,
                                 GeomArena* geom_arena) {
  RegionOutcome out;
  if (GlobalLogLevel() == LogLevel::kDebug) {
    LOG(DEBUG) << "region " << work.id << ": |V|="
               << work.region.num_vertices() << " |F|="
               << work.region.num_facets() << " |D'|="
               << work.candidates.size() << " k=" << work.k;
  }

  // Scratch arenas: the scheduler passes its worker's; direct callers
  // fall back to call-local ones (correct, just without cross-region
  // buffer reuse).
  ScoreArena local_arena;
  ScoreArena& scratch = arena != nullptr ? *arena : local_arena;
  GeomArena local_geom_arena;
  GeomArena& geom_scratch =
      geom_arena != nullptr ? *geom_arena : local_geom_arena;
  std::optional<ScoreKernel> kernel;
  std::vector<TopkResult> naive_profiles;
  ProfileSpan profiles;
  const size_t num_vertices = work.region.num_vertices();
  if (config.use_score_kernel) {
    kernel.emplace(scratch);
    profiles = ProfileSpan{scratch.Profiles(num_vertices).data(),
                           num_vertices};
  } else {
    naive_profiles.resize(num_vertices);
    profiles = ProfileSpan{naive_profiles.data(), num_vertices};
  }
  ScoreKernel* kernel_ptr = kernel.has_value() ? &*kernel : nullptr;

  ComputeProfiles(data, work, kernel_ptr, profiles);
  if (config.use_lemma5 && ApplyLemma5(profiles, work) > 0) {
    out.lemma5_pruned = true;
  }

  // Acceptance test.
  bool accepted = false;
  if (config.ordered_invariance) {
    accepted = true;
    for (size_t p = 1; p < profiles.size() && accepted; ++p) {
      for (size_t r = 0; r < profiles[0].entries.size(); ++r) {
        if (profiles[p].entries[r].id != profiles[0].entries[r].id) {
          accepted = false;
          break;
        }
      }
    }
    if (accepted) out.kipr_accept = true;
  } else {
    // Plain kIPR test (Lemma 3): same top-k set, same top-k-th option.
    const bool same_set = SamePrefixSet(profiles, profiles[0].entries.size());
    bool same_kth = true;
    for (size_t p = 1; p < profiles.size(); ++p) {
      if (profiles[p].KthId() != profiles[0].KthId()) {
        same_kth = false;
        break;
      }
    }
    if (same_set && same_kth) {
      accepted = true;
      out.kipr_accept = true;
    } else if (config.use_lemma7) {
      // Optimized test (Lemma 7, via Lemma 6): if every vertex shares
      // the same top-(k-1) set, the impact halfspaces at the vertices
      // already define the region's TopRR solution. k == 1 is Lemma 6
      // directly: no invariance needed at all.
      if (work.k == 1 ||
          SamePrefixSet(profiles, static_cast<size_t>(work.k - 1))) {
        accepted = true;
        out.lemma7_accept = true;
      }
    }
  }
  if (accepted) {
    FillAcceptPayload(data, config, work, profiles, out);
    return out;
  }

  // Split. Try the method's preferred pair first; fall back to any
  // violating pair whose hyperplane actually cuts the region (Lemma 4
  // guarantees one exists up to numeric ties). The pseudo-random pair
  // rotation is salted with the task's tree id, which is independent of
  // execution order (see core/scheduler.h).
  std::vector<SplitPair> pairs = ChooseSplitPairs(
      data, work.region, profiles, kernel_ptr, config, work.id);
  // Splitting runs through the flat-geometry engine (fused classify
  // sweep, arena scratch) unless the legacy baseline was requested, in
  // which case the region round-trips through PrefRegion::Split -- the
  // conversions are exact, so the toggle changes performance only
  // (asserted by flat_geometry_test).
  std::optional<FlatRegion> below;
  std::optional<FlatRegion> above;
  const auto try_split = [&](const Hyperplane& plane) {
    if (config.use_flat_geometry) {
      work.region.Split(plane, config.eps, geom_scratch, &below, &above);
    } else {
      below.reset();
      above.reset();
      PrefRegionSplit split =
          work.region.ToRegion().Split(plane, config.eps);
      if (split.below.has_value()) {
        below = FlatRegion::FromRegion(*split.below);
      }
      if (split.above.has_value()) {
        above = FlatRegion::FromRegion(*split.above);
      }
    }
    return below.has_value() && above.has_value();
  };
  for (int attempt = 0; attempt < 2; ++attempt) {
    for (const SplitPair& pair : pairs) {
      const Hyperplane plane = ScoreEqualityHyperplane(
          data.Row(pair.first), data.Row(pair.second), work.region.dim());
      if (plane.normal.MaxAbs() <= config.eps) continue;  // identical
      if (try_split(plane)) {
        // Child ids must not wrap: a wrapped id would silently break the
        // executors' bit-identical-merge contract (duplicate sort keys).
        // Depth > 62 means eps-scale slivers split dozens of times; fail
        // loudly rather than return a nondeterministically-ordered result.
        CHECK_LT(work.id, uint64_t{1} << 62)
            << "partition tree deeper than 62 levels; deterministic "
               "task ids exhausted (pathological input or eps too small)";
        // Hand the surviving candidates' vertex scores to both children:
        // their pool at profile time is exactly work.candidates, so a
        // child vertex inherited from this region costs a row copy
        // instead of a rescore.
        std::shared_ptr<const VertexScoreCache> cache;
        if (kernel.has_value()) {
          cache = kernel->MakeCache(work.region.coords().data(),
                                    num_vertices, work.candidates);
        }
        out.below = RegionTask{2 * work.id, std::move(*below),
                               work.candidates, work.k, work.pruned, cache};
        out.above =
            RegionTask{2 * work.id + 1, std::move(*above),
                       std::move(work.candidates), work.k,
                       std::move(work.pruned), std::move(cache)};
        return out;
      }
    }
    if (attempt == 0) {
      pairs = ExhaustiveFlipPairs(data, work.region, profiles, config.eps);
    }
  }

  // Every violating pair is an epsilon-tie across this region; accept
  // within tolerance (see DESIGN.md, numeric robustness).
  LOG(DEBUG) << "no cutting hyperplane found for a non-invariant "
             << "region; accepting within tolerance";
  FillAcceptPayload(data, config, work, profiles, out);
  return out;
}

PartitionOutput PartitionPreferenceRegion(const DatasetView& data,
                                          const std::vector<int>& candidates,
                                          int k, const PrefRegion& root,
                                          const PartitionConfig& config) {
  CHECK_GT(k, 0);
  CHECK_GE(candidates.size(), static_cast<size_t>(k))
      << "candidate pool smaller than k";
  PartitionScheduler scheduler(data, config);
  return scheduler.Run(RegionTask{1, FlatRegion::FromRegion(root),
                                  candidates, k, {}, nullptr});
}

}  // namespace toprr
