#include "core/partition.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "core/scheduler.h"
#include "pref/pref_space.h"
#include "topk/topk.h"

namespace toprr {
namespace {

// Per-vertex top-k profiles for a region.
std::vector<TopkResult> ComputeProfiles(const Dataset& data,
                                        const RegionTask& work) {
  std::vector<TopkResult> profiles;
  profiles.reserve(work.region.vertices().size());
  for (const Vec& v : work.region.vertices()) {
    profiles.push_back(
        ComputeTopKReduced(data, work.candidates, v, work.k));
  }
  return profiles;
}

// True if the first `count` entries of every profile form the same id set.
bool SamePrefixSet(const std::vector<TopkResult>& profiles, size_t count) {
  std::vector<int> reference;
  for (size_t p = 0; p < profiles.size(); ++p) {
    std::vector<int> ids;
    ids.reserve(count);
    for (size_t i = 0; i < count; ++i) ids.push_back(profiles[p].entries[i].id);
    std::sort(ids.begin(), ids.end());
    if (p == 0) {
      reference = std::move(ids);
    } else if (ids != reference) {
      return false;
    }
  }
  return true;
}

// Applies Lemma 5: removes the largest common top-lambda prefix set
// (lambda < k) from the candidate pool and decrements k. Profiles are
// updated in place by dropping their first lambda entries (the remaining
// entries are exactly the top-(k-lambda) of the reduced pool).
// Returns lambda (0 when nothing was pruned).
int ApplyLemma5(std::vector<TopkResult>& profiles, RegionTask& work) {
  const int k = work.k;
  if (k <= 1) return 0;
  int lambda = 0;
  for (int cand = k - 1; cand >= 1; --cand) {
    if (SamePrefixSet(profiles, static_cast<size_t>(cand))) {
      lambda = cand;
      break;
    }
  }
  if (lambda == 0) return 0;

  std::vector<int> phi;
  phi.reserve(lambda);
  for (int i = 0; i < lambda; ++i) phi.push_back(profiles[0].entries[i].id);
  std::sort(phi.begin(), phi.end());

  std::vector<int> reduced;
  reduced.reserve(work.candidates.size() - phi.size());
  for (int id : work.candidates) {
    if (!std::binary_search(phi.begin(), phi.end(), id)) {
      reduced.push_back(id);
    }
  }
  work.candidates = std::move(reduced);
  work.k -= lambda;
  work.pruned.insert(work.pruned.end(), phi.begin(), phi.end());
  for (TopkResult& profile : profiles) {
    profile.entries.erase(profile.entries.begin(),
                          profile.entries.begin() + lambda);
  }
  return lambda;
}

// Candidate splitting pair (pz1, pz2) whose score-equality hyperplane is
// proposed as the cut.
using SplitPair = std::pair<int, int>;

// k-switch hyperplane selection (Definition 4) for a Case-1 violation
// between vertices va and vb. Returns (-1, -1) when LC is empty for both
// orientations.
SplitPair KSwitchPair(const Dataset& data, const PrefRegion& region,
                      const std::vector<TopkResult>& profiles, size_t va,
                      size_t vb) {
  const auto attempt = [&](size_t a, size_t b) -> SplitPair {
    const Vec& xa = region.vertices()[a];
    const Vec& xb = region.vertices()[b];
    const int pz1 = profiles[a].KthId();
    const double pz1_at_a = ReducedScore(data.Row(pz1), xa);
    const double pz1_at_b = ReducedScore(data.Row(pz1), xb);
    int best = -1;
    double best_gap = 0.0;
    for (const ScoredOption& entry : profiles[b].entries) {
      const int p = entry.id;
      if (p == pz1) continue;
      const double p_at_a = ReducedScore(data.Row(p), xa);
      const double p_at_b = entry.score;
      if (p_at_a < pz1_at_a && p_at_b > pz1_at_b) {
        const double gap = pz1_at_a - p_at_a;
        if (best < 0 || gap < best_gap) {
          best = p;
          best_gap = gap;
        }
      }
    }
    return {pz1, best};
  };
  SplitPair pair = attempt(va, vb);
  if (pair.second >= 0) return pair;
  pair = attempt(vb, va);
  if (pair.second >= 0) return pair;
  return {-1, -1};
}

// Builds an ordered list of splitting pairs to try. The first entry is the
// method's primary choice; the rest are fallbacks guaranteeing progress
// under numeric ties. `salt` drives the pseudo-random pair choice of the
// non-k-switch strategy (the paper's TAS picks a violating pair at
// random; we use a deterministic per-region hash for reproducibility).
std::vector<SplitPair> ChooseSplitPairs(
    const Dataset& data, const PrefRegion& region,
    const std::vector<TopkResult>& profiles, const PartitionConfig& config,
    uint64_t salt) {
  std::vector<SplitPair> pairs;
  const size_t nv = profiles.size();
  const auto push_unique = [&pairs](int a, int b) {
    if (a == b || a < 0 || b < 0) return;
    for (const SplitPair& p : pairs) {
      if ((p.first == a && p.second == b) ||
          (p.first == b && p.second == a)) {
        return;
      }
    }
    pairs.emplace_back(a, b);
  };

  if (config.ordered_invariance) {
    // PAC: first rank position where two vertices' ordered lists differ.
    for (size_t a = 0; a < nv; ++a) {
      for (size_t b = a + 1; b < nv; ++b) {
        const auto& ea = profiles[a].entries;
        const auto& eb = profiles[b].entries;
        for (size_t r = 0; r < ea.size(); ++r) {
          if (ea[r].id != eb[r].id) {
            push_unique(ea[r].id, eb[r].id);
            break;
          }
        }
      }
    }
    return pairs;
  }

  // Locate a Case-1 violation (different top-k sets).
  const std::vector<int> set0 = profiles[0].IdSet();
  size_t va = nv;
  size_t vb = nv;
  for (size_t a = 0; a < nv && va == nv; ++a) {
    for (size_t b = a + 1; b < nv; ++b) {
      if (profiles[a].IdSet() != profiles[b].IdSet()) {
        va = a;
        vb = b;
        break;
      }
    }
  }

  if (va < nv) {
    if (config.use_kswitch) {
      const SplitPair ks = KSwitchPair(data, region, profiles, va, vb);
      if (ks.second >= 0) push_unique(ks.first, ks.second);
    }
    // Plain Case-1 pairs: options in one set but not the other, tried in
    // a pseudo-random rotation (the paper's TAS chooses among them at
    // random).
    const std::vector<int> sa = profiles[va].IdSet();
    const std::vector<int> sb = profiles[vb].IdSet();
    std::vector<int> only_a;
    std::vector<int> only_b;
    std::set_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(only_a));
    std::set_difference(sb.begin(), sb.end(), sa.begin(), sa.end(),
                        std::back_inserter(only_b));
    const size_t combos = only_a.size() * only_b.size();
    if (combos > 0) {
      // splitmix64 step over the salt for a well-scrambled start index.
      uint64_t z = salt + 0x9e3779b97f4a7c15ULL;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      z ^= z >> 31;
      const size_t start = static_cast<size_t>(z % combos);
      for (size_t step = 0; step < combos; ++step) {
        const size_t idx = (start + step) % combos;
        push_unique(only_a[idx / only_b.size()],
                    only_b[idx % only_b.size()]);
      }
    }
  }

  // Case-2 pairs: same sets, different top-k-th options.
  for (size_t a = 0; a < nv; ++a) {
    for (size_t b = a + 1; b < nv; ++b) {
      if (profiles[a].KthId() != profiles[b].KthId()) {
        push_unique(profiles[a].KthId(), profiles[b].KthId());
      }
    }
  }
  return pairs;
}

// Exhaustive fallback when every preferred pair's hyperplane fails to cut
// (possible under exact score ties at region vertices, where Lemma 4's
// strictness argument degenerates): any pair of options from the union of
// the vertices' top-k sets whose *strict* score order flips between two
// vertices is guaranteed to strictly separate those vertices, hence to
// cut the region. If no such pair exists, every ranking difference across
// the region is a tie and accepting the region is correct.
std::vector<SplitPair> ExhaustiveFlipPairs(
    const Dataset& data, const PrefRegion& region,
    const std::vector<TopkResult>& profiles, double eps) {
  std::set<int> union_set;
  for (const TopkResult& profile : profiles) {
    for (const ScoredOption& e : profile.entries) union_set.insert(e.id);
  }
  const std::vector<int> options(union_set.begin(), union_set.end());
  const std::vector<Vec>& vertices = region.vertices();
  std::vector<SplitPair> pairs;
  for (size_t i = 0; i < options.size(); ++i) {
    for (size_t j = i + 1; j < options.size(); ++j) {
      bool positive = false;
      bool negative = false;
      for (const Vec& v : vertices) {
        const double diff = ReducedScoreDiff(data.Row(options[i]),
                                             data.Row(options[j]), v);
        if (diff > eps) positive = true;
        if (diff < -eps) negative = true;
        if (positive && negative) break;
      }
      if (positive && negative) pairs.emplace_back(options[i], options[j]);
    }
  }
  return pairs;
}

// Fills the acceptance payload of `out` from an accepted task.
void FillAcceptPayload(const Dataset& data, const PartitionConfig& config,
                       RegionTask& work,
                       const std::vector<TopkResult>& profiles,
                       RegionOutcome& out) {
  out.accepted = true;
  out.vall.assign(work.region.vertices().begin(),
                  work.region.vertices().end());
  if (config.collect_topk_union) {
    std::set<int> ids(work.pruned.begin(), work.pruned.end());
    for (const TopkResult& profile : profiles) {
      for (const ScoredOption& e : profile.entries) ids.insert(e.id);
    }
    out.topk_ids.assign(ids.begin(), ids.end());
  }
  if (config.collect_regions) {
    // Evaluate the set at the centroid: ties are confined to cell
    // boundaries, so the interior point reports the cell's true top-k
    // set even when vertex evaluations are tie-ambiguous.
    const TopkResult center_topk = ComputeTopKReduced(
        data, work.candidates, work.region.Centroid(), work.k);
    std::set<int> ids(work.pruned.begin(), work.pruned.end());
    for (const ScoredOption& e : center_topk.entries) ids.insert(e.id);
    out.cell = AcceptedRegion{std::move(work.region),
                              std::vector<int>(ids.begin(), ids.end())};
  }
}

}  // namespace

RegionOutcome TestAndSplitRegion(const Dataset& data,
                                 const PartitionConfig& config,
                                 RegionTask work) {
  RegionOutcome out;
  if (GlobalLogLevel() == LogLevel::kDebug) {
    LOG(DEBUG) << "region " << work.id << ": |V|="
               << work.region.vertices().size() << " |F|="
               << work.region.facets().size() << " |D'|="
               << work.candidates.size() << " k=" << work.k;
  }

  std::vector<TopkResult> profiles = ComputeProfiles(data, work);
  if (config.use_lemma5 && ApplyLemma5(profiles, work) > 0) {
    out.lemma5_pruned = true;
  }

  // Acceptance test.
  bool accepted = false;
  if (config.ordered_invariance) {
    accepted = true;
    for (size_t p = 1; p < profiles.size() && accepted; ++p) {
      for (size_t r = 0; r < profiles[0].entries.size(); ++r) {
        if (profiles[p].entries[r].id != profiles[0].entries[r].id) {
          accepted = false;
          break;
        }
      }
    }
    if (accepted) out.kipr_accept = true;
  } else {
    // Plain kIPR test (Lemma 3): same top-k set, same top-k-th option.
    const bool same_set = SamePrefixSet(profiles, profiles[0].entries.size());
    bool same_kth = true;
    for (size_t p = 1; p < profiles.size(); ++p) {
      if (profiles[p].KthId() != profiles[0].KthId()) {
        same_kth = false;
        break;
      }
    }
    if (same_set && same_kth) {
      accepted = true;
      out.kipr_accept = true;
    } else if (config.use_lemma7) {
      // Optimized test (Lemma 7, via Lemma 6): if every vertex shares
      // the same top-(k-1) set, the impact halfspaces at the vertices
      // already define the region's TopRR solution. k == 1 is Lemma 6
      // directly: no invariance needed at all.
      if (work.k == 1 ||
          SamePrefixSet(profiles, static_cast<size_t>(work.k - 1))) {
        accepted = true;
        out.lemma7_accept = true;
      }
    }
  }
  if (accepted) {
    FillAcceptPayload(data, config, work, profiles, out);
    return out;
  }

  // Split. Try the method's preferred pair first; fall back to any
  // violating pair whose hyperplane actually cuts the region (Lemma 4
  // guarantees one exists up to numeric ties). The pseudo-random pair
  // rotation is salted with the task's tree id, which is independent of
  // execution order (see core/scheduler.h).
  std::vector<SplitPair> pairs =
      ChooseSplitPairs(data, work.region, profiles, config, work.id);
  for (int attempt = 0; attempt < 2; ++attempt) {
    for (const SplitPair& pair : pairs) {
      const Hyperplane plane = ScoreEqualityHyperplane(
          data.Row(pair.first), data.Row(pair.second), work.region.dim());
      if (plane.normal.MaxAbs() <= config.eps) continue;  // identical
      PrefRegionSplit split = work.region.Split(plane, config.eps);
      if (split.below.has_value() && split.above.has_value()) {
        // Child ids must not wrap: a wrapped id would silently break the
        // executors' bit-identical-merge contract (duplicate sort keys).
        // Depth > 62 means eps-scale slivers split dozens of times; fail
        // loudly rather than return a nondeterministically-ordered result.
        CHECK_LT(work.id, uint64_t{1} << 62)
            << "partition tree deeper than 62 levels; deterministic "
               "task ids exhausted (pathological input or eps too small)";
        out.below = RegionTask{2 * work.id, std::move(*split.below),
                               work.candidates, work.k, work.pruned};
        out.above =
            RegionTask{2 * work.id + 1, std::move(*split.above),
                       std::move(work.candidates), work.k,
                       std::move(work.pruned)};
        return out;
      }
    }
    if (attempt == 0) {
      pairs = ExhaustiveFlipPairs(data, work.region, profiles, config.eps);
    }
  }

  // Every violating pair is an epsilon-tie across this region; accept
  // within tolerance (see DESIGN.md, numeric robustness).
  LOG(DEBUG) << "no cutting hyperplane found for a non-invariant "
             << "region; accepting within tolerance";
  FillAcceptPayload(data, config, work, profiles, out);
  return out;
}

PartitionOutput PartitionPreferenceRegion(const Dataset& data,
                                          const std::vector<int>& candidates,
                                          int k, const PrefRegion& root,
                                          const PartitionConfig& config) {
  CHECK_GT(k, 0);
  CHECK_GE(candidates.size(), static_cast<size_t>(k))
      << "candidate pool smaller than k";
  PartitionScheduler scheduler(data, config);
  return scheduler.Run(RegionTask{1, root, candidates, k, {}});
}

}  // namespace toprr
