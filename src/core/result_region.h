// Internal: assembly of the TopRR result region oR from the accumulated
// vertex set Vall (Theorem 1).
//
//   oR = intersection over v in Vall of oH(v), clipped to O = [0,1]^d,
//   oH(v) = { o : S_v(o) >= TopK(v) }.
//
// TopK(v) is evaluated against the r-skyband candidate superset, which by
// construction contains the top-k of every w in wR, so the k-th score is
// exact w.r.t. the full dataset.
#ifndef TOPRR_CORE_RESULT_REGION_H_
#define TOPRR_CORE_RESULT_REGION_H_

#include <vector>

#include "core/toprr.h"
#include "data/dataset.h"
#include "geom/vec.h"

namespace toprr {

/// Deduplicates Vall vertices (quantized) and returns the unique list.
std::vector<Vec> DedupVertices(const std::vector<Vec>& vall,
                               double tol = 1e-9);

/// Builds the result-region description (impact halfspaces + box), and --
/// when `build_geometry` -- the explicit vertices and the set of
/// supporting (irredundant) impact halfspaces. `candidates` is the filter
/// superset used for exact TopK evaluation, `k` the original parameter.
void AssembleResultRegion(const DatasetView& data,
                          const std::vector<int>& candidates, int k,
                          const std::vector<Vec>& vall_unique,
                          const ToprrOptions& options, ToprrResult* result);

}  // namespace toprr

#endif  // TOPRR_CORE_RESULT_REGION_H_
