#include "core/region_cache.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

#include "common/check.h"
#include "core/toprr.h"
#include "geom/hyperplane.h"
#include "pref/region.h"

namespace toprr {
namespace {

// Containment slack for box-in-box tests. Entry boxes are exact grid
// multiples and query boxes are arbitrary doubles; the slack only
// forgives last-ulp noise, never a geometric difference the quantum
// (>= 2^-30 in practice) could express.
constexpr double kBoxTol = 1e-12;

void AppendBytes(std::string& out, const void* data, size_t n) {
  out.append(reinterpret_cast<const char*>(data), n);
}

bool BoxContains(const PrefBox& outer, const PrefBox& inner) {
  for (size_t j = 0; j < outer.dim(); ++j) {
    if (outer.lo[j] > inner.lo[j] + kBoxTol) return false;
    if (outer.hi[j] < inner.hi[j] - kBoxTol) return false;
  }
  return true;
}

double OverlapVolume(const PrefBox& a, const PrefBox& b) {
  double volume = 1.0;
  for (size_t j = 0; j < a.dim(); ++j) {
    const double width =
        std::min(a.hi[j], b.hi[j]) - std::max(a.lo[j], b.lo[j]);
    if (width <= 0.0) return 0.0;
    volume *= width;
  }
  return volume;
}

}  // namespace

std::string CacheSignature(const ToprrOptions& options) {
  std::string signature;
  signature.push_back(static_cast<char>(options.method));
  char flags = 0;
  if (options.use_lemma5) flags |= 1;
  if (options.use_lemma7) flags |= 2;
  if (options.use_kswitch) flags |= 4;
  if (options.use_rskyband_filter) flags |= 8;
  signature.push_back(flags);
  AppendBytes(signature, &options.eps, sizeof(options.eps));
  return signature;
}

RegionCache::RegionCache(const RegionCacheConfig& config) : config_(config) {
  CHECK_GT(config_.num_shards, 0u);
  CHECK_GT(config_.quantum, 0.0);
  shards_.reserve(config_.num_shards);
  for (size_t s = 0; s < config_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PrefBox RegionCache::Canonicalize(const PrefBox& box) const {
  const double q = config_.quantum;
  PrefBox canon;
  canon.lo = Vec(box.dim());
  canon.hi = Vec(box.dim());
  for (size_t j = 0; j < box.dim(); ++j) {
    double lo_cell = std::floor(box.lo[j] / q);
    if (lo_cell < 0.0) lo_cell = 0.0;
    double hi_cell = std::ceil(box.hi[j] / q);
    // Snap degenerate widths open by one cell so the canonical box has
    // interior (a zero-width dimension cannot be partitioned).
    if (hi_cell <= lo_cell) hi_cell = lo_cell + 1.0;
    canon.lo[j] = lo_cell * q;
    canon.hi[j] = hi_cell * q;
  }
  return canon;
}

std::string RegionCache::KeyFor(int k, const std::string& signature,
                                const PrefBox& canonical) const {
  std::string key = signature;
  const int32_t k32 = k;
  AppendBytes(key, &k32, sizeof(k32));
  const uint32_t dim = static_cast<uint32_t>(canonical.dim());
  AppendBytes(key, &dim, sizeof(dim));
  for (size_t j = 0; j < canonical.dim(); ++j) {
    const int64_t lo = std::llround(canonical.lo[j] / config_.quantum);
    const int64_t hi = std::llround(canonical.hi[j] / config_.quantum);
    AppendBytes(key, &lo, sizeof(lo));
    AppendBytes(key, &hi, sizeof(hi));
  }
  return key;
}

size_t RegionCache::ShardFor(const std::string& key) const {
  return std::hash<std::string>{}(key) % shards_.size();
}

std::shared_ptr<const RegionCacheEntry> RegionCache::FindContaining(
    int k, const std::string& signature, const PrefBox& box) {
  const std::string key = KeyFor(k, signature, Canonicalize(box));
  {
    Shard& shard = *shards_[ShardFor(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      it->second = shard.lru.begin();
      hits_.fetch_add(1, std::memory_order_relaxed);
      return shard.lru.begin()->second;
    }
  }
  // The exact key missed; a differently-quantized (larger) entry may
  // still contain the query box. Bounded MRU-first sweep.
  size_t probed = 0;
  for (std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin();
         it != shard.lru.end() && probed < config_.max_probe; ++it) {
      ++probed;
      const std::shared_ptr<const RegionCacheEntry>& entry = it->second;
      if (entry->k != k || entry->signature != signature ||
          entry->box.dim() != box.dim()) {
        continue;
      }
      if (!BoxContains(entry->box, box)) continue;
      shard.lru.splice(shard.lru.begin(), shard.lru, it);
      shard.index[shard.lru.begin()->first] = shard.lru.begin();
      hits_.fetch_add(1, std::memory_order_relaxed);
      return shard.lru.begin()->second;
    }
    if (probed >= config_.max_probe) break;
  }
  return nullptr;
}

std::shared_ptr<const RegionCacheEntry> RegionCache::FindOverlap(
    int k, const std::string& signature, const PrefBox& box) {
  if (!config_.enable_partial) return nullptr;
  std::shared_ptr<const RegionCacheEntry> best;
  double best_volume = 0.0;
  size_t probed = 0;
  for (std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin();
         it != shard.lru.end() && probed < config_.max_probe; ++it) {
      ++probed;
      const std::shared_ptr<const RegionCacheEntry>& entry = it->second;
      if (entry->k != k || entry->signature != signature ||
          entry->box.dim() != box.dim()) {
        continue;
      }
      const double volume = OverlapVolume(entry->box, box);
      if (volume > best_volume) {
        best_volume = volume;
        best = entry;
      }
    }
    if (probed >= config_.max_probe) break;
  }
  if (best != nullptr) partial_hits_.fetch_add(1, std::memory_order_relaxed);
  return best;
}

size_t RegionCache::Insert(std::shared_ptr<RegionCacheEntry> entry) {
  CHECK(entry != nullptr);
  // Approximate footprint: the flat cells dominate (vertex coordinates +
  // facet descriptors), plus the candidate pool and fixed overhead.
  size_t bytes = sizeof(RegionCacheEntry) + 128;
  bytes += entry->candidates.size() * sizeof(int);
  bytes += 2 * entry->box.dim() * sizeof(double);
  for (const FlatCell& cell : entry->cells) {
    bytes += sizeof(FlatCell) + 64;
    bytes += cell.region.num_vertices() * cell.region.dim() * sizeof(double);
    for (size_t f = 0; f < cell.region.num_facets(); ++f) {
      bytes += cell.region.dim() * sizeof(double) + sizeof(double);
      bytes += cell.region.facet_size(f) * sizeof(int32_t);
    }
  }
  entry->bytes = bytes;

  const std::string key = KeyFor(entry->k, entry->signature, entry->box);
  const size_t shard_budget =
      std::max<size_t>(1, config_.byte_budget / shards_.size());
  size_t evicted = 0;
  size_t evicted_entries = 0;
  {
    Shard& shard = *shards_[ShardFor(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.index.find(key) != shard.index.end()) {
      // First insert wins: solves are deterministic, so the payloads are
      // interchangeable and the established LRU position is kept.
      return 0;
    }
    shard.lru.emplace_front(key, std::move(entry));
    shard.index[key] = shard.lru.begin();
    shard.bytes += bytes;
    while (shard.bytes > shard_budget && shard.lru.size() > 1) {
      auto victim = std::prev(shard.lru.end());
      shard.bytes -= victim->second->bytes;
      evicted += victim->second->bytes;
      ++evicted_entries;
      shard.index.erase(victim->first);
      shard.lru.erase(victim);
    }
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
  if (evicted_entries > 0) {
    evictions_.fetch_add(evicted_entries, std::memory_order_relaxed);
    evicted_bytes_.fetch_add(evicted, std::memory_order_relaxed);
  }
  return evicted;
}

void RegionCache::RecordMiss() {
  misses_.fetch_add(1, std::memory_order_relaxed);
}

void RegionCache::Clear() {
  for (std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

RegionCacheCounters RegionCache::Counters() const {
  RegionCacheCounters counters;
  counters.hits = hits_.load(std::memory_order_relaxed);
  counters.partial_hits = partial_hits_.load(std::memory_order_relaxed);
  counters.misses = misses_.load(std::memory_order_relaxed);
  counters.insertions = insertions_.load(std::memory_order_relaxed);
  counters.evictions = evictions_.load(std::memory_order_relaxed);
  counters.evicted_bytes = evicted_bytes_.load(std::memory_order_relaxed);
  return counters;
}

size_t RegionCache::TotalBytes() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.bytes;
  }
  return total;
}

size_t RegionCache::NumEntries() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

std::optional<PrefBox> BoxFromRegion(const PrefRegion& region) {
  const std::vector<Vec>& vertices = region.vertices();
  if (vertices.empty()) return std::nullopt;
  const size_t m = region.dim();
  if (m == 0 || m > 24) return std::nullopt;
  if (vertices.size() != (size_t{1} << m)) return std::nullopt;
  PrefBox box;
  box.lo = vertices[0];
  box.hi = vertices[0];
  for (const Vec& v : vertices) {
    for (size_t j = 0; j < m; ++j) {
      box.lo[j] = std::min(box.lo[j], v[j]);
      box.hi[j] = std::max(box.hi[j], v[j]);
    }
  }
  for (size_t j = 0; j < m; ++j) {
    if (!(box.lo[j] < box.hi[j])) return std::nullopt;  // degenerate
  }
  // Every vertex must be exactly a corner, and all 2^m corners must be
  // present (equivalently: all corner codes distinct).
  std::vector<bool> seen(size_t{1} << m, false);
  for (const Vec& v : vertices) {
    size_t code = 0;
    for (size_t j = 0; j < m; ++j) {
      if (v[j] == box.lo[j]) {
        // low corner on axis j
      } else if (v[j] == box.hi[j]) {
        code |= size_t{1} << j;
      } else {
        return std::nullopt;
      }
    }
    if (seen[code]) return std::nullopt;
    seen[code] = true;
  }
  return box;
}

std::optional<PrefBox> IntersectBoxes(const PrefBox& a, const PrefBox& b) {
  PrefBox core;
  core.lo = Vec(a.dim());
  core.hi = Vec(a.dim());
  for (size_t j = 0; j < a.dim(); ++j) {
    core.lo[j] = std::max(a.lo[j], b.lo[j]);
    core.hi[j] = std::min(a.hi[j], b.hi[j]);
    if (!(core.lo[j] < core.hi[j])) return std::nullopt;
  }
  return core;
}

std::vector<PrefBox> GuillotineRemainder(const PrefBox& outer,
                                         const PrefBox& core) {
  std::vector<PrefBox> slabs;
  PrefBox current = outer;
  for (size_t j = 0; j < outer.dim(); ++j) {
    if (current.lo[j] < core.lo[j]) {
      PrefBox slab = current;
      slab.hi[j] = core.lo[j];
      if (slab.hi[j] > slab.lo[j]) slabs.push_back(std::move(slab));
      current.lo[j] = core.lo[j];
    }
    if (current.hi[j] > core.hi[j]) {
      PrefBox slab = current;
      slab.lo[j] = core.hi[j];
      if (slab.hi[j] > slab.lo[j]) slabs.push_back(std::move(slab));
      current.hi[j] = core.hi[j];
    }
  }
  return slabs;
}

size_t AppendCellsClippedToBox(const std::vector<FlatCell>& cells,
                               const PrefBox& box, double eps,
                               GeomArena* arena, std::vector<Vec>* vall) {
  CHECK(arena != nullptr);
  CHECK(vall != nullptr);
  const std::vector<Halfspace> walls = box.Halfspaces();
  size_t used = 0;
  std::optional<FlatRegion> scratch_below;
  std::optional<FlatRegion> scratch_above;
  for (const FlatCell& cell : cells) {
    // Containment pre-test: a cell entirely inside the box passes
    // through without touching the split machinery, so its vertices --
    // and for a full-box replay the whole vall sequence -- are the cold
    // solve's bytes.
    bool inside = true;
    const size_t num_vertices = cell.region.num_vertices();
    for (size_t v = 0; v < num_vertices && inside; ++v) {
      const double* coords = cell.region.vertex(v);
      for (size_t j = 0; j < box.dim(); ++j) {
        if (coords[j] < box.lo[j] - eps || coords[j] > box.hi[j] + eps) {
          inside = false;
          break;
        }
      }
    }
    if (inside) {
      for (size_t v = 0; v < num_vertices; ++v) {
        vall->push_back(cell.region.VertexVec(v));
      }
      ++used;
      continue;
    }
    // Boundary cell: cut by each violated wall, keeping the below side
    // (box halfspaces are a.x <= b form, below = inside).
    FlatRegion clipped = cell.region;
    bool empty = false;
    for (const Halfspace& wall : walls) {
      bool violated = false;
      const size_t n = clipped.num_vertices();
      const size_t m = clipped.dim();
      for (size_t v = 0; v < n && !violated; ++v) {
        const double* coords = clipped.vertex(v);
        double dot = 0.0;
        for (size_t j = 0; j < m; ++j) dot += wall.normal[j] * coords[j];
        violated = dot > wall.offset + eps;
      }
      if (!violated) continue;
      clipped.Split(wall.Boundary(), eps, *arena, &scratch_below,
                    &scratch_above);
      if (!scratch_below.has_value() || scratch_below->empty()) {
        empty = true;
        break;
      }
      clipped = std::move(*scratch_below);
      scratch_below.reset();
      scratch_above.reset();
    }
    if (empty) continue;
    const size_t n = clipped.num_vertices();
    for (size_t v = 0; v < n; ++v) {
      vall->push_back(clipped.VertexVec(v));
    }
    ++used;
  }
  return used;
}

}  // namespace toprr
