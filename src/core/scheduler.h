// PartitionScheduler: explicit work-queue execution of the test-and-split
// partitioning (paper Sec. 4-5).
//
// The recursion of TAS/TAS*/PAC is a region tree: every node is either
// accepted (its vertices join Vall) or split into two children. Testing a
// node is a pure function of (dataset, config, node) -- see
// TestAndSplitRegion -- so the tree itself is deterministic and the nodes
// can be processed in any order by any number of workers. The scheduler
// exploits exactly that:
//
//  * tasks carry a heap-path id (root 1, split children 2*id and 2*id+1)
//    which seeds the pseudo-random split-pair rotation, replacing the seed
//    implementation's queue-position salt so that the tree does not depend
//    on execution order;
//  * accepted nodes are buffered per worker and merged in ascending
//    task-id order at the end, so processing order never shows in the
//    output; both executors process LIFO (depth-first), keeping the
//    pending frontier -- and the parent_scores caches it pins -- bounded
//    by the tree depth rather than its width;
//  * the multi-threaded executor is a work-stealing one: every worker
//    owns a Chase-Lev-style deque (common/thread_pool.h), pushes split
//    children bottom/LIFO for cache locality, and steals top/FIFO from
//    peers in a seeded pseudo-random victim order when its own deque is
//    empty. Termination is a shared in-flight task counter; the time /
//    region budget is charged per claimed task through an atomic ticket,
//    mirroring the sequential executor's per-pop charge. Tallies,
//    accepted buffers, and the SchedulerStats telemetry stay worker-local
//    and fold into the output at merge time, so the hot path shares only
//    the deques and two counters.
//
// Consequently the sequential executor and the multi-threaded executor
// produce bit-identical PartitionOutputs (and hence ToprrResults) on every
// run that completes within budget: determinism flows from the heap-path
// task ids and the id-ordered merge, not from execution order, so it
// survives arbitrary steal interleavings.
//
// This header is internal to toprr_core; public entry points are
// SolveToprr / ToprrEngine.
#ifndef TOPRR_CORE_SCHEDULER_H_
#define TOPRR_CORE_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/partition.h"
#include "data/dataset.h"
#include "geom/vec.h"
#include "pref/flat_region.h"
#include "pref/region.h"
#include "topk/score_kernel.h"

namespace toprr {

/// One pending unit of work: a sub-region with its (possibly Lemma-5
/// reduced) candidate pool and k value, the options pruned so far on this
/// branch, and the deterministic tree id. The geometry travels as a
/// FlatRegion (pref/flat_region.h): splits move the children's contiguous
/// buffers into their tasks instead of copying per-vertex Vecs, and the
/// scoring kernel sweeps the task's vertex buffer in place.
struct RegionTask {
  uint64_t id = 1;  // heap path: root 1, split children 2*id and 2*id+1
  FlatRegion region;
  std::vector<int> candidates;
  int k = 0;
  std::vector<int> pruned;
  /// Parent-to-child score memoization (topk/score_kernel.h): the split
  /// parent's vertex-score rows over exactly this task's candidate pool,
  /// shared read-only by both children. Null at the root and on the
  /// naive (use_score_kernel = false) path; purely a performance carrier,
  /// never observable in the output.
  std::shared_ptr<const VertexScoreCache> parent_scores;
};

/// The outcome of testing one region: either an acceptance payload or the
/// two child tasks of a split (plus the counters the node contributed).
struct RegionOutcome {
  bool accepted = false;
  bool kipr_accept = false;
  bool lemma7_accept = false;
  bool lemma5_pruned = false;

  // Acceptance payload (merged into PartitionOutput in task-id order).
  std::vector<Vec> vall;           // the accepted region's vertices
  std::vector<int> topk_ids;       // when config.collect_topk_union
  std::optional<AcceptedRegion> cell;  // when config.collect_regions
  std::optional<FlatRegion> flat_cell;  // when config.collect_flat_cells

  // Split payload.
  std::optional<RegionTask> below;
  std::optional<RegionTask> above;
};

/// Tests one region: Lemma-5 pruning, the method's acceptance test, and --
/// on rejection -- selection of a cutting hyperplane and construction of
/// the two children. Pure in its output: the result depends only on
/// (data, config, task), making it safe to call concurrently for
/// distinct tasks with distinct arenas. `arena` is the calling worker's
/// scratch state for the scoring kernel and `geom_arena` its flat-split
/// scratch (counters accumulate in both); a null arena falls back to a
/// call-local one. Implemented in partition.cc next to the algorithmic
/// helpers it uses.
RegionOutcome TestAndSplitRegion(const DatasetView& data,
                                 const PartitionConfig& config,
                                 RegionTask task,
                                 ScoreArena* arena = nullptr,
                                 GeomArena* geom_arena = nullptr);

/// Drives TestAndSplitRegion over the region tree rooted at a task.
/// config.num_threads selects the executor: 1 runs the sequential
/// executor in the calling thread; any other value runs the
/// work-stealing executor with one deque-owning worker slot per thread
/// -- the calling thread takes slot 0, and up to num_threads-1 helpers
/// borrowed from SharedThreadPool() (0 = one per hardware thread) claim
/// the rest. Helpers that cannot be scheduled (e.g. the pool is
/// saturated by batch queries) cost nothing: the calling thread always
/// completes the tree alone (unclaimed slots simply never hold tasks),
/// so nesting region-level parallelism under query-level parallelism
/// cannot deadlock.
class PartitionScheduler {
 public:
  PartitionScheduler(const DatasetView& data, const PartitionConfig& config)
      : data_(data), config_(config) {}

  PartitionScheduler(const PartitionScheduler&) = delete;
  PartitionScheduler& operator=(const PartitionScheduler&) = delete;

  /// Processes the whole tree under `root` and assembles the output.
  PartitionOutput Run(RegionTask root) const;

  /// Multi-root variant: processes the forest under `roots` and merges
  /// the accepted nodes of all subtrees in ascending task-id order. Used
  /// by the cross-query region cache to resume a partially cached solve
  /// from a frontier of unsolved sub-boxes; callers must hand in ids
  /// whose subtrees are disjoint (e.g. same-bit-length heap paths) or
  /// the merge order is ambiguous. An empty forest yields an empty
  /// output.
  PartitionOutput RunFrontier(std::vector<RegionTask> roots) const;

 private:
  PartitionOutput RunSequential(std::vector<RegionTask> roots) const;
  PartitionOutput RunParallel(std::vector<RegionTask> roots,
                              size_t num_workers) const;

  // By value: views are trivially copyable, and holding a copy lets the
  // engine hand in a snapshot view without keeping a view object alive.
  const DatasetView data_;
  const PartitionConfig config_;
};

}  // namespace toprr

#endif  // TOPRR_CORE_SCHEDULER_H_
