// TopRR -- the Top-Ranking Region problem (paper Definition 1).
//
// Given a dataset D, an integer k and a preference region wR, compute the
// maximal region oR in option space such that a new option placed anywhere
// in oR ranks among the top-k of D for *every* weight vector in wR.
//
// Three algorithms are provided:
//  * PAC  -- the partition-and-convert baseline (Sec. 3.4) built on a
//            UTK-style partitioner [30];
//  * TAS  -- test-and-split (Sec. 4);
//  * TAS* -- optimized test-and-split (Sec. 5): consistent top-lambda
//            pruning (Lemma 5), optimized region testing (Lemma 7), and
//            k-switch splitting hyperplanes (Definition 4).
//
// All three return the same region; they differ (greatly) in running time.
#ifndef TOPRR_CORE_TOPRR_H_
#define TOPRR_CORE_TOPRR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/scheduler_stats.h"
#include "core/partition.h"
#include "data/dataset.h"
#include "geom/hyperplane.h"
#include "geom/vec.h"
#include "pref/pref_space.h"
#include "pref/region.h"

namespace toprr {

enum class ToprrMethod {
  kPac,      // partition-and-convert baseline (Sec. 3.4)
  kTas,      // test-and-split (Sec. 4)
  kTasStar,  // optimized test-and-split (Sec. 5)
};

const char* ToprrMethodName(ToprrMethod method);

struct ToprrOptions {
  ToprrMethod method = ToprrMethod::kTasStar;

  // Individual optimization toggles (meaningful for kTasStar; used by the
  // ablation benchmarks of Sec. 6.5). kTas forces all three off; kTasStar
  // defaults enable all three.
  bool use_lemma5 = true;   // consistent top-lambda pruning (Sec. 5.1)
  bool use_lemma7 = true;   // optimized region testing (Sec. 5.2)
  bool use_kswitch = true;  // k-switch splitting hyperplanes (Sec. 5.3)

  /// Run the r-skyband fast filter before partitioning (Sec. 6.3). Always
  /// recommended; exposed for the Fig. 8 filter study.
  bool use_rskyband_filter = true;

  /// Geometric tolerance for vertex classification and splitting.
  double eps = 1e-10;

  /// Compute the explicit geometry of oR (vertices + irredundant
  /// halfspaces). When false only the halfspace description is produced.
  bool build_geometry = true;

  /// Vertex enumeration is skipped (result.geometry_skipped = true) when
  /// the option space has more than this many dimensions or oR has more
  /// than `geometry_halfspace_limit` constraints: a d-dimensional dual
  /// hull over thousands of points is combinatorially explosive and the
  /// halfspace description is already exact.
  size_t geometry_dim_limit = 6;
  size_t geometry_halfspace_limit = 1024;

  /// Wall-clock budget; the solver aborts (result.timed_out = true) when
  /// exceeded. <= 0 means unlimited.
  double time_budget_seconds = 0.0;

  /// Cooperative cancellation: when non-null, the scheduler polls this
  /// flag at the same per-region cadence as the time budget and aborts
  /// the solve (result.timed_out and result.cancelled both set) once it
  /// reads true. The pointee must outlive the solve; the serving
  /// front-end uses it to cut in-flight queries loose on shutdown.
  const std::atomic<bool>* cancel = nullptr;

  /// Safety bound on the number of processed regions (0 = default bound).
  size_t max_regions = 0;

  /// Worker threads for the partition scheduler: 1 = sequential executor,
  /// 0 = one worker per hardware thread, n > 1 = n workers on the
  /// work-stealing executor, which produces bit-identical results to the
  /// sequential one (see core/scheduler.h).
  int num_threads = 1;

  /// Collect per-worker executor telemetry into
  /// ToprrResult::stats.scheduler (tasks executed/stolen, steal
  /// failures, deque high-water, kernel counters; printed by
  /// `toprr_cli --stats`).
  bool collect_scheduler_stats = true;

  // -------------------------------------------------------------------
  // Engine-path toggles. DEPRECATED as individually assembled knobs: new
  // call sites should start from EngineConfig::Production() or
  // EngineConfig::LegacyReference() (below) instead of hand-picking
  // combinations -- only those two combinations are continuously tested
  // end to end. The raw fields keep working for one release and then
  // become internal.
  // -------------------------------------------------------------------

  /// Score the partition phase through the SoA scoring kernel
  /// (topk/score_kernel.h): blocked candidate sweeps from 64-byte-aligned
  /// dim-major blocks, per-worker scratch arenas, parent-to-child
  /// vertex-score reuse. Bit-identical to the naive per-vertex scan
  /// (asserted by score_kernel_test); off only for that regression test
  /// and the naive baselines of bench_score_kernel.
  bool use_score_kernel = true;

  /// Split regions through the flat-geometry engine (pref/flat_region.h):
  /// SoA polytope storage, fused classification sweeps, packed-key vertex
  /// dedup, per-worker GeomArena scratch. Bit-identical to the legacy
  /// PrefRegion::Split path (asserted by flat_geometry_test); off only
  /// for that regression test and the legacy baselines of
  /// bench_region_split.
  bool use_flat_geometry = true;

  /// Serve box queries through the engine's cross-query region cache
  /// (core/region_cache.h) when one is enabled via
  /// ToprrEngine::EnableRegionCache: solved canonical boxes are reused by
  /// clipping, overlapping ones by frontier resumption. Only meaningful
  /// on ToprrEngine solves; the free SolveToprr functions ignore it.
  /// Cache-hit results are bit-identical to what the same engine returns
  /// with the flag off (see region_cache_test).
  bool use_region_cache = false;
};

/// Named option presets -- the two toggle combinations that are tested
/// end to end. Prefer these over hand-assembling the deprecated
/// ToprrOptions engine toggles above.
struct EngineConfig {
  /// Production serving defaults: TAS* with every optimization lemma,
  /// the SoA scoring kernel, flat-geometry splits, and region-cache
  /// opt-in (a solve still only uses the cache when the engine has one
  /// enabled). What toprr_serve runs.
  static ToprrOptions Production();

  /// The naive reference paths: per-vertex scoring, legacy
  /// PrefRegion::Split geometry, no caching. Slower but independently
  /// simple -- the baseline the bit-identical regression suites
  /// (score_kernel_test, flat_geometry_test, region_cache_test) diff
  /// production against.
  static ToprrOptions LegacyReference();
};

/// Counters and timings describing one solve.
struct ToprrStats {
  size_t candidates_after_filter = 0;  // |D'| after r-skyband
  size_t regions_tested = 0;           // test-and-split invocations
  size_t regions_accepted = 0;         // regions whose vertices joined Vall
  size_t regions_split = 0;
  size_t kipr_accepts = 0;             // accepted via the plain kIPR test
  size_t lemma7_accepts = 0;           // accepted via the optimized test
  size_t lemma5_prunes = 0;            // times Lemma 5 removed options
  size_t vall_raw = 0;                 // vertices accumulated (pre-dedup)
  size_t vall_unique = 0;              // |Vall| after dedup
  double filter_seconds = 0.0;
  double partition_seconds = 0.0;
  double assemble_seconds = 0.0;
  double total_seconds = 0.0;

  /// Partition-executor telemetry (when
  /// ToprrOptions::collect_scheduler_stats): per-worker tasks
  /// executed/stolen, steal failures, deque high-water, and the
  /// partition-phase wall time. The per-worker breakdown depends on
  /// thread timing and is excluded from the determinism guarantee.
  SchedulerStats scheduler;

  std::string DebugString() const;
};

/// The TopRR output: region oR as an intersection of halfspaces (impact
/// halfspaces at Vall plus the option-space box), with optional explicit
/// geometry.
struct ToprrResult {
  /// Impact halfspaces oH(v), v in Vall (deduplicated), in a.x <= b form.
  std::vector<Halfspace> impact_halfspaces;
  /// The [0,1]^d option-space box constraints.
  std::vector<Halfspace> box_halfspaces;
  /// The deduplicated vertex set Vall of Theorem 1, in reduced preference
  /// coordinates (one impact halfspace per entry before dedup).
  std::vector<Vec> vall;
  /// Vertices of oR (when options.build_geometry and oR has interior).
  std::vector<Vec> vertices;
  /// Irredundant constraints: indices into impact_halfspaces that support
  /// oR's boundary (when geometry was built).
  std::vector<size_t> supporting_halfspaces;
  /// True when oR has empty interior (e.g. an existing option already
  /// scores 1.0 somewhere in wR); the halfspace description remains valid.
  bool degenerate = false;
  /// True when vertex enumeration was skipped because the instance
  /// exceeded the geometry limits (see ToprrOptions); the halfspace
  /// description remains exact.
  bool geometry_skipped = false;
  /// True when the time/region budget was exhausted; the result is then
  /// incomplete and must not be used.
  bool timed_out = false;
  /// True when the solve was aborted through ToprrOptions::cancel (also
  /// sets timed_out: the result is equally unusable). Lets callers tell
  /// shutdown apart from a genuine budget expiry.
  bool cancelled = false;

  /// The 64-bit content id of the DatasetSnapshot this result was solved
  /// against (ToprrEngine solves only; 0 from the free SolveToprr
  /// functions). A writer publishing mid-batch changes ids for later
  /// solves but never this one: each solve pins its snapshot.
  uint64_t snapshot_id = 0;
  /// The pinned snapshot's monotone publish sequence number (1 for a
  /// root; 0 from the free SolveToprr functions). Content ids have no
  /// order, so read-your-writes assertions compare this instead.
  uint64_t snapshot_seq = 0;

  ToprrStats stats;

  /// True if placing a new option at `o` makes it a top-ranking option.
  bool Contains(const Vec& o, double tol = 1e-9) const;

  /// All constraints (impact + box) concatenated.
  std::vector<Halfspace> AllHalfspaces() const;
};

/// Solves TopRR(D, k, wR). The preference box must have dimension
/// data.dim() - 1 and lie inside the preference simplex.
ToprrResult SolveToprr(const DatasetView& data, int k, const PrefBox& region,
                       const ToprrOptions& options = {});

/// General form: wR is an arbitrary convex polytope in reduced preference
/// coordinates (paper Sec. 3.1 requires only convexity). The r-skyband
/// filter generalizes via vertex-based r-dominance (Lemma 1).
ToprrResult SolveToprrRegion(const DatasetView& data, int k,
                             const PrefRegion& region,
                             const ToprrOptions& options = {});

/// Advanced: solve with a caller-supplied candidate superset (must contain
/// the top-k of every w in the region, e.g. a cached k-skyband or the
/// r-skyband). Skips the built-in filter; used by ToprrEngine. When
/// `flat_cells` is non-null the accepted partition cells are moved into
/// it in heap-path-id order (the region cache's entry payload); the solve
/// itself is unaffected.
ToprrResult SolveToprrWithCandidates(const DatasetView& data, int k,
                                     const PrefRegion& region,
                                     const std::vector<int>& candidates,
                                     const ToprrOptions& options = {},
                                     std::vector<FlatCell>* flat_cells =
                                         nullptr);

/// Non-convex wR support (paper Sec. 3.1): the target region is the union
/// of convex pieces; a top-ranking option must be top-k on every piece, so
/// the result is the intersection of the per-piece regions. Returns the
/// merged result (deduplicated impact halfspaces; geometry rebuilt).
ToprrResult SolveToprrPieces(const DatasetView& data, int k,
                             const std::vector<PrefRegion>& pieces,
                             const ToprrOptions& options = {});

}  // namespace toprr

#endif  // TOPRR_CORE_TOPRR_H_
