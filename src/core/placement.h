// Cost-optimal option placement on top of a TopRR result (paper Sec. 1,
// Sec. 3.1 and the Sec. 6.2 case study):
//
//  * creating a new option at minimum manufacturing cost (cost monotonic
//    in the attributes, modeled as sum of squared attribute values);
//  * enhancing an existing option p_i at minimum modification cost
//    (Euclidean distance between old and new version);
//  * budget-constrained impact maximization: the smallest k whose
//    cost-optimal enhancement fits a redesign budget B.
#ifndef TOPRR_CORE_PLACEMENT_H_
#define TOPRR_CORE_PLACEMENT_H_

#include <optional>

#include "core/toprr.h"
#include "data/dataset.h"
#include "geom/vec.h"
#include "pref/pref_space.h"

namespace toprr {

struct PlacementResult {
  Vec option;         // the chosen placement
  double cost = 0.0;  // sum of squares (creation) or distance (enhance)
  bool ok = false;
};

/// The cheapest top-ranking placement for a new option under quadratic
/// manufacturing cost sum_j o[j]^2.
PlacementResult MinimumCostCreation(const ToprrResult& region);

/// The minimum-modification enhancement of existing option `current`: the
/// closest point of oR in Euclidean distance (cost = that distance).
PlacementResult MinimumModification(const ToprrResult& region,
                                    const Vec& current);

/// Constrained variants (paper Sec. 3.1: manufacturing constraints and
/// attribute interdependencies, e.g. p[1] + p[2] <= 1.5, are intersected
/// with oR before optimizing). `extra` are additional halfspaces in
/// option space; infeasible combinations yield ok == false.
PlacementResult MinimumCostCreationConstrained(
    const ToprrResult& region, const std::vector<Halfspace>& extra);
PlacementResult MinimumModificationConstrained(
    const ToprrResult& region, const Vec& current,
    const std::vector<Halfspace>& extra);

/// Budget-constrained smallest-k search (paper Sec. 3.1): the TopRR result
/// shrinks monotonically as k decreases, so the optimal redesign cost
/// increases; this finds the smallest k in [1, k_max] whose cost-optimal
/// enhancement of `current` stays within `budget`, along with that
/// placement. Returns std::nullopt when even k_max exceeds the budget.
struct BudgetPlacement {
  int k = 0;
  PlacementResult placement;
};
std::optional<BudgetPlacement> SmallestKWithinBudget(
    const Dataset& data, const PrefBox& region, const Vec& current,
    double budget, int k_max, const ToprrOptions& options = {});

}  // namespace toprr

#endif  // TOPRR_CORE_PLACEMENT_H_
