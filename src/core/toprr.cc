#include "core/toprr.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "common/check.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/partition.h"
#include "core/result_region.h"
#include "geom/halfspace_intersection.h"
#include "pref/region.h"
#include "topk/rskyband.h"

namespace toprr {

const char* ToprrMethodName(ToprrMethod method) {
  switch (method) {
    case ToprrMethod::kPac:
      return "PAC";
    case ToprrMethod::kTas:
      return "TAS";
    case ToprrMethod::kTasStar:
      return "TAS*";
  }
  return "?";
}

ToprrOptions EngineConfig::Production() {
  ToprrOptions options;  // the defaults are the production fast paths
  options.use_region_cache = true;
  return options;
}

ToprrOptions EngineConfig::LegacyReference() {
  ToprrOptions options;
  options.use_score_kernel = false;
  options.use_flat_geometry = false;
  options.use_region_cache = false;
  return options;
}

std::string ToprrStats::DebugString() const {
  std::ostringstream out;
  out << "|D'|=" << candidates_after_filter
      << " tested=" << regions_tested << " accepted=" << regions_accepted
      << " (kIPR=" << kipr_accepts << ", L7=" << lemma7_accepts
      << ") splits=" << regions_split << " L5=" << lemma5_prunes
      << " |Vall|=" << vall_unique << " (raw " << vall_raw << ")"
      << " t=" << total_seconds << "s (filter " << filter_seconds
      << ", partition " << partition_seconds << ", assemble "
      << assemble_seconds << ")";
  return out.str();
}

bool ToprrResult::Contains(const Vec& o, double tol) const {
  for (const Halfspace& h : impact_halfspaces) {
    if (!h.Contains(o, tol)) return false;
  }
  for (const Halfspace& h : box_halfspaces) {
    if (!h.Contains(o, tol)) return false;
  }
  return true;
}

std::vector<Halfspace> ToprrResult::AllHalfspaces() const {
  std::vector<Halfspace> all = impact_halfspaces;
  all.insert(all.end(), box_halfspaces.begin(), box_halfspaces.end());
  return all;
}

PartitionConfig PartitionConfigFromOptions(const ToprrOptions& options) {
  PartitionConfig config;
  config.eps = options.eps;
  config.time_budget_seconds = options.time_budget_seconds;
  config.cancel = options.cancel;
  config.max_regions = options.max_regions;
  config.num_threads = options.num_threads;
  config.collect_scheduler_stats = options.collect_scheduler_stats;
  config.use_score_kernel = options.use_score_kernel;
  config.use_flat_geometry = options.use_flat_geometry;
  switch (options.method) {
    case ToprrMethod::kPac:
      config.ordered_invariance = true;
      break;
    case ToprrMethod::kTas:
      break;  // plain kIPR test, plain splits
    case ToprrMethod::kTasStar:
      config.use_lemma5 = options.use_lemma5;
      config.use_lemma7 = options.use_lemma7;
      config.use_kswitch = options.use_kswitch;
      break;
  }
  return config;
}

namespace {

// Shared filter + partition + assembly pipeline. `filter_seconds` covers
// the caller's candidate computation when candidates were precomputed.
// A non-null `flat_cells` receives the accepted cells (id order) for the
// region cache.
ToprrResult SolveImpl(const DatasetView& data, int k, const PrefRegion& region,
                      std::vector<int> candidates, double filter_seconds,
                      const ToprrOptions& options,
                      std::vector<FlatCell>* flat_cells = nullptr) {
  ToprrResult result;
  Timer total;

  result.stats.candidates_after_filter = candidates.size();
  result.stats.filter_seconds = filter_seconds;

  // ---- Partitioning into accepted regions, accumulating Vall. ----
  Timer phase;
  PartitionConfig config = PartitionConfigFromOptions(options);
  config.collect_flat_cells = flat_cells != nullptr;
  PartitionOutput partition =
      PartitionPreferenceRegion(data, candidates, k, region, config);
  result.stats.partition_seconds = phase.Seconds();
  result.stats.regions_tested = partition.regions_tested;
  result.stats.regions_accepted = partition.regions_accepted;
  result.stats.regions_split = partition.regions_split;
  result.stats.kipr_accepts = partition.kipr_accepts;
  result.stats.lemma7_accepts = partition.lemma7_accepts;
  result.stats.lemma5_prunes = partition.lemma5_prunes;
  result.stats.vall_raw = partition.vall.size();
  result.stats.scheduler = partition.scheduler;
  if (partition.timed_out) {
    result.timed_out = true;
    result.cancelled = partition.cancelled;
    result.stats.total_seconds = total.Seconds();
    return result;
  }
  if (flat_cells != nullptr) *flat_cells = std::move(partition.flat_cells);

  // ---- Assembly (Theorem 1). ----
  phase.Reset();
  result.vall = DedupVertices(partition.vall);
  result.stats.vall_unique = result.vall.size();
  AssembleResultRegion(data, candidates, k, result.vall, options, &result);
  result.stats.assemble_seconds = phase.Seconds();
  result.stats.total_seconds = total.Seconds() + filter_seconds;
  LOG(INFO) << ToprrMethodName(options.method) << ": "
            << result.stats.DebugString();
  return result;
}

void CheckInputs(const DatasetView& data, int k, size_t region_dim) {
  CHECK(!data.empty());
  CHECK_GT(k, 0);
  CHECK_LE(static_cast<size_t>(k), data.size());
  CHECK_EQ(region_dim + 1, data.dim())
      << "preference region must have dimension d-1";
}

std::vector<int> AllOptionIds(const DatasetView& data) {
  std::vector<int> ids(data.size());
  for (size_t i = 0; i < data.size(); ++i) ids[i] = static_cast<int>(i);
  return ids;
}

}  // namespace

ToprrResult SolveToprr(const DatasetView& data, int k, const PrefBox& region,
                       const ToprrOptions& options) {
  CheckInputs(data, k, region.dim());
  Timer filter_timer;
  std::vector<int> candidates = options.use_rskyband_filter
                                    ? RSkyband(data, region, k)
                                    : AllOptionIds(data);
  const double filter_seconds = filter_timer.Seconds();
  return SolveImpl(data, k, PrefRegion::FromBox(region),
                   std::move(candidates), filter_seconds, options);
}

ToprrResult SolveToprrRegion(const DatasetView& data, int k,
                             const PrefRegion& region,
                             const ToprrOptions& options) {
  CheckInputs(data, k, region.dim());
  Timer filter_timer;
  std::vector<int> candidates =
      options.use_rskyband_filter
          ? RSkybandVertices(data, region.vertices(), k)
          : AllOptionIds(data);
  const double filter_seconds = filter_timer.Seconds();
  return SolveImpl(data, k, region, std::move(candidates), filter_seconds,
                   options);
}

ToprrResult SolveToprrWithCandidates(const DatasetView& data, int k,
                                     const PrefRegion& region,
                                     const std::vector<int>& candidates,
                                     const ToprrOptions& options,
                                     std::vector<FlatCell>* flat_cells) {
  CheckInputs(data, k, region.dim());
  return SolveImpl(data, k, region, candidates, 0.0, options, flat_cells);
}

ToprrResult SolveToprrPieces(const DatasetView& data, int k,
                             const std::vector<PrefRegion>& pieces,
                             const ToprrOptions& options) {
  CHECK(!pieces.empty());
  ToprrResult merged;
  Timer total;
  ToprrOptions piece_options = options;
  piece_options.build_geometry = false;  // geometry rebuilt once, below
  std::map<std::vector<int64_t>, bool> seen;
  const auto quantize = [](const Halfspace& h) {
    std::vector<int64_t> key(h.dim() + 1);
    for (size_t j = 0; j < h.dim(); ++j) {
      key[j] = static_cast<int64_t>(std::llround(h.normal[j] * 1e10));
    }
    key[h.dim()] = static_cast<int64_t>(std::llround(h.offset * 1e10));
    return key;
  };
  for (const PrefRegion& piece : pieces) {
    ToprrResult part = SolveToprrRegion(data, k, piece, piece_options);
    if (part.timed_out) {
      merged.timed_out = true;
      return merged;
    }
    merged.stats.candidates_after_filter =
        std::max(merged.stats.candidates_after_filter,
                 part.stats.candidates_after_filter);
    merged.stats.regions_tested += part.stats.regions_tested;
    merged.stats.regions_accepted += part.stats.regions_accepted;
    merged.stats.regions_split += part.stats.regions_split;
    merged.stats.vall_raw += part.stats.vall_raw;
    merged.degenerate = merged.degenerate || part.degenerate;
    for (Vec& v : part.vall) merged.vall.push_back(std::move(v));
    for (Halfspace& h : part.impact_halfspaces) {
      if (seen.emplace(quantize(h), true).second) {
        merged.impact_halfspaces.push_back(std::move(h));
      }
    }
    if (merged.box_halfspaces.empty()) {
      merged.box_halfspaces = std::move(part.box_halfspaces);
    }
  }
  merged.stats.vall_unique = merged.vall.size();
  // Rebuild the geometry over the merged constraint set.
  if (options.build_geometry && !merged.degenerate) {
    const size_t d = data.dim();
    if (d > options.geometry_dim_limit ||
        merged.impact_halfspaces.size() > options.geometry_halfspace_limit) {
      merged.geometry_skipped = true;
    } else {
      double min_margin = 1.0;
      for (const Halfspace& h : merged.impact_halfspaces) {
        min_margin = std::min(min_margin, 1.0 + h.offset);  // 1 - kth
      }
      if (min_margin <= 1e-9) {
        merged.degenerate = true;
      } else {
        const double delta = std::min(0.5 * min_margin, 0.25);
        std::vector<Halfspace> all = merged.AllHalfspaces();
        auto geometry =
            IntersectHalfspaces(all, Vec(d, 1.0 - delta));
        if (geometry.has_value()) {
          merged.vertices = std::move(geometry->vertices);
          for (size_t idx : geometry->active_halfspaces) {
            if (idx < merged.impact_halfspaces.size()) {
              merged.supporting_halfspaces.push_back(idx);
            }
          }
        } else {
          merged.degenerate = true;
        }
      }
    }
  }
  merged.stats.total_seconds = total.Seconds();
  return merged;
}

}  // namespace toprr
