#include "core/scheduler.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace toprr {
namespace {

constexpr size_t kDefaultMaxRegions = size_t{16} << 20;

// An accepted node awaiting the deterministic id-ordered merge.
struct AcceptedNode {
  uint64_t id = 0;
  RegionOutcome outcome;
};

// Scheduler-side tallies (everything in PartitionOutput except the
// accepted payloads, which are merged separately).
struct Tally {
  size_t regions_tested = 0;
  size_t regions_accepted = 0;
  size_t regions_split = 0;
  size_t kipr_accepts = 0;
  size_t lemma7_accepts = 0;
  size_t lemma5_prunes = 0;
  bool timed_out = false;
};

void TallyOutcome(const RegionOutcome& outcome, Tally& tally) {
  if (outcome.lemma5_pruned) ++tally.lemma5_prunes;
  if (outcome.accepted) {
    ++tally.regions_accepted;
    if (outcome.kipr_accept) ++tally.kipr_accepts;
    if (outcome.lemma7_accept) ++tally.lemma7_accepts;
  } else {
    ++tally.regions_split;
  }
}

// Builds the PartitionOutput from the tally and the accepted nodes. The
// nodes are sorted by tree id, so the output is identical no matter which
// worker accepted which node in which order. (For the sequential executor
// the sort is a no-op: FIFO processing of heap-path ids pops them in
// increasing order.)
PartitionOutput AssembleOutput(const PartitionConfig& config, Tally tally,
                               std::vector<AcceptedNode> accepted) {
  std::sort(accepted.begin(), accepted.end(),
            [](const AcceptedNode& a, const AcceptedNode& b) {
              return a.id < b.id;
            });
  PartitionOutput out;
  out.regions_tested = tally.regions_tested;
  out.regions_accepted = tally.regions_accepted;
  out.regions_split = tally.regions_split;
  out.kipr_accepts = tally.kipr_accepts;
  out.lemma7_accepts = tally.lemma7_accepts;
  out.lemma5_prunes = tally.lemma5_prunes;
  out.timed_out = tally.timed_out;
  std::set<int> topk_union;
  for (AcceptedNode& node : accepted) {
    for (Vec& v : node.outcome.vall) out.vall.push_back(std::move(v));
    if (config.collect_topk_union) {
      topk_union.insert(node.outcome.topk_ids.begin(),
                        node.outcome.topk_ids.end());
    }
    if (config.collect_regions && node.outcome.cell.has_value()) {
      out.regions.push_back(std::move(*node.outcome.cell));
    }
  }
  out.topk_union.assign(topk_union.begin(), topk_union.end());
  return out;
}

// State shared between the calling thread and the pool helpers of the
// multi-threaded executor. Held by shared_ptr so that helper tasks still
// queued on the pool after the solve completes stay memory-safe: they
// lock, observe the done condition, and return without touching the
// dataset.
struct SchedulerState {
  explicit SchedulerState(const PartitionConfig& config)
      : max_regions(config.max_regions > 0 ? config.max_regions
                                           : kDefaultMaxRegions),
        time_budget_seconds(config.time_budget_seconds) {}

  std::mutex mu;
  std::condition_variable cv;
  std::deque<RegionTask> queue;
  size_t in_process = 0;  // tasks popped but not yet applied
  bool stop = false;      // budget exhausted; drop remaining work
  bool cap_warned = false;
  Tally tally;
  std::vector<AcceptedNode> accepted;

  const size_t max_regions;
  const double time_budget_seconds;
  Timer timer;
};

// Drains the shared queue until the tree is complete or the budget stops
// the run. Runs identically on the calling thread and on pool helpers.
void DrainQueue(const Dataset& data, const PartitionConfig& config,
                SchedulerState& state) {
  std::unique_lock<std::mutex> lock(state.mu);
  for (;;) {
    state.cv.wait(lock, [&state] {
      return state.stop || !state.queue.empty() || state.in_process == 0;
    });
    if (state.stop || (state.queue.empty() && state.in_process == 0)) {
      return;
    }
    if (state.queue.empty()) continue;  // spurious wake; work in flight

    // Thread-safe budget check, mirroring the sequential executor: the
    // budget is charged per popped region, under the lock.
    if (state.time_budget_seconds > 0.0 &&
        state.timer.Seconds() > state.time_budget_seconds) {
      state.stop = true;
      state.tally.timed_out = true;
      state.cv.notify_all();
      return;
    }
    if (state.tally.regions_tested >= state.max_regions) {
      if (!state.cap_warned) {
        state.cap_warned = true;
        LOG(WARNING) << "partitioning hit the region cap ("
                     << state.max_regions << "); aborting";
      }
      state.stop = true;
      state.tally.timed_out = true;
      state.cv.notify_all();
      return;
    }

    RegionTask task = std::move(state.queue.front());
    state.queue.pop_front();
    ++state.tally.regions_tested;
    ++state.in_process;
    const uint64_t id = task.id;
    lock.unlock();

    RegionOutcome outcome = TestAndSplitRegion(data, config, std::move(task));

    lock.lock();
    --state.in_process;
    TallyOutcome(outcome, state.tally);
    if (outcome.accepted) {
      state.accepted.push_back(AcceptedNode{id, std::move(outcome)});
    } else {
      state.queue.push_back(std::move(*outcome.below));
      state.queue.push_back(std::move(*outcome.above));
    }
    // Unconditional: peers wait on new work OR tree completion, and the
    // caller's final wait needs in_process == 0 even on the stop path
    // (where the abandoned queue stays non-empty). Guarding this on
    // queue.empty() deadlocked budget-stopped runs.
    state.cv.notify_all();
  }
}

}  // namespace

PartitionOutput PartitionScheduler::Run(RegionTask root) const {
  const size_t workers = ResolveThreadCount(config_.num_threads);
  if (workers <= 1) return RunSequential(std::move(root));
  return RunParallel(std::move(root), workers);
}

PartitionOutput PartitionScheduler::RunSequential(RegionTask root) const {
  const size_t max_regions = config_.max_regions > 0 ? config_.max_regions
                                                     : kDefaultMaxRegions;
  Timer timer;
  Tally tally;
  std::vector<AcceptedNode> accepted;
  std::deque<RegionTask> queue;
  queue.push_back(std::move(root));

  while (!queue.empty()) {
    if (config_.time_budget_seconds > 0.0 &&
        timer.Seconds() > config_.time_budget_seconds) {
      tally.timed_out = true;
      break;
    }
    if (tally.regions_tested >= max_regions) {
      LOG(WARNING) << "partitioning hit the region cap (" << max_regions
                   << "); aborting";
      tally.timed_out = true;
      break;
    }
    RegionTask task = std::move(queue.front());
    queue.pop_front();
    ++tally.regions_tested;
    const uint64_t id = task.id;

    RegionOutcome outcome =
        TestAndSplitRegion(data_, config_, std::move(task));
    TallyOutcome(outcome, tally);
    if (outcome.accepted) {
      accepted.push_back(AcceptedNode{id, std::move(outcome)});
    } else {
      queue.push_back(std::move(*outcome.below));
      queue.push_back(std::move(*outcome.above));
    }
  }
  return AssembleOutput(config_, std::move(tally), std::move(accepted));
}

PartitionOutput PartitionScheduler::RunParallel(RegionTask root,
                                                size_t num_workers) const {
  auto state = std::make_shared<SchedulerState>(config_);
  state->queue.push_back(std::move(root));

  // Borrow up to num_workers-1 helpers from the shared pool. The calling
  // thread drains too, so helpers the pool cannot schedule (it may be
  // saturated by batch queries) only cost parallelism, never progress.
  ThreadPool& pool = SharedThreadPool();
  const size_t helpers = num_workers - 1;
  const Dataset* data = &data_;
  const PartitionConfig config = config_;
  for (size_t i = 0; i < helpers; ++i) {
    pool.Submit([data, config, state] { DrainQueue(*data, config, *state); });
  }
  DrainQueue(data_, config_, *state);

  // Helpers mid-task still hold references into the shared state (and the
  // dataset); wait for them before assembling. Helpers still queued on
  // the pool need no wait: they observe the done condition and return.
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&state] { return state->in_process == 0; });
  return AssembleOutput(config_, std::move(state->tally),
                        std::move(state->accepted));
}

}  // namespace toprr
