#include "core/scheduler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <iterator>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace toprr {
namespace {

constexpr size_t kDefaultMaxRegions = size_t{16} << 20;

// An accepted node awaiting the deterministic id-ordered merge.
struct AcceptedNode {
  uint64_t id = 0;
  RegionOutcome outcome;
};

// Scheduler-side tallies (everything in PartitionOutput except the
// accepted payloads, which are merged separately).
struct Tally {
  size_t regions_tested = 0;
  size_t regions_accepted = 0;
  size_t regions_split = 0;
  size_t kipr_accepts = 0;
  size_t lemma7_accepts = 0;
  size_t lemma5_prunes = 0;
  bool timed_out = false;
  bool cancelled = false;
};

void TallyOutcome(const RegionOutcome& outcome, Tally& tally) {
  if (outcome.lemma5_pruned) ++tally.lemma5_prunes;
  if (outcome.accepted) {
    ++tally.regions_accepted;
    if (outcome.kipr_accept) ++tally.kipr_accepts;
    if (outcome.lemma7_accept) ++tally.lemma7_accepts;
  } else {
    ++tally.regions_split;
  }
}

// Builds the PartitionOutput from the tally and the accepted nodes. The
// nodes are sorted by tree id, so the output is identical no matter which
// worker accepted which node in which order -- both executors process
// the tree depth-first (LIFO), so acceptance order is not id order.
PartitionOutput AssembleOutput(const PartitionConfig& config, Tally tally,
                               std::vector<AcceptedNode> accepted) {
  std::sort(accepted.begin(), accepted.end(),
            [](const AcceptedNode& a, const AcceptedNode& b) {
              return a.id < b.id;
            });
  PartitionOutput out;
  out.regions_tested = tally.regions_tested;
  out.regions_accepted = tally.regions_accepted;
  out.regions_split = tally.regions_split;
  out.kipr_accepts = tally.kipr_accepts;
  out.lemma7_accepts = tally.lemma7_accepts;
  out.lemma5_prunes = tally.lemma5_prunes;
  out.timed_out = tally.timed_out;
  out.cancelled = tally.cancelled;
  std::set<int> topk_union;
  for (AcceptedNode& node : accepted) {
    for (Vec& v : node.outcome.vall) out.vall.push_back(std::move(v));
    if (config.collect_topk_union) {
      topk_union.insert(node.outcome.topk_ids.begin(),
                        node.outcome.topk_ids.end());
    }
    if (config.collect_regions && node.outcome.cell.has_value()) {
      out.regions.push_back(std::move(*node.outcome.cell));
    }
    if (config.collect_flat_cells && node.outcome.flat_cell.has_value()) {
      out.flat_cells.push_back(
          FlatCell{node.id, std::move(*node.outcome.flat_cell)});
    }
  }
  out.topk_union.assign(topk_union.begin(), topk_union.end());
  return out;
}

// Fixed base for the victim-order seeding. Any constant works -- the
// output is order-independent by construction -- but a fixed one makes
// executor behavior (and the telemetry) reproducible run-to-run.
constexpr uint64_t kVictimSeed = 0x746f707272ULL;  // "toprr"

// One worker slot of the stealing executor. Everything here is owned by
// a single worker for the duration of the run: tasks, counters, and
// accepted nodes stay worker-local (the satellite fix for the old
// executor's per-task re-locking) and are folded into the output once,
// at merge time, after the final handshake. The deque is the only
// cross-thread surface, and only through its atomic Steal path.
struct WorkerSlot {
  WorkStealingDeque<RegionTask> deque;
  std::vector<size_t> victims;  // seeded steal order over peer slots
  Tally tally;
  std::vector<AcceptedNode> accepted;
  SchedulerWorkerStats stats;
  // Scoring-kernel scratch (SoA block, score matrix, selection buffers),
  // reused across every region this worker tests; its counters fold into
  // `stats` at merge time.
  ScoreArena arena;
  // Flat-geometry split scratch (pref/flat_region.h), reused the same
  // way: classification rows, incidence bitsets, packed dedup keys.
  GeomArena geom_arena;
};

// Copies a worker's arena counters (scoring kernel + flat geometry) into
// its telemetry slot.
void FoldArenaCounters(const ScoreArena& arena, const GeomArena& geom_arena,
                       SchedulerWorkerStats& stats) {
  const ScoreKernelCounters& counters = arena.counters();
  stats.candidates_scored = counters.candidates_scored;
  stats.block_gather_bytes = counters.block_gather_bytes;
  stats.reuse_hits = counters.reuse_hits;
  stats.arena_allocations = counters.arena_allocations;
  const GeomCounters& geom = geom_arena.counters();
  stats.split_vertices_classified = geom.split_vertices_classified;
  stats.geom_arena_allocations = geom.geom_arena_allocations;
}

// State shared between the calling thread and the pool helpers of the
// stealing executor. Held by shared_ptr so that helper tasks still
// queued on the pool after the solve completes stay memory-safe: they
// lock, observe the done flag, and return without touching the deques
// or the dataset.
struct StealState {
  StealState(const PartitionConfig& config, size_t num_workers)
      : max_regions(config.max_regions > 0 ? config.max_regions
                                           : kDefaultMaxRegions),
        time_budget_seconds(config.time_budget_seconds),
        cancel(config.cancel) {
    slots.reserve(num_workers);
    for (size_t w = 0; w < num_workers; ++w) {
      slots.push_back(std::make_unique<WorkerSlot>());
      slots.back()->victims = StealVictimOrder(w, num_workers, kVictimSeed);
    }
  }

  // Budget-stopped runs abandon tasks in the deques; the last owner of
  // the state (possibly a late pool helper) frees them. Single-threaded
  // by then, so the owner-only Pop is safe from any thread.
  ~StealState() {
    for (std::unique_ptr<WorkerSlot>& slot : slots) {
      while (RegionTask* task = slot->deque.Pop()) delete task;
    }
  }

  std::vector<std::unique_ptr<WorkerSlot>> slots;

  // Lock-free hot-path state.
  std::atomic<int64_t> in_flight{0};  // tasks created but not yet retired
  std::atomic<bool> stop{false};      // budget exhausted; drop the rest
  std::atomic<bool> timed_out{false};
  std::atomic<bool> cancelled{false};
  std::atomic<bool> cap_warned{false};
  std::atomic<size_t> popped{0};  // budget tickets (mirrors the region cap)

  // Cold-path handshake: slot claiming on entry, completion on exit.
  std::mutex mu;
  std::condition_variable cv;
  size_t next_slot = 1;  // slot 0 belongs to the calling thread
  size_t active = 0;     // workers currently inside DrainStealing
  bool done = false;     // merge finished; late helpers must not touch deques

  const size_t max_regions;
  const double time_budget_seconds;
  const std::atomic<bool>* cancel;
  Timer timer;
};

// The per-worker drain loop: pop own deque LIFO; when empty, steal FIFO
// from the victims in this slot's seeded order; when the whole tree is
// in nobody's deque (in_flight == 0) or the budget stopped the run,
// return. Tallies, accepted nodes, and telemetry all stay in the slot.
void DrainStealing(const DatasetView& data, const PartitionConfig& config,
                   StealState& state, size_t slot_index) {
  WorkerSlot& self = *state.slots[slot_index];
  int idle_rounds = 0;
  for (;;) {
    if (state.stop.load(std::memory_order_relaxed)) return;

    RegionTask* task = self.deque.Pop();
    if (task == nullptr) {
      for (size_t victim : self.victims) {
        task = state.slots[victim]->deque.Steal();
        if (task != nullptr) {
          ++self.stats.tasks_stolen;
          break;
        }
        ++self.stats.steal_failures;
      }
    }
    if (task == nullptr) {
      if (state.in_flight.load(std::memory_order_acquire) == 0) return;
      // Work exists but is claimed or hiding behind a racing thief.
      // Yield first (cheap, keeps latency low), then back off to short
      // sleeps so idle workers don't starve the busy ones on small
      // machines.
      if (++idle_rounds < 64) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      continue;
    }
    idle_rounds = 0;

    // Budget and cancellation checks, charged per claimed region exactly
    // like the sequential executor. The popped ticket makes the region
    // cap a hard bound even though no lock is held.
    if (state.cancel != nullptr &&
        state.cancel->load(std::memory_order_relaxed)) {
      state.cancelled.store(true, std::memory_order_relaxed);
      state.timed_out.store(true, std::memory_order_relaxed);
      state.stop.store(true, std::memory_order_relaxed);
      delete task;
      state.in_flight.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }
    if (state.time_budget_seconds > 0.0 &&
        state.timer.Seconds() > state.time_budget_seconds) {
      state.timed_out.store(true, std::memory_order_relaxed);
      state.stop.store(true, std::memory_order_relaxed);
      delete task;
      state.in_flight.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }
    if (state.popped.fetch_add(1, std::memory_order_relaxed) >=
        state.max_regions) {
      if (!state.cap_warned.exchange(true, std::memory_order_relaxed)) {
        LOG(WARNING) << "partitioning hit the region cap ("
                     << state.max_regions << "); aborting";
      }
      state.timed_out.store(true, std::memory_order_relaxed);
      state.stop.store(true, std::memory_order_relaxed);
      delete task;
      state.in_flight.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }

    const uint64_t id = task->id;
    RegionOutcome outcome = TestAndSplitRegion(
        data, config, std::move(*task), &self.arena, &self.geom_arena);
    delete task;

    ++self.tally.regions_tested;
    ++self.stats.tasks_executed;
    TallyOutcome(outcome, self.tally);
    if (outcome.accepted) {
      self.accepted.push_back(AcceptedNode{id, std::move(outcome)});
    } else {
      // Children become visible to thieves via the deque's release
      // publication; the in-flight increment precedes it so no worker
      // can observe "empty tree" between push and count.
      state.in_flight.fetch_add(2, std::memory_order_relaxed);
      self.deque.Push(new RegionTask(std::move(*outcome.below)));
      self.deque.Push(new RegionTask(std::move(*outcome.above)));
      const uint64_t depth = self.deque.SizeApprox();
      if (depth > self.stats.deque_high_water) {
        self.stats.deque_high_water = depth;
      }
    }
    state.in_flight.fetch_sub(1, std::memory_order_acq_rel);
  }
}

// Pool-helper entry: claim a slot under the lock (late helpers observe
// `done` and leave without touching anything), drain, sign out.
void StealWorkerEntry(const DatasetView& data, const PartitionConfig& config,
                      StealState& state) {
  size_t slot_index;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (state.done || state.next_slot >= state.slots.size()) return;
    slot_index = state.next_slot++;
    ++state.active;
  }
  DrainStealing(data, config, state, slot_index);
  {
    std::lock_guard<std::mutex> lock(state.mu);
    --state.active;
  }
  state.cv.notify_all();
}

}  // namespace

PartitionOutput PartitionScheduler::Run(RegionTask root) const {
  std::vector<RegionTask> roots;
  roots.push_back(std::move(root));
  return RunFrontier(std::move(roots));
}

PartitionOutput PartitionScheduler::RunFrontier(
    std::vector<RegionTask> roots) const {
  const size_t workers = ResolveThreadCount(config_.num_threads);
  if (workers <= 1) return RunSequential(std::move(roots));
  return RunParallel(std::move(roots), workers);
}

PartitionOutput PartitionScheduler::RunSequential(
    std::vector<RegionTask> roots) const {
  const size_t max_regions = config_.max_regions > 0 ? config_.max_regions
                                                     : kDefaultMaxRegions;
  Timer timer;
  Tally tally;
  SchedulerWorkerStats worker_stats;
  ScoreArena arena;
  GeomArena geom_arena;
  std::vector<AcceptedNode> accepted;
  // LIFO pop order: pushing the frontier in reverse keeps the first root
  // the first task claimed (matters only for telemetry, never output).
  std::deque<RegionTask> queue;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    queue.push_back(std::move(*it));
  }
  roots.clear();
  worker_stats.deque_high_water = queue.size();

  while (!queue.empty()) {
    if (config_.cancel != nullptr &&
        config_.cancel->load(std::memory_order_relaxed)) {
      tally.timed_out = true;
      tally.cancelled = true;
      break;
    }
    if (config_.time_budget_seconds > 0.0 &&
        timer.Seconds() > config_.time_budget_seconds) {
      tally.timed_out = true;
      break;
    }
    if (tally.regions_tested >= max_regions) {
      LOG(WARNING) << "partitioning hit the region cap (" << max_regions
                   << "); aborting";
      tally.timed_out = true;
      break;
    }
    // LIFO (depth-first), matching the stealing executor's own-deque
    // order: the pending frontier stays O(tree depth), which bounds how
    // many parent_scores caches are alive at once -- BFS would keep a
    // V x |pool| score matrix pinned for every pending sibling pair.
    // Output is unaffected: accepted nodes merge in task-id order.
    RegionTask task = std::move(queue.back());
    queue.pop_back();
    ++tally.regions_tested;
    ++worker_stats.tasks_executed;
    const uint64_t id = task.id;

    RegionOutcome outcome = TestAndSplitRegion(data_, config_,
                                               std::move(task), &arena,
                                               &geom_arena);
    TallyOutcome(outcome, tally);
    if (outcome.accepted) {
      accepted.push_back(AcceptedNode{id, std::move(outcome)});
    } else {
      queue.push_back(std::move(*outcome.below));
      queue.push_back(std::move(*outcome.above));
      if (queue.size() > worker_stats.deque_high_water) {
        worker_stats.deque_high_water = queue.size();
      }
    }
  }
  PartitionOutput out =
      AssembleOutput(config_, std::move(tally), std::move(accepted));
  if (config_.collect_scheduler_stats) {
    FoldArenaCounters(arena, geom_arena, worker_stats);
    out.scheduler.workers.push_back(worker_stats);
  }
  out.scheduler.wall_seconds = timer.Seconds();
  return out;
}

PartitionOutput PartitionScheduler::RunParallel(std::vector<RegionTask> roots,
                                                size_t num_workers) const {
  auto state = std::make_shared<StealState>(config_, num_workers);
  state->in_flight.store(static_cast<int64_t>(roots.size()),
                         std::memory_order_relaxed);
  // All roots start in slot 0 (reverse order so the calling thread's LIFO
  // pops claim the first root first); thieves redistribute them FIFO.
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    state->slots[0]->deque.Push(new RegionTask(std::move(*it)));
  }
  state->slots[0]->stats.deque_high_water = roots.size();
  roots.clear();

  // Borrow up to num_workers-1 helpers from the shared pool. The calling
  // thread drains too (slot 0), so helpers the pool cannot schedule (it
  // may be saturated by batch queries) only cost parallelism, never
  // progress.
  ThreadPool& pool = SharedThreadPool();
  const DatasetView data = data_;  // views are values; helpers copy it
  const PartitionConfig config = config_;
  for (size_t i = 1; i < num_workers; ++i) {
    pool.Submit(
        [data, config, state] { StealWorkerEntry(data, config, *state); });
  }
  DrainStealing(data_, config_, *state, 0);

  // Helpers mid-task still hold references into the worker slots (and
  // the dataset); wait for them before merging. Setting `done` under the
  // same lock closes the gate: a helper the pool schedules after this
  // point returns without touching the deques, so the merge below -- and
  // the caller's stack -- are safe.
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&state] { return state->active == 0; });
    state->done = true;
  }

  // Fold the worker-local tallies and accepted buffers (batched counter
  // deltas: the only per-task shared-state traffic the executor has is
  // the in-flight counter and the budget ticket).
  Tally tally;
  std::vector<AcceptedNode> accepted;
  SchedulerStats scheduler;
  for (std::unique_ptr<WorkerSlot>& slot : state->slots) {
    tally.regions_tested += slot->tally.regions_tested;
    tally.regions_accepted += slot->tally.regions_accepted;
    tally.regions_split += slot->tally.regions_split;
    tally.kipr_accepts += slot->tally.kipr_accepts;
    tally.lemma7_accepts += slot->tally.lemma7_accepts;
    tally.lemma5_prunes += slot->tally.lemma5_prunes;
    std::move(slot->accepted.begin(), slot->accepted.end(),
              std::back_inserter(accepted));
    slot->accepted.clear();
    if (config_.collect_scheduler_stats) {
      FoldArenaCounters(slot->arena, slot->geom_arena, slot->stats);
      scheduler.workers.push_back(slot->stats);
    }
  }
  tally.timed_out = state->timed_out.load(std::memory_order_relaxed);
  tally.cancelled = state->cancelled.load(std::memory_order_relaxed);
  PartitionOutput out =
      AssembleOutput(config_, std::move(tally), std::move(accepted));
  out.scheduler = std::move(scheduler);
  out.scheduler.wall_seconds = state->timer.Seconds();
  return out;
}

}  // namespace toprr
