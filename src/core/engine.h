// ToprrEngine: precomputation for repeated TopRR queries over the same
// dataset (the paper's Sec. 7 names pre-computation as future work; this
// realizes the obvious instance of it).
//
// The k-skyband is independent of wR and is a superset of every r-skyband,
// so the engine computes it once per k and restricts the per-query
// r-skyband scan to it. For large n this removes the dominant filtering
// cost from the per-query path (see bench_engine_precompute).
#ifndef TOPRR_CORE_ENGINE_H_
#define TOPRR_CORE_ENGINE_H_

#include <map>
#include <vector>

#include "core/toprr.h"
#include "data/dataset.h"
#include "pref/pref_space.h"
#include "pref/region.h"

namespace toprr {

/// Caches per-k candidate supersets for one dataset. The dataset must
/// outlive the engine and must not change while it is in use.
class ToprrEngine {
 public:
  explicit ToprrEngine(const Dataset* data) : data_(data) {
    DCHECK(data != nullptr);
  }

  ToprrEngine(const ToprrEngine&) = delete;
  ToprrEngine& operator=(const ToprrEngine&) = delete;

  /// The cached k-skyband (computed on first use for each k).
  const std::vector<int>& KSkyband(int k);

  /// Solves TopRR(D, k, wR) reusing the cached k-skyband: the per-query
  /// r-skyband is computed within it instead of over the whole dataset.
  ToprrResult Solve(int k, const PrefBox& region,
                    const ToprrOptions& options = {});

  /// General convex-polytope variant.
  ToprrResult Solve(int k, const PrefRegion& region,
                    const ToprrOptions& options = {});

  /// Drops all cached state (e.g. after the dataset changed).
  void InvalidateCache() { skyband_cache_.clear(); }

  const Dataset& data() const { return *data_; }

 private:
  const Dataset* data_;
  std::map<int, std::vector<int>> skyband_cache_;
};

}  // namespace toprr

#endif  // TOPRR_CORE_ENGINE_H_
