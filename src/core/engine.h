// ToprrEngine: precomputation and batch serving for repeated TopRR
// queries over a snapshot-versioned dataset (the paper's Sec. 7 names
// pre-computation as future work; this realizes the obvious instance of
// it and grows it into a traffic-serving front-end).
//
// The k-skyband is independent of wR and is a superset of every
// r-skyband, so the engine computes it once per (k, snapshot version)
// and restricts the per-query r-skyband scan to it. For large n this
// removes the dominant filtering cost from the per-query path (see
// bench_engine_precompute). SolveBatch additionally dispatches
// independent queries across the shared thread pool, all sharing the
// same guarded skyband cache.
//
// Ownership and mutation model (data/snapshot.h):
//  * The engine always serves from an immutable DatasetSnapshot. Every
//    Solve pins the current snapshot for its whole duration (and stamps
//    ToprrResult::snapshot_id), so a writer publishing mid-query can
//    never be observed by that query -- readers and the writer share
//    nothing mutable.
//  * SetSnapshot moves the engine to a newer version (typically
//    MutableCatalog::Publish output). Per-k skybands are maintained
//    *incrementally* across the snapshot delta -- inserted rows are
//    dominance-checked against the cached skyband (O(delta * skyband)),
//    deletions of non-members are free, and only a member deletion
//    forces a SortBasedKSkyband rebuild over the live rows.
//  * Region-cache entries fold the snapshot id into their signature:
//    entries from old versions stop matching and age out through the
//    LRU instead of being mass-dropped, and each entry pins the snapshot
//    it was solved from.
//
// Thread-safety contract:
//  * Solve / SolveBatch / KSkyband / SetSnapshot may be called
//    concurrently from any number of threads. The skyband cache holds
//    one once-initialized entry per (k, version) behind shared_ptr, so
//    the mutex only guards map lookups -- skyband builds run outside the
//    lock, and a batch mixing k values builds its skybands concurrently.
//  * KSkyband's returned reference stays valid until the next
//    SetSnapshot (older-version entries are garbage collected then;
//    in-flight solves are safe because they hold the entry by
//    shared_ptr, not by reference).
#ifndef TOPRR_CORE_ENGINE_H_
#define TOPRR_CORE_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/region_cache.h"
#include "core/toprr.h"
#include "data/dataset.h"
#include "data/snapshot.h"
#include "pref/pref_space.h"
#include "pref/region.h"

namespace toprr {

/// One query of a batch: TopRR(D, k, region) under `options`.
struct ToprrQuery {
  int k = 0;
  PrefRegion region;
  ToprrOptions options;

  static ToprrQuery FromBox(int k, const PrefBox& box,
                            const ToprrOptions& options = {}) {
    return ToprrQuery{k, PrefRegion::FromBox(box), options};
  }
};

/// Caches per-(k, version) candidate supersets over a snapshot chain and
/// serves queries one at a time or in parallel batches. See the
/// ownership and thread-safety contracts in the file comment.
class ToprrEngine {
 public:
  /// Serves from `snapshot` (and any successors handed to SetSnapshot).
  /// The canonical construction for a fixed table is
  ///   ToprrEngine engine(DatasetSnapshot::FromDataset(data));
  /// and for a live catalog
  ///   MutableCatalog catalog(...);
  ///   ToprrEngine engine(catalog.Current());
  /// (The pre-snapshot Dataset* constructor and its InvalidateCache()
  /// shim were removed; snapshots are the only ownership model.)
  explicit ToprrEngine(SnapshotPtr snapshot);

  ToprrEngine(const ToprrEngine&) = delete;
  ToprrEngine& operator=(const ToprrEngine&) = delete;

  /// The cached k-skyband of the current snapshot (computed on first use
  /// for each (k, version)). The returned reference stays valid until
  /// the next SetSnapshot.
  const std::vector<int>& KSkyband(int k);

  /// Solves TopRR(D, k, wR) reusing the cached k-skyband: the per-query
  /// r-skyband is computed within it instead of over the whole dataset.
  /// Pins the current snapshot for the solve's duration.
  ToprrResult Solve(int k, const PrefBox& region,
                    const ToprrOptions& options = {});

  /// General convex-polytope variant.
  ToprrResult Solve(int k, const PrefRegion& region,
                    const ToprrOptions& options = {});

  /// Query-object form (the unit of SolveBatch).
  ToprrResult Solve(const ToprrQuery& query);

  /// Solves every query, dispatching them across the shared thread pool
  /// (num_threads workers; 0 = one per hardware thread; the calling
  /// thread always participates). Results are positionally aligned with
  /// `queries`. Queries whose options request region-level parallelism
  /// (options.num_threads != 1) compose safely with the batch dispatch --
  /// both levels borrow from the same pool and degrade gracefully when it
  /// is saturated. Each query pins the snapshot current at its own start,
  /// so a concurrent SetSnapshot splits the batch at a clean version
  /// boundary (check ToprrResult::snapshot_id).
  ///
  /// `cancel`, when non-null, aborts the whole batch cooperatively: it
  /// is injected as ToprrOptions::cancel into every query that does not
  /// carry its own flag (so in-flight solves stop at their next
  /// per-region poll), and queries not yet claimed when it flips return
  /// immediately with timed_out and cancelled set. The pointee must
  /// outlive the call. The serving front-end passes its shutdown flag
  /// here so Stop() never waits for a long solve.
  std::vector<ToprrResult> SolveBatch(
      const std::vector<ToprrQuery>& queries, int num_threads = 0,
      const std::atomic<bool>* cancel = nullptr);

  /// Moves the engine to a newer snapshot (typically
  /// MutableCatalog::Publish output). Safe with queries in flight: they
  /// finish on their pinned version. Skybands cached for the previous
  /// version are carried forward incrementally along the snapshot delta
  /// when possible (see the file comment); entries for older versions
  /// are garbage collected.
  void SetSnapshot(SnapshotPtr snapshot);

  /// The currently served snapshot (pin it to keep a version alive).
  SnapshotPtr snapshot() const;
  /// The current snapshot's 64-bit content id.
  uint64_t snapshot_id() const;
  /// The current snapshot's monotone publish sequence number.
  uint64_t snapshot_seq() const;
  /// Live rows / dimension of the current snapshot -- what a query
  /// observes as the dataset size.
  size_t dataset_rows() const;
  size_t dataset_dim() const;

  /// Enables the cross-query region cache (core/region_cache.h).
  /// Queries opt in per-solve via ToprrOptions::use_region_cache; box
  /// queries (including PrefRegion queries that are exact boxes) inside
  /// the preference simplex are then served by cached-cell clipping or
  /// frontier resumption. Call before the first query; replacing an
  /// active cache mid-traffic is not supported.
  void EnableRegionCache(const RegionCacheConfig& config = {});

  /// The enabled region cache, or null. Entries pin their payloads via
  /// shared_ptr, so counters/inspection race safely with serving.
  RegionCache* region_cache() { return region_cache_.get(); }

  /// Monotone telemetry of the snapshot-update path.
  struct UpdateCounters {
    uint64_t publishes_seen = 0;       // SetSnapshot calls that changed id
    uint64_t skyband_incremental = 0;  // skybands carried across a delta
    uint64_t skyband_rebuilds = 0;     // full SortBasedKSkyband builds
  };
  UpdateCounters update_counters() const;

 private:
  /// One (k, version) cache entry. `once` gates the (lock-free) build so
  /// cache_mu_ is never held across skyband computation; `built` lets a
  /// successor version test whether this entry is usable as an
  /// incremental base without blocking on the once flag.
  struct SkybandEntry {
    std::once_flag once;
    std::atomic<bool> built{false};
    std::vector<int> ids;     // ascending
    std::vector<int> counts;  // per-member dominator counts (< k)
    bool incremental = false;  // how the build ran (telemetry/tests)
    /// The same-k entry of the parent snapshot version, staged at entry
    /// creation under cache_mu_ and consumed (dropped) by the build.
    std::shared_ptr<SkybandEntry> prev;
  };
  using SkybandEntryPtr = std::shared_ptr<SkybandEntry>;

  /// The current snapshot under cache_mu_ (shared_ptr copy = pin).
  SnapshotPtr PinSnapshot() const;

  /// The built skyband entry for (k, snap's version), creating/building
  /// it if needed (incrementally when the parent version's entry is
  /// available and no skyband member was deleted).
  SkybandEntryPtr GetSkyband(const SnapshotPtr& snap, int k);
  void BuildSkybandEntry(const SnapshotPtr& snap, int k,
                         SkybandEntry* entry);

  /// Snapshot-pinned solve bodies behind the public Solve overloads.
  ToprrResult SolveBox(const SnapshotPtr& snap, int k, const PrefBox& box,
                       const ToprrOptions& options);
  ToprrResult SolveRegion(const SnapshotPtr& snap, int k,
                          const PrefRegion& region,
                          const ToprrOptions& options);

  /// The cached-box solve pipeline: containment hit (clip stored cells),
  /// partial overlap (clip the core, resume the remainder as a scheduler
  /// frontier), or miss (solve the canonical box, insert, clip). The box
  /// must be non-degenerate and inside the preference simplex.
  ToprrResult SolveCachedBox(const SnapshotPtr& snap, int k,
                             const PrefBox& box,
                             const ToprrOptions& options);

  /// Clips `cells` to `box` and runs dedup + assembly under `candidates`
  /// -- the shared tail of the hit and miss paths (hit == miss
  /// bit-identity holds because both end here).
  ToprrResult AssembleFromCells(const SnapshotPtr& snap,
                                const std::vector<FlatCell>& cells,
                                const std::vector<int>& candidates, int k,
                                const PrefBox& box,
                                const ToprrOptions& options);

  ToprrResult SolvePartialOverlap(const SnapshotPtr& snap, int k,
                                  const PrefBox& box,
                                  const ToprrOptions& options,
                                  std::shared_ptr<const RegionCacheEntry>
                                      entry);

  ToprrResult SolveColdAndInsert(const SnapshotPtr& snap, int k,
                                 const PrefBox& box,
                                 const ToprrOptions& options,
                                 const std::string& signature);

  mutable std::mutex cache_mu_;
  SnapshotPtr snapshot_;  // current version; guarded by cache_mu_
  // (k, snapshot id) -> entry; guarded by cache_mu_ (builds run outside).
  std::map<std::pair<int, uint64_t>, SkybandEntryPtr> skyband_cache_;

  std::atomic<uint64_t> publishes_seen_{0};
  std::atomic<uint64_t> skyband_incremental_{0};
  std::atomic<uint64_t> skyband_rebuilds_{0};

  // Set once by EnableRegionCache before serving; the cache itself is
  // internally synchronized (sharded mutexes + shared_ptr payloads).
  std::unique_ptr<RegionCache> region_cache_;
};

}  // namespace toprr

#endif  // TOPRR_CORE_ENGINE_H_
