// ToprrEngine: precomputation and batch serving for repeated TopRR
// queries over one dataset (the paper's Sec. 7 names pre-computation as
// future work; this realizes the obvious instance of it and grows it into
// a traffic-serving front-end).
//
// The k-skyband is independent of wR and is a superset of every r-skyband,
// so the engine computes it once per k and restricts the per-query
// r-skyband scan to it. For large n this removes the dominant filtering
// cost from the per-query path (see bench_engine_precompute). SolveBatch
// additionally dispatches independent queries across the shared thread
// pool, all sharing the same guarded skyband cache.
//
// Thread-safety contract:
//  * Solve / SolveBatch / KSkyband may be called concurrently from any
//    number of threads; the skyband cache holds one once-initialized
//    slot per k in a node-based map, so the mutex only guards the map
//    lookup -- the skyband computation itself runs outside the lock,
//    and a batch mixing k values builds its skybands concurrently
//    instead of serializing behind the first query's build. References
//    stay valid while further k values are added.
//  * InvalidateCache requires exclusive access: it must not overlap any
//    in-flight query (those hold references into the cache).
//  * The dataset must outlive the engine and must be treated as immutable
//    for the engine's whole lifetime: cached skybands, and any in-flight
//    solve, are only meaningful against the rows they were computed from.
//    Debug builds DCHECK a dataset fingerprint on every query to catch
//    mutation; if the dataset legitimately changed in place, call
//    InvalidateCache() (with no queries in flight) to drop the stale
//    skybands and re-arm the fingerprint.
#ifndef TOPRR_CORE_ENGINE_H_
#define TOPRR_CORE_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/region_cache.h"
#include "core/toprr.h"
#include "data/dataset.h"
#include "pref/pref_space.h"
#include "pref/region.h"

namespace toprr {

/// One query of a batch: TopRR(D, k, region) under `options`.
struct ToprrQuery {
  int k = 0;
  PrefRegion region;
  ToprrOptions options;

  static ToprrQuery FromBox(int k, const PrefBox& box,
                            const ToprrOptions& options = {}) {
    return ToprrQuery{k, PrefRegion::FromBox(box), options};
  }
};

/// Caches per-k candidate supersets for one dataset and serves queries
/// one at a time or in parallel batches. See the thread-safety contract
/// in the file comment.
class ToprrEngine {
 public:
  explicit ToprrEngine(const Dataset* data);

  ToprrEngine(const ToprrEngine&) = delete;
  ToprrEngine& operator=(const ToprrEngine&) = delete;

  /// The cached k-skyband (computed on first use for each k). The
  /// returned reference stays valid until InvalidateCache().
  const std::vector<int>& KSkyband(int k);

  /// Solves TopRR(D, k, wR) reusing the cached k-skyband: the per-query
  /// r-skyband is computed within it instead of over the whole dataset.
  ToprrResult Solve(int k, const PrefBox& region,
                    const ToprrOptions& options = {});

  /// General convex-polytope variant.
  ToprrResult Solve(int k, const PrefRegion& region,
                    const ToprrOptions& options = {});

  /// Query-object form (the unit of SolveBatch).
  ToprrResult Solve(const ToprrQuery& query);

  /// Solves every query, dispatching them across the shared thread pool
  /// (num_threads workers; 0 = one per hardware thread; the calling
  /// thread always participates). Results are positionally aligned with
  /// `queries`. Queries whose options request region-level parallelism
  /// (options.num_threads != 1) compose safely with the batch dispatch --
  /// both levels borrow from the same pool and degrade gracefully when it
  /// is saturated.
  ///
  /// `cancel`, when non-null, aborts the whole batch cooperatively: it
  /// is injected as ToprrOptions::cancel into every query that does not
  /// carry its own flag (so in-flight solves stop at their next
  /// per-region poll), and queries not yet claimed when it flips return
  /// immediately with timed_out and cancelled set. The pointee must
  /// outlive the call. The serving front-end passes its shutdown flag
  /// here so Stop() never waits for a long solve.
  std::vector<ToprrResult> SolveBatch(
      const std::vector<ToprrQuery>& queries, int num_threads = 0,
      const std::atomic<bool>* cancel = nullptr);

  /// Drops all cached state -- per-k skybands and every region-cache
  /// entry -- and re-arms the dataset fingerprint (e.g. after the
  /// dataset legitimately changed in place). Requires that no query is
  /// in flight; region-cache snapshots already pinned by a racing solve
  /// would describe the old rows.
  void InvalidateCache();

  /// Enables the cross-query region cache (core/region_cache.h).
  /// Queries opt in per-solve via ToprrOptions::use_region_cache; box
  /// queries (including PrefRegion queries that are exact boxes) inside
  /// the preference simplex are then served by cached-cell clipping or
  /// frontier resumption. Call before the first query; replacing an
  /// active cache mid-traffic is not supported.
  void EnableRegionCache(const RegionCacheConfig& config = {});

  /// The enabled region cache, or null. Entries pin their payloads via
  /// shared_ptr, so counters/inspection race safely with serving.
  RegionCache* region_cache() { return region_cache_.get(); }

  const Dataset& data() const { return *data_; }

 private:
  /// Cheap order-sensitive digest of the dataset contents, used to DCHECK
  /// immutability on every query (debug builds only).
  static double Fingerprint(const Dataset& data);

  /// DCHECKs that the dataset still matches the fingerprint taken at
  /// construction / last InvalidateCache.
  void CheckDatasetUnchanged() const;

  /// The cached-box solve pipeline: containment hit (clip stored cells),
  /// partial overlap (clip the core, resume the remainder as a scheduler
  /// frontier), or miss (solve the canonical box, insert, clip). The box
  /// must be non-degenerate and inside the preference simplex.
  ToprrResult SolveCachedBox(int k, const PrefBox& box,
                             const ToprrOptions& options);

  /// Clips `cells` to `box` and runs dedup + assembly under `candidates`
  /// -- the shared tail of the hit and miss paths (hit == miss
  /// bit-identity holds because both end here).
  ToprrResult AssembleFromCells(const std::vector<FlatCell>& cells,
                                const std::vector<int>& candidates, int k,
                                const PrefBox& box,
                                const ToprrOptions& options);

  ToprrResult SolvePartialOverlap(int k, const PrefBox& box,
                                  const ToprrOptions& options,
                                  std::shared_ptr<const RegionCacheEntry>
                                      entry);

  ToprrResult SolveColdAndInsert(int k, const PrefBox& box,
                                 const ToprrOptions& options,
                                 const std::string& signature);

  /// One per-k cache slot: the once flag gates the (lock-free) skyband
  /// computation, so cache_mu_ is held only for the map lookup and never
  /// across SortBasedKSkyband.
  struct SkybandSlot {
    std::once_flag once;
    std::vector<int> ids;
  };

  const Dataset* data_;
  double fingerprint_ = 0.0;  // computed in debug builds only

  std::mutex cache_mu_;
  std::map<int, SkybandSlot> skyband_cache_;  // map guarded by cache_mu_

  // Set once by EnableRegionCache before serving; the cache itself is
  // internally synchronized (sharded mutexes + shared_ptr payloads).
  std::unique_ptr<RegionCache> region_cache_;
};

}  // namespace toprr

#endif  // TOPRR_CORE_ENGINE_H_
