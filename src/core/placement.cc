#include "core/placement.h"

#include <cmath>

#include "common/check.h"
#include "common/logging.h"
#include "geom/qp.h"

namespace toprr {
namespace {

PlacementResult Project(const ToprrResult& region, const Vec& target,
                        bool cost_is_distance,
                        const std::vector<Halfspace>* extra = nullptr) {
  PlacementResult out;
  std::vector<Halfspace> constraints = region.AllHalfspaces();
  if (extra != nullptr) {
    constraints.insert(constraints.end(), extra->begin(), extra->end());
  }
  const QpResult qp = ProjectOntoPolytope(target, constraints);
  if (!qp.ok()) {
    LOG(WARNING) << "placement QP failed (status "
                 << static_cast<int>(qp.status) << ")";
    return out;
  }
  out.option = qp.x;
  out.cost = cost_is_distance ? Distance(qp.x, target) : qp.x.SquaredNorm();
  out.ok = true;
  return out;
}

}  // namespace

PlacementResult MinimumCostCreation(const ToprrResult& region) {
  CHECK(!region.box_halfspaces.empty());
  const size_t d = region.box_halfspaces[0].dim();
  return Project(region, Vec(d, 0.0), /*cost_is_distance=*/false);
}

PlacementResult MinimumModification(const ToprrResult& region,
                                    const Vec& current) {
  return Project(region, current, /*cost_is_distance=*/true);
}

PlacementResult MinimumCostCreationConstrained(
    const ToprrResult& region, const std::vector<Halfspace>& extra) {
  CHECK(!region.box_halfspaces.empty());
  const size_t d = region.box_halfspaces[0].dim();
  return Project(region, Vec(d, 0.0), /*cost_is_distance=*/false, &extra);
}

PlacementResult MinimumModificationConstrained(
    const ToprrResult& region, const Vec& current,
    const std::vector<Halfspace>& extra) {
  return Project(region, current, /*cost_is_distance=*/true, &extra);
}

std::optional<BudgetPlacement> SmallestKWithinBudget(
    const Dataset& data, const PrefBox& region, const Vec& current,
    double budget, int k_max, const ToprrOptions& options) {
  CHECK_GT(k_max, 0);
  // Decreasing k shrinks oR, so cost is monotone non-decreasing; scan k
  // downward and stop at the first k whose cost exceeds the budget.
  std::optional<BudgetPlacement> best;
  for (int k = k_max; k >= 1; --k) {
    const ToprrResult result = SolveToprr(data, k, region, options);
    if (result.timed_out) break;
    const PlacementResult placement = MinimumModification(result, current);
    if (!placement.ok || placement.cost > budget) break;
    best = BudgetPlacement{k, placement};
  }
  return best;
}

}  // namespace toprr
