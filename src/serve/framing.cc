#include "serve/framing.h"

#include <cerrno>
#include <cstdint>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace toprr {
namespace serve {
namespace {

// Outcome of draining an exact byte count from a stream.
enum class FillStatus { kOk, kEof, kError };

// Reads exactly `length` bytes, looping over short reads; EINTR restarts
// the read. kEof means the stream ended before `length` bytes arrived
// (*filled tells the caller whether any arrived at all).
FillStatus ReadFull(ByteStream& stream, void* buffer, size_t length,
                    size_t* filled) {
  *filled = 0;
  char* out = static_cast<char*>(buffer);
  while (*filled < length) {
    const ssize_t n = stream.ReadSome(out + *filled, length - *filled);
    if (n > 0) {
      *filled += static_cast<size_t>(n);
    } else if (n == 0) {
      return FillStatus::kEof;
    } else if (errno != EINTR) {
      return FillStatus::kError;
    }
  }
  return FillStatus::kOk;
}

// Writes exactly `length` bytes, looping over short writes and EINTR.
bool WriteFull(ByteStream& stream, const void* buffer, size_t length) {
  const char* in = static_cast<const char*>(buffer);
  size_t sent = 0;
  while (sent < length) {
    const ssize_t n = stream.WriteSome(in + sent, length - sent);
    if (n > 0) {
      sent += static_cast<size_t>(n);
    } else if (n < 0 && errno != EINTR) {
      return false;
    }
    // n == 0 from a blocking stream is odd but not an error; retry.
  }
  return true;
}

}  // namespace

ssize_t FdStream::ReadSome(void* buffer, size_t length) {
  return ::read(fd_, buffer, length);
}

ssize_t FdStream::WriteSome(const void* buffer, size_t length) {
  const ssize_t n = ::send(fd_, buffer, length, MSG_NOSIGNAL);
  if (n < 0 && errno == ENOTSOCK) return ::write(fd_, buffer, length);
  return n;
}

const char* FrameReadStatusName(FrameReadStatus status) {
  switch (status) {
    case FrameReadStatus::kOk:
      return "ok";
    case FrameReadStatus::kEof:
      return "eof";
    case FrameReadStatus::kTruncated:
      return "truncated";
    case FrameReadStatus::kOversized:
      return "oversized";
    case FrameReadStatus::kIoError:
      return "io-error";
  }
  return "unknown";
}

FrameReadStatus ReadFrame(ByteStream& stream, std::string* payload,
                          size_t max_payload) {
  payload->clear();
  unsigned char prefix[4];
  size_t filled = 0;
  switch (ReadFull(stream, prefix, sizeof(prefix), &filled)) {
    case FillStatus::kOk:
      break;
    case FillStatus::kEof:
      // Nothing of a new frame yet: the peer simply closed.
      return filled == 0 ? FrameReadStatus::kEof : FrameReadStatus::kTruncated;
    case FillStatus::kError:
      return FrameReadStatus::kIoError;
  }
  const uint32_t length = static_cast<uint32_t>(prefix[0]) |
                          static_cast<uint32_t>(prefix[1]) << 8 |
                          static_cast<uint32_t>(prefix[2]) << 16 |
                          static_cast<uint32_t>(prefix[3]) << 24;
  if (length > max_payload) return FrameReadStatus::kOversized;
  payload->resize(length);
  if (length == 0) return FrameReadStatus::kOk;
  switch (ReadFull(stream, &(*payload)[0], length, &filled)) {
    case FillStatus::kOk:
      return FrameReadStatus::kOk;
    case FillStatus::kEof:
      payload->clear();
      return FrameReadStatus::kTruncated;
    case FillStatus::kError:
      payload->clear();
      return FrameReadStatus::kIoError;
  }
  return FrameReadStatus::kIoError;
}

bool WriteFrame(ByteStream& stream, const std::string& payload) {
  // The length prefix is a u32; a bigger payload would silently
  // truncate the prefix and desynchronize the stream.
  if (payload.size() > UINT32_MAX) {
    errno = EMSGSIZE;
    return false;
  }
  const uint32_t length = static_cast<uint32_t>(payload.size());
  const unsigned char prefix[4] = {
      static_cast<unsigned char>(length & 0xff),
      static_cast<unsigned char>((length >> 8) & 0xff),
      static_cast<unsigned char>((length >> 16) & 0xff),
      static_cast<unsigned char>((length >> 24) & 0xff),
  };
  if (!WriteFull(stream, prefix, sizeof(prefix))) return false;
  return WriteFull(stream, payload.data(), payload.size());
}

}  // namespace serve
}  // namespace toprr
