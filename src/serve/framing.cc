#include "serve/framing.h"

#include <cerrno>
#include <cstdint>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace toprr {
namespace serve {
namespace {

// Outcome of draining an exact byte count from a stream.
enum class FillStatus { kOk, kEof, kTimeout, kError };

// A stream that keeps returning 0 from WriteSome is not making progress
// and never will; after this many consecutive zero-length transfers the
// loop gives up instead of spinning forever.
constexpr int kMaxConsecutiveZeroWrites = 16;

// Reads exactly `length` bytes, looping over short reads; EINTR restarts
// the read. kEof means the stream ended before `length` bytes arrived
// (*filled tells the caller whether any arrived at all). kTimeout means
// an armed SO_RCVTIMEO expired (EAGAIN/EWOULDBLOCK). `watcher`, when
// non-null, is notified once when the first byte arrives.
FillStatus ReadFull(ByteStream& stream, void* buffer, size_t length,
                    size_t* filled, FrameWatcher* watcher = nullptr) {
  *filled = 0;
  char* out = static_cast<char*>(buffer);
  while (*filled < length) {
    const ssize_t n = stream.ReadSome(out + *filled, length - *filled);
    if (n > 0) {
      if (*filled == 0 && watcher != nullptr) watcher->OnFrameStart();
      *filled += static_cast<size_t>(n);
    } else if (n == 0) {
      return FillStatus::kEof;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return FillStatus::kTimeout;
    } else if (errno != EINTR) {
      return FillStatus::kError;
    }
  }
  return FillStatus::kOk;
}

// Writes exactly `length` bytes, looping over short writes and EINTR.
// Returns false with errno set on failure: an armed SO_SNDTIMEO expiry
// keeps EAGAIN, and a stream stuck at zero-length writes is reported as
// EIO after a bounded number of consecutive zero returns.
bool WriteFull(ByteStream& stream, const void* buffer, size_t length) {
  const char* in = static_cast<const char*>(buffer);
  size_t sent = 0;
  int zero_writes = 0;
  while (sent < length) {
    const ssize_t n = stream.WriteSome(in + sent, length - sent);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      zero_writes = 0;
    } else if (n == 0) {
      if (++zero_writes >= kMaxConsecutiveZeroWrites) {
        errno = EIO;
        return false;
      }
    } else if (errno != EINTR) {
      return false;
    }
  }
  return true;
}

// Converts a millisecond timeout into the struct timeval SO_*TIMEO
// expects; 0 means "blocking" in both representations.
bool SetFdTimeout(int fd, int optname, int ms) {
  struct timeval tv;
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv)) == 0) return true;
  // Pipes and other non-sockets simply have no timeout support; tests
  // drive FdStream over pipes, so tolerate that quietly.
  return errno == ENOTSOCK;
}

}  // namespace

ssize_t FdStream::ReadSome(void* buffer, size_t length) {
  return ::read(fd_, buffer, length);
}

ssize_t FdStream::WriteSome(const void* buffer, size_t length) {
  const ssize_t n = ::send(fd_, buffer, length, MSG_NOSIGNAL);
  if (n < 0 && errno == ENOTSOCK) return ::write(fd_, buffer, length);
  return n;
}

bool FdStream::SetReadTimeoutMs(int ms) {
  return SetFdTimeout(fd_, SO_RCVTIMEO, ms);
}

bool FdStream::SetWriteTimeoutMs(int ms) {
  return SetFdTimeout(fd_, SO_SNDTIMEO, ms);
}

const char* FrameReadStatusName(FrameReadStatus status) {
  switch (status) {
    case FrameReadStatus::kOk:
      return "ok";
    case FrameReadStatus::kEof:
      return "eof";
    case FrameReadStatus::kTruncated:
      return "truncated";
    case FrameReadStatus::kOversized:
      return "oversized";
    case FrameReadStatus::kTimeout:
      return "timeout";
    case FrameReadStatus::kIoError:
      return "io-error";
  }
  return "unknown";
}

FrameReadStatus ReadFrame(ByteStream& stream, std::string* payload,
                          size_t max_payload, FrameWatcher* watcher,
                          bool* frame_started) {
  payload->clear();
  if (frame_started != nullptr) *frame_started = false;
  unsigned char prefix[4];
  size_t filled = 0;
  const FillStatus prefix_status =
      ReadFull(stream, prefix, sizeof(prefix), &filled, watcher);
  if (frame_started != nullptr) *frame_started = filled > 0;
  switch (prefix_status) {
    case FillStatus::kOk:
      break;
    case FillStatus::kEof:
      // Nothing of a new frame yet: the peer simply closed.
      return filled == 0 ? FrameReadStatus::kEof : FrameReadStatus::kTruncated;
    case FillStatus::kTimeout:
      return FrameReadStatus::kTimeout;
    case FillStatus::kError:
      return FrameReadStatus::kIoError;
  }
  const uint32_t length = static_cast<uint32_t>(prefix[0]) |
                          static_cast<uint32_t>(prefix[1]) << 8 |
                          static_cast<uint32_t>(prefix[2]) << 16 |
                          static_cast<uint32_t>(prefix[3]) << 24;
  if (length > max_payload) return FrameReadStatus::kOversized;
  payload->resize(length);
  if (length == 0) return FrameReadStatus::kOk;
  switch (ReadFull(stream, &(*payload)[0], length, &filled)) {
    case FillStatus::kOk:
      return FrameReadStatus::kOk;
    case FillStatus::kEof:
      payload->clear();
      return FrameReadStatus::kTruncated;
    case FillStatus::kTimeout:
      payload->clear();
      return FrameReadStatus::kTimeout;
    case FillStatus::kError:
      payload->clear();
      return FrameReadStatus::kIoError;
  }
  return FrameReadStatus::kIoError;
}

bool WriteFrame(ByteStream& stream, const std::string& payload) {
  // The length prefix is a u32; a bigger payload would silently
  // truncate the prefix and desynchronize the stream.
  if (payload.size() > UINT32_MAX) {
    errno = EMSGSIZE;
    return false;
  }
  const uint32_t length = static_cast<uint32_t>(payload.size());
  const unsigned char prefix[4] = {
      static_cast<unsigned char>(length & 0xff),
      static_cast<unsigned char>((length >> 8) & 0xff),
      static_cast<unsigned char>((length >> 16) & 0xff),
      static_cast<unsigned char>((length >> 24) & 0xff),
  };
  if (!WriteFull(stream, prefix, sizeof(prefix))) return false;
  return WriteFull(stream, payload.data(), payload.size());
}

}  // namespace serve
}  // namespace toprr
