// Transport framing for the serving protocol: length-prefixed payloads
// over a byte stream.
//
// On the wire a frame is a little-endian u32 payload length followed by
// exactly that many payload bytes. The framing layer treats payloads as
// opaque (protocol validation lives in serve/protocol.h) but enforces
// the oversized-frame ceiling BEFORE buffering: a hostile or corrupt
// length prefix is rejected without allocating.
//
// ReadFrame/WriteFrame are robust against the realities of stream
// sockets: short reads and writes are looped until the frame is
// complete, EINTR restarts the call, and a peer close mid-frame is
// reported as kTruncated (a close between frames is a clean kEof). The
// loops run against the abstract ByteStream so the serve-labeled framing
// test can drive them through a deliberately fragmenting mock stream;
// production code wraps a socket fd in FdStream.
//
// Socket timeouts (SO_RCVTIMEO/SO_SNDTIMEO, armed via
// FdStream::SetReadTimeoutMs/SetWriteTimeoutMs) surface as the typed
// kTimeout status — distinct from EOF and from hard I/O errors — so the
// server can evict idle or glacial peers without mistaking them for
// clean disconnects. A FrameWatcher lets the caller observe the first
// byte of a frame arriving, which is the hook the server uses to switch
// from the (long) idle timeout to the (short) header-read timeout once a
// peer has committed to sending a frame.
#ifndef TOPRR_SERVE_FRAMING_H_
#define TOPRR_SERVE_FRAMING_H_

#include <sys/types.h>

#include <cstddef>
#include <string>

#include "serve/protocol.h"

namespace toprr {
namespace serve {

/// Minimal byte-stream interface with POSIX read/write semantics:
/// returns the number of bytes transferred (possibly fewer than asked),
/// 0 for end-of-stream on reads, or -1 with errno set on failure.
class ByteStream {
 public:
  virtual ~ByteStream() = default;

  virtual ssize_t ReadSome(void* buffer, size_t length) = 0;
  virtual ssize_t WriteSome(const void* buffer, size_t length) = 0;
};

/// ByteStream over a file descriptor (not owned). Writes use
/// MSG_NOSIGNAL on sockets so a peer close surfaces as EPIPE instead of
/// killing the process with SIGPIPE; non-socket fds (pipes in tests)
/// fall back to write(2).
class FdStream : public ByteStream {
 public:
  explicit FdStream(int fd) : fd_(fd) {}

  ssize_t ReadSome(void* buffer, size_t length) override;
  ssize_t WriteSome(const void* buffer, size_t length) override;

  /// Arms SO_RCVTIMEO / SO_SNDTIMEO so a blocked read/write returns
  /// EAGAIN after `ms` milliseconds (0 restores fully blocking).
  /// Returns false only on a real setsockopt failure; ENOTSOCK (pipes
  /// in tests) is tolerated and reported as success-without-effect.
  bool SetReadTimeoutMs(int ms);
  bool SetWriteTimeoutMs(int ms);

 private:
  int fd_;
};

enum class FrameReadStatus {
  kOk,
  /// Clean end-of-stream before any byte of a new frame.
  kEof,
  /// The peer closed mid-frame (inside the prefix or the payload).
  kTruncated,
  /// The length prefix exceeds `max_payload`; nothing was buffered.
  kOversized,
  /// An armed socket timeout expired (EAGAIN/EWOULDBLOCK). Check
  /// `frame_started` on the watcher (or the out-param) to distinguish an
  /// idle peer from one that stalled mid-frame.
  kTimeout,
  /// read(2) failed (errno-level error other than EINTR).
  kIoError,
};

const char* FrameReadStatusName(FrameReadStatus status);

/// Observer for frame-read progress. OnFrameStart fires once per frame,
/// when the first byte of the length prefix arrives — the moment a peer
/// stops being "idle" and starts being "mid-frame".
class FrameWatcher {
 public:
  virtual ~FrameWatcher() = default;
  virtual void OnFrameStart() {}
};

/// Reads one complete frame, looping over short reads and EINTR.
/// `frame_started`, when non-null, is set to whether at least one byte
/// of this frame had arrived before the status was reached (always true
/// for kOk; meaningful for kTimeout/kTruncated classification).
FrameReadStatus ReadFrame(ByteStream& stream, std::string* payload,
                          size_t max_payload = kMaxFramePayloadBytes,
                          FrameWatcher* watcher = nullptr,
                          bool* frame_started = nullptr);

/// Writes one complete frame (prefix + payload), looping over short
/// writes and EINTR. Returns false on a write error (e.g. EPIPE when the
/// peer already closed) with errno describing the failure — EAGAIN/
/// EWOULDBLOCK means an armed write timeout expired. A stream stuck
/// returning 0 is treated as broken after a small bounded number of
/// consecutive zero-length writes (errno EIO) rather than spinning.
bool WriteFrame(ByteStream& stream, const std::string& payload);

}  // namespace serve
}  // namespace toprr

#endif  // TOPRR_SERVE_FRAMING_H_
