// Message layer of the serving protocol: binary serialization of
// ToprrQuery batches, their responses, and (since v3) the catalog
// mutation RPCs.
//
// Every frame payload starts with a fixed header (magic, protocol
// version, message type); the framing layer (serve/framing.h) only moves
// opaque payloads, so all protocol validation lives here. Scalars are
// little-endian via serve/wire.h and doubles round-trip bit-exactly,
// which the serve-labeled protocol tests verify field by field.
//
// A query carries the full ToprrQuery: k, the convex preference region
// (vertices + facets, so general polytopes survive the wire, not just
// boxes), and the solver options. A response carries a per-query status
// -- admission control and budget expiry are explicit statuses, never
// silence -- plus, for accepted queries, the region constraints and a
// compact stats block including the scheduler telemetry totals.
//
// v3 adds the mutation RPCs (StageInsert / StageDelete / Publish /
// CatalogInfo, each answered by a MutationAck), a Hello/ServerHello
// handshake through which the server advertises its version and limits,
// and the snapshot stamp (content id + monotone publish sequence) on
// every query response. The read-your-writes contract: a Publish ack
// carries the new snapshot_seq S, and every response the server sends
// afterwards -- on any connection -- carries snapshot_seq >= S.
#ifndef TOPRR_SERVE_PROTOCOL_H_
#define TOPRR_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/toprr.h"
#include "geom/hyperplane.h"
#include "geom/vec.h"

namespace toprr {
namespace serve {

/// First bytes of every payload: "TPRR" read as a little-endian u32.
constexpr uint32_t kProtocolMagic = 0x52525054;
/// v3 added the mutation RPC message kinds, the Hello/ServerHello
/// handshake, and the snapshot stamp (id + seq) trailing every query
/// response's stats block. The format is not self-describing, so the
/// bump is breaking by design: a v2 client would misparse the longer
/// response. Version-mismatched peers are answered with the frozen
/// kVersionMismatch frame (below) instead of a garbage-frame drop.
constexpr uint8_t kProtocolVersion = 3;
/// Oldest version this server generation can still name in a mismatch
/// reply (purely informational; only kProtocolVersion is spoken).
constexpr uint8_t kMinProtocolVersion = 3;

/// Hard ceiling on a frame payload; ReadFrame rejects bigger length
/// prefixes before buffering anything (oversized-frame protection).
constexpr size_t kMaxFramePayloadBytes = size_t{64} << 20;

enum class MessageType : uint8_t {
  kQueryBatch = 1,
  kResponseBatch = 2,
  /// v3 handshake: client opens with kHello, server answers kServerHello
  /// advertising its version and limits. Optional -- a v3 client may
  /// send queries without it -- but the only way to learn the limits.
  kHello = 3,
  kServerHello = 4,
  /// v3 mutation RPCs. Staging is per connection; Publish applies the
  /// connection's staged delta atomically. Each is answered by one
  /// kMutationAck.
  kStageInsert = 5,
  kStageDelete = 6,
  kPublish = 7,
  kCatalogInfo = 8,
  kMutationAck = 9,
  /// FROZEN across all protocol versions: the reply a server sends when
  /// the peer's version byte does not match. Layout (magic u32, version
  /// u8 = the server's version, type u8 = 255, min_version u8) must
  /// never change, so any client generation can decode the rejection.
  kVersionMismatch = 255,
};

/// Per-query outcome carried in every response. Values are wire-stable;
/// append only.
enum class ServeStatus : uint8_t {
  kOk = 0,
  /// Admission control: the server's in-flight budget could not fit the
  /// batch. Explicit backpressure -- the client should retry later.
  kRejectedOverload = 1,
  /// The per-query time budget (client-requested, server-clamped)
  /// expired before the solve finished.
  kBudgetExceeded = 2,
  /// The request failed to decode.
  kMalformed = 3,
  /// The server is shutting down; in-flight work was cancelled.
  kShutdown = 4,
  kInternalError = 5,
  /// The batch's deadline (client-requested, server-clamped by
  /// ServerConfig::max_deadline_ms) expired before the solve finished.
  /// Unlike kBudgetExceeded this is an end-to-end wall-clock promise:
  /// the server armed the cooperative-cancel flag from a deadline timer.
  kDeadlineExceeded = 6,
  /// The server is draining (Drain() was called): it finishes in-flight
  /// work but answers new queries with this status. Retryable against
  /// another replica -- or the same address after the restart completes.
  kRejectedDraining = 7,
};

const char* ServeStatusName(ServeStatus status);

/// Per-mutation-RPC outcome. Values are wire-stable; append only.
enum class MutationStatus : uint8_t {
  kOk = 0,
  /// A row/id in the request failed validation (dimension mismatch,
  /// non-finite value, unknown or dead row id). Nothing was staged.
  kInvalidArgument = 1,
  /// Staging the request would exceed the server's per-connection
  /// staged-delta bound (ServerConfig::max_staged_mutations). Nothing
  /// was staged; publish (or drop the connection) first.
  kLimitExceeded = 2,
  /// Publish only: a staged delete no longer names a live row (another
  /// writer's publish won). The whole delta was rejected -- it stays
  /// staged on the connection so the client can amend and retry.
  kConflict = 3,
  kShutdown = 4,
  kInternalError = 5,
};

const char* MutationStatusName(MutationStatus status);

/// How the cross-query region cache classified a query. Values are
/// wire-stable; append only.
enum class CacheLookup : uint8_t {
  kBypass = 0,   // cache disabled, or the query shape is not cacheable
  kMiss = 1,     // solved cold (and inserted)
  kHit = 2,      // served by clipping a cached superset
  kPartial = 3,  // resumed from a cached overlap's frontier
};

/// The parsed fixed header every payload opens with.
struct FrameHeader {
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t type = 0;
};

/// Reads the 6-byte header without consuming the payload. Returns false
/// when the payload is shorter than a header. The header layout is
/// version-invariant, so this is how the server detects (and cleanly
/// rejects) frames from other protocol generations.
bool PeekHeader(const std::string& payload, FrameHeader* header);

/// Compact per-query solve statistics (a stable subset of ToprrStats
/// plus the scheduler telemetry totals).
struct ServeQueryStats {
  double total_seconds = 0.0;
  uint64_t candidates_after_filter = 0;
  uint64_t regions_tested = 0;
  uint64_t vall_unique = 0;
  uint64_t tasks_executed = 0;
  uint64_t tasks_stolen = 0;
  uint64_t steal_failures = 0;
  uint8_t cache_lookup = 0;  // a CacheLookup value
  uint64_t cache_tasks_saved = 0;
};

/// One query's response. Only kOk responses carry region payloads; every
/// response carries the stats block (zeroed when nothing ran) and the
/// snapshot stamp of the version it was answered against.
struct ServeResponse {
  ServeStatus status = ServeStatus::kInternalError;
  bool degenerate = false;
  bool geometry_skipped = false;
  std::vector<Halfspace> impact_halfspaces;
  std::vector<Vec> vertices;  // when the query asked for geometry
  ServeQueryStats stats;
  /// Content id of the snapshot this query was solved against (the
  /// engine's current version for non-solved statuses).
  uint64_t snapshot_id = 0;
  /// Monotone publish sequence of that snapshot. Per connection the
  /// server guarantees: every response in frame N+1 has snapshot_seq >=
  /// every response in frame N, and >= the seq of any publish this
  /// connection was acked before frame N+1 (read-your-writes).
  uint64_t snapshot_seq = 0;
};

/// The server side of the v3 handshake: version (in the header) plus
/// the limits a well-behaved client needs to stay under.
struct ServerHello {
  uint64_t max_frame_payload_bytes = 0;
  uint32_t max_inflight_queries = 0;
  /// Per-connection staged-delta bound (inserts + deletes).
  uint32_t max_staged_mutations = 0;
  uint64_t snapshot_id = 0;
  uint64_t snapshot_seq = 0;
  /// Live rows / physical rows / dimension of the served snapshot.
  uint64_t live_rows = 0;
  uint64_t physical_rows = 0;
  uint32_t dim = 0;
};

/// The answer to every mutation RPC. `snapshot_*` is the version the
/// server is serving after the RPC (for a successful Publish: the newly
/// published one -- SyncCatalog has already run when the ack is sent).
struct MutationAck {
  MutationStatus status = MutationStatus::kInternalError;
  uint64_t snapshot_id = 0;
  uint64_t snapshot_seq = 0;
  uint64_t live_rows = 0;
  /// Physical rows of the served snapshot. A single writer can derive
  /// the ids its published inserts received: the previous physical row
  /// count counts up.
  uint64_t physical_rows = 0;
  /// This connection's staged-delta sizes after the RPC.
  uint32_t staged_inserts = 0;
  uint32_t staged_deletes = 0;
  /// Echo of the Publish request's idempotency token and publish id
  /// (both 0 when the request carried none). A retried Publish whose
  /// original ack was lost is answered from the server's applied-publish
  /// record with already_applied = true instead of being applied twice.
  uint64_t idempotency_token = 0;
  uint64_t publish_id = 0;
  bool already_applied = false;
  /// One-line diagnostic for non-kOk statuses (capped on the wire).
  std::string message;
};

/// Builds a response from a finished solve (status chosen from the
/// result's timed_out/cancelled flags; snapshot stamp copied through).
ServeResponse ResponseFromResult(const ToprrResult& result);

/// Serializes a query batch into a frame payload (header included).
/// `deadline_ms` > 0 appends the optional deadline extension block (a
/// flags word + the relative wall-clock deadline in milliseconds);
/// 0 emits a byte-identical payload to pre-deadline encoders, so old
/// clients are unaffected and old servers never see the block.
std::string EncodeQueryBatch(const std::vector<ToprrQuery>& queries,
                             uint64_t deadline_ms = 0);

/// Parses a query-batch payload. On failure returns false and leaves a
/// one-line reason in `error`; `queries` is cleared. `deadline_ms`
/// (when non-null) receives the extension block's deadline, or 0 when
/// the batch carries none.
bool DecodeQueryBatch(const std::string& payload,
                      std::vector<ToprrQuery>* queries, uint64_t* deadline_ms,
                      std::string* error);
bool DecodeQueryBatch(const std::string& payload,
                      std::vector<ToprrQuery>* queries, std::string* error);

/// Serializes a response batch into a frame payload (header included).
std::string EncodeResponseBatch(const std::vector<ServeResponse>& responses);

/// Parses a response-batch payload (same error contract as
/// DecodeQueryBatch).
bool DecodeResponseBatch(const std::string& payload,
                         std::vector<ServeResponse>* responses,
                         std::string* error);

/// Handshake frames.
std::string EncodeHello();
bool DecodeHello(const std::string& payload, std::string* error);
std::string EncodeServerHello(const ServerHello& hello);
bool DecodeServerHello(const std::string& payload, ServerHello* hello,
                       std::string* error);

/// Mutation RPC requests. StageDelete carries physical row ids.
std::string EncodeStageInsert(const std::vector<Vec>& rows);
bool DecodeStageInsert(const std::string& payload, std::vector<Vec>* rows,
                       std::string* error);
std::string EncodeStageDelete(const std::vector<uint64_t>& row_ids);
bool DecodeStageDelete(const std::string& payload,
                       std::vector<uint64_t>* row_ids, std::string* error);
/// Publish. A non-zero `idempotency_token` (with its per-token
/// `publish_id`) rides the previously-reserved flags word, so token-less
/// publishes stay byte-identical to older encoders. The server records
/// (token, publish_id) after applying and answers an exact retry with
/// the recorded ack (already_applied = true) instead of publishing the
/// re-staged delta twice.
///
/// `probe` = true asks only whether (token, publish_id) was already
/// applied -- the server answers from its applied-publish record
/// (already_applied = true, the recorded ack) or with a fresh-state ack
/// (already_applied = false) WITHOUT publishing or touching the staged
/// delta. A reconnecting writer probes before re-staging so a publish
/// that was applied-but-unacked before a crash is not replayed. A probe
/// requires a token; probe-without-token is a decode error.
std::string EncodePublish(uint64_t idempotency_token = 0,
                          uint64_t publish_id = 0, bool probe = false);
bool DecodePublish(const std::string& payload, uint64_t* idempotency_token,
                   uint64_t* publish_id, bool* probe, std::string* error);
bool DecodePublish(const std::string& payload, uint64_t* idempotency_token,
                   uint64_t* publish_id, std::string* error);
bool DecodePublish(const std::string& payload, std::string* error);
std::string EncodeCatalogInfo();
bool DecodeCatalogInfo(const std::string& payload, std::string* error);
std::string EncodeMutationAck(const MutationAck& ack);
bool DecodeMutationAck(const std::string& payload, MutationAck* ack,
                       std::string* error);

/// The frozen version-mismatch frame (layout documented at
/// kVersionMismatch). Decode accepts ANY version byte -- that is the
/// point -- and reports the server's advertised versions back.
std::string EncodeVersionMismatch(uint8_t server_version,
                                  uint8_t min_version);
bool DecodeVersionMismatch(const std::string& payload,
                           uint8_t* server_version, uint8_t* min_version);

}  // namespace serve
}  // namespace toprr

#endif  // TOPRR_SERVE_PROTOCOL_H_
