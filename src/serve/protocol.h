// Message layer of the serving protocol: binary serialization of
// ToprrQuery batches and their responses.
//
// Every frame payload starts with a fixed header (magic, protocol
// version, message type); the framing layer (serve/framing.h) only moves
// opaque payloads, so all protocol validation lives here. Scalars are
// little-endian via serve/wire.h and doubles round-trip bit-exactly,
// which the serve-labeled protocol tests verify field by field.
//
// A query carries the full ToprrQuery: k, the convex preference region
// (vertices + facets, so general polytopes survive the wire, not just
// boxes), and the solver options. A response carries a per-query status
// -- admission control and budget expiry are explicit statuses, never
// silence -- plus, for accepted queries, the region constraints and a
// compact stats block including the scheduler telemetry totals.
#ifndef TOPRR_SERVE_PROTOCOL_H_
#define TOPRR_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/toprr.h"
#include "geom/hyperplane.h"
#include "geom/vec.h"

namespace toprr {
namespace serve {

/// First bytes of every payload: "TPRR" read as a little-endian u32.
constexpr uint32_t kProtocolMagic = 0x52525054;
/// v2 appended the cache_lookup / cache_tasks_saved stats fields to every
/// response (the cross-query region cache). The format is not
/// self-describing, so the bump is breaking by design: a v1 client would
/// misparse the longer stats block.
constexpr uint8_t kProtocolVersion = 2;

/// Hard ceiling on a frame payload; ReadFrame rejects bigger length
/// prefixes before buffering anything (oversized-frame protection).
constexpr size_t kMaxFramePayloadBytes = size_t{64} << 20;

enum class MessageType : uint8_t {
  kQueryBatch = 1,
  kResponseBatch = 2,
};

/// Per-query outcome carried in every response. Values are wire-stable;
/// append only.
enum class ServeStatus : uint8_t {
  kOk = 0,
  /// Admission control: the server's in-flight budget could not fit the
  /// batch. Explicit backpressure -- the client should retry later.
  kRejectedOverload = 1,
  /// The per-query time budget (client-requested, server-clamped)
  /// expired before the solve finished.
  kBudgetExceeded = 2,
  /// The request failed to decode.
  kMalformed = 3,
  /// The server is shutting down; in-flight work was cancelled.
  kShutdown = 4,
  kInternalError = 5,
};

const char* ServeStatusName(ServeStatus status);

/// How the cross-query region cache classified a query. Values are
/// wire-stable; append only.
enum class CacheLookup : uint8_t {
  kBypass = 0,   // cache disabled, or the query shape is not cacheable
  kMiss = 1,     // solved cold (and inserted)
  kHit = 2,      // served by clipping a cached superset
  kPartial = 3,  // resumed from a cached overlap's frontier
};

/// Compact per-query solve statistics (a stable subset of ToprrStats
/// plus the scheduler telemetry totals).
struct ServeQueryStats {
  double total_seconds = 0.0;
  uint64_t candidates_after_filter = 0;
  uint64_t regions_tested = 0;
  uint64_t vall_unique = 0;
  uint64_t tasks_executed = 0;
  uint64_t tasks_stolen = 0;
  uint64_t steal_failures = 0;
  uint8_t cache_lookup = 0;  // a CacheLookup value
  uint64_t cache_tasks_saved = 0;
};

/// One query's response. Only kOk responses carry region payloads; every
/// response carries the stats block (zeroed when nothing ran).
struct ServeResponse {
  ServeStatus status = ServeStatus::kInternalError;
  bool degenerate = false;
  bool geometry_skipped = false;
  std::vector<Halfspace> impact_halfspaces;
  std::vector<Vec> vertices;  // when the query asked for geometry
  ServeQueryStats stats;
};

/// Builds a response from a finished solve (status chosen from the
/// result's timed_out/cancelled flags).
ServeResponse ResponseFromResult(const ToprrResult& result);

/// Serializes a query batch into a frame payload (header included).
std::string EncodeQueryBatch(const std::vector<ToprrQuery>& queries);

/// Parses a query-batch payload. On failure returns false and leaves a
/// one-line reason in `error`; `queries` is cleared.
bool DecodeQueryBatch(const std::string& payload,
                      std::vector<ToprrQuery>* queries, std::string* error);

/// Serializes a response batch into a frame payload (header included).
std::string EncodeResponseBatch(const std::vector<ServeResponse>& responses);

/// Parses a response-batch payload (same error contract as
/// DecodeQueryBatch).
bool DecodeResponseBatch(const std::string& payload,
                         std::vector<ServeResponse>* responses,
                         std::string* error);

}  // namespace serve
}  // namespace toprr

#endif  // TOPRR_SERVE_PROTOCOL_H_
