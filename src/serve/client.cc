#include "serve/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/framing.h"

namespace toprr {
namespace serve {
namespace {

// Milliseconds remaining until `deadline`, clamped at zero.
double RemainingMs(const std::chrono::steady_clock::time_point& deadline) {
  const double remaining =
      std::chrono::duration<double, std::milli>(
          deadline - std::chrono::steady_clock::now())
          .count();
  return remaining > 0.0 ? remaining : 0.0;
}

}  // namespace

const char* ClientErrorName(ClientError error) {
  switch (error) {
    case ClientError::kNone:
      return "NONE";
    case ClientError::kNotConnected:
      return "NOT_CONNECTED";
    case ClientError::kTransport:
      return "TRANSPORT";
    case ClientError::kProtocol:
      return "PROTOCOL";
    case ClientError::kVersionMismatch:
      return "VERSION_MISMATCH";
    case ClientError::kTimeout:
      return "TIMEOUT";
  }
  return "UNKNOWN";
}

ToprrClient::ToprrClient() {
  // Seed the jitter RNG and the idempotency token from the system
  // entropy source; the token must be non-zero (0 means "no token" on
  // the wire) and should not collide across client processes.
  std::random_device rd;
  rng_.seed((static_cast<uint64_t>(rd()) << 32) ^ rd());
  do {
    mutation_token_ = (static_cast<uint64_t>(rd()) << 32) ^ rd();
  } while (mutation_token_ == 0);
  retry_tokens_ = retry_policy_.retry_budget;
}

ToprrClient::~ToprrClient() { Close(); }

void ToprrClient::set_retry_policy(const RetryPolicy& policy) {
  retry_policy_ = policy;
  retry_tokens_ = policy.retry_budget;
  prev_backoff_ms_ = 0.0;
}

bool ToprrClient::Fail(ClientError code, std::string message) {
  last_error_code_ = code;
  last_error_ = std::move(message);
  Close();
  return false;
}

bool ToprrClient::ConnectInternal() {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Fail(ClientError::kTransport, std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    return Fail(ClientError::kTransport, "bad host " + host_);
  }
  int rc;
  do {
    rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    return Fail(ClientError::kTransport,
                "connect " + host_ + ":" + std::to_string(port_) + ": " +
                    std::strerror(errno));
  }
  // Frames go out as prefix + payload writes; Nagle + delayed ACK would
  // add ~40 ms to every RPC (the server side sets this too).
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  // Handshake: learn the server's version (a mismatched server answers
  // the Hello with the frozen rejection frame, surfaced as the typed
  // kVersionMismatch by RoundTrip) and its limits.
  std::string payload;
  if (!RoundTrip(EncodeHello(), &payload)) return false;
  std::string decode_error;
  if (!DecodeServerHello(payload, &server_, &decode_error)) {
    return Fail(ClientError::kProtocol,
                "undecodable server hello: " + decode_error);
  }
  last_error_.clear();
  last_error_code_ = ClientError::kNone;
  return true;
}

bool ToprrClient::Connect(const std::string& host, int port) {
  host_ = host;
  port_ = port;
  // An explicit Connect starts a fresh session: whatever delta the old
  // session had staged died with it on the server, and the caller chose
  // not to ride the internal reconnect path that would restore it.
  staged_rows_.clear();
  staged_deletes_.clear();
  if (!ConnectInternal()) return false;
  ever_connected_ = true;
  return true;
}

bool ToprrClient::ConsumeRetry(ClientError error) {
  switch (error) {
    case ClientError::kTransport:
    case ClientError::kTimeout:
    case ClientError::kProtocol:
    case ClientError::kNotConnected:
      break;
    // A version mismatch will not heal by retrying against the same
    // address, and kNone means no failure happened.
    case ClientError::kVersionMismatch:
    case ClientError::kNone:
      return false;
  }
  if (retry_tokens_ < 1.0) return false;
  retry_tokens_ -= 1.0;
  ++retries_;
  return true;
}

void ToprrClient::RefundRetryToken() {
  retry_tokens_ = std::min(retry_policy_.retry_budget,
                           retry_tokens_ + retry_policy_.retry_refund);
}

void ToprrClient::Backoff(double remaining_ms) {
  // Decorrelated jitter: each sleep is uniform over [base, 3 * previous],
  // capped -- spreads a thundering herd of reconnecting clients without
  // the lockstep of plain exponential backoff.
  const double base = std::max(retry_policy_.initial_backoff_ms, 0.0);
  const double prev = std::max(prev_backoff_ms_, base);
  double hi = std::min(prev * 3.0, retry_policy_.max_backoff_ms);
  if (hi < base) hi = base;
  std::uniform_real_distribution<double> dist(base, hi);
  double sleep_ms = dist(rng_);
  prev_backoff_ms_ = sleep_ms;
  if (remaining_ms >= 0.0) sleep_ms = std::min(sleep_ms, remaining_ms);
  if (sleep_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        sleep_ms));
  }
}

bool ToprrClient::ReconnectAndRestore() {
  if (host_.empty() || !ever_connected_) {
    return Fail(ClientError::kNotConnected, "never connected");
  }
  if (!ConnectInternal()) return false;
  // Before re-staging, ask whether the publish currently in flight
  // (mutation_token_, next_publish_id_) already landed. If the server
  // applied it but the ack was lost to the disconnect (or to a server
  // crash-restart: the durable server rebuilds its dedupe table from
  // disk), the mirror describes a delta that is already in the catalog
  // -- re-staging it would replay inserts and name already-tombstoned
  // delete ids. Drop the mirror instead; the caller's retried Publish
  // then hits the dedupe record and hears already_applied.
  if (mutation_token_ != 0 &&
      !(staged_rows_.empty() && staged_deletes_.empty())) {
    std::optional<MutationAck> probe = MutationRoundTrip(
        EncodePublish(mutation_token_, next_publish_id_, /*probe=*/true));
    if (!probe.has_value()) return false;
    if (probe->status == MutationStatus::kOk && probe->already_applied) {
      staged_rows_.clear();
      staged_deletes_.clear();
    }
    // A non-kOk probe (e.g. a pre-probe server answering the unknown
    // flag with kInvalidArgument) falls through to plain re-staging.
  }
  // The server-side session is born empty on every connection: restore
  // the mirror (all-or-nothing frames, so a kOk ack means everything in
  // it is staged again) before the caller re-sends anything.
  if (!staged_rows_.empty()) {
    std::optional<MutationAck> ack =
        MutationRoundTrip(EncodeStageInsert(staged_rows_));
    if (!ack.has_value()) return false;
    if (ack->status != MutationStatus::kOk) {
      return Fail(ClientError::kProtocol,
                  std::string("re-staging rows after reconnect failed: ") +
                      MutationStatusName(ack->status) +
                      (ack->message.empty() ? "" : " (" + ack->message + ")"));
    }
  }
  if (!staged_deletes_.empty()) {
    std::optional<MutationAck> ack =
        MutationRoundTrip(EncodeStageDelete(staged_deletes_));
    if (!ack.has_value()) return false;
    if (ack->status != MutationStatus::kOk) {
      return Fail(ClientError::kProtocol,
                  std::string("re-staging deletes after reconnect failed: ") +
                      MutationStatusName(ack->status) +
                      (ack->message.empty() ? "" : " (" + ack->message + ")"));
    }
  }
  ++reconnects_;
  return true;
}

void ToprrClient::ArmSocketDeadline(uint64_t deadline_ms) {
  if (fd_ < 0) return;
  FdStream stream(fd_);
  const int ms =
      deadline_ms > 0
          ? static_cast<int>(std::min<uint64_t>(deadline_ms, INT32_MAX) +
                             kDeadlineSocketSlackMs)
          : 0;
  stream.SetReadTimeoutMs(ms);
  stream.SetWriteTimeoutMs(ms);
}

bool ToprrClient::RoundTrip(const std::string& request,
                            std::string* payload) {
  if (fd_ < 0) {
    return Fail(ClientError::kNotConnected, "not connected");
  }
  FdStream stream(fd_);
  if (!WriteFrame(stream, request)) {
    const bool timed_out = errno == EAGAIN || errno == EWOULDBLOCK;
    return Fail(timed_out ? ClientError::kTimeout : ClientError::kTransport,
                std::string("request write failed: ") +
                    std::strerror(errno));
  }
  const FrameReadStatus read_status = ReadFrame(stream, payload);
  if (read_status == FrameReadStatus::kTimeout) {
    return Fail(ClientError::kTimeout, "deadline expired awaiting the reply");
  }
  if (read_status != FrameReadStatus::kOk) {
    return Fail(ClientError::kTransport,
                std::string("response frame ") +
                    FrameReadStatusName(read_status) +
                    (read_status == FrameReadStatus::kIoError
                         ? std::string(": ") + std::strerror(errno)
                         : std::string()));
  }
  // The frozen rejection is decodable regardless of what version the
  // server speaks; every other reply kind must match ours to parse.
  uint8_t server_version, min_version;
  if (DecodeVersionMismatch(*payload, &server_version, &min_version)) {
    return Fail(ClientError::kVersionMismatch,
                "server speaks protocol v" +
                    std::to_string(static_cast<int>(server_version)) +
                    " (min v" +
                    std::to_string(static_cast<int>(min_version)) +
                    "), this client is v" +
                    std::to_string(static_cast<int>(kProtocolVersion)));
  }
  return true;
}

std::optional<ServeResponse> ToprrClient::Query(const ToprrQuery& query) {
  return Query(query, QueryOptions{});
}

std::optional<ServeResponse> ToprrClient::Query(const ToprrQuery& query,
                                                const QueryOptions& options) {
  std::optional<std::vector<ServeResponse>> responses =
      QueryBatch({query}, options);
  if (!responses.has_value() || responses->empty()) return std::nullopt;
  return std::move(responses->front());
}

std::optional<std::vector<ServeResponse>> ToprrClient::QueryBatch(
    const std::vector<ToprrQuery>& queries) {
  return QueryBatch(queries, QueryOptions{});
}

std::optional<std::vector<ServeResponse>> ToprrClient::QueryBatch(
    const std::vector<ToprrQuery>& queries, const QueryOptions& options) {
  const bool has_deadline = options.deadline_seconds > 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              has_deadline ? options.deadline_seconds : 0.0));

  const int max_attempts = std::max(retry_policy_.max_attempts, 1);
  for (int attempt = 0;; ++attempt) {
    // Each attempt sends the REMAINING deadline: the wire field is
    // relative to frame arrival, and time burned on failed attempts and
    // backoff must count against the caller's budget, not reset it.
    uint64_t deadline_ms = 0;
    if (has_deadline) {
      const double remaining = RemainingMs(deadline);
      if (remaining <= 0.0) {
        Fail(ClientError::kTimeout, "deadline expired before the request");
        return std::nullopt;
      }
      deadline_ms = static_cast<uint64_t>(std::ceil(remaining));
    }

    if (fd_ < 0) {
      // Reconnect counts as part of this attempt; a failed reconnect
      // falls through to the shared retry decision below.
      if (!ReconnectAndRestore()) {
        if (attempt + 1 >= max_attempts || !ConsumeRetry(last_error_code_)) {
          return std::nullopt;
        }
        Backoff(has_deadline ? RemainingMs(deadline) : -1.0);
        continue;
      }
    }

    ArmSocketDeadline(has_deadline ? deadline_ms : 0);
    std::string payload;
    const bool sent =
        RoundTrip(EncodeQueryBatch(queries, deadline_ms), &payload);
    if (sent) {
      std::vector<ServeResponse> responses;
      std::string decode_error;
      if (!DecodeResponseBatch(payload, &responses, &decode_error)) {
        Fail(ClientError::kProtocol,
             "undecodable response: " + decode_error);
        return std::nullopt;
      }
      // A lone kMalformed marker is the server's "could not decode your
      // request" answer and legitimately mismatches the query count; any
      // other count mismatch means the stream lost alignment.
      const bool malformed_marker =
          responses.size() == 1 && queries.size() != 1 &&
          responses[0].status == ServeStatus::kMalformed;
      if (responses.size() != queries.size() && !malformed_marker) {
        Fail(ClientError::kTransport, "response count mismatch");
        return std::nullopt;
      }
      last_error_.clear();
      last_error_code_ = ClientError::kNone;
      RefundRetryToken();
      ResetBackoff();
      return responses;
    }
    if (attempt + 1 >= max_attempts || !ConsumeRetry(last_error_code_)) {
      return std::nullopt;
    }
    Backoff(has_deadline ? RemainingMs(deadline) : -1.0);
  }
}

std::optional<MutationAck> ToprrClient::MutationRoundTrip(
    const std::string& request) {
  ArmSocketDeadline(0);
  std::string payload;
  if (!RoundTrip(request, &payload)) return std::nullopt;
  MutationAck ack;
  std::string decode_error;
  if (!DecodeMutationAck(payload, &ack, &decode_error)) {
    Fail(ClientError::kProtocol,
         "undecodable mutation ack: " + decode_error);
    return std::nullopt;
  }
  last_error_.clear();
  last_error_code_ = ClientError::kNone;
  return ack;
}

std::optional<MutationAck> ToprrClient::StageInsert(
    const std::vector<Vec>& rows) {
  const int max_attempts = std::max(retry_policy_.max_attempts, 1);
  for (int attempt = 0;; ++attempt) {
    std::optional<MutationAck> ack;
    if (fd_ >= 0 || ReconnectAndRestore()) {
      ack = MutationRoundTrip(EncodeStageInsert(rows));
    }
    if (ack.has_value()) {
      // Mirror only what the server actually staged: a rejected frame
      // (validation, limit) staged nothing, all-or-nothing.
      if (ack->status == MutationStatus::kOk) {
        staged_rows_.insert(staged_rows_.end(), rows.begin(), rows.end());
      }
      RefundRetryToken();
      ResetBackoff();
      return ack;
    }
    if (attempt + 1 >= max_attempts || !ConsumeRetry(last_error_code_)) {
      return std::nullopt;
    }
    Backoff(-1.0);
  }
}

std::optional<MutationAck> ToprrClient::StageDelete(
    const std::vector<uint64_t>& row_ids) {
  const int max_attempts = std::max(retry_policy_.max_attempts, 1);
  for (int attempt = 0;; ++attempt) {
    std::optional<MutationAck> ack;
    if (fd_ >= 0 || ReconnectAndRestore()) {
      ack = MutationRoundTrip(EncodeStageDelete(row_ids));
    }
    if (ack.has_value()) {
      if (ack->status == MutationStatus::kOk) {
        staged_deletes_.insert(staged_deletes_.end(), row_ids.begin(),
                               row_ids.end());
      }
      RefundRetryToken();
      ResetBackoff();
      return ack;
    }
    if (attempt + 1 >= max_attempts || !ConsumeRetry(last_error_code_)) {
      return std::nullopt;
    }
    Backoff(-1.0);
  }
}

std::optional<MutationAck> ToprrClient::Publish() {
  // The publish id is fixed for the whole retry loop: a lost-ack retry
  // must present the same (token, id) for the server to recognize it as
  // already applied. It only advances after a definitive kOk.
  const uint64_t publish_id = next_publish_id_;
  const std::string request = EncodePublish(mutation_token_, publish_id);
  const int max_attempts = std::max(retry_policy_.max_attempts, 1);
  for (int attempt = 0;; ++attempt) {
    std::optional<MutationAck> ack;
    if (fd_ >= 0 || ReconnectAndRestore()) {
      ack = MutationRoundTrip(request);
    }
    if (ack.has_value()) {
      if (ack->status == MutationStatus::kOk) {
        // Applied now, or recognized as applied before the ack was lost
        // (already_applied): either way the delta is in the catalog.
        staged_rows_.clear();
        staged_deletes_.clear();
        ++next_publish_id_;
      }
      RefundRetryToken();
      ResetBackoff();
      return ack;
    }
    if (attempt + 1 >= max_attempts || !ConsumeRetry(last_error_code_)) {
      return std::nullopt;
    }
    Backoff(-1.0);
  }
}

std::optional<MutationAck> ToprrClient::CatalogInfo() {
  const int max_attempts = std::max(retry_policy_.max_attempts, 1);
  for (int attempt = 0;; ++attempt) {
    std::optional<MutationAck> ack;
    if (fd_ >= 0 || ReconnectAndRestore()) {
      ack = MutationRoundTrip(EncodeCatalogInfo());
    }
    if (ack.has_value()) {
      RefundRetryToken();
      ResetBackoff();
      return ack;
    }
    if (attempt + 1 >= max_attempts || !ConsumeRetry(last_error_code_)) {
      return std::nullopt;
    }
    Backoff(-1.0);
  }
}

bool ToprrClient::WaitForSnapshot(uint64_t min_snapshot_seq,
                                  double timeout_seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  // Exponential backoff between polls: starts near-immediate (a publish
  // usually syncs within a round trip), caps at 250ms so a long wait
  // does not hammer the server, and every sleep is clipped to the time
  // remaining so the deadline is honored exactly, never overshot.
  double poll_ms = 2.0;
  constexpr double kMaxPollMs = 250.0;
  for (;;) {
    const std::optional<MutationAck> ack = CatalogInfo();
    if (!ack.has_value()) return false;  // typed error already recorded
    if (ack->snapshot_seq >= min_snapshot_seq) return true;
    const double remaining = RemainingMs(deadline);
    if (remaining <= 0.0) {
      last_error_code_ = ClientError::kNone;
      last_error_ =
          "timed out waiting for snapshot seq " +
          std::to_string(min_snapshot_seq) + " (served: " +
          std::to_string(ack->snapshot_seq) + ")";
      return false;
    }
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        std::min(poll_ms, remaining)));
    poll_ms = std::min(poll_ms * 2.0, kMaxPollMs);
  }
}

void ToprrClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  server_ = ServerHello{};
}

}  // namespace serve
}  // namespace toprr
