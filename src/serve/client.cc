#include "serve/client.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/framing.h"

namespace toprr {
namespace serve {

const char* ClientErrorName(ClientError error) {
  switch (error) {
    case ClientError::kNone:
      return "NONE";
    case ClientError::kNotConnected:
      return "NOT_CONNECTED";
    case ClientError::kTransport:
      return "TRANSPORT";
    case ClientError::kProtocol:
      return "PROTOCOL";
    case ClientError::kVersionMismatch:
      return "VERSION_MISMATCH";
  }
  return "UNKNOWN";
}

ToprrClient::~ToprrClient() { Close(); }

bool ToprrClient::Fail(ClientError code, std::string message) {
  last_error_code_ = code;
  last_error_ = std::move(message);
  Close();
  return false;
}

bool ToprrClient::Connect(const std::string& host, int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Fail(ClientError::kTransport, std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Fail(ClientError::kTransport, "bad host " + host);
  }
  int rc;
  do {
    rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    return Fail(ClientError::kTransport,
                "connect " + host + ":" + std::to_string(port) + ": " +
                    std::strerror(errno));
  }
  // Frames go out as prefix + payload writes; Nagle + delayed ACK would
  // add ~40 ms to every RPC (the server side sets this too).
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  // Handshake: learn the server's version (a mismatched server answers
  // the Hello with the frozen rejection frame, surfaced as the typed
  // kVersionMismatch by RoundTrip) and its limits.
  std::string payload;
  if (!RoundTrip(EncodeHello(), &payload)) return false;
  std::string decode_error;
  if (!DecodeServerHello(payload, &server_, &decode_error)) {
    return Fail(ClientError::kProtocol,
                "undecodable server hello: " + decode_error);
  }
  last_error_.clear();
  last_error_code_ = ClientError::kNone;
  return true;
}

bool ToprrClient::RoundTrip(const std::string& request,
                            std::string* payload) {
  if (fd_ < 0) {
    return Fail(ClientError::kNotConnected, "not connected");
  }
  FdStream stream(fd_);
  if (!WriteFrame(stream, request)) {
    return Fail(ClientError::kTransport,
                std::string("request write failed: ") +
                    std::strerror(errno));
  }
  const FrameReadStatus read_status = ReadFrame(stream, payload);
  if (read_status != FrameReadStatus::kOk) {
    return Fail(ClientError::kTransport,
                std::string("response frame ") +
                    FrameReadStatusName(read_status) +
                    (read_status == FrameReadStatus::kIoError
                         ? std::string(": ") + std::strerror(errno)
                         : std::string()));
  }
  // The frozen rejection is decodable regardless of what version the
  // server speaks; every other reply kind must match ours to parse.
  uint8_t server_version, min_version;
  if (DecodeVersionMismatch(*payload, &server_version, &min_version)) {
    return Fail(ClientError::kVersionMismatch,
                "server speaks protocol v" +
                    std::to_string(static_cast<int>(server_version)) +
                    " (min v" +
                    std::to_string(static_cast<int>(min_version)) +
                    "), this client is v" +
                    std::to_string(static_cast<int>(kProtocolVersion)));
  }
  return true;
}

std::optional<ServeResponse> ToprrClient::Query(const ToprrQuery& query) {
  std::optional<std::vector<ServeResponse>> responses = QueryBatch({query});
  if (!responses.has_value() || responses->empty()) return std::nullopt;
  return std::move(responses->front());
}

std::optional<std::vector<ServeResponse>> ToprrClient::QueryBatch(
    const std::vector<ToprrQuery>& queries) {
  std::string payload;
  if (!RoundTrip(EncodeQueryBatch(queries), &payload)) return std::nullopt;
  std::vector<ServeResponse> responses;
  std::string decode_error;
  if (!DecodeResponseBatch(payload, &responses, &decode_error)) {
    Fail(ClientError::kProtocol, "undecodable response: " + decode_error);
    return std::nullopt;
  }
  // A lone kMalformed marker is the server's "could not decode your
  // request" answer and legitimately mismatches the query count; any
  // other count mismatch means the stream lost alignment.
  const bool malformed_marker =
      responses.size() == 1 && queries.size() != 1 &&
      responses[0].status == ServeStatus::kMalformed;
  if (responses.size() != queries.size() && !malformed_marker) {
    Fail(ClientError::kTransport, "response count mismatch");
    return std::nullopt;
  }
  last_error_.clear();
  last_error_code_ = ClientError::kNone;
  return responses;
}

std::optional<MutationAck> ToprrClient::MutationRoundTrip(
    const std::string& request) {
  std::string payload;
  if (!RoundTrip(request, &payload)) return std::nullopt;
  MutationAck ack;
  std::string decode_error;
  if (!DecodeMutationAck(payload, &ack, &decode_error)) {
    Fail(ClientError::kProtocol,
         "undecodable mutation ack: " + decode_error);
    return std::nullopt;
  }
  last_error_.clear();
  last_error_code_ = ClientError::kNone;
  return ack;
}

std::optional<MutationAck> ToprrClient::StageInsert(
    const std::vector<Vec>& rows) {
  return MutationRoundTrip(EncodeStageInsert(rows));
}

std::optional<MutationAck> ToprrClient::StageDelete(
    const std::vector<uint64_t>& row_ids) {
  return MutationRoundTrip(EncodeStageDelete(row_ids));
}

std::optional<MutationAck> ToprrClient::Publish() {
  return MutationRoundTrip(EncodePublish());
}

std::optional<MutationAck> ToprrClient::CatalogInfo() {
  return MutationRoundTrip(EncodeCatalogInfo());
}

bool ToprrClient::WaitForSnapshot(uint64_t min_snapshot_seq,
                                  double timeout_seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  for (;;) {
    const std::optional<MutationAck> ack = CatalogInfo();
    if (!ack.has_value()) return false;  // typed error already recorded
    if (ack->snapshot_seq >= min_snapshot_seq) return true;
    if (std::chrono::steady_clock::now() >= deadline) {
      last_error_code_ = ClientError::kNone;
      last_error_ =
          "timed out waiting for snapshot seq " +
          std::to_string(min_snapshot_seq) + " (served: " +
          std::to_string(ack->snapshot_seq) + ")";
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void ToprrClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  server_ = ServerHello{};
}

}  // namespace serve
}  // namespace toprr
