#include "serve/client.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/framing.h"

namespace toprr {
namespace serve {

ToprrClient::~ToprrClient() { Close(); }

bool ToprrClient::Connect(const std::string& host, int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    last_error_ = std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    last_error_ = "bad host " + host;
    Close();
    return false;
  }
  int rc;
  do {
    rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    last_error_ = "connect " + host + ":" + std::to_string(port) + ": " +
                  std::strerror(errno);
    Close();
    return false;
  }
  // Frames go out as prefix + payload writes; Nagle + delayed ACK would
  // add ~40 ms to every RPC (the server side sets this too).
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  last_error_.clear();
  return true;
}

std::optional<std::vector<ServeResponse>> ToprrClient::SolveBatch(
    const std::vector<ToprrQuery>& queries) {
  if (fd_ < 0) {
    last_error_ = "not connected";
    return std::nullopt;
  }
  FdStream stream(fd_);
  const std::string request = EncodeQueryBatch(queries);
  if (!WriteFrame(stream, request)) {
    last_error_ =
        std::string("request write failed: ") + std::strerror(errno);
    Close();
    return std::nullopt;
  }
  std::string payload;
  const FrameReadStatus read_status = ReadFrame(stream, &payload);
  if (read_status != FrameReadStatus::kOk) {
    last_error_ = std::string("response frame ") +
                  FrameReadStatusName(read_status) +
                  (read_status == FrameReadStatus::kIoError
                       ? std::string(": ") + std::strerror(errno)
                       : std::string());
    Close();
    return std::nullopt;
  }
  std::vector<ServeResponse> responses;
  std::string decode_error;
  if (!DecodeResponseBatch(payload, &responses, &decode_error)) {
    last_error_ = "undecodable response: " + decode_error;
    Close();
    return std::nullopt;
  }
  // A lone kMalformed marker is the server's "could not decode your
  // request" answer and legitimately mismatches the query count; any
  // other count mismatch means the stream lost alignment.
  const bool malformed_marker =
      responses.size() == 1 && queries.size() != 1 &&
      responses[0].status == ServeStatus::kMalformed;
  if (responses.size() != queries.size() && !malformed_marker) {
    last_error_ = "response count mismatch";
    Close();
    return std::nullopt;
  }
  last_error_.clear();
  return responses;
}

void ToprrClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace serve
}  // namespace toprr
