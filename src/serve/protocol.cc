#include "serve/protocol.h"

#include <utility>

#include "pref/region.h"
#include "serve/wire.h"

namespace toprr {
namespace serve {
namespace {

// ToprrOptions booleans packed into one byte.
constexpr uint8_t kFlagLemma5 = 1u << 0;
constexpr uint8_t kFlagLemma7 = 1u << 1;
constexpr uint8_t kFlagKswitch = 1u << 2;
constexpr uint8_t kFlagRskybandFilter = 1u << 3;
constexpr uint8_t kFlagBuildGeometry = 1u << 4;
constexpr uint8_t kFlagSchedulerStats = 1u << 5;

// ServeResponse booleans.
constexpr uint8_t kFlagDegenerate = 1u << 0;
constexpr uint8_t kFlagGeometrySkipped = 1u << 1;

// Minimum encoded sizes, used to validate decoded element counts before
// resize() allocates count * sizeof(in-memory struct): the bound must
// reflect what the wire actually requires per element, or a small frame
// claiming a huge count could force a multi-GB allocation.
// Query: k + method + flags + eps + budget + max_regions + dim_limit +
// halfspace_limit + num_threads + empty region (two u32 counts).
constexpr size_t kMinQueryBytes =
    4 + 1 + 1 + 8 + 8 + 8 + 8 + 8 + 4 + 4 + 4;
// Response: status + flags + stats block (f64 + 6 u64 counters + cache
// lookup byte + cache u64) + snapshot stamp (id + seq u64) + two u32
// counts.
constexpr size_t kMinResponseBytes =
    1 + 1 + 8 + 6 * 8 + 1 + 8 + 2 * 8 + 4 + 4;

// Longest MutationAck diagnostic accepted off the wire; a hostile frame
// must not make the server/client buffer an arbitrary string.
constexpr uint32_t kMaxAckMessageBytes = 256;

// Query-batch extension-block flags (the optional trailing block after
// the last query). Unknown bits are a decode error: the block is only
// emitted by encoders that know about it, so garbage here means a
// desynced or corrupt frame, not a future peer.
constexpr uint32_t kBatchFlagDeadline = 1u << 0;
constexpr uint32_t kBatchFlagsKnown = kBatchFlagDeadline;

// Publish reserved-word flags. A probe asks "was (token, publish_id)
// already applied?" without publishing anything, so a reconnecting
// writer can learn whether its unacked publish landed before a crash.
constexpr uint32_t kPublishFlagIdempotency = 1u << 0;
constexpr uint32_t kPublishFlagProbe = 1u << 1;
constexpr uint32_t kPublishFlagsKnown =
    kPublishFlagIdempotency | kPublishFlagProbe;

// MutationAck flags byte.
constexpr uint8_t kAckFlagAlreadyApplied = 1u << 0;

void WriteHeader(WireWriter& writer, MessageType type) {
  writer.U32(kProtocolMagic);
  writer.U8(kProtocolVersion);
  writer.U8(static_cast<uint8_t>(type));
}

bool FailDecode(std::string* error, const std::string& reason) {
  if (error != nullptr) *error = reason;
  return false;
}

// Validates magic/version and that the payload is of the wanted type.
bool ReadHeader(WireReader& reader, MessageType wanted, std::string* error) {
  uint32_t magic;
  uint8_t version;
  uint8_t type;
  if (!reader.U32(&magic) || !reader.U8(&version) || !reader.U8(&type)) {
    return FailDecode(error, "payload shorter than the protocol header");
  }
  if (magic != kProtocolMagic) {
    return FailDecode(error, "bad magic (not a toprr frame)");
  }
  if (version != kProtocolVersion) {
    return FailDecode(error, "unsupported protocol version " +
                                 std::to_string(version));
  }
  if (type != static_cast<uint8_t>(wanted)) {
    return FailDecode(error,
                      "unexpected message type " + std::to_string(type));
  }
  return true;
}

void WriteRegion(WireWriter& writer, const PrefRegion& region) {
  writer.U32(static_cast<uint32_t>(region.vertices().size()));
  for (const Vec& v : region.vertices()) writer.VecField(v);
  writer.U32(static_cast<uint32_t>(region.facets().size()));
  for (const RegionFacet& facet : region.facets()) {
    writer.VecField(facet.halfspace.normal);
    writer.F64(facet.halfspace.offset);
    writer.U32(static_cast<uint32_t>(facet.vertex_ids.size()));
    for (int id : facet.vertex_ids) writer.I32(id);
  }
}

bool ReadRegion(WireReader& reader, PrefRegion* region) {
  uint32_t vertex_count;
  if (!reader.U32(&vertex_count)) return false;
  // Count bounds use the smallest *meaningful* element (dimension >= 1):
  // a vertex is a dim prefix + one coordinate, a facet a 1-d normal +
  // offset + id count. Zero-dimensional elements are semantically
  // invalid anyway, and the tighter bound keeps resize(count) within a
  // small constant of the frame size.
  if (!reader.CheckCount(vertex_count, sizeof(uint32_t) + sizeof(double))) {
    return false;
  }
  std::vector<Vec> vertices(vertex_count);
  for (Vec& v : vertices) {
    if (!reader.VecField(&v)) return false;
  }
  uint32_t facet_count;
  if (!reader.U32(&facet_count)) return false;
  if (!reader.CheckCount(facet_count, 2 * sizeof(uint32_t) +
                                          2 * sizeof(double))) {
    return false;
  }
  std::vector<RegionFacet> facets(facet_count);
  for (RegionFacet& facet : facets) {
    if (!reader.VecField(&facet.halfspace.normal)) return false;
    if (!reader.F64(&facet.halfspace.offset)) return false;
    uint32_t id_count;
    if (!reader.U32(&id_count)) return false;
    if (!reader.CheckCount(id_count, sizeof(int32_t))) return false;
    facet.vertex_ids.resize(id_count);
    for (uint32_t i = 0; i < id_count; ++i) {
      int32_t id;
      if (!reader.I32(&id)) return false;
      facet.vertex_ids[i] = id;
    }
  }
  *region =
      PrefRegion::FromVerticesAndFacets(std::move(vertices), std::move(facets));
  return true;
}

void WriteQuery(WireWriter& writer, const ToprrQuery& query) {
  const ToprrOptions& options = query.options;
  writer.I32(query.k);
  writer.U8(static_cast<uint8_t>(options.method));
  uint8_t flags = 0;
  if (options.use_lemma5) flags |= kFlagLemma5;
  if (options.use_lemma7) flags |= kFlagLemma7;
  if (options.use_kswitch) flags |= kFlagKswitch;
  if (options.use_rskyband_filter) flags |= kFlagRskybandFilter;
  if (options.build_geometry) flags |= kFlagBuildGeometry;
  if (options.collect_scheduler_stats) flags |= kFlagSchedulerStats;
  writer.U8(flags);
  writer.F64(options.eps);
  writer.F64(options.time_budget_seconds);
  writer.U64(options.max_regions);
  writer.U64(options.geometry_dim_limit);
  writer.U64(options.geometry_halfspace_limit);
  writer.I32(options.num_threads);
  WriteRegion(writer, query.region);
}

bool ReadQuery(WireReader& reader, ToprrQuery* query) {
  uint8_t method;
  uint8_t flags;
  uint64_t max_regions;
  uint64_t dim_limit;
  uint64_t halfspace_limit;
  if (!reader.I32(&query->k) || !reader.U8(&method) || !reader.U8(&flags) ||
      !reader.F64(&query->options.eps) ||
      !reader.F64(&query->options.time_budget_seconds) ||
      !reader.U64(&max_regions) || !reader.U64(&dim_limit) ||
      !reader.U64(&halfspace_limit) ||
      !reader.I32(&query->options.num_threads)) {
    return false;
  }
  if (method > static_cast<uint8_t>(ToprrMethod::kTasStar)) return false;
  query->options.method = static_cast<ToprrMethod>(method);
  query->options.use_lemma5 = (flags & kFlagLemma5) != 0;
  query->options.use_lemma7 = (flags & kFlagLemma7) != 0;
  query->options.use_kswitch = (flags & kFlagKswitch) != 0;
  query->options.use_rskyband_filter = (flags & kFlagRskybandFilter) != 0;
  query->options.build_geometry = (flags & kFlagBuildGeometry) != 0;
  query->options.collect_scheduler_stats = (flags & kFlagSchedulerStats) != 0;
  query->options.max_regions = static_cast<size_t>(max_regions);
  query->options.geometry_dim_limit = static_cast<size_t>(dim_limit);
  query->options.geometry_halfspace_limit =
      static_cast<size_t>(halfspace_limit);
  return ReadRegion(reader, &query->region);
}

void WriteResponse(WireWriter& writer, const ServeResponse& response) {
  writer.U8(static_cast<uint8_t>(response.status));
  uint8_t flags = 0;
  if (response.degenerate) flags |= kFlagDegenerate;
  if (response.geometry_skipped) flags |= kFlagGeometrySkipped;
  writer.U8(flags);
  writer.F64(response.stats.total_seconds);
  writer.U64(response.stats.candidates_after_filter);
  writer.U64(response.stats.regions_tested);
  writer.U64(response.stats.vall_unique);
  writer.U64(response.stats.tasks_executed);
  writer.U64(response.stats.tasks_stolen);
  writer.U64(response.stats.steal_failures);
  writer.U8(response.stats.cache_lookup);
  writer.U64(response.stats.cache_tasks_saved);
  writer.U64(response.snapshot_id);
  writer.U64(response.snapshot_seq);
  writer.U32(static_cast<uint32_t>(response.impact_halfspaces.size()));
  for (const Halfspace& hs : response.impact_halfspaces) {
    writer.VecField(hs.normal);
    writer.F64(hs.offset);
  }
  writer.U32(static_cast<uint32_t>(response.vertices.size()));
  for (const Vec& v : response.vertices) writer.VecField(v);
}

bool ReadResponse(WireReader& reader, ServeResponse* response) {
  uint8_t status;
  uint8_t flags;
  if (!reader.U8(&status) || !reader.U8(&flags) ||
      !reader.F64(&response->stats.total_seconds) ||
      !reader.U64(&response->stats.candidates_after_filter) ||
      !reader.U64(&response->stats.regions_tested) ||
      !reader.U64(&response->stats.vall_unique) ||
      !reader.U64(&response->stats.tasks_executed) ||
      !reader.U64(&response->stats.tasks_stolen) ||
      !reader.U64(&response->stats.steal_failures) ||
      !reader.U8(&response->stats.cache_lookup) ||
      !reader.U64(&response->stats.cache_tasks_saved) ||
      !reader.U64(&response->snapshot_id) ||
      !reader.U64(&response->snapshot_seq)) {
    return false;
  }
  if (status > static_cast<uint8_t>(ServeStatus::kRejectedDraining)) {
    return false;
  }
  if (response->stats.cache_lookup >
      static_cast<uint8_t>(CacheLookup::kPartial)) {
    return false;
  }
  response->status = static_cast<ServeStatus>(status);
  response->degenerate = (flags & kFlagDegenerate) != 0;
  response->geometry_skipped = (flags & kFlagGeometrySkipped) != 0;
  uint32_t halfspace_count;
  if (!reader.U32(&halfspace_count)) return false;
  // Smallest meaningful halfspace: 1-d normal + offset.
  if (!reader.CheckCount(halfspace_count,
                         sizeof(uint32_t) + 2 * sizeof(double))) {
    return false;
  }
  response->impact_halfspaces.resize(halfspace_count);
  for (Halfspace& hs : response->impact_halfspaces) {
    if (!reader.VecField(&hs.normal) || !reader.F64(&hs.offset)) return false;
  }
  uint32_t vertex_count;
  if (!reader.U32(&vertex_count)) return false;
  if (!reader.CheckCount(vertex_count, sizeof(uint32_t) + sizeof(double))) {
    return false;
  }
  response->vertices.resize(vertex_count);
  for (Vec& v : response->vertices) {
    if (!reader.VecField(&v)) return false;
  }
  return true;
}

}  // namespace

const char* ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk:
      return "OK";
    case ServeStatus::kRejectedOverload:
      return "REJECTED_OVERLOAD";
    case ServeStatus::kBudgetExceeded:
      return "BUDGET_EXCEEDED";
    case ServeStatus::kMalformed:
      return "MALFORMED";
    case ServeStatus::kShutdown:
      return "SHUTDOWN";
    case ServeStatus::kInternalError:
      return "INTERNAL_ERROR";
    case ServeStatus::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case ServeStatus::kRejectedDraining:
      return "REJECTED_DRAINING";
  }
  return "UNKNOWN";
}

ServeResponse ResponseFromResult(const ToprrResult& result) {
  ServeResponse response;
  if (result.cancelled) {
    response.status = ServeStatus::kShutdown;
  } else if (result.timed_out) {
    response.status = ServeStatus::kBudgetExceeded;
  } else {
    response.status = ServeStatus::kOk;
    response.degenerate = result.degenerate;
    response.geometry_skipped = result.geometry_skipped;
    response.impact_halfspaces = result.impact_halfspaces;
    response.vertices = result.vertices;
  }
  response.stats.total_seconds = result.stats.total_seconds;
  response.stats.candidates_after_filter =
      result.stats.candidates_after_filter;
  response.stats.regions_tested = result.stats.regions_tested;
  response.stats.vall_unique = result.stats.vall_unique;
  response.stats.tasks_executed = result.stats.scheduler.TotalExecuted();
  response.stats.tasks_stolen = result.stats.scheduler.TotalStolen();
  response.stats.steal_failures = result.stats.scheduler.TotalStealFailures();
  const SchedulerStats& sched = result.stats.scheduler;
  CacheLookup lookup = CacheLookup::kBypass;
  if (sched.cache_hits > 0) {
    lookup = CacheLookup::kHit;
  } else if (sched.cache_partial_hits > 0) {
    lookup = CacheLookup::kPartial;
  } else if (sched.cache_misses > 0) {
    lookup = CacheLookup::kMiss;
  }
  response.stats.cache_lookup = static_cast<uint8_t>(lookup);
  response.stats.cache_tasks_saved = sched.cache_tasks_saved;
  response.snapshot_id = result.snapshot_id;
  response.snapshot_seq = result.snapshot_seq;
  return response;
}

std::string EncodeQueryBatch(const std::vector<ToprrQuery>& queries,
                             uint64_t deadline_ms) {
  std::string payload;
  WireWriter writer(&payload);
  WriteHeader(writer, MessageType::kQueryBatch);
  writer.U32(static_cast<uint32_t>(queries.size()));
  for (const ToprrQuery& query : queries) WriteQuery(writer, query);
  if (deadline_ms > 0) {
    writer.U32(kBatchFlagDeadline);
    writer.U64(deadline_ms);
  }
  return payload;
}

bool DecodeQueryBatch(const std::string& payload,
                      std::vector<ToprrQuery>* queries, uint64_t* deadline_ms,
                      std::string* error) {
  queries->clear();
  if (deadline_ms != nullptr) *deadline_ms = 0;
  WireReader reader(payload);
  if (!ReadHeader(reader, MessageType::kQueryBatch, error)) return false;
  uint32_t count;
  if (!reader.U32(&count) || !reader.CheckCount(count, kMinQueryBytes)) {
    return FailDecode(error, "bad query count");
  }
  queries->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!ReadQuery(reader, &(*queries)[i])) {
      queries->clear();
      return FailDecode(error,
                        "truncated or malformed query " + std::to_string(i));
    }
  }
  // Optional extension block: absent entirely on pre-deadline encoders.
  if (reader.remaining() != 0) {
    uint32_t flags;
    if (!reader.U32(&flags) || (flags & ~kBatchFlagsKnown) != 0) {
      queries->clear();
      return FailDecode(error, "bad query-batch extension flags");
    }
    if ((flags & kBatchFlagDeadline) != 0) {
      uint64_t deadline;
      if (!reader.U64(&deadline)) {
        queries->clear();
        return FailDecode(error, "truncated query-batch deadline");
      }
      if (deadline_ms != nullptr) *deadline_ms = deadline;
    }
    if (reader.remaining() != 0) {
      queries->clear();
      return FailDecode(error, "trailing bytes after the extension block");
    }
  }
  return true;
}

bool DecodeQueryBatch(const std::string& payload,
                      std::vector<ToprrQuery>* queries, std::string* error) {
  return DecodeQueryBatch(payload, queries, nullptr, error);
}

std::string EncodeResponseBatch(const std::vector<ServeResponse>& responses) {
  std::string payload;
  WireWriter writer(&payload);
  WriteHeader(writer, MessageType::kResponseBatch);
  writer.U32(static_cast<uint32_t>(responses.size()));
  for (const ServeResponse& response : responses) {
    WriteResponse(writer, response);
  }
  return payload;
}

bool DecodeResponseBatch(const std::string& payload,
                         std::vector<ServeResponse>* responses,
                         std::string* error) {
  responses->clear();
  WireReader reader(payload);
  if (!ReadHeader(reader, MessageType::kResponseBatch, error)) return false;
  uint32_t count;
  if (!reader.U32(&count) || !reader.CheckCount(count, kMinResponseBytes)) {
    return FailDecode(error, "bad response count");
  }
  responses->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!ReadResponse(reader, &(*responses)[i])) {
      responses->clear();
      return FailDecode(
          error, "truncated or malformed response " + std::to_string(i));
    }
  }
  if (reader.remaining() != 0) {
    responses->clear();
    return FailDecode(error, "trailing bytes after the last response");
  }
  return true;
}

const char* MutationStatusName(MutationStatus status) {
  switch (status) {
    case MutationStatus::kOk:
      return "OK";
    case MutationStatus::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case MutationStatus::kLimitExceeded:
      return "LIMIT_EXCEEDED";
    case MutationStatus::kConflict:
      return "CONFLICT";
    case MutationStatus::kShutdown:
      return "SHUTDOWN";
    case MutationStatus::kInternalError:
      return "INTERNAL_ERROR";
  }
  return "UNKNOWN";
}

bool PeekHeader(const std::string& payload, FrameHeader* header) {
  WireReader reader(payload);
  return reader.U32(&header->magic) && reader.U8(&header->version) &&
         reader.U8(&header->type);
}

namespace {

// Shared shape of the three body-less requests (Hello / Publish /
// CatalogInfo): header + one reserved u32 (0 for now; gives a future
// minor revision somewhere to put flags without a new message kind).
std::string EncodeEmptyBody(MessageType type) {
  std::string payload;
  WireWriter writer(&payload);
  WriteHeader(writer, type);
  writer.U32(0);
  return payload;
}

bool DecodeEmptyBody(const std::string& payload, MessageType type,
                     const char* what, std::string* error) {
  WireReader reader(payload);
  if (!ReadHeader(reader, type, error)) return false;
  uint32_t reserved;
  if (!reader.U32(&reserved)) {
    return FailDecode(error, std::string("truncated ") + what);
  }
  if (reader.remaining() != 0) {
    return FailDecode(error,
                      std::string("trailing bytes after the ") + what);
  }
  return true;
}

}  // namespace

std::string EncodeHello() { return EncodeEmptyBody(MessageType::kHello); }

bool DecodeHello(const std::string& payload, std::string* error) {
  return DecodeEmptyBody(payload, MessageType::kHello, "hello", error);
}

std::string EncodeServerHello(const ServerHello& hello) {
  std::string payload;
  WireWriter writer(&payload);
  WriteHeader(writer, MessageType::kServerHello);
  writer.U64(hello.max_frame_payload_bytes);
  writer.U32(hello.max_inflight_queries);
  writer.U32(hello.max_staged_mutations);
  writer.U64(hello.snapshot_id);
  writer.U64(hello.snapshot_seq);
  writer.U64(hello.live_rows);
  writer.U64(hello.physical_rows);
  writer.U32(hello.dim);
  return payload;
}

bool DecodeServerHello(const std::string& payload, ServerHello* hello,
                       std::string* error) {
  *hello = ServerHello{};
  WireReader reader(payload);
  if (!ReadHeader(reader, MessageType::kServerHello, error)) return false;
  if (!reader.U64(&hello->max_frame_payload_bytes) ||
      !reader.U32(&hello->max_inflight_queries) ||
      !reader.U32(&hello->max_staged_mutations) ||
      !reader.U64(&hello->snapshot_id) || !reader.U64(&hello->snapshot_seq) ||
      !reader.U64(&hello->live_rows) || !reader.U64(&hello->physical_rows) ||
      !reader.U32(&hello->dim)) {
    return FailDecode(error, "truncated server hello");
  }
  if (reader.remaining() != 0) {
    return FailDecode(error, "trailing bytes after the server hello");
  }
  return true;
}

std::string EncodeStageInsert(const std::vector<Vec>& rows) {
  std::string payload;
  WireWriter writer(&payload);
  WriteHeader(writer, MessageType::kStageInsert);
  writer.U32(static_cast<uint32_t>(rows.size()));
  for (const Vec& row : rows) writer.VecField(row);
  return payload;
}

bool DecodeStageInsert(const std::string& payload, std::vector<Vec>* rows,
                       std::string* error) {
  rows->clear();
  WireReader reader(payload);
  if (!ReadHeader(reader, MessageType::kStageInsert, error)) return false;
  uint32_t count;
  // Smallest meaningful row: dim prefix + one coordinate.
  if (!reader.U32(&count) ||
      !reader.CheckCount(count, sizeof(uint32_t) + sizeof(double))) {
    return FailDecode(error, "bad staged-row count");
  }
  rows->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!reader.VecField(&(*rows)[i])) {
      rows->clear();
      return FailDecode(error,
                        "truncated or malformed row " + std::to_string(i));
    }
  }
  if (reader.remaining() != 0) {
    rows->clear();
    return FailDecode(error, "trailing bytes after the last row");
  }
  return true;
}

std::string EncodeStageDelete(const std::vector<uint64_t>& row_ids) {
  std::string payload;
  WireWriter writer(&payload);
  WriteHeader(writer, MessageType::kStageDelete);
  writer.U32(static_cast<uint32_t>(row_ids.size()));
  for (const uint64_t id : row_ids) writer.U64(id);
  return payload;
}

bool DecodeStageDelete(const std::string& payload,
                       std::vector<uint64_t>* row_ids, std::string* error) {
  row_ids->clear();
  WireReader reader(payload);
  if (!ReadHeader(reader, MessageType::kStageDelete, error)) return false;
  uint32_t count;
  if (!reader.U32(&count) || !reader.CheckCount(count, sizeof(uint64_t))) {
    return FailDecode(error, "bad delete-id count");
  }
  row_ids->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!reader.U64(&(*row_ids)[i])) {
      row_ids->clear();
      return FailDecode(error, "truncated delete id " + std::to_string(i));
    }
  }
  if (reader.remaining() != 0) {
    row_ids->clear();
    return FailDecode(error, "trailing bytes after the last delete id");
  }
  return true;
}

std::string EncodePublish(uint64_t idempotency_token, uint64_t publish_id,
                          bool probe) {
  if (idempotency_token == 0) {
    // Byte-identical to the pre-idempotency encoding (reserved word 0).
    // A probe without a token is meaningless, so it falls through here.
    return EncodeEmptyBody(MessageType::kPublish);
  }
  std::string payload;
  WireWriter writer(&payload);
  WriteHeader(writer, MessageType::kPublish);
  writer.U32(kPublishFlagIdempotency | (probe ? kPublishFlagProbe : 0u));
  writer.U64(idempotency_token);
  writer.U64(publish_id);
  return payload;
}

bool DecodePublish(const std::string& payload, uint64_t* idempotency_token,
                   uint64_t* publish_id, bool* probe, std::string* error) {
  if (idempotency_token != nullptr) *idempotency_token = 0;
  if (publish_id != nullptr) *publish_id = 0;
  if (probe != nullptr) *probe = false;
  WireReader reader(payload);
  if (!ReadHeader(reader, MessageType::kPublish, error)) return false;
  uint32_t flags;
  if (!reader.U32(&flags)) {
    return FailDecode(error, "truncated publish");
  }
  if ((flags & ~kPublishFlagsKnown) != 0) {
    return FailDecode(error, "unknown publish flags");
  }
  if ((flags & kPublishFlagProbe) != 0 &&
      (flags & kPublishFlagIdempotency) == 0) {
    return FailDecode(error, "publish probe without an idempotency token");
  }
  if ((flags & kPublishFlagIdempotency) != 0) {
    uint64_t token;
    uint64_t id;
    if (!reader.U64(&token) || !reader.U64(&id)) {
      return FailDecode(error, "truncated publish idempotency token");
    }
    if (token == 0) {
      return FailDecode(error, "zero publish idempotency token");
    }
    if (idempotency_token != nullptr) *idempotency_token = token;
    if (publish_id != nullptr) *publish_id = id;
    if (probe != nullptr) *probe = (flags & kPublishFlagProbe) != 0;
  }
  if (reader.remaining() != 0) {
    return FailDecode(error, "trailing bytes after the publish");
  }
  return true;
}

bool DecodePublish(const std::string& payload, uint64_t* idempotency_token,
                   uint64_t* publish_id, std::string* error) {
  return DecodePublish(payload, idempotency_token, publish_id, nullptr, error);
}

bool DecodePublish(const std::string& payload, std::string* error) {
  return DecodePublish(payload, nullptr, nullptr, nullptr, error);
}

std::string EncodeCatalogInfo() {
  return EncodeEmptyBody(MessageType::kCatalogInfo);
}

bool DecodeCatalogInfo(const std::string& payload, std::string* error) {
  return DecodeEmptyBody(payload, MessageType::kCatalogInfo, "catalog info",
                         error);
}

std::string EncodeMutationAck(const MutationAck& ack) {
  std::string payload;
  WireWriter writer(&payload);
  WriteHeader(writer, MessageType::kMutationAck);
  writer.U8(static_cast<uint8_t>(ack.status));
  writer.U64(ack.snapshot_id);
  writer.U64(ack.snapshot_seq);
  writer.U64(ack.live_rows);
  writer.U64(ack.physical_rows);
  writer.U32(ack.staged_inserts);
  writer.U32(ack.staged_deletes);
  writer.U8(ack.already_applied ? kAckFlagAlreadyApplied : 0);
  writer.U64(ack.idempotency_token);
  writer.U64(ack.publish_id);
  const uint32_t message_len = static_cast<uint32_t>(
      std::min<size_t>(ack.message.size(), kMaxAckMessageBytes));
  writer.U32(message_len);
  for (uint32_t i = 0; i < message_len; ++i) {
    writer.U8(static_cast<uint8_t>(ack.message[i]));
  }
  return payload;
}

bool DecodeMutationAck(const std::string& payload, MutationAck* ack,
                       std::string* error) {
  *ack = MutationAck{};
  WireReader reader(payload);
  if (!ReadHeader(reader, MessageType::kMutationAck, error)) return false;
  uint8_t status;
  uint8_t ack_flags;
  uint32_t message_len;
  if (!reader.U8(&status) || !reader.U64(&ack->snapshot_id) ||
      !reader.U64(&ack->snapshot_seq) || !reader.U64(&ack->live_rows) ||
      !reader.U64(&ack->physical_rows) || !reader.U32(&ack->staged_inserts) ||
      !reader.U32(&ack->staged_deletes) || !reader.U8(&ack_flags) ||
      !reader.U64(&ack->idempotency_token) || !reader.U64(&ack->publish_id) ||
      !reader.U32(&message_len)) {
    return FailDecode(error, "truncated mutation ack");
  }
  if (status > static_cast<uint8_t>(MutationStatus::kInternalError)) {
    return FailDecode(error, "unknown mutation status");
  }
  if ((ack_flags & ~kAckFlagAlreadyApplied) != 0) {
    return FailDecode(error, "unknown mutation-ack flags");
  }
  ack->status = static_cast<MutationStatus>(status);
  ack->already_applied = (ack_flags & kAckFlagAlreadyApplied) != 0;
  if (message_len > kMaxAckMessageBytes ||
      !reader.CheckCount(message_len, 1)) {
    return FailDecode(error, "bad ack message length");
  }
  ack->message.reserve(message_len);
  for (uint32_t i = 0; i < message_len; ++i) {
    uint8_t ch;
    if (!reader.U8(&ch)) return FailDecode(error, "truncated ack message");
    ack->message.push_back(static_cast<char>(ch));
  }
  if (reader.remaining() != 0) {
    return FailDecode(error, "trailing bytes after the mutation ack");
  }
  return true;
}

std::string EncodeVersionMismatch(uint8_t server_version,
                                  uint8_t min_version) {
  std::string payload;
  WireWriter writer(&payload);
  // Hand-rolled header: the version byte is the SERVER's version, which
  // by definition differs from the peer's; the frozen type byte is what
  // the peer keys on.
  writer.U32(kProtocolMagic);
  writer.U8(server_version);
  writer.U8(static_cast<uint8_t>(MessageType::kVersionMismatch));
  writer.U8(min_version);
  return payload;
}

bool DecodeVersionMismatch(const std::string& payload,
                           uint8_t* server_version, uint8_t* min_version) {
  WireReader reader(payload);
  uint32_t magic;
  uint8_t type;
  if (!reader.U32(&magic) || !reader.U8(server_version) ||
      !reader.U8(&type) || !reader.U8(min_version)) {
    return false;
  }
  // Any version byte is acceptable -- this frame exists to cross version
  // boundaries -- but magic and the frozen type byte must match.
  return magic == kProtocolMagic &&
         type == static_cast<uint8_t>(MessageType::kVersionMismatch) &&
         reader.remaining() == 0;
}

}  // namespace serve
}  // namespace toprr
