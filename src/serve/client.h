// ToprrClient: blocking TCP client for the serving protocol.
//
// One client owns one connection and issues SolveBatch round-trips
// (request frame out, response frame in) sequentially; drive parallel
// load with one client per thread (see examples/toprr_loadgen.cpp). All
// failures -- connect errors, a server-closed connection, short frames,
// undecodable replies -- surface as a false/empty return plus a one-line
// last_error(); the framing layer retries EINTR and partial transfers
// internally, so an error here is a real one.
#ifndef TOPRR_SERVE_CLIENT_H_
#define TOPRR_SERVE_CLIENT_H_

#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace toprr {
namespace serve {

class ToprrClient {
 public:
  ToprrClient() = default;
  ToprrClient(const ToprrClient&) = delete;
  ToprrClient& operator=(const ToprrClient&) = delete;
  ~ToprrClient();

  /// Connects to host:port. Returns false (see last_error()) on failure.
  bool Connect(const std::string& host, int port);

  bool connected() const { return fd_ >= 0; }

  /// Sends one query batch and blocks for the response batch. Returns
  /// std::nullopt on any transport or protocol failure (the connection
  /// is closed: request/response alignment cannot be trusted after an
  /// error). A successful return is positionally aligned with `queries`.
  std::optional<std::vector<ServeResponse>> SolveBatch(
      const std::vector<ToprrQuery>& queries);

  void Close();

  const std::string& last_error() const { return last_error_; }

 private:
  int fd_ = -1;
  std::string last_error_;
};

}  // namespace serve
}  // namespace toprr

#endif  // TOPRR_SERVE_CLIENT_H_
