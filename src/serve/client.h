// ToprrClient: blocking TCP session client for the v3 serving protocol.
//
// One client owns one connection. Connect() performs the Hello /
// ServerHello handshake, so a connected client knows the server's limits
// (server()). The session surface is unified: Query / QueryBatch for
// solves, StageInsert / StageDelete / Publish / CatalogInfo for the
// mutation RPCs, and WaitForSnapshot as the read-your-writes helper (the
// bare pre-v3 SolveBatch name survives as a deprecated alias of
// QueryBatch). Drive parallel load with one client per thread (see
// examples/toprr_loadgen.cpp).
//
// All failures -- connect errors, a server-closed connection, short
// frames, undecodable replies -- surface as a false/empty return plus a
// one-line last_error() and a typed last_error_code(); the framing layer
// retries EINTR and partial transfers internally, so an error here is a
// real one. A server from another protocol generation answers with the
// frozen version-mismatch frame, which the client surfaces as
// ClientError::kVersionMismatch instead of a generic decode failure.
#ifndef TOPRR_SERVE_CLIENT_H_
#define TOPRR_SERVE_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geom/vec.h"
#include "serve/protocol.h"

namespace toprr {
namespace serve {

/// The typed failure category behind a false/empty client return.
enum class ClientError : uint8_t {
  kNone = 0,
  kNotConnected = 1,
  /// Socket-level failure, or the stream lost request/response
  /// alignment; the connection was closed.
  kTransport = 2,
  /// The reply did not decode under this client's protocol version.
  kProtocol = 3,
  /// The server speaks a different protocol generation and sent the
  /// frozen rejection frame (see last_error() for its versions).
  kVersionMismatch = 4,
};

const char* ClientErrorName(ClientError error);

class ToprrClient {
 public:
  ToprrClient() = default;
  ToprrClient(const ToprrClient&) = delete;
  ToprrClient& operator=(const ToprrClient&) = delete;
  ~ToprrClient();

  /// Connects to host:port and runs the Hello/ServerHello handshake.
  /// Returns false (see last_error()/last_error_code()) on failure --
  /// including a clean typed kVersionMismatch when the server is from
  /// another protocol generation.
  bool Connect(const std::string& host, int port);

  bool connected() const { return fd_ >= 0; }

  /// The server's advertised limits and served snapshot, captured at
  /// handshake time. Zero-initialized until Connect() succeeds.
  const ServerHello& server() const { return server_; }

  /// Sends one query and blocks for its response.
  std::optional<ServeResponse> Query(const ToprrQuery& query);

  /// Sends one query batch and blocks for the response batch. Returns
  /// std::nullopt on any transport or protocol failure (the connection
  /// is closed: request/response alignment cannot be trusted after an
  /// error). A successful return is positionally aligned with `queries`.
  std::optional<std::vector<ServeResponse>> QueryBatch(
      const std::vector<ToprrQuery>& queries);

  /// DEPRECATED pre-v3 name of QueryBatch; new call sites should use the
  /// session surface above.
  std::optional<std::vector<ServeResponse>> SolveBatch(
      const std::vector<ToprrQuery>& queries) {
    return QueryBatch(queries);
  }

  /// Mutation RPCs: stage rows/deletes into this connection's session on
  /// the server, publish the staged delta, or read the served snapshot
  /// (CatalogInfo also reports this session's staged sizes). Each blocks
  /// for its MutationAck; std::nullopt means transport/protocol failure
  /// (connection closed), while a returned ack with a non-kOk status is
  /// a server-side rejection on a healthy connection.
  std::optional<MutationAck> StageInsert(const std::vector<Vec>& rows);
  std::optional<MutationAck> StageDelete(
      const std::vector<uint64_t>& row_ids);
  std::optional<MutationAck> Publish();
  std::optional<MutationAck> CatalogInfo();

  /// Read-your-writes helper: polls CatalogInfo until the served
  /// snapshot's seq reaches `min_snapshot_seq` (typically a Publish
  /// ack's snapshot_seq) or `timeout_seconds` elapses. On this server a
  /// publish ack already implies visibility -- SyncCatalog runs before
  /// the ack -- so this exists for cross-connection ordering: wait here
  /// before reading a write acked to a different connection.
  bool WaitForSnapshot(uint64_t min_snapshot_seq,
                       double timeout_seconds = 5.0);

  void Close();

  const std::string& last_error() const { return last_error_; }
  ClientError last_error_code() const { return last_error_code_; }

 private:
  /// One request/reply exchange. On success leaves the reply payload in
  /// `payload`; on failure sets the typed error (detecting the frozen
  /// version-mismatch frame) and closes the connection.
  bool RoundTrip(const std::string& request, std::string* payload);

  /// Shared body of the four mutation RPCs.
  std::optional<MutationAck> MutationRoundTrip(const std::string& request);

  /// Records the error and returns false (every failure path closes).
  bool Fail(ClientError code, std::string message);

  int fd_ = -1;
  ServerHello server_{};
  std::string last_error_;
  ClientError last_error_code_ = ClientError::kNone;
};

}  // namespace serve
}  // namespace toprr

#endif  // TOPRR_SERVE_CLIENT_H_
