// ToprrClient: blocking TCP session client for the v3 serving protocol.
//
// One client owns one connection. Connect() performs the Hello /
// ServerHello handshake, so a connected client knows the server's limits
// (server()). The session surface is unified: Query / QueryBatch for
// solves, StageInsert / StageDelete / Publish / CatalogInfo for the
// mutation RPCs, and WaitForSnapshot as the read-your-writes helper (the
// bare pre-v3 SolveBatch name survives as a deprecated alias of
// QueryBatch). Drive parallel load with one client per thread (see
// examples/toprr_loadgen.cpp).
//
// All failures -- connect errors, a server-closed connection, short
// frames, undecodable replies -- surface as a false/empty return plus a
// one-line last_error() and a typed last_error_code(); the framing layer
// retries EINTR and partial transfers internally, so an error here is a
// real one. A server from another protocol generation answers with the
// frozen version-mismatch frame, which the client surfaces as
// ClientError::kVersionMismatch instead of a generic decode failure.
//
// Retry (opt-in via set_retry_policy): queries are read-only, so on a
// retryable failure the client transparently reconnects, re-handshakes,
// and re-sends -- with exponential backoff and decorrelated jitter,
// bounded by a retry budget. Mutations are made retry-safe by a
// client-side mirror of the staged delta (re-staged after a reconnect,
// since the server session died with the connection) plus an idempotency
// token on Publish: a retried Publish whose ack was lost is recognized
// by the server as already applied instead of being applied twice.
//
// Deadlines: QueryOptions::deadline_seconds rides the wire (the server
// arms its cooperative-cancel timer and answers kDeadlineExceeded) AND
// arms SO_RCVTIMEO/SO_SNDTIMEO on the socket with a little slack -- so
// even a dead or wedged server cannot hang the caller past the deadline;
// the local expiry surfaces as ClientError::kTimeout.
#ifndef TOPRR_SERVE_CLIENT_H_
#define TOPRR_SERVE_CLIENT_H_

#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "geom/vec.h"
#include "serve/protocol.h"

namespace toprr {
namespace serve {

/// The typed failure category behind a false/empty client return.
enum class ClientError : uint8_t {
  kNone = 0,
  kNotConnected = 1,
  /// Socket-level failure, or the stream lost request/response
  /// alignment; the connection was closed.
  kTransport = 2,
  /// The reply did not decode under this client's protocol version.
  kProtocol = 3,
  /// The server speaks a different protocol generation and sent the
  /// frozen rejection frame (see last_error() for its versions).
  kVersionMismatch = 4,
  /// A locally armed deadline expired mid-RPC (SO_RCVTIMEO/SO_SNDTIMEO);
  /// the connection was closed -- a reply arriving later could not be
  /// matched to its request.
  kTimeout = 5,
};

const char* ClientErrorName(ClientError error);

/// Opt-in transparent retry. Attempts beyond the first reconnect (and
/// re-handshake) before re-sending; sleeps between attempts follow
/// exponential backoff with decorrelated jitter. The retry budget is a
/// token bucket shared by all RPCs on the client: each retry spends one
/// token, each success refunds a fraction -- so a hard-down server costs
/// a bounded number of retries instead of max_attempts per call forever.
struct RetryPolicy {
  /// Total attempts per RPC (1 = no retry, the default).
  int max_attempts = 1;
  double initial_backoff_ms = 10.0;
  double max_backoff_ms = 500.0;
  /// Token-bucket capacity (and starting balance) for retries across the
  /// client's lifetime; successes refund retry_refund tokens (capped).
  double retry_budget = 64.0;
  double retry_refund = 0.1;
};

/// Per-call query knobs.
struct QueryOptions {
  /// End-to-end deadline for the batch, in seconds (0 = none). Sent on
  /// the wire (server-side enforcement, clamped by the server's
  /// max_deadline_ms) and armed locally as a socket timeout with
  /// kDeadlineSocketSlackMs of grace for the reply to arrive.
  double deadline_seconds = 0.0;
};

/// Extra socket-timeout slack past the wire deadline, leaving the server
/// room to answer kDeadlineExceeded itself before the client hangs up.
constexpr int kDeadlineSocketSlackMs = 250;

class ToprrClient {
 public:
  ToprrClient();
  ToprrClient(const ToprrClient&) = delete;
  ToprrClient& operator=(const ToprrClient&) = delete;
  ~ToprrClient();

  /// Connects to host:port and runs the Hello/ServerHello handshake.
  /// Returns false (see last_error()/last_error_code()) on failure --
  /// including a clean typed kVersionMismatch when the server is from
  /// another protocol generation. Starts a fresh mutation session (any
  /// un-published client-side staged delta is discarded).
  bool Connect(const std::string& host, int port);

  bool connected() const { return fd_ >= 0; }

  /// The server's advertised limits and served snapshot, captured at
  /// handshake time. Zero-initialized until Connect() succeeds.
  const ServerHello& server() const { return server_; }

  /// Installs the retry policy for every subsequent RPC (and resets the
  /// retry-budget token bucket to the new capacity).
  void set_retry_policy(const RetryPolicy& policy);
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Lifetime telemetry: re-sent RPC attempts, and successful internal
  /// reconnect+re-handshake cycles (explicit Connect calls not counted).
  uint64_t retries() const { return retries_; }
  uint64_t reconnects() const { return reconnects_; }

  /// Sends one query and blocks for its response.
  std::optional<ServeResponse> Query(const ToprrQuery& query);
  std::optional<ServeResponse> Query(const ToprrQuery& query,
                                     const QueryOptions& options);

  /// Sends one query batch and blocks for the response batch. Returns
  /// std::nullopt on any transport or protocol failure (the connection
  /// is closed: request/response alignment cannot be trusted after an
  /// error -- though with a retry policy installed, retryable failures
  /// reconnect and re-send before giving up). A successful return is
  /// positionally aligned with `queries`.
  std::optional<std::vector<ServeResponse>> QueryBatch(
      const std::vector<ToprrQuery>& queries);
  std::optional<std::vector<ServeResponse>> QueryBatch(
      const std::vector<ToprrQuery>& queries, const QueryOptions& options);

  /// DEPRECATED pre-v3 name of QueryBatch; new call sites should use the
  /// session surface above.
  std::optional<std::vector<ServeResponse>> SolveBatch(
      const std::vector<ToprrQuery>& queries) {
    return QueryBatch(queries);
  }

  /// Mutation RPCs: stage rows/deletes into this connection's session on
  /// the server, publish the staged delta, or read the served snapshot
  /// (CatalogInfo also reports this session's staged sizes). Each blocks
  /// for its MutationAck; std::nullopt means transport/protocol failure
  /// (connection closed), while a returned ack with a non-kOk status is
  /// a server-side rejection on a healthy connection.
  ///
  /// Retry-safety: the client mirrors the staged delta. After an
  /// internal reconnect the server-side session is empty, so the mirror
  /// is re-staged before the failed RPC is re-sent -- and Publish
  /// carries a stable idempotency token plus a per-publish id, so a
  /// retried Publish whose ack was lost comes back already_applied
  /// instead of double-publishing the re-staged delta.
  std::optional<MutationAck> StageInsert(const std::vector<Vec>& rows);
  std::optional<MutationAck> StageDelete(
      const std::vector<uint64_t>& row_ids);
  std::optional<MutationAck> Publish();
  std::optional<MutationAck> CatalogInfo();

  /// Read-your-writes helper: polls CatalogInfo until the served
  /// snapshot's seq reaches `min_snapshot_seq` (typically a Publish
  /// ack's snapshot_seq) or `timeout_seconds` elapses. On this server a
  /// publish ack already implies visibility -- SyncCatalog runs before
  /// the ack -- so this exists for cross-connection ordering: wait here
  /// before reading a write acked to a different connection.
  bool WaitForSnapshot(uint64_t min_snapshot_seq,
                       double timeout_seconds = 5.0);

  void Close();

  const std::string& last_error() const { return last_error_; }
  ClientError last_error_code() const { return last_error_code_; }

 private:
  /// One request/reply exchange. On success leaves the reply payload in
  /// `payload`; on failure sets the typed error (detecting the frozen
  /// version-mismatch frame) and closes the connection.
  bool RoundTrip(const std::string& request, std::string* payload);

  /// Shared body of the four mutation RPCs (single attempt, no retry).
  std::optional<MutationAck> MutationRoundTrip(const std::string& request);

  /// Socket-level connect + handshake against the remembered host/port.
  /// Does NOT touch the staged-delta mirror.
  bool ConnectInternal();

  /// True when the policy allows another attempt for this error class
  /// and the token bucket still has a retry in it (spends the token).
  bool ConsumeRetry(ClientError error);

  /// Decorrelated-jitter sleep; `remaining_ms` (when >= 0) caps the
  /// sleep so a deadline is never overshot.
  void Backoff(double remaining_ms);
  void ResetBackoff() { prev_backoff_ms_ = 0.0; }

  /// Reconnect + re-handshake + re-stage the mutation mirror. Counts a
  /// reconnect on success.
  bool ReconnectAndRestore();

  /// Arms (deadline_ms > 0) or disarms both socket timeouts.
  void ArmSocketDeadline(uint64_t deadline_ms);

  void RefundRetryToken();

  /// Records the error and returns false (every failure path closes).
  bool Fail(ClientError code, std::string message);

  int fd_ = -1;
  ServerHello server_{};
  std::string last_error_;
  ClientError last_error_code_ = ClientError::kNone;

  std::string host_;
  int port_ = 0;
  bool ever_connected_ = false;

  RetryPolicy retry_policy_;
  double retry_tokens_ = 0.0;
  double prev_backoff_ms_ = 0.0;
  uint64_t retries_ = 0;
  uint64_t reconnects_ = 0;
  std::mt19937_64 rng_;

  /// Client-side mirror of the server session's staged delta, plus the
  /// idempotency identity of the next Publish.
  std::vector<Vec> staged_rows_;
  std::vector<uint64_t> staged_deletes_;
  uint64_t mutation_token_ = 0;
  uint64_t next_publish_id_ = 1;
};

}  // namespace serve
}  // namespace toprr

#endif  // TOPRR_SERVE_CLIENT_H_
