#include "serve/faults.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace toprr {
namespace serve {

FaultyStream::FaultyStream(ByteStream& inner, const FaultPlan& plan)
    : inner_(inner), plan_(plan), rng_(plan.seed) {}

bool FaultyStream::Chance(double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < probability;
}

ssize_t FaultyStream::ReadSome(void* buffer, size_t length) {
  if (plan_.reset_after_read_bytes != 0 &&
      bytes_read_ >= plan_.reset_after_read_bytes) {
    ++resets_;
    errno = ECONNRESET;
    return -1;
  }
  if (plan_.eof_after_read_bytes != 0 &&
      bytes_read_ >= plan_.eof_after_read_bytes) {
    return 0;
  }
  if (Chance(plan_.delay_probability) && plan_.delay_ms > 0) {
    ++delays_;
    std::this_thread::sleep_for(std::chrono::milliseconds(plan_.delay_ms));
  }
  size_t ask = length;
  if (Chance(plan_.short_transfer_probability)) {
    ++short_transfers_;
    ask = std::min(ask, std::max<size_t>(plan_.short_transfer_max_bytes, 1));
  }
  // Clip the ask so a hard fault lands at its exact byte offset even
  // when the caller asked for a chunk that straddles it.
  if (plan_.reset_after_read_bytes != 0) {
    ask = std::min<uint64_t>(ask, plan_.reset_after_read_bytes - bytes_read_);
  }
  if (plan_.eof_after_read_bytes != 0) {
    ask = std::min<uint64_t>(ask, plan_.eof_after_read_bytes - bytes_read_);
  }
  const ssize_t n = inner_.ReadSome(buffer, ask);
  if (n > 0) {
    bytes_read_ += static_cast<uint64_t>(n);
    if (Chance(plan_.bit_flip_probability)) {
      ++bit_flips_;
      unsigned char* bytes = static_cast<unsigned char*>(buffer);
      const uint64_t bit =
          rng_() % (static_cast<uint64_t>(n) * 8);
      bytes[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
    }
  }
  return n;
}

ssize_t FaultyStream::WriteSome(const void* buffer, size_t length) {
  if (plan_.reset_after_write_bytes != 0 &&
      bytes_written_ >= plan_.reset_after_write_bytes) {
    ++resets_;
    errno = ECONNRESET;
    return -1;
  }
  if (Chance(plan_.delay_probability) && plan_.delay_ms > 0) {
    ++delays_;
    std::this_thread::sleep_for(std::chrono::milliseconds(plan_.delay_ms));
  }
  size_t ask = length;
  if (Chance(plan_.short_transfer_probability)) {
    ++short_transfers_;
    ask = std::min(ask, std::max<size_t>(plan_.short_transfer_max_bytes, 1));
  }
  if (plan_.reset_after_write_bytes != 0) {
    ask = std::min<uint64_t>(ask,
                             plan_.reset_after_write_bytes - bytes_written_);
  }
  if (Chance(plan_.bit_flip_probability) && ask > 0) {
    // WriteSome takes a const buffer; corrupt a private copy so the
    // caller's frame bytes stay intact for its own retry bookkeeping.
    ++bit_flips_;
    std::string corrupted(static_cast<const char*>(buffer), ask);
    const uint64_t bit = rng_() % (static_cast<uint64_t>(ask) * 8);
    corrupted[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    const ssize_t n = inner_.WriteSome(corrupted.data(), corrupted.size());
    if (n > 0) bytes_written_ += static_cast<uint64_t>(n);
    return n;
  }
  const ssize_t n = inner_.WriteSome(buffer, ask);
  if (n > 0) bytes_written_ += static_cast<uint64_t>(n);
  return n;
}

}  // namespace serve
}  // namespace toprr
