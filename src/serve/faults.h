// Deterministic fault injection for the serving transport.
//
// FaultyStream decorates any ByteStream with a seeded schedule of the
// failures a real network produces -- short reads, stalls, connection
// resets, silent truncation, and bit corruption -- so framing/protocol
// robustness is testable in-process, byte-for-byte reproducibly, without
// a flaky network underneath. The same seed and call sequence always
// yields the same faults: a failing chaos test is a replayable test.
//
// Two kinds of faults compose:
//  - probabilistic per-call faults (short read, delay, bit flip), drawn
//    from the seeded RNG on every ReadSome/WriteSome, and
//  - hard byte-offset faults (reset after N bytes read/written, clean
//    EOF after N bytes read), which fire exactly once at a scripted
//    point in the stream -- the tool for "kill the connection mid-frame,
//    two bytes into the length prefix".
//
// The process-boundary counterpart is examples/toprr_chaosproxy.cpp,
// which applies the same fault vocabulary between a real client and a
// real server over TCP; the chaos serve-smoke CI phase drives loadgen
// through it.
#ifndef TOPRR_SERVE_FAULTS_H_
#define TOPRR_SERVE_FAULTS_H_

#include <cstddef>
#include <cstdint>
#include <random>

#include "serve/framing.h"

namespace toprr {
namespace serve {

/// A seeded fault schedule. Default-constructed = no faults at all (the
/// decorator is then a transparent pass-through).
struct FaultPlan {
  uint64_t seed = 1;

  /// Per-call probability of capping a read/write to at most
  /// `short_transfer_max_bytes` bytes. Exercises every short-transfer
  /// resume path in the framing loops.
  double short_transfer_probability = 0.0;
  size_t short_transfer_max_bytes = 3;

  /// Per-call probability of sleeping `delay_ms` before the transfer --
  /// with a long enough delay, this trips armed socket timeouts.
  double delay_probability = 0.0;
  int delay_ms = 0;

  /// Per-call probability of flipping one random bit in the transferred
  /// bytes (after a read, before a write). Corrupts length prefixes and
  /// payloads alike; decoders must reject, never crash or mis-parse.
  double bit_flip_probability = 0.0;

  /// Hard faults at exact byte offsets (0 = disabled, fires once):
  /// after the Nth byte in that direction, the stream fails -1 with
  /// errno=ECONNRESET on every subsequent call...
  uint64_t reset_after_read_bytes = 0;
  uint64_t reset_after_write_bytes = 0;
  /// ...or, for reads, reports a clean end-of-stream instead (the
  /// "peer vanished mid-frame" truncation case).
  uint64_t eof_after_read_bytes = 0;
};

/// ByteStream decorator applying a FaultPlan to an inner stream (not
/// owned). Not thread-safe: one FaultyStream per streaming direction,
/// like the underlying socket use it decorates.
class FaultyStream : public ByteStream {
 public:
  FaultyStream(ByteStream& inner, const FaultPlan& plan);

  ssize_t ReadSome(void* buffer, size_t length) override;
  ssize_t WriteSome(const void* buffer, size_t length) override;

  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t bytes_written() const { return bytes_written_; }
  /// Faults actually fired so far, by kind (telemetry for tests that
  /// want to assert the schedule was exercised, not vacuous).
  uint64_t short_transfers() const { return short_transfers_; }
  uint64_t delays() const { return delays_; }
  uint64_t bit_flips() const { return bit_flips_; }
  uint64_t resets() const { return resets_; }

 private:
  bool Chance(double probability);

  ByteStream& inner_;
  FaultPlan plan_;
  std::mt19937_64 rng_;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t short_transfers_ = 0;
  uint64_t delays_ = 0;
  uint64_t bit_flips_ = 0;
  uint64_t resets_ = 0;
};

}  // namespace serve
}  // namespace toprr

#endif  // TOPRR_SERVE_FAULTS_H_
