// Byte-level wire encoding for the serving protocol (src/serve/).
//
// Fixed little-endian scalars written/read through memcpy: the encoding
// is independent of host endianness and alignment, and doubles round-trip
// bit-exactly (the protocol tests rely on that). WireReader is
// bounds-checked: every accessor reports failure instead of reading past
// the payload, so truncated or hostile frames decode to an error, never
// to undefined behavior.
#ifndef TOPRR_SERVE_WIRE_H_
#define TOPRR_SERVE_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "geom/vec.h"

namespace toprr {
namespace serve {

/// Appends fixed-width little-endian fields to a growing byte string.
class WireWriter {
 public:
  explicit WireWriter(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }

  void U32(uint32_t v) { AppendLittleEndian(&v, sizeof(v)); }

  void U64(uint64_t v) { AppendLittleEndian(&v, sizeof(v)); }

  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }

  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }

  void VecField(const Vec& v) {
    U32(static_cast<uint32_t>(v.dim()));
    for (size_t i = 0; i < v.dim(); ++i) F64(v[i]);
  }

 private:
  void AppendLittleEndian(const void* value, size_t size) {
    unsigned char bytes[8];
    std::memcpy(bytes, value, size);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    for (size_t i = 0; i < size / 2; ++i) {
      std::swap(bytes[i], bytes[size - 1 - i]);
    }
#endif
    out_->append(reinterpret_cast<const char*>(bytes), size);
  }

  std::string* out_;
};

/// Reads fixed-width little-endian fields with bounds checking. After any
/// failed read, ok() is false and every further read fails; decode
/// routines can therefore check ok() once per message instead of per
/// field.
class WireReader {
 public:
  WireReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::string& payload)
      : WireReader(payload.data(), payload.size()) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }

  bool U8(uint8_t* v) {
    if (!Ensure(1)) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool U32(uint32_t* v) { return ReadLittleEndian(v, sizeof(*v)); }

  bool U64(uint64_t* v) { return ReadLittleEndian(v, sizeof(*v)); }

  bool I32(int32_t* v) {
    uint32_t bits;
    if (!U32(&bits)) return false;
    *v = static_cast<int32_t>(bits);
    return true;
  }

  bool F64(double* v) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  /// Reads a count-prefixed Vec. The dimension is validated against the
  /// remaining bytes before allocating, so a hostile count cannot force a
  /// huge allocation from a tiny frame.
  bool VecField(Vec* v) {
    uint32_t dim;
    if (!U32(&dim)) return false;
    if (remaining() < static_cast<size_t>(dim) * sizeof(double)) {
      return Fail();
    }
    Vec out(dim);
    for (uint32_t i = 0; i < dim; ++i) {
      if (!F64(&out[i])) return false;
    }
    *v = std::move(out);
    return true;
  }

  /// Validates that a decoded element count is plausible for the bytes
  /// left: each element needs at least `min_bytes_each`. Rejecting here
  /// keeps reserve()/resize() calls on decoded counts allocation-safe.
  bool CheckCount(uint64_t count, size_t min_bytes_each) {
    if (min_bytes_each == 0) min_bytes_each = 1;
    if (count > remaining() / min_bytes_each) return Fail();
    return true;
  }

 private:
  bool Ensure(size_t bytes) {
    if (!ok_ || size_ - pos_ < bytes) return Fail();
    return true;
  }

  bool Fail() {
    ok_ = false;
    return false;
  }

  bool ReadLittleEndian(void* value, size_t size) {
    if (!Ensure(size)) return false;
    unsigned char bytes[8];
    std::memcpy(bytes, data_ + pos_, size);
    pos_ += size;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    for (size_t i = 0; i < size / 2; ++i) {
      std::swap(bytes[i], bytes[size - 1 - i]);
    }
#endif
    std::memcpy(value, bytes, size);
    return true;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace serve
}  // namespace toprr

#endif  // TOPRR_SERVE_WIRE_H_
