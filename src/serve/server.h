// ToprrServer: a long-lived TCP front-end over ToprrEngine::SolveBatch
// and, since protocol v3, over the catalog mutation path.
//
// One server owns one engine AND one MutableCatalog over a
// snapshot-versioned dataset (data/snapshot.h). Clients connect over TCP
// and exchange length-prefixed frames (serve/framing.h); each payload is
// dispatched on its v3 header type: query batches, the Hello/ServerHello
// handshake, and the mutation RPCs (StageInsert / StageDelete / Publish /
// CatalogInfo). A connection serves any number of frames sequentially;
// concurrency comes from concurrent connections, which all feed the one
// engine and its shared skyband cache.
//
// Frames whose header carries a foreign protocol version are answered
// with the frozen kVersionMismatch frame and the connection is closed --
// an old client gets a decodable rejection, never a garbage frame.
//
// Mutation model: each connection buffers its staged rows/deletes
// locally (bounded by ServerConfig::max_staged_mutations, all-or-nothing
// per frame). Publish takes a server-wide publish mutex, pre-validates
// the whole delta against the current snapshot, stages it into the
// catalog, publishes, and runs SyncCatalog() before acking -- so a
// Publish ack carrying snapshot_seq S promises every later response
// (any connection) carries seq >= S: read-your-writes. A conflicting
// delta (a staged delete lost a race with another writer's publish) is
// rejected whole and stays staged on the connection for amendment.
//
// Admission control: the server maintains a bounded in-flight query
// count (ServerConfig::max_inflight_queries). A batch is admitted
// all-or-nothing; when it does not fit, every query in it is answered
// immediately with an explicit kRejectedOverload response -- requests
// are never parked in a hidden queue, so a saturated server stays
// responsive and the client owns the retry policy (backpressure).
//
// Per-query budgets: each admitted query's time budget is clamped to
// ServerConfig::max_query_budget_seconds and enforced by the scheduler's
// existing budget hooks; expiry returns kBudgetExceeded for that query
// only. Shutdown flips a cancel flag that SolveBatch plumbs into every
// in-flight solve, so Stop() returns promptly even mid-solve (those
// queries answer kShutdown when the connection is still writable).
#ifndef TOPRR_SERVE_SERVER_H_
#define TOPRR_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/server_stats.h"
#include "core/engine.h"
#include "data/dataset.h"
#include "data/recovery.h"
#include "data/snapshot.h"
#include "serve/protocol.h"

namespace toprr {
namespace serve {

struct ServerConfig {
  /// Listen address. The default binds loopback only; serving real
  /// traffic across hosts is the multi-node sharding item's business.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  int port = 0;
  int listen_backlog = 64;

  /// Admission control: maximum queries admitted concurrently across all
  /// connections. Batches that would exceed it are rejected whole with
  /// kRejectedOverload.
  size_t max_inflight_queries = 64;

  /// Upper bound on any single query's time budget (seconds). Requests
  /// asking for more (or for unlimited, i.e. <= 0) are clamped down to
  /// this; <= 0 disables the clamp (trusted clients only).
  double max_query_budget_seconds = 10.0;

  /// Worker threads for each batch's dispatch through SolveBatch
  /// (0 = one per hardware thread, 1 = solve in the connection thread).
  int batch_threads = 1;

  /// Frames with a longer length prefix are rejected before buffering.
  size_t max_frame_payload_bytes = kMaxFramePayloadBytes;

  /// Per-connection staged-delta bound: staged inserts + staged deletes.
  /// A StageInsert/StageDelete frame that would push a connection past it
  /// is rejected whole with kLimitExceeded (nothing from the frame is
  /// staged) -- publish or drop the connection to reclaim the budget.
  size_t max_staged_mutations = 4096;

  /// Ceiling on a batch's wire-requested deadline (milliseconds).
  /// Requests asking for longer are clamped down; 0 trusts the client.
  /// The deadline arms the cooperative-cancel flag from a timer, so an
  /// expired batch answers kDeadlineExceeded in bounded time instead of
  /// running to budget expiry.
  uint64_t max_deadline_ms = 30000;

  /// Connection read timeouts (milliseconds, 0 = disabled). The idle
  /// timeout bounds how long a connection may sit between frames; once
  /// the first byte of a frame arrives the (typically much shorter)
  /// header-read timeout takes over, so a slowloris peer trickling a
  /// frame cannot pin a connection thread. Expiry drops the connection
  /// and bumps ServerStats::timeouts_{idle,read}.
  int idle_timeout_ms = 0;
  int header_read_timeout_ms = 0;
  /// Reply-write timeout (milliseconds, 0 = disabled): a peer that stops
  /// draining its receive buffer is dropped (timeouts_write).
  int write_timeout_ms = 0;

  /// Brownout: when admitted in-flight queries exceed this fraction of
  /// max_inflight_queries, budgets of newly admitted queries are clamped
  /// to brownout_budget_seconds (when > 0) so the server sheds load by
  /// degrading answers before it starts rejecting outright.
  double brownout_inflight_fraction = 0.75;
  double brownout_budget_seconds = 0.0;

  /// Bound on remembered (idempotency token -> last applied publish)
  /// records; oldest tokens are evicted first.
  size_t idempotency_cache_entries = 1024;

  /// Enables the engine's cross-query region cache
  /// (core/region_cache.h) and opts every admitted query into it.
  /// Server-side policy only -- nothing on the wire selects caching, so
  /// clients cannot toggle it. Per-query outcomes travel back in
  /// ServeQueryStats::cache_lookup.
  bool use_region_cache = false;
  /// Region-cache byte budget (LRU-evicted per shard).
  size_t region_cache_budget_bytes = size_t{64} << 20;
  /// Canonicalization grid; power-of-two reciprocals keep snapped
  /// coordinates exact in floating point.
  double region_cache_quantum = 1.0 / 256.0;
};

class ToprrServer {
 public:
  /// Serves `snapshot` as the root of a server-owned MutableCatalog;
  /// protocol-v3 mutation RPCs publish successors onto it. The canonical
  /// fixed-table construction is
  ///   ToprrServer server(DatasetSnapshot::FromDataset(data), config);
  /// (the pre-snapshot Dataset* constructor was removed with the engine's
  /// legacy ownership model).
  ToprrServer(SnapshotPtr snapshot, ServerConfig config);

  /// Shared-catalog form: serves catalog->Current() and follows later
  /// publishes via SyncCatalog(). An external writer may stage/publish on
  /// the catalog from any thread alongside the wire mutation path --
  /// MutableCatalog serializes writers internally; queries in flight when
  /// a publish lands finish on their pinned snapshot.
  ToprrServer(std::shared_ptr<MutableCatalog> catalog, ServerConfig config);

  /// Crash-durable form: serves `durable->catalog()` and routes every
  /// wire Publish through DurableCatalog::Publish (WAL append, fsync per
  /// the catalog's policy, checkpoint cadence) before acking -- an acked
  /// publish survives kill -9. The idempotency dedupe table is seeded
  /// from the publishes recovered off disk, so a writer retrying (or
  /// probing) a pre-crash publish against the restarted server is
  /// answered already_applied instead of applying twice. Recovery and
  /// WAL counters surface through stats().
  ToprrServer(std::shared_ptr<DurableCatalog> durable, ServerConfig config);

  ToprrServer(const ToprrServer&) = delete;
  ToprrServer& operator=(const ToprrServer&) = delete;

  /// Stops the server if still running.
  ~ToprrServer();

  /// Binds, listens, and starts the accept thread. Returns false with a
  /// one-line reason on failure (port in use, bad host, ...).
  bool Start(std::string* error);

  /// The bound TCP port (useful with config.port = 0).
  int port() const { return port_; }

  /// Graceful-but-prompt shutdown: stops accepting, flips the cancel
  /// flag through every in-flight SolveBatch, shuts client sockets down,
  /// and joins all threads. Idempotent.
  void Stop();

  /// Draining shutdown: stops accepting new connections, answers new
  /// query frames with kRejectedDraining (mutations with kShutdown acks)
  /// while letting admitted work finish, waits up to `grace_seconds` for
  /// the in-flight count to hit zero, then Stop()s — which cancels
  /// whatever is still running. Idempotent; callable from a signal
  /// handler's drain thread.
  void Drain(double grace_seconds);

  bool running() const { return running_.load(std::memory_order_acquire); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  const ServerStats& stats() const { return stats_; }
  ToprrEngine& engine() { return engine_; }

  /// Pre-computes the k-skyband for `k` so the first query does not pay
  /// the warm-up cost.
  void WarmSkyband(int k) { engine_.KSkyband(k); }

  /// Moves the engine onto the catalog's current snapshot (no-op when
  /// already there). The wire Publish path calls this itself before
  /// acking; call it manually after an external MutableCatalog::Publish
  /// to make that version visible to queries. Returns the snapshot id
  /// now being served. Safe at any time: this is the serve-side half of
  /// the snapshot contract, no quiescing needed.
  uint64_t SyncCatalog();

 private:
  /// One connection's locally buffered mutation delta (not yet in the
  /// catalog). Dropped with the connection if never published.
  struct MutationSession {
    std::vector<Vec> rows;           // staged inserts
    std::vector<uint64_t> deletes;   // staged physical row ids
    size_t size() const { return rows.size() + deletes.size(); }
  };

  void AcceptLoop();
  void ServeConnection(int fd);

  /// Handles one decoded query-batch payload; returns the encoded reply
  /// frame (admission, solving, and oversized-reply degradation inside).
  std::string HandleQueryBatch(const std::string& payload);

  /// Mutation RPC bodies. Each returns the ack to send; session state is
  /// mutated only on kOk.
  MutationAck HandleStageInsert(MutationSession* session,
                                std::vector<Vec> rows);
  MutationAck HandleStageDelete(MutationSession* session,
                                std::vector<uint64_t> row_ids);
  MutationAck HandlePublish(MutationSession* session,
                            uint64_t idempotency_token, uint64_t publish_id,
                            bool probe = false);

  /// An ack stamped with the engine's current snapshot and the session's
  /// post-RPC staged sizes.
  MutationAck StampAck(MutationStatus status, const MutationSession& session,
                       std::string message = std::string());

  /// All-or-nothing admission of `count` queries against the in-flight
  /// bound. Returns true when admitted; the caller must ReleaseQueries.
  bool TryAdmitQueries(size_t count);
  void ReleaseQueries(size_t count);

  /// Solves one admitted batch with budgets clamped (harder under
  /// brownout) and a per-batch cancel flag plumbed through. The flag is
  /// armed by Stop() (all registered batches) and, when `deadline` is
  /// non-null, by a watcher timer at the batch's absolute deadline;
  /// deadline-cancelled queries answer kDeadlineExceeded.
  std::vector<ServeResponse> SolveAdmitted(
      std::vector<ToprrQuery> queries,
      const std::chrono::steady_clock::time_point* deadline);

  const ServerConfig config_;
  // Null unless the durable constructor ran; when set, catalog_ is
  // durable_->catalog() and wire publishes go through durable_->Publish
  // so the WAL append happens before the ack.
  std::shared_ptr<DurableCatalog> durable_;
  // Declared before engine_: the engine is seeded from
  // catalog_->Current() in the member-init list. Never null.
  std::shared_ptr<MutableCatalog> catalog_;
  ToprrEngine engine_;
  ServerStats stats_;

  /// Serializes the validate + stage + publish + SyncCatalog critical
  /// section of wire publishes, so pre-validation stays true while the
  /// delta is applied and the catalog's staging area is empty between
  /// wire publishes.
  std::mutex publish_mu_;

  /// The record a Publish carrying an idempotency token leaves behind:
  /// an exact retry (same token, same publish id) is answered from it
  /// with already_applied = true instead of publishing twice. Guarded by
  /// publish_mu_; bounded by config_.idempotency_cache_entries with
  /// oldest-token-first eviction.
  struct AppliedPublish {
    uint64_t publish_id = 0;
    MutationAck ack;
  };
  std::unordered_map<uint64_t, AppliedPublish> applied_publishes_;
  std::deque<uint64_t> applied_token_order_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::atomic<size_t> inflight_queries_{0};

  /// Cancel flags of batches currently inside SolveAdmitted; Stop()
  /// flips them all so every in-flight solve unwinds promptly.
  std::mutex cancels_mu_;
  std::vector<std::atomic<bool>*> active_cancels_;

  std::thread accept_thread_;
  std::mutex connections_mu_;
  struct Connection {
    int fd = -1;
    std::thread thread;
    bool finished = false;
  };
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace serve
}  // namespace toprr

#endif  // TOPRR_SERVE_SERVER_H_
