#include "serve/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.h"
#include "serve/framing.h"

namespace toprr {
namespace serve {
namespace {

// A query the server refuses to hand to the engine: the engine
// CHECK-fails on out-of-range k or mismatched dimensions, and a hostile
// frame must never be able to abort the process. Bounds come from the
// engine's current snapshot (live rows, not physical rows).
bool QueryIsSolvable(size_t live_rows, size_t dim,
                     const ToprrQuery& query) {
  if (query.k <= 0 || static_cast<size_t>(query.k) > live_rows) {
    return false;
  }
  if (query.region.empty()) return false;
  return query.region.dim() + 1 == dim;
}

}  // namespace

ToprrServer::ToprrServer(const Dataset* data, ServerConfig config)
    : config_(std::move(config)), engine_(data) {
  if (config_.use_region_cache) {
    RegionCacheConfig cache_config;
    cache_config.byte_budget = config_.region_cache_budget_bytes;
    cache_config.quantum = config_.region_cache_quantum;
    engine_.EnableRegionCache(cache_config);
  }
}

ToprrServer::ToprrServer(std::shared_ptr<MutableCatalog> catalog,
                         ServerConfig config)
    : config_(std::move(config)),
      catalog_(std::move(catalog)),
      engine_(catalog_->Current()) {
  if (config_.use_region_cache) {
    RegionCacheConfig cache_config;
    cache_config.byte_budget = config_.region_cache_budget_bytes;
    cache_config.quantum = config_.region_cache_quantum;
    engine_.EnableRegionCache(cache_config);
  }
}

uint64_t ToprrServer::SyncCatalog() {
  if (catalog_ != nullptr) engine_.SetSnapshot(catalog_->Current());
  return engine_.snapshot_id();
}

ToprrServer::~ToprrServer() { Stop(); }

bool ToprrServer::Start(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad listen host " + config_.host;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (error != nullptr) {
      *error = "bind " + config_.host + ":" +
               std::to_string(config_.port) + ": " + std::strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, config_.listen_backlog) < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  LOG(INFO) << "toprr server listening on " << config_.host << ":" << port_;
  return true;
}

void ToprrServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);

  // Unblock accept(2), then the per-connection reads. shutdown() rather
  // than close() so each thread keeps a valid fd until it exits and
  // closes it itself -- no fd reuse race.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (const std::unique_ptr<Connection>& conn : connections_) {
      if (!conn->finished && conn->fd >= 0) {
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // After the accept thread exits no new connections appear, so the
  // vector is stable from here on.
  for (const std::unique_ptr<Connection>& conn : connections_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  connections_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void ToprrServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      if (errno == EINTR) continue;
      // A client that reset before we accepted, or transient fd
      // exhaustion under a connection burst, must not brick the server:
      // log, breathe (so EMFILE does not spin), and keep accepting.
      if (errno == ECONNABORTED || errno == EMFILE || errno == ENFILE ||
          errno == EAGAIN || errno == ENOBUFS || errno == ENOMEM) {
        LOG(WARNING) << "accept failed (transient): "
                     << std::strerror(errno);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      // Anything else (EBADF/EINVAL from Stop's shutdown, or a real
      // listener failure) ends the loop.
      LOG(WARNING) << "accept failed: " << std::strerror(errno);
      return;
    }
    // Request/response framing sends the 4-byte prefix and the payload
    // in separate write(2)s; without TCP_NODELAY, Nagle + delayed ACK
    // turns every RPC into a ~40 ms round trip.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(connections_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    stats_.OnConnectionAccepted();
    // Reap connections that already finished so a long-lived server
    // does not accumulate one zombie thread per past client.
    for (std::unique_ptr<Connection>& conn : connections_) {
      if (conn->finished && conn->thread.joinable()) conn->thread.join();
    }
    connections_.erase(
        std::remove_if(connections_.begin(), connections_.end(),
                       [](const std::unique_ptr<Connection>& conn) {
                         return conn->finished && !conn->thread.joinable();
                       }),
        connections_.end());
    auto conn = std::make_unique<Connection>();
    Connection* raw = conn.get();
    raw->fd = fd;
    connections_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] {
      ServeConnection(raw->fd);
      std::lock_guard<std::mutex> exit_lock(connections_mu_);
      ::close(raw->fd);
      raw->fd = -1;
      raw->finished = true;
    });
  }
}

bool ToprrServer::TryAdmitQueries(size_t count) {
  size_t current = inflight_queries_.load(std::memory_order_relaxed);
  for (;;) {
    if (current + count > config_.max_inflight_queries) return false;
    if (inflight_queries_.compare_exchange_weak(current, current + count,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed)) {
      return true;
    }
  }
}

void ToprrServer::ReleaseQueries(size_t count) {
  inflight_queries_.fetch_sub(count, std::memory_order_acq_rel);
}

std::vector<ServeResponse> ToprrServer::SolveAdmitted(
    std::vector<ToprrQuery> queries) {
  for (ToprrQuery& query : queries) {
    // Clamp the budget: unlimited (<= 0), over-the-cap, and NaN requests
    // all drop to the server's ceiling, enforced by the scheduler budget
    // hooks. The negated comparison is deliberate: `!(budget > 0)` is
    // true for NaN where `budget <= 0` would not be, and a NaN that
    // slipped through would read as "unlimited" in the scheduler too.
    double budget = query.options.time_budget_seconds;
    if (config_.max_query_budget_seconds > 0.0 &&
        (!(budget > 0.0) || budget > config_.max_query_budget_seconds)) {
      budget = config_.max_query_budget_seconds;
    }
    query.options.time_budget_seconds = budget;
    // A client must not be able to grab every core via num_threads=0
    // (the "all hardware threads" knob); region-level parallelism stays
    // an explicit positive request.
    if (query.options.num_threads < 1) query.options.num_threads = 1;
    // Caching is server-side policy: the wire has no cache bit, the
    // server opts admitted queries in (or not) uniformly.
    query.options.use_region_cache = config_.use_region_cache;
  }
  const std::vector<ToprrResult> results =
      engine_.SolveBatch(queries, config_.batch_threads, &stopping_);
  std::vector<ServeResponse> responses;
  responses.reserve(results.size());
  for (const ToprrResult& result : results) {
    responses.push_back(ResponseFromResult(result));
    switch (static_cast<CacheLookup>(responses.back().stats.cache_lookup)) {
      case CacheLookup::kHit:
        stats_.OnCacheHit();
        break;
      case CacheLookup::kPartial:
        stats_.OnCachePartialHit();
        break;
      case CacheLookup::kMiss:
        stats_.OnCacheMiss();
        break;
      case CacheLookup::kBypass:
        break;
    }
    if (responses.back().stats.cache_tasks_saved > 0) {
      stats_.OnCacheTasksSaved(responses.back().stats.cache_tasks_saved);
    }
    switch (responses.back().status) {
      case ServeStatus::kOk:
        stats_.OnQueryCompleted();
        break;
      case ServeStatus::kBudgetExceeded:
        stats_.OnQueryBudgetExceeded();
        break;
      case ServeStatus::kShutdown:
        stats_.OnQueryCancelled();
        break;
      default:
        break;
    }
  }
  return responses;
}

void ToprrServer::ServeConnection(int fd) {
  FdStream stream(fd);
  std::string payload;
  while (!stopping_.load(std::memory_order_acquire)) {
    const FrameReadStatus read_status =
        ReadFrame(stream, &payload, config_.max_frame_payload_bytes);
    if (read_status == FrameReadStatus::kEof) return;  // clean close
    if (read_status != FrameReadStatus::kOk) {
      // Oversized/truncated/io-error: the stream is out of sync (or
      // gone); count it and drop the connection. A response cannot be
      // trusted to line up with a request anymore.
      if (!stopping_.load(std::memory_order_acquire)) {
        stats_.OnProtocolError();
        LOG(WARNING) << "connection dropped: frame "
                     << FrameReadStatusName(read_status);
      }
      return;
    }
    stats_.OnFrameReceived(payload.size() + 4);

    std::vector<ToprrQuery> queries;
    std::string decode_error;
    if (!DecodeQueryBatch(payload, &queries, &decode_error)) {
      // Framing was intact, so the stream is still in sync: answer with
      // an explicit malformed-marker and keep the connection.
      stats_.OnProtocolError();
      LOG(WARNING) << "malformed query batch: " << decode_error;
      ServeResponse malformed;
      malformed.status = ServeStatus::kMalformed;
      const std::string reply = EncodeResponseBatch({malformed});
      if (!WriteFrame(stream, reply)) return;
      stats_.OnBytesSent(reply.size() + 4);
      continue;
    }
    stats_.OnQueriesReceived(queries.size());

    // Per-query validation, then all-or-nothing admission of the
    // solvable remainder. The bounds are sampled once per frame; a
    // SyncCatalog racing with admission is harmless -- physical rows
    // never shrink, so a query validated here cannot trip the engine's
    // hard bound even if a delete publishes before its solve pins.
    const size_t live_rows = engine_.dataset_rows();
    const size_t data_dim = engine_.dataset_dim();
    std::vector<ServeResponse> responses(queries.size());
    std::vector<size_t> solvable;
    solvable.reserve(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      if (QueryIsSolvable(live_rows, data_dim, queries[i])) {
        solvable.push_back(i);
      } else {
        responses[i].status = ServeStatus::kMalformed;
      }
    }
    if (!solvable.empty()) {
      if (stopping_.load(std::memory_order_acquire)) {
        for (size_t i : solvable) {
          responses[i].status = ServeStatus::kShutdown;
          stats_.OnQueryCancelled();
        }
      } else if (!TryAdmitQueries(solvable.size())) {
        for (size_t i : solvable) {
          responses[i].status = ServeStatus::kRejectedOverload;
        }
        stats_.OnQueriesRejectedOverload(solvable.size());
      } else {
        std::vector<ToprrQuery> admitted;
        admitted.reserve(solvable.size());
        for (size_t i : solvable) admitted.push_back(queries[i]);
        std::vector<ServeResponse> solved =
            SolveAdmitted(std::move(admitted));
        ReleaseQueries(solvable.size());
        for (size_t j = 0; j < solvable.size(); ++j) {
          responses[solvable[j]] = std::move(solved[j]);
        }
      }
    }

    std::string reply = EncodeResponseBatch(responses);
    if (reply.size() > config_.max_frame_payload_bytes) {
      // The client's ReadFrame would reject this as oversized and tear
      // the connection down, discarding solved work. Degrade instead:
      // drop the vertex geometry first (the halfspace description stays
      // exact), then the payloads entirely (stats survive).
      for (ServeResponse& response : responses) {
        if (!response.vertices.empty()) {
          response.vertices.clear();
          response.geometry_skipped = true;
        }
      }
      reply = EncodeResponseBatch(responses);
      if (reply.size() > config_.max_frame_payload_bytes) {
        for (ServeResponse& response : responses) {
          response.impact_halfspaces.clear();
          if (response.status == ServeStatus::kOk) {
            response.status = ServeStatus::kInternalError;
          }
        }
        reply = EncodeResponseBatch(responses);
      }
    }
    if (!WriteFrame(stream, reply)) {
      if (!stopping_.load(std::memory_order_acquire)) {
        stats_.OnProtocolError();
        LOG(WARNING) << "reply write failed: " << std::strerror(errno);
      }
      return;
    }
    stats_.OnBytesSent(reply.size() + 4);
  }
}

}  // namespace serve
}  // namespace toprr
