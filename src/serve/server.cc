#include "serve/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <thread>
#include <unordered_set>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.h"
#include "serve/framing.h"

namespace toprr {
namespace serve {
namespace {

// A query the server refuses to hand to the engine: the engine
// CHECK-fails on out-of-range k or mismatched dimensions, and a hostile
// frame must never be able to abort the process. Bounds come from the
// engine's current snapshot (live rows, not physical rows).
bool QueryIsSolvable(size_t live_rows, size_t dim,
                     const ToprrQuery& query) {
  if (query.k <= 0 || static_cast<size_t>(query.k) > live_rows) {
    return false;
  }
  if (query.region.empty()) return false;
  return query.region.dim() + 1 == dim;
}

// The stream is still in sync (framing was intact) but the payload did
// not parse as anything actionable: a one-response batch with the
// explicit malformed marker, so the client sees a reply, not a hang.
std::string MalformedMarkerReply() {
  ServeResponse malformed;
  malformed.status = ServeStatus::kMalformed;
  return EncodeResponseBatch({malformed});
}

}  // namespace

ToprrServer::ToprrServer(SnapshotPtr snapshot, ServerConfig config)
    : ToprrServer(std::make_shared<MutableCatalog>(std::move(snapshot)),
                  std::move(config)) {}

ToprrServer::ToprrServer(std::shared_ptr<MutableCatalog> catalog,
                         ServerConfig config)
    : config_(std::move(config)),
      catalog_(std::move(catalog)),
      engine_(catalog_->Current()) {
  if (config_.use_region_cache) {
    RegionCacheConfig cache_config;
    cache_config.byte_budget = config_.region_cache_budget_bytes;
    cache_config.quantum = config_.region_cache_quantum;
    engine_.EnableRegionCache(cache_config);
  }
}

ToprrServer::ToprrServer(std::shared_ptr<DurableCatalog> durable,
                         ServerConfig config)
    : config_(std::move(config)),
      durable_(std::move(durable)),
      catalog_(durable_->catalog()),
      engine_(catalog_->Current()) {
  if (config_.use_region_cache) {
    RegionCacheConfig cache_config;
    cache_config.byte_budget = config_.region_cache_budget_bytes;
    cache_config.quantum = config_.region_cache_quantum;
    engine_.EnableRegionCache(cache_config);
  }
  // Seed the idempotency dedupe table from the publishes recovered off
  // disk so a writer retrying (or probing) a pre-crash publish against
  // this restarted server is answered already_applied, not applied
  // twice. Oldest first, same bound and eviction order as live entries.
  for (const AppliedPublishRecord& record : durable_->recovered_publishes()) {
    if (record.token == 0) continue;
    MutationAck ack;
    ack.status = MutationStatus::kOk;
    ack.snapshot_id = record.snapshot_id;
    ack.snapshot_seq = record.snapshot_seq;
    ack.live_rows = record.live_rows;
    ack.physical_rows = record.physical_rows;
    ack.idempotency_token = record.token;
    ack.publish_id = record.publish_id;
    if (applied_publishes_.find(record.token) == applied_publishes_.end()) {
      applied_token_order_.push_back(record.token);
    }
    applied_publishes_[record.token] = AppliedPublish{record.publish_id, ack};
    while (applied_token_order_.size() > config_.idempotency_cache_entries) {
      applied_publishes_.erase(applied_token_order_.front());
      applied_token_order_.pop_front();
    }
  }
  const RecoveryStats& recovery = durable_->recovery();
  stats_.SetRecovery(recovery.recovered, recovery.replayed_records,
                     recovery.skipped_records, recovery.snapshot_seq,
                     recovery.recovery_seconds);
  const DurableCounters counters = durable_->counters();
  stats_.SetDurableCounters(counters.wal_appends, counters.wal_bytes,
                            counters.wal_fsyncs,
                            counters.checkpoints_written);
}

uint64_t ToprrServer::SyncCatalog() {
  engine_.SetSnapshot(catalog_->Current());
  return engine_.snapshot_id();
}

ToprrServer::~ToprrServer() { Stop(); }

bool ToprrServer::Start(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = LogErrno("socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad listen host " + config_.host;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (error != nullptr) {
      *error = LogErrno("bind " + config_.host + ":" +
                        std::to_string(config_.port));
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, config_.listen_backlog) < 0) {
    if (error != nullptr) *error = LogErrno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  LOG(INFO) << "toprr server listening on " << config_.host << ":" << port_;
  return true;
}

void ToprrServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);

  // Every batch inside SolveAdmitted polls its own cancel flag (the
  // deadline timer shares it); flip them all so in-flight solves unwind
  // promptly even though they no longer watch stopping_ directly.
  {
    std::lock_guard<std::mutex> lock(cancels_mu_);
    for (std::atomic<bool>* cancel : active_cancels_) {
      cancel->store(true, std::memory_order_release);
    }
  }

  // Unblock accept(2), then the per-connection reads. shutdown() rather
  // than close() so each thread keeps a valid fd until it exits and
  // closes it itself -- no fd reuse race.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (const std::unique_ptr<Connection>& conn : connections_) {
      if (!conn->finished && conn->fd >= 0) {
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // After the accept thread exits no new connections appear, so the
  // vector is stable from here on.
  for (const std::unique_ptr<Connection>& conn : connections_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  connections_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void ToprrServer::Drain(double grace_seconds) {
  if (!running_.load(std::memory_order_acquire)) return;
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    // Second Drain (or Drain after Drain): just finish the shutdown.
    Stop();
    return;
  }
  LOG(INFO) << "toprr server draining (grace "
            << grace_seconds << "s)";
  // Stop accepting. The accept loop sees draining_ and exits silently;
  // existing connections stay up so in-flight work can answer and new
  // frames get explicit kRejectedDraining responses.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RD);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(grace_seconds > 0.0 ? grace_seconds
                                                            : 0.0));
  while (inflight_queries_.load(std::memory_order_acquire) > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (inflight_queries_.load(std::memory_order_acquire) == 0) {
    // Give the connection threads a beat to flush the final replies
    // before Stop() shuts their sockets down.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  } else {
    LOG(WARNING) << "drain grace expired with "
                 << inflight_queries_.load(std::memory_order_acquire)
                 << " queries in flight; cancelling";
  }
  Stop();
}

void ToprrServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire) ||
          draining_.load(std::memory_order_acquire)) {
        return;
      }
      if (errno == EINTR) continue;
      // A client that reset before we accepted, or transient fd
      // exhaustion under a connection burst, must not brick the server:
      // log, breathe (so EMFILE does not spin), and keep accepting.
      if (errno == ECONNABORTED || errno == EMFILE || errno == ENFILE ||
          errno == EAGAIN || errno == ENOBUFS || errno == ENOMEM) {
        LOG(WARNING) << LogErrno("accept failed (transient)");
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      // Anything else (EBADF/EINVAL from Stop's shutdown, or a real
      // listener failure) ends the loop.
      LOG(WARNING) << LogErrno("accept failed");
      return;
    }
    // Request/response framing sends the 4-byte prefix and the payload
    // in separate write(2)s; without TCP_NODELAY, Nagle + delayed ACK
    // turns every RPC into a ~40 ms round trip.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(connections_mu_);
    if (stopping_.load(std::memory_order_acquire) ||
        draining_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    stats_.OnConnectionAccepted();
    // Reap connections that already finished so a long-lived server
    // does not accumulate one zombie thread per past client.
    for (std::unique_ptr<Connection>& conn : connections_) {
      if (conn->finished && conn->thread.joinable()) conn->thread.join();
    }
    connections_.erase(
        std::remove_if(connections_.begin(), connections_.end(),
                       [](const std::unique_ptr<Connection>& conn) {
                         return conn->finished && !conn->thread.joinable();
                       }),
        connections_.end());
    auto conn = std::make_unique<Connection>();
    Connection* raw = conn.get();
    raw->fd = fd;
    connections_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] {
      ServeConnection(raw->fd);
      std::lock_guard<std::mutex> exit_lock(connections_mu_);
      ::close(raw->fd);
      raw->fd = -1;
      raw->finished = true;
    });
  }
}

bool ToprrServer::TryAdmitQueries(size_t count) {
  size_t current = inflight_queries_.load(std::memory_order_relaxed);
  for (;;) {
    if (current + count > config_.max_inflight_queries) return false;
    if (inflight_queries_.compare_exchange_weak(current, current + count,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed)) {
      return true;
    }
  }
}

void ToprrServer::ReleaseQueries(size_t count) {
  inflight_queries_.fetch_sub(count, std::memory_order_acq_rel);
}

std::vector<ServeResponse> ToprrServer::SolveAdmitted(
    std::vector<ToprrQuery> queries,
    const std::chrono::steady_clock::time_point* deadline) {
  // Brownout: sampled once per batch. When the admitted in-flight count
  // (this batch included) is already past the configured fraction of the
  // ceiling, clamp budgets harder so answers degrade (kBudgetExceeded
  // with partial stats) instead of queueing up behind full-budget solves
  // until admission starts rejecting outright.
  double budget_ceiling = config_.max_query_budget_seconds;
  if (config_.brownout_budget_seconds > 0.0 &&
      config_.max_inflight_queries > 0) {
    const double inflight = static_cast<double>(
        inflight_queries_.load(std::memory_order_acquire));
    const double threshold = config_.brownout_inflight_fraction *
                             static_cast<double>(config_.max_inflight_queries);
    if (inflight > threshold &&
        (budget_ceiling <= 0.0 ||
         config_.brownout_budget_seconds < budget_ceiling)) {
      budget_ceiling = config_.brownout_budget_seconds;
      stats_.OnBrownoutClamp();
    }
  }
  for (ToprrQuery& query : queries) {
    // Clamp the budget: unlimited (<= 0), over-the-cap, and NaN requests
    // all drop to the server's ceiling, enforced by the scheduler budget
    // hooks. The negated comparison is deliberate: `!(budget > 0)` is
    // true for NaN where `budget <= 0` would not be, and a NaN that
    // slipped through would read as "unlimited" in the scheduler too.
    double budget = query.options.time_budget_seconds;
    if (budget_ceiling > 0.0 &&
        (!(budget > 0.0) || budget > budget_ceiling)) {
      budget = budget_ceiling;
    }
    query.options.time_budget_seconds = budget;
    // A client must not be able to grab every core via num_threads=0
    // (the "all hardware threads" knob); region-level parallelism stays
    // an explicit positive request.
    if (query.options.num_threads < 1) query.options.num_threads = 1;
    // Caching is server-side policy: the wire has no cache bit, the
    // server opts admitted queries in (or not) uniformly.
    query.options.use_region_cache = config_.use_region_cache;
  }

  // Per-batch cancel flag: armed by Stop() (via active_cancels_) and by
  // the deadline watcher. Registered before the stopping_ re-check so a
  // Stop() racing this batch cannot miss it.
  std::atomic<bool> cancel{false};
  std::atomic<bool> deadline_fired{false};
  {
    std::lock_guard<std::mutex> lock(cancels_mu_);
    active_cancels_.push_back(&cancel);
  }
  if (stopping_.load(std::memory_order_acquire)) {
    cancel.store(true, std::memory_order_release);
  }

  std::thread watcher;
  std::mutex watch_mu;
  std::condition_variable watch_cv;
  bool solve_done = false;
  if (deadline != nullptr) {
    const auto when = *deadline;
    watcher = std::thread([&, when] {
      std::unique_lock<std::mutex> lk(watch_mu);
      if (!watch_cv.wait_until(lk, when, [&] { return solve_done; })) {
        deadline_fired.store(true, std::memory_order_release);
        cancel.store(true, std::memory_order_release);
      }
    });
  }

  const std::vector<ToprrResult> results =
      engine_.SolveBatch(queries, config_.batch_threads, &cancel);

  if (watcher.joinable()) {
    {
      std::lock_guard<std::mutex> lk(watch_mu);
      solve_done = true;
    }
    watch_cv.notify_all();
    watcher.join();
  }
  {
    std::lock_guard<std::mutex> lock(cancels_mu_);
    active_cancels_.erase(
        std::remove(active_cancels_.begin(), active_cancels_.end(), &cancel),
        active_cancels_.end());
  }
  // A cancel can have two causes; shutdown wins the tie because those
  // queries genuinely were cut loose by Stop(), deadline or not.
  const bool attribute_deadline =
      deadline_fired.load(std::memory_order_acquire) &&
      !stopping_.load(std::memory_order_acquire);

  std::vector<ServeResponse> responses;
  responses.reserve(results.size());
  for (const ToprrResult& result : results) {
    responses.push_back(ResponseFromResult(result));
    if (attribute_deadline &&
        responses.back().status == ServeStatus::kShutdown) {
      responses.back().status = ServeStatus::kDeadlineExceeded;
    }
    switch (static_cast<CacheLookup>(responses.back().stats.cache_lookup)) {
      case CacheLookup::kHit:
        stats_.OnCacheHit();
        break;
      case CacheLookup::kPartial:
        stats_.OnCachePartialHit();
        break;
      case CacheLookup::kMiss:
        stats_.OnCacheMiss();
        break;
      case CacheLookup::kBypass:
        break;
    }
    if (responses.back().stats.cache_tasks_saved > 0) {
      stats_.OnCacheTasksSaved(responses.back().stats.cache_tasks_saved);
    }
    switch (responses.back().status) {
      case ServeStatus::kOk:
        stats_.OnQueryCompleted();
        break;
      case ServeStatus::kBudgetExceeded:
        stats_.OnQueryBudgetExceeded();
        break;
      case ServeStatus::kShutdown:
        stats_.OnQueryCancelled();
        break;
      case ServeStatus::kDeadlineExceeded:
        stats_.OnQueryDeadlineExceeded();
        break;
      default:
        break;
    }
  }
  return responses;
}

std::string ToprrServer::HandleQueryBatch(const std::string& payload) {
  const auto arrival = std::chrono::steady_clock::now();
  std::vector<ToprrQuery> queries;
  uint64_t deadline_ms = 0;
  std::string decode_error;
  if (!DecodeQueryBatch(payload, &queries, &deadline_ms, &decode_error)) {
    stats_.OnProtocolError();
    LOG(WARNING) << "malformed query batch: " << decode_error;
    return MalformedMarkerReply();
  }
  stats_.OnQueriesReceived(queries.size());

  // The wire deadline is relative to frame arrival; clamp it to the
  // server's ceiling and convert to an absolute point so decode and
  // admission time count against it.
  if (deadline_ms > 0 && config_.max_deadline_ms > 0 &&
      deadline_ms > config_.max_deadline_ms) {
    deadline_ms = config_.max_deadline_ms;
  }
  std::chrono::steady_clock::time_point deadline_point;
  const std::chrono::steady_clock::time_point* deadline = nullptr;
  if (deadline_ms > 0) {
    deadline_point = arrival + std::chrono::milliseconds(deadline_ms);
    deadline = &deadline_point;
  }

  // Per-query validation, then all-or-nothing admission of the
  // solvable remainder. The bounds are sampled once per frame; a
  // SyncCatalog racing with admission is harmless -- physical rows
  // never shrink, so a query validated here cannot trip the engine's
  // hard bound even if a delete publishes before its solve pins.
  const size_t live_rows = engine_.dataset_rows();
  const size_t data_dim = engine_.dataset_dim();
  std::vector<ServeResponse> responses(queries.size());
  std::vector<size_t> solvable;
  solvable.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (QueryIsSolvable(live_rows, data_dim, queries[i])) {
      solvable.push_back(i);
    } else {
      responses[i].status = ServeStatus::kMalformed;
    }
  }
  if (!solvable.empty()) {
    if (stopping_.load(std::memory_order_acquire)) {
      for (size_t i : solvable) {
        responses[i].status = ServeStatus::kShutdown;
        stats_.OnQueryCancelled();
      }
    } else if (draining_.load(std::memory_order_acquire)) {
      // Drain mode: in-flight work finishes, new work is turned away
      // with an explicitly retryable status.
      for (size_t i : solvable) {
        responses[i].status = ServeStatus::kRejectedDraining;
      }
      stats_.OnQueriesRejectedDraining(solvable.size());
    } else if (deadline != nullptr &&
               std::chrono::steady_clock::now() >= *deadline) {
      // Expired on arrival (or while decoding): answering without
      // solving IS the deadline contract.
      for (size_t i : solvable) {
        responses[i].status = ServeStatus::kDeadlineExceeded;
        stats_.OnQueryDeadlineExceeded();
      }
    } else if (!TryAdmitQueries(solvable.size())) {
      for (size_t i : solvable) {
        responses[i].status = ServeStatus::kRejectedOverload;
      }
      stats_.OnQueriesRejectedOverload(solvable.size());
    } else {
      std::vector<ToprrQuery> admitted;
      admitted.reserve(solvable.size());
      for (size_t i : solvable) admitted.push_back(queries[i]);
      std::vector<ServeResponse> solved =
          SolveAdmitted(std::move(admitted), deadline);
      ReleaseQueries(solvable.size());
      for (size_t j = 0; j < solvable.size(); ++j) {
        responses[solvable[j]] = std::move(solved[j]);
      }
    }
  }

  // Responses that never reached a solve (malformed, rejected, shutdown)
  // carry the engine's current version stamp, so every response on a
  // connection participates in the monotone snapshot_seq stream. A solve
  // pinned before a concurrent publish may stamp an older seq than a
  // rejection stamped here after it -- still monotone across frames,
  // which is the contract.
  const SnapshotPtr snap = engine_.snapshot();
  for (ServeResponse& response : responses) {
    if (response.snapshot_id == 0) {
      response.snapshot_id = snap->id();
      response.snapshot_seq = snap->seq();
    }
  }

  std::string reply = EncodeResponseBatch(responses);
  if (reply.size() > config_.max_frame_payload_bytes) {
    // The client's ReadFrame would reject this as oversized and tear
    // the connection down, discarding solved work. Degrade instead:
    // drop the vertex geometry first (the halfspace description stays
    // exact), then the payloads entirely (stats survive).
    for (ServeResponse& response : responses) {
      if (!response.vertices.empty()) {
        response.vertices.clear();
        response.geometry_skipped = true;
      }
    }
    reply = EncodeResponseBatch(responses);
    if (reply.size() > config_.max_frame_payload_bytes) {
      for (ServeResponse& response : responses) {
        response.impact_halfspaces.clear();
        if (response.status == ServeStatus::kOk) {
          response.status = ServeStatus::kInternalError;
        }
      }
      reply = EncodeResponseBatch(responses);
    }
  }
  return reply;
}

MutationAck ToprrServer::StampAck(MutationStatus status,
                                  const MutationSession& session,
                                  std::string message) {
  MutationAck ack;
  ack.status = status;
  const SnapshotPtr snap = engine_.snapshot();
  ack.snapshot_id = snap->id();
  ack.snapshot_seq = snap->seq();
  ack.live_rows = snap->live_rows();
  ack.physical_rows = snap->rows();
  ack.staged_inserts = static_cast<uint32_t>(session.rows.size());
  ack.staged_deletes = static_cast<uint32_t>(session.deletes.size());
  ack.message = std::move(message);
  return ack;
}

MutationAck ToprrServer::HandleStageInsert(MutationSession* session,
                                           std::vector<Vec> rows) {
  // Validate the whole frame before staging any of it: admission is
  // all-or-nothing, so a rejected frame leaves the session untouched.
  const size_t dim = engine_.dataset_dim();
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].dim() != dim) {
      stats_.OnMutationsRejected(rows.size());
      return StampAck(MutationStatus::kInvalidArgument, *session,
                      "row " + std::to_string(i) + " has dimension " +
                          std::to_string(rows[i].dim()) + ", dataset is " +
                          std::to_string(dim));
    }
    for (const double value : rows[i]) {
      if (!std::isfinite(value)) {
        stats_.OnMutationsRejected(rows.size());
        return StampAck(MutationStatus::kInvalidArgument, *session,
                        "row " + std::to_string(i) +
                            " has a non-finite coordinate");
      }
    }
  }
  if (session->size() + rows.size() > config_.max_staged_mutations) {
    stats_.OnMutationsRejected(rows.size());
    return StampAck(MutationStatus::kLimitExceeded, *session,
                    "staged-delta bound is " +
                        std::to_string(config_.max_staged_mutations));
  }
  session->rows.insert(session->rows.end(),
                       std::make_move_iterator(rows.begin()),
                       std::make_move_iterator(rows.end()));
  stats_.OnMutationsStaged(rows.size());
  return StampAck(MutationStatus::kOk, *session);
}

MutationAck ToprrServer::HandleStageDelete(MutationSession* session,
                                           std::vector<uint64_t> row_ids) {
  // Validated against the currently served snapshot; a row that dies
  // between staging and Publish is caught again there (kConflict).
  const SnapshotPtr snap = engine_.snapshot();
  std::unordered_set<uint64_t> seen(session->deletes.begin(),
                                    session->deletes.end());
  for (size_t i = 0; i < row_ids.size(); ++i) {
    const uint64_t id = row_ids[i];
    if (id >= snap->rows() || !snap->IsLive(id)) {
      stats_.OnMutationsRejected(row_ids.size());
      return StampAck(MutationStatus::kInvalidArgument, *session,
                      "row id " + std::to_string(id) +
                          " is unknown or not live");
    }
    if (!seen.insert(id).second) {
      stats_.OnMutationsRejected(row_ids.size());
      return StampAck(MutationStatus::kInvalidArgument, *session,
                      "row id " + std::to_string(id) +
                          " staged for deletion twice");
    }
  }
  if (session->size() + row_ids.size() > config_.max_staged_mutations) {
    stats_.OnMutationsRejected(row_ids.size());
    return StampAck(MutationStatus::kLimitExceeded, *session,
                    "staged-delta bound is " +
                        std::to_string(config_.max_staged_mutations));
  }
  session->deletes.insert(session->deletes.end(), row_ids.begin(),
                          row_ids.end());
  stats_.OnMutationsStaged(row_ids.size());
  return StampAck(MutationStatus::kOk, *session);
}

MutationAck ToprrServer::HandlePublish(MutationSession* session,
                                       uint64_t idempotency_token,
                                       uint64_t publish_id, bool probe) {
  if (stopping_.load(std::memory_order_acquire) ||
      draining_.load(std::memory_order_acquire)) {
    stats_.OnPublishRejected();
    return StampAck(MutationStatus::kShutdown, *session,
                    draining_.load(std::memory_order_acquire)
                        ? "server draining"
                        : "server shutting down");
  }
  if (probe) {
    // Read-only query of the applied-publish record: did (token, id)
    // land? Nothing is published and the session's staged delta is left
    // untouched, so a reconnecting writer can probe before deciding
    // whether to re-stage (the decoder guarantees a non-zero token).
    std::lock_guard<std::mutex> lock(publish_mu_);
    auto it = applied_publishes_.find(idempotency_token);
    if (it != applied_publishes_.end() &&
        it->second.publish_id == publish_id) {
      MutationAck ack = it->second.ack;
      ack.already_applied = true;
      ack.staged_inserts = static_cast<uint32_t>(session->rows.size());
      ack.staged_deletes = static_cast<uint32_t>(session->deletes.size());
      return ack;
    }
    MutationAck ack = StampAck(MutationStatus::kOk, *session);
    ack.idempotency_token = idempotency_token;
    ack.publish_id = publish_id;
    return ack;
  }
  if (idempotency_token != 0) {
    // A retried Publish whose original ack was lost arrives with the
    // same (token, publish_id) after the client re-staged its delta on
    // the fresh connection. The delta is already in the catalog: drop
    // the re-staged copy and answer from the applied-publish record.
    std::lock_guard<std::mutex> lock(publish_mu_);
    auto it = applied_publishes_.find(idempotency_token);
    if (it != applied_publishes_.end() &&
        it->second.publish_id == publish_id) {
      session->rows.clear();
      session->deletes.clear();
      MutationAck ack = it->second.ack;
      ack.already_applied = true;
      ack.staged_inserts = 0;
      ack.staged_deletes = 0;
      stats_.OnPublishDeduped();
      return ack;
    }
  }
  if (session->size() == 0) {
    // Idempotent no-op: ack the currently served version.
    MutationAck ack = StampAck(MutationStatus::kOk, *session);
    ack.idempotency_token = idempotency_token;
    ack.publish_id = publish_id;
    return ack;
  }
  std::lock_guard<std::mutex> lock(publish_mu_);
  // Re-validate the delete set against the snapshot this publish will
  // build on: another connection's publish may have tombstoned a row
  // since it was staged here. Rows were fully validated at staging time
  // (dimension, finiteness) and the delete set is unique, so past this
  // check the stage + publish below cannot fail partway -- which is what
  // makes wire publishes all-or-nothing without catalog rollback.
  const SnapshotPtr base = catalog_->Current();
  for (const uint64_t id : session->deletes) {
    if (id >= base->rows() || !base->IsLive(id)) {
      stats_.OnPublishRejected();
      return StampAck(MutationStatus::kConflict, *session,
                      "row id " + std::to_string(id) +
                          " is no longer live; delta kept staged");
    }
  }
  if (durable_ != nullptr) {
    // Durable path: WAL append (+ fsync per policy) happens inside
    // DurableCatalog::Publish BEFORE the in-memory publish, so by the
    // time this ack leaves the server the delta survives kill -9. On
    // failure nothing was applied (the staged delta was rolled back
    // inside); the session keeps its copy for amendment/retry.
    const DurableCatalog::PublishOutcome outcome = durable_->Publish(
        session->rows, session->deletes, idempotency_token, publish_id);
    if (!outcome.ok) {
      stats_.OnPublishRejected();
      LOG(ERROR) << "durable publish failed: " << outcome.error;
      return StampAck(MutationStatus::kInternalError, *session,
                      "durable publish failed: " + outcome.error);
    }
    const DurableCounters counters = durable_->counters();
    stats_.SetDurableCounters(counters.wal_appends, counters.wal_bytes,
                              counters.wal_fsyncs,
                              counters.checkpoints_written);
  } else {
    for (const Vec& row : session->rows) catalog_->StageInsert(row);
    for (const uint64_t id : session->deletes) {
      if (!catalog_->StageDelete(static_cast<int>(id))) {
        // Only reachable when an external writer races the wire path on
        // a shared catalog; the delete validated moments ago.
        LOG(WARNING) << "staged delete of row " << id
                     << " rejected by the catalog (external writer race)";
      }
    }
    catalog_->Publish();
  }
  SyncCatalog();
  stats_.OnPublishApplied();
  session->rows.clear();
  session->deletes.clear();
  MutationAck ack = StampAck(MutationStatus::kOk, *session);
  ack.idempotency_token = idempotency_token;
  ack.publish_id = publish_id;
  if (idempotency_token != 0) {
    // Record (still under publish_mu_) so an exact retry is recognized.
    // Distinct tokens are bounded by evicting the oldest token whole; a
    // token republishing just overwrites its record in place.
    if (applied_publishes_.find(idempotency_token) ==
        applied_publishes_.end()) {
      applied_token_order_.push_back(idempotency_token);
      while (applied_token_order_.size() > config_.idempotency_cache_entries &&
             !applied_token_order_.empty()) {
        applied_publishes_.erase(applied_token_order_.front());
        applied_token_order_.pop_front();
      }
    }
    applied_publishes_[idempotency_token] = AppliedPublish{publish_id, ack};
  }
  return ack;
}

void ToprrServer::ServeConnection(int fd) {
  FdStream stream(fd);
  std::string payload;
  MutationSession session;

  // Slowloris defense: between frames the (long) idle timeout applies;
  // the moment a peer commits to a frame — first prefix byte — the
  // watcher switches the socket to the (short) header-read timeout, so
  // a trickling peer cannot pin this thread. Restored per frame below.
  struct HeaderTimeoutSwitcher : FrameWatcher {
    FdStream* stream = nullptr;
    int header_timeout_ms = 0;
    void OnFrameStart() override {
      if (header_timeout_ms > 0) stream->SetReadTimeoutMs(header_timeout_ms);
    }
  };
  HeaderTimeoutSwitcher switcher;
  switcher.stream = &stream;
  switcher.header_timeout_ms = config_.header_read_timeout_ms;
  const bool use_read_timeouts =
      config_.idle_timeout_ms > 0 || config_.header_read_timeout_ms > 0;
  if (config_.write_timeout_ms > 0) {
    stream.SetWriteTimeoutMs(config_.write_timeout_ms);
  }

  while (!stopping_.load(std::memory_order_acquire)) {
    if (use_read_timeouts) {
      stream.SetReadTimeoutMs(config_.idle_timeout_ms > 0
                                  ? config_.idle_timeout_ms
                                  : config_.header_read_timeout_ms);
    }
    bool frame_started = false;
    const FrameReadStatus read_status =
        ReadFrame(stream, &payload, config_.max_frame_payload_bytes,
                  use_read_timeouts ? &switcher : nullptr, &frame_started);
    if (read_status == FrameReadStatus::kEof) return;  // clean close
    if (read_status == FrameReadStatus::kTimeout) {
      if (!stopping_.load(std::memory_order_acquire)) {
        if (frame_started) {
          stats_.OnReadTimeout();
          LOG(WARNING) << "connection dropped: stalled mid-frame";
        } else {
          stats_.OnIdleTimeout();
          LOG(WARNING) << "connection dropped: idle timeout";
        }
      }
      return;
    }
    if (read_status != FrameReadStatus::kOk) {
      // Oversized/truncated/io-error: the stream is out of sync (or
      // gone); count it and drop the connection. A response cannot be
      // trusted to line up with a request anymore.
      if (!stopping_.load(std::memory_order_acquire)) {
        stats_.OnProtocolError();
        LOG(WARNING) << "connection dropped: frame "
                     << FrameReadStatusName(read_status);
      }
      return;
    }
    stats_.OnFrameReceived(payload.size() + 4);

    // Dispatch on the version-invariant header. Bad magic or a short
    // payload keeps the connection (framing is still in sync); a foreign
    // protocol version gets the frozen rejection frame and a close --
    // nothing else we send would parse on the peer's side.
    FrameHeader header;
    bool close_connection = false;
    std::string reply;
    std::string decode_error;
    if (!PeekHeader(payload, &header) || header.magic != kProtocolMagic) {
      stats_.OnProtocolError();
      LOG(WARNING) << "malformed frame: bad or short header";
      reply = MalformedMarkerReply();
    } else if (header.version != kProtocolVersion) {
      stats_.OnVersionMismatch();
      stats_.OnProtocolError();
      LOG(WARNING) << "closing connection: peer spoke protocol v"
                   << static_cast<int>(header.version)
                   << ", this server is v"
                   << static_cast<int>(kProtocolVersion);
      reply = EncodeVersionMismatch(kProtocolVersion, kMinProtocolVersion);
      close_connection = true;
    } else {
      switch (static_cast<MessageType>(header.type)) {
        case MessageType::kQueryBatch:
          reply = HandleQueryBatch(payload);
          break;
        case MessageType::kHello: {
          if (!DecodeHello(payload, &decode_error)) {
            stats_.OnProtocolError();
            LOG(WARNING) << "malformed hello: " << decode_error;
            reply = MalformedMarkerReply();
            break;
          }
          const SnapshotPtr snap = engine_.snapshot();
          ServerHello hello;
          hello.max_frame_payload_bytes = config_.max_frame_payload_bytes;
          hello.max_inflight_queries =
              static_cast<uint32_t>(config_.max_inflight_queries);
          hello.max_staged_mutations =
              static_cast<uint32_t>(config_.max_staged_mutations);
          hello.snapshot_id = snap->id();
          hello.snapshot_seq = snap->seq();
          hello.live_rows = snap->live_rows();
          hello.physical_rows = snap->rows();
          hello.dim = static_cast<uint32_t>(snap->dim());
          reply = EncodeServerHello(hello);
          break;
        }
        case MessageType::kStageInsert: {
          std::vector<Vec> rows;
          if (!DecodeStageInsert(payload, &rows, &decode_error)) {
            stats_.OnProtocolError();
            reply = EncodeMutationAck(
                StampAck(MutationStatus::kInvalidArgument, session,
                         decode_error));
            break;
          }
          reply = EncodeMutationAck(
              HandleStageInsert(&session, std::move(rows)));
          break;
        }
        case MessageType::kStageDelete: {
          std::vector<uint64_t> row_ids;
          if (!DecodeStageDelete(payload, &row_ids, &decode_error)) {
            stats_.OnProtocolError();
            reply = EncodeMutationAck(
                StampAck(MutationStatus::kInvalidArgument, session,
                         decode_error));
            break;
          }
          reply = EncodeMutationAck(
              HandleStageDelete(&session, std::move(row_ids)));
          break;
        }
        case MessageType::kPublish: {
          uint64_t token = 0;
          uint64_t publish_id = 0;
          bool probe = false;
          if (!DecodePublish(payload, &token, &publish_id, &probe,
                             &decode_error)) {
            stats_.OnProtocolError();
            reply = EncodeMutationAck(
                StampAck(MutationStatus::kInvalidArgument, session,
                         decode_error));
            break;
          }
          reply = EncodeMutationAck(
              HandlePublish(&session, token, publish_id, probe));
          break;
        }
        case MessageType::kCatalogInfo: {
          if (!DecodeCatalogInfo(payload, &decode_error)) {
            stats_.OnProtocolError();
            reply = EncodeMutationAck(
                StampAck(MutationStatus::kInvalidArgument, session,
                         decode_error));
            break;
          }
          MutationAck info = StampAck(MutationStatus::kOk, session);
          if (durable_ != nullptr) {
            // Durability one-liner for human correlation with client
            // logs (capped on the wire alongside error messages).
            const DurableCounters counters = durable_->counters();
            const RecoveryStats& recovery = durable_->recovery();
            info.message = "durable wal_appends=" +
                           std::to_string(counters.wal_appends) +
                           " checkpoints=" +
                           std::to_string(counters.checkpoints_written) +
                           " recovered=" + (recovery.recovered ? "1" : "0") +
                           " replayed=" +
                           std::to_string(recovery.replayed_records);
          }
          reply = EncodeMutationAck(info);
          break;
        }
        default:
          // A v3 frame of a kind the server never accepts (a response
          // kind, or from a future minor). Stream is in sync: marker,
          // keep the connection.
          stats_.OnProtocolError();
          LOG(WARNING) << "unexpected message type "
                       << static_cast<int>(header.type);
          reply = MalformedMarkerReply();
          break;
      }
    }

    if (!WriteFrame(stream, reply)) {
      if (!stopping_.load(std::memory_order_acquire)) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          stats_.OnWriteTimeout();
          LOG(WARNING) << "connection dropped: reply write timed out";
        } else {
          stats_.OnProtocolError();
          LOG(WARNING) << LogErrno("reply write failed");
        }
      }
      return;
    }
    stats_.OnBytesSent(reply.size() + 4);
    if (close_connection) return;
  }
}

}  // namespace serve
}  // namespace toprr
