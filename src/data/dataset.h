// In-memory option dataset: n options ("products") with d continuous
// attributes each, stored row-major. Larger attribute values are assumed
// preferable on every attribute (paper Sec. 3.1), and benchmark datasets
// live in the unit option space O = [0,1]^d.
#ifndef TOPRR_DATA_DATASET_H_
#define TOPRR_DATA_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.h"
#include "geom/vec.h"

namespace toprr {

/// A flat, row-major table of options.
class Dataset {
 public:
  Dataset() = default;
  Dataset(size_t n, size_t d) : n_(n), d_(d), values_(n * d, 0.0) {}

  /// Builds from explicit rows (all of dimension d).
  static Dataset FromRows(const std::vector<Vec>& rows);

  size_t size() const { return n_; }
  size_t dim() const { return d_; }
  bool empty() const { return n_ == 0; }

  double At(size_t row, size_t col) const {
    DCHECK_LT(row, n_);
    DCHECK_LT(col, d_);
    return values_[row * d_ + col];
  }
  double& At(size_t row, size_t col) {
    DCHECK_LT(row, n_);
    DCHECK_LT(col, d_);
    return values_[row * d_ + col];
  }

  /// Raw pointer to the row (d contiguous doubles).
  const double* Row(size_t row) const {
    DCHECK_LT(row, n_);
    return values_.data() + row * d_;
  }

  /// Raw pointer to the whole row-major table (n * d doubles). Bulk
  /// consumers (the SoA gather of topk/score_kernel.cc) read through this
  /// to avoid a per-row bounds check in debug builds.
  const double* RawValues() const { return values_.data(); }

  /// Copies row `row` into a Vec.
  Vec Option(size_t row) const;

  /// Appends a row; dimension must match (or sets it on the first row).
  void Append(const Vec& option);

  /// Min-max normalizes every attribute into [0, 1] in place. Constant
  /// attributes map to 0.5. Returns per-column (min, max) before scaling.
  std::vector<std::pair<double, double>> NormalizeUnit();

  /// The score w . option for a full d-dimensional weight vector.
  double Score(size_t row, const Vec& w) const;

  std::string DebugString(size_t max_rows = 10) const;

 private:
  size_t n_ = 0;
  size_t d_ = 0;
  std::vector<double> values_;
};

/// A non-owning, trivially copyable read view of a row-major option table.
///
/// The solver stack (skyband / r-skyband filters, the partition engine,
/// result assembly) reads rows through this view instead of a concrete
/// Dataset, so the same code serves both the contiguous Dataset storage
/// and the chunked copy-on-write storage of DatasetSnapshot
/// (data/snapshot.h). A `const Dataset&` converts implicitly, so existing
/// call sites keep compiling unchanged.
///
/// Row ids address physical rows: a chunked snapshot may carry tombstoned
/// (deleted) rows that are still physically present -- callers restrict
/// themselves to live ids (DatasetSnapshot::live_ids()); the view itself
/// does not filter.
///
/// The viewed storage (Dataset, or snapshot chunk table) must outlive the
/// view. Views are values: copy them freely, never point at them.
class DatasetView {
 public:
  DatasetView() = default;

  // Implicit by design: the whole-table view of a contiguous Dataset.
  // NOLINTNEXTLINE(google-explicit-constructor)
  DatasetView(const Dataset& data)
      : n_(data.size()), d_(data.dim()), contig_(data.RawValues()) {}

  /// Chunked table: bases[c] is the first row of chunk c; every chunk
  /// holds (1 << chunk_shift) rows of d doubles (the last may be
  /// partial). `bases` must outlive the view.
  DatasetView(size_t n, size_t d, const double* const* bases,
              unsigned chunk_shift)
      : n_(n),
        d_(d),
        bases_(bases),
        shift_(chunk_shift),
        mask_((size_t{1} << chunk_shift) - 1) {}

  size_t size() const { return n_; }
  size_t dim() const { return d_; }
  bool empty() const { return n_ == 0; }

  /// Raw pointer to the row (d contiguous doubles). The chunk branch is
  /// perfectly predicted within one solve (a view is one or the other),
  /// so the hot scans cost the same as the direct Dataset accessors.
  const double* Row(size_t row) const {
    DCHECK_LT(row, n_);
    if (contig_ != nullptr) return contig_ + row * d_;
    return bases_[row >> shift_] + (row & mask_) * d_;
  }

  double At(size_t row, size_t col) const {
    DCHECK_LT(col, d_);
    return Row(row)[col];
  }

  /// The score w . option for a full d-dimensional weight vector.
  double Score(size_t row, const Vec& w) const {
    DCHECK_EQ(w.dim(), d_);
    const double* p = Row(row);
    double s = 0.0;
    for (size_t j = 0; j < d_; ++j) s += p[j] * w[j];
    return s;
  }

 private:
  size_t n_ = 0;
  size_t d_ = 0;
  const double* contig_ = nullptr;         // contiguous table, or null
  const double* const* bases_ = nullptr;   // per-chunk row-0 pointers
  unsigned shift_ = 0;
  size_t mask_ = 0;
};

}  // namespace toprr

#endif  // TOPRR_DATA_DATASET_H_
