// In-memory option dataset: n options ("products") with d continuous
// attributes each, stored row-major. Larger attribute values are assumed
// preferable on every attribute (paper Sec. 3.1), and benchmark datasets
// live in the unit option space O = [0,1]^d.
#ifndef TOPRR_DATA_DATASET_H_
#define TOPRR_DATA_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.h"
#include "geom/vec.h"

namespace toprr {

/// A flat, row-major table of options.
class Dataset {
 public:
  Dataset() = default;
  Dataset(size_t n, size_t d) : n_(n), d_(d), values_(n * d, 0.0) {}

  /// Builds from explicit rows (all of dimension d).
  static Dataset FromRows(const std::vector<Vec>& rows);

  size_t size() const { return n_; }
  size_t dim() const { return d_; }
  bool empty() const { return n_ == 0; }

  double At(size_t row, size_t col) const {
    DCHECK_LT(row, n_);
    DCHECK_LT(col, d_);
    return values_[row * d_ + col];
  }
  double& At(size_t row, size_t col) {
    DCHECK_LT(row, n_);
    DCHECK_LT(col, d_);
    return values_[row * d_ + col];
  }

  /// Raw pointer to the row (d contiguous doubles).
  const double* Row(size_t row) const {
    DCHECK_LT(row, n_);
    return values_.data() + row * d_;
  }

  /// Raw pointer to the whole row-major table (n * d doubles). Bulk
  /// consumers (the SoA gather of topk/score_kernel.cc) read through this
  /// to avoid a per-row bounds check in debug builds.
  const double* RawValues() const { return values_.data(); }

  /// Copies row `row` into a Vec.
  Vec Option(size_t row) const;

  /// Appends a row; dimension must match (or sets it on the first row).
  void Append(const Vec& option);

  /// Min-max normalizes every attribute into [0, 1] in place. Constant
  /// attributes map to 0.5. Returns per-column (min, max) before scaling.
  std::vector<std::pair<double, double>> NormalizeUnit();

  /// The score w . option for a full d-dimensional weight vector.
  double Score(size_t row, const Vec& w) const;

  std::string DebugString(size_t max_rows = 10) const;

 private:
  size_t n_ = 0;
  size_t d_ = 0;
  std::vector<double> values_;
};

}  // namespace toprr

#endif  // TOPRR_DATA_DATASET_H_
