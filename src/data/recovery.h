// Crash recovery for the mutable catalog: checkpoints + WAL replay.
//
// DurableCatalog wraps a MutableCatalog with an on-disk `data_dir`:
//
//   data_dir/checkpoint-<seq16hex>.ckpt   full DatasetSnapshot + the
//                                         applied-publish dedupe table,
//                                         written tmp+fsync+rename
//   data_dir/wal-<seq16hex>.log           publish deltas with child
//                                         seq > <seq> (the file's base)
//
// The publish path is append-then-apply: the child snapshot's FNV id is
// *predicted* from the staged delta (MutableCatalog::PredictPublish),
// the WAL record -- parent/child ids+seqs, idempotency token/id, the
// row batch -- is appended and (per FsyncPolicy) fsynced, and only then
// is the in-memory snapshot published. A failed append rolls the staged
// delta back and reports a typed error: nothing was acknowledged,
// nothing was applied, the catalog is exactly as before.
//
// Recovery = best checkpoint + WAL-tail replay. Replay re-stages each
// record through the real MutableCatalog and verifies the re-derived
// snapshot id is bit-identical to the recorded one; any mismatch, chain
// gap, or decode failure rejects the candidate (typed error -- corrupt
// state is never served). Torn WAL tails (the crash shape) are
// truncated at the last valid record; recovery always ends by writing a
// fresh checkpoint and rotating the log, which physically discards the
// torn bytes. The replayed idempotency tokens seed the server's dedupe
// table so a client retrying a Publish across the crash still hears
// `already_applied` instead of double-applying.
#ifndef TOPRR_DATA_RECOVERY_H_
#define TOPRR_DATA_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/snapshot.h"
#include "data/wal.h"

namespace toprr {

struct DurabilityOptions {
  std::string data_dir;
  FsyncPolicy fsync_policy = FsyncPolicy::kAlways;
  /// Publishes between automatic checkpoints (0 = only at open/close).
  uint64_t checkpoint_every = 64;
  /// Group-commit threshold for FsyncPolicy::kBatched.
  size_t wal_batch_bytes = size_t{1} << 20;
  /// Test hook: wraps every newly opened WAL sink (FaultyFile injection).
  std::function<std::unique_ptr<WalFile>(std::unique_ptr<WalFile>)>
      wrap_wal_file;
};

/// What Open() found on disk (surfaced through ServerStats and the
/// toprr_serve recovery log line).
struct RecoveryStats {
  bool recovered = false;  // state came from disk, not the bootstrap
  uint64_t checkpoint_seq = 0;
  uint64_t replayed_records = 0;
  uint64_t skipped_records = 0;  // already covered by the checkpoint
  bool wal_tail_truncated = false;
  double recovery_seconds = 0.0;
  uint64_t snapshot_id = 0;  // the recovered head of the chain
  uint64_t snapshot_seq = 0;
};

/// One durably applied publish: enough to reconstruct the MutationAck a
/// retrying client must hear again after a crash-restart.
struct AppliedPublishRecord {
  uint64_t token = 0;
  uint64_t publish_id = 0;
  uint64_t snapshot_id = 0;
  uint64_t snapshot_seq = 0;
  uint64_t live_rows = 0;
  uint64_t physical_rows = 0;
};

/// A decoded WAL publish record (exposed for tests and fuzzing).
struct PublishWalRecord {
  uint64_t parent_id = 0;
  uint64_t parent_seq = 0;
  uint64_t child_id = 0;
  uint64_t child_seq = 0;
  uint64_t token = 0;
  uint64_t publish_id = 0;
  uint64_t first_insert_id = 0;
  uint32_t dim = 0;
  std::vector<Vec> inserts;
  std::vector<int> deletes;  // ascending parent-live ids
};

std::string EncodePublishWalRecord(const PublishWalRecord& record);
/// Bounds-checked decode; false + *error on any malformed payload.
bool DecodePublishWalRecord(const std::string& payload,
                            PublishWalRecord* record, std::string* error);

/// Serializes `snapshot` (+ the dedupe table) as a checkpoint file at
/// `path`: framed, checksummed records, written to path+".tmp", fsynced,
/// renamed, directory fsynced. False + *error on failure.
bool WriteCheckpointFile(const std::string& path,
                         const DatasetSnapshot& snapshot,
                         const std::vector<AppliedPublishRecord>& applied,
                         std::string* error);

/// Loads a checkpoint file. Null + *error on any damage (bad frame,
/// missing footer, shape mismatch, id/seq inconsistency) -- typed
/// rejection, never an abort, never a partially loaded snapshot.
SnapshotPtr LoadCheckpointFile(const std::string& path,
                               std::vector<AppliedPublishRecord>* applied,
                               std::string* error);

/// Counter snapshot for ServerStats.
struct DurableCounters {
  uint64_t wal_appends = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_fsyncs = 0;
  uint64_t checkpoints_written = 0;
};

class DurableCatalog {
 public:
  /// Opens the catalog under options.data_dir. A populated directory
  /// recovers (checkpoint + WAL replay; `bootstrap` is ignored); an
  /// empty one initializes from `bootstrap` and writes the first
  /// checkpoint. Null + *error on unrecoverable/corrupt state.
  ///
  /// Single-writer: Open takes an exclusive flock on `LOCK` inside the
  /// directory and fails fast if another live process holds it. Without
  /// this, a second opener would checkpoint + rotate the log underneath
  /// the first and corrupt the chain. The lock dies with the process
  /// (kill -9 included), so crash recovery is never blocked.
  static std::unique_ptr<DurableCatalog> Open(
      const DurabilityOptions& options, const Dataset* bootstrap,
      std::string* error);

  ~DurableCatalog();

  /// The wrapped catalog. Reads (Current()) are free-threaded; all
  /// writes MUST go through Publish() below or durability is silently
  /// lost -- never call catalog()->Publish() directly.
  const std::shared_ptr<MutableCatalog>& catalog() const {
    return catalog_;
  }

  const RecoveryStats& recovery() const { return recovery_; }
  const std::vector<AppliedPublishRecord>& recovered_publishes() const {
    return recovered_publishes_;
  }

  struct PublishOutcome {
    bool ok = false;
    SnapshotPtr snapshot;  // the new current snapshot when ok
    std::string error;
  };

  /// The durable publish: validates `deletes` are live, stages the
  /// delta, appends the WAL record (fsync per policy), publishes in
  /// memory, and (every checkpoint_every publishes) checkpoints +
  /// rotates. On WAL failure the staged delta is rolled back --
  /// the caller must not acknowledge. Thread-safe (serializes).
  PublishOutcome Publish(const std::vector<Vec>& inserts,
                         const std::vector<uint64_t>& deletes,
                         uint64_t token, uint64_t publish_id);

  /// Forces a checkpoint + log rotation now.
  bool Checkpoint(std::string* error);

  /// Flushes any batched WAL bytes (shutdown barrier).
  bool Flush();

  DurableCounters counters() const;

 private:
  DurableCatalog() = default;

  bool OpenWalForAppend(uint64_t base_seq, std::string* error);
  bool CheckpointLocked(std::string* error);

  DurabilityOptions options_;
  int lock_fd_ = -1;  // exclusive flock on <data_dir>/LOCK
  std::shared_ptr<MutableCatalog> catalog_;
  RecoveryStats recovery_;
  std::vector<AppliedPublishRecord> recovered_publishes_;

  mutable std::mutex mu_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t wal_base_seq_ = 0;
  uint64_t publishes_since_checkpoint_ = 0;
  uint64_t checkpoints_written_ = 0;
  // WalWriter counters accumulate across rotations (a rotation replaces
  // the writer, which would otherwise zero them).
  DurableCounters retired_;
};

}  // namespace toprr

#endif  // TOPRR_DATA_RECOVERY_H_
