#include "data/wal.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>

namespace toprr {

namespace {

// Table-driven CRC32C (reflected Castagnoli polynomial 0x82F63B78).
// Software on purpose: no SSE4.2 dependency, and the log append is
// dominated by the write()/fsync() anyway.
const uint32_t* Crc32cTable() {
  static const uint32_t* table = [] {
    static uint32_t entries[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      entries[i] = crc;
    }
    return entries;
  }();
  return table;
}

}  // namespace

uint32_t Crc32c(const void* bytes, size_t len, uint32_t seed) {
  const uint32_t* table = Crc32cTable();
  const unsigned char* p = static_cast<const unsigned char*>(bytes);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

bool ParseFsyncPolicy(const std::string& text, FsyncPolicy* policy) {
  std::string lower(text);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "off" || lower == "none") {
    *policy = FsyncPolicy::kOff;
  } else if (lower == "batched" || lower == "batch") {
    *policy = FsyncPolicy::kBatched;
  } else if (lower == "always" || lower == "sync") {
    *policy = FsyncPolicy::kAlways;
  } else {
    return false;
  }
  return true;
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kOff:
      return "off";
    case FsyncPolicy::kBatched:
      return "batched";
    case FsyncPolicy::kAlways:
      return "always";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// PosixWalFile.

std::unique_ptr<PosixWalFile> PosixWalFile::OpenAppend(
    const std::string& path, std::string* error) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "open " + path + ": " + std::strerror(errno);
    }
    return nullptr;
  }
  return std::unique_ptr<PosixWalFile>(new PosixWalFile(fd));
}

PosixWalFile::~PosixWalFile() {
  if (fd_ >= 0) ::close(fd_);
}

bool PosixWalFile::Append(const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  size_t left = len;
  while (left > 0) {
    const ssize_t wrote = ::write(fd_, p, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      error_ = std::string("write: ") + std::strerror(errno);
      return false;
    }
    p += wrote;
    left -= static_cast<size_t>(wrote);
  }
  return true;
}

bool PosixWalFile::Sync() {
  if (::fsync(fd_) != 0) {
    error_ = std::string("fsync: ") + std::strerror(errno);
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// FaultyFile.

FaultyFile::FaultyFile(std::unique_ptr<WalFile> inner,
                       const FileFaultPlan& plan)
    : inner_(std::move(inner)),
      plan_(plan),
      rng_state_(plan.seed != 0 ? plan.seed : 1) {}

double FaultyFile::NextUniform() {
  // xorshift64*, same generator family as serve::FaultyStream.
  rng_state_ ^= rng_state_ >> 12;
  rng_state_ ^= rng_state_ << 25;
  rng_state_ ^= rng_state_ >> 27;
  const uint64_t x = rng_state_ * 2685821657736338717ull;
  return static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
}

bool FaultyFile::Append(const void* data, size_t len) {
  if (plan_.fail_after_bytes != 0 &&
      bytes_written_ >= plan_.fail_after_bytes) {
    ++hard_failures_;
    error_ = "injected: fail_after_bytes reached";
    return false;
  }
  if (len > 0 && plan_.short_write_probability > 0.0 &&
      NextUniform() < plan_.short_write_probability) {
    // Persist a strict prefix, then report failure: the torn-tail shape
    // a crash mid-write() leaves behind.
    const size_t keep = static_cast<size_t>(
        NextUniform() * static_cast<double>(len));
    if (keep > 0) {
      inner_->Append(data, std::min(keep, len - 1));
      bytes_written_ += std::min(keep, len - 1);
    }
    ++short_writes_;
    error_ = "injected: short write";
    return false;
  }
  if (len > 0 && plan_.bit_flip_probability > 0.0 &&
      NextUniform() < plan_.bit_flip_probability) {
    std::string corrupted(static_cast<const char*>(data), len);
    const size_t at = static_cast<size_t>(
        NextUniform() * static_cast<double>(len));
    corrupted[std::min(at, len - 1)] ^=
        static_cast<char>(1u << (rng_state_ & 7u));
    ++bit_flips_;
    if (!inner_->Append(corrupted.data(), corrupted.size())) {
      error_ = inner_->last_error();
      return false;
    }
    bytes_written_ += len;
    return true;
  }
  if (!inner_->Append(data, len)) {
    error_ = inner_->last_error();
    return false;
  }
  bytes_written_ += len;
  return true;
}

bool FaultyFile::Sync() {
  if (!inner_->Sync()) {
    error_ = inner_->last_error();
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Framing.

void FrameWalRecord(const std::string& payload, std::string* out) {
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32c(payload.data(), payload.size()));
  out->append(payload);
}

WalWriter::WalWriter(std::unique_ptr<WalFile> file, FsyncPolicy policy,
                     size_t batch_bytes)
    : file_(std::move(file)),
      policy_(policy),
      batch_bytes_(batch_bytes > 0 ? batch_bytes : 1) {}

bool WalWriter::AppendRecord(const std::string& payload) {
  if (payload.size() > kMaxWalRecordBytes) {
    error_ = "record too large";
    return false;
  }
  std::string frame;
  frame.reserve(kWalHeaderBytes + payload.size());
  FrameWalRecord(payload, &frame);
  if (!file_->Append(frame.data(), frame.size())) {
    error_ = file_->last_error();
    return false;
  }
  ++appends_;
  bytes_ += frame.size();
  unsynced_bytes_ += frame.size();
  const bool want_sync =
      policy_ == FsyncPolicy::kAlways ||
      (policy_ == FsyncPolicy::kBatched && unsynced_bytes_ >= batch_bytes_);
  if (want_sync && !Sync()) return false;
  return true;
}

bool WalWriter::Sync() {
  if (unsynced_bytes_ == 0) return true;
  if (!file_->Sync()) {
    error_ = file_->last_error();
    return false;
  }
  ++syncs_;
  unsynced_bytes_ = 0;
  return true;
}

WalReadResult ReadWalRecords(const std::string& path) {
  WalReadResult result;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    // A missing log is an empty log (first boot, or rotated away).
    return result;
  }
  std::string bytes;
  char buf[64 * 1024];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, got);
  }
  std::fclose(f);

  size_t pos = 0;
  while (pos < bytes.size()) {
    const size_t remaining = bytes.size() - pos;
    if (remaining < kWalHeaderBytes) {
      result.torn_tail = true;
      result.detail = "torn tail: partial frame header";
      break;
    }
    ByteReader header(bytes.data() + pos, kWalHeaderBytes);
    uint32_t len = 0;
    uint32_t crc = 0;
    header.U32(&len);
    header.U32(&crc);
    if (len > kMaxWalRecordBytes) {
      result.ok = false;
      result.detail = "garbage frame header: implausible length";
      break;
    }
    if (remaining - kWalHeaderBytes < len) {
      result.torn_tail = true;
      result.detail = "torn tail: frame payload runs past EOF";
      break;
    }
    const char* payload = bytes.data() + pos + kWalHeaderBytes;
    if (Crc32c(payload, len) != crc) {
      if (remaining == kWalHeaderBytes + len) {
        // The damaged frame is the very last thing in the file: the
        // shape a crash mid-append leaves. Truncating it loses nothing
        // that was ever durably acknowledged.
        result.torn_tail = true;
        result.detail = "torn tail: checksum mismatch on final frame";
      } else {
        // Damage with more data behind it is corruption, not a crash
        // artifact; silently skipping could serve wrong history.
        result.ok = false;
        result.detail = "checksum mismatch mid-log";
      }
      break;
    }
    result.records.emplace_back(payload, len);
    pos += kWalHeaderBytes + len;
    result.valid_bytes = pos;
  }
  return result;
}

}  // namespace toprr
