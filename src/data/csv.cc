#include "data/csv.h"

#include <cstdlib>
#include <fstream>

#include "common/logging.h"
#include "common/strings.h"

namespace toprr {

std::optional<Dataset> ReadCsv(const std::string& path,
                               const CsvReadOptions& options) {
  std::ifstream in(path);
  if (!in) {
    LOG(ERROR) << "cannot open CSV file: " << path;
    return std::nullopt;
  }
  Dataset ds;
  std::string line;
  size_t line_no = 0;
  bool skipped_header = !options.has_header;
  while (std::getline(in, line)) {
    ++line_no;
    if (!skipped_header) {
      skipped_header = true;
      continue;
    }
    const std::string trimmed = Trim(line);
    if (trimmed.empty()) continue;
    const std::vector<std::string> cells = Split(trimmed, options.separator);
    std::vector<size_t> take = options.columns;
    if (take.empty()) {
      for (size_t c = 0; c < cells.size(); ++c) take.push_back(c);
    }
    Vec row(take.size());
    for (size_t i = 0; i < take.size(); ++i) {
      if (take[i] >= cells.size()) {
        LOG(ERROR) << path << ":" << line_no << ": missing column "
                   << take[i];
        return std::nullopt;
      }
      const std::string cell = Trim(cells[take[i]]);
      char* end = nullptr;
      row[i] = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || *end != '\0') {
        LOG(ERROR) << path << ":" << line_no << ": non-numeric cell '"
                   << cell << "'";
        return std::nullopt;
      }
    }
    ds.Append(row);
  }
  return ds;
}

bool WriteCsv(const std::string& path, const Dataset& dataset,
              const std::vector<std::string>& header) {
  std::ofstream out(path);
  if (!out) {
    LOG(ERROR) << "cannot write CSV file: " << path;
    return false;
  }
  if (!header.empty()) {
    CHECK_EQ(header.size(), dataset.dim());
    out << Join(header, ",") << "\n";
  }
  out.precision(10);
  for (size_t i = 0; i < dataset.size(); ++i) {
    for (size_t j = 0; j < dataset.dim(); ++j) {
      if (j > 0) out << ",";
      out << dataset.At(i, j);
    }
    out << "\n";
  }
  return out.good();
}

}  // namespace toprr
