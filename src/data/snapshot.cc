#include "data/snapshot.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/check.h"

namespace toprr {
namespace {

constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t MixU64(uint64_t h, uint64_t value) {
  return Fnv1a64(&value, sizeof(value), h);
}

uint64_t MixRow(uint64_t h, const double* row, size_t d) {
  return Fnv1a64(row, d * sizeof(double), h);
}

}  // namespace

uint64_t Fnv1a64(const void* bytes, size_t len, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(bytes);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<uint64_t>(p[i]);
    h *= kFnvPrime;
  }
  return h;
}

uint64_t DatasetContentHash(const Dataset& data) {
  uint64_t h = MixU64(14695981039346656037ull,
                      static_cast<uint64_t>(data.size()));
  h = MixU64(h, static_cast<uint64_t>(data.dim()));
  if (!data.empty()) {
    h = Fnv1a64(data.RawValues(),
                data.size() * data.dim() * sizeof(double), h);
  }
  return h;
}

SnapshotPtr DatasetSnapshot::BuildRoot(size_t n, size_t d, RowAtFn row_at,
                                       const void* source) {
  auto snapshot = std::shared_ptr<DatasetSnapshot>(new DatasetSnapshot());
  snapshot->rows_ = n;
  snapshot->dim_ = d;
  snapshot->live_.assign(n, 1);
  snapshot->live_ids_.resize(n);
  uint64_t h = MixU64(14695981039346656037ull, static_cast<uint64_t>(n));
  h = MixU64(h, static_cast<uint64_t>(d));
  std::shared_ptr<std::vector<double>> open;
  for (size_t i = 0; i < n; ++i) {
    snapshot->live_ids_[i] = static_cast<int>(i);
    if ((i & (DatasetSnapshot::kChunkRows - 1)) == 0) {
      open = std::make_shared<std::vector<double>>();
      open->reserve(
          std::min(DatasetSnapshot::kChunkRows, n - i) * d);
      snapshot->chunks_.push_back(open);
    }
    const double* row = row_at(source, i);
    open->insert(open->end(), row, row + d);
    h = MixRow(h, row, d);
  }
  snapshot->chunk_bases_.reserve(snapshot->chunks_.size());
  for (const auto& chunk : snapshot->chunks_) {
    snapshot->chunk_bases_.push_back(chunk->data());
  }
  snapshot->id_ = h;
  return snapshot;
}

namespace {

const double* DatasetRowAt(const void* source, size_t i) {
  return static_cast<const Dataset*>(source)->Row(i);
}

const double* VecRowAt(const void* source, size_t i) {
  return (*static_cast<const std::vector<Vec>*>(source))[i].data();
}

}  // namespace

SnapshotPtr DatasetSnapshot::Restore(
    std::vector<std::shared_ptr<const std::vector<double>>> chunks,
    std::vector<uint8_t> live, size_t rows, size_t dim, uint64_t id,
    uint64_t seq, uint64_t parent_id) {
  if (dim == 0 && rows != 0) return nullptr;
  if (live.size() != rows) return nullptr;
  const size_t want_chunks =
      (rows + DatasetSnapshot::kChunkRows - 1) >> DatasetSnapshot::kChunkShift;
  if (chunks.size() != want_chunks) return nullptr;
  for (size_t c = 0; c < chunks.size(); ++c) {
    if (chunks[c] == nullptr) return nullptr;
    const size_t chunk_rows =
        c + 1 < chunks.size()
            ? DatasetSnapshot::kChunkRows
            : rows - c * DatasetSnapshot::kChunkRows;
    if (chunks[c]->size() != chunk_rows * dim) return nullptr;
  }
  for (const uint8_t bit : live) {
    if (bit > 1) return nullptr;
  }
  auto snapshot = std::shared_ptr<DatasetSnapshot>(new DatasetSnapshot());
  snapshot->chunks_ = std::move(chunks);
  snapshot->chunk_bases_.reserve(snapshot->chunks_.size());
  for (const auto& chunk : snapshot->chunks_) {
    snapshot->chunk_bases_.push_back(chunk->data());
  }
  snapshot->live_ = std::move(live);
  snapshot->rows_ = rows;
  snapshot->dim_ = dim;
  snapshot->id_ = id;
  snapshot->seq_ = seq;
  snapshot->parent_id_ = parent_id;
  for (size_t row = 0; row < rows; ++row) {
    if (snapshot->live_[row] != 0) {
      snapshot->live_ids_.push_back(static_cast<int>(row));
    }
  }
  return snapshot;
}

SnapshotPtr DatasetSnapshot::FromDataset(const Dataset& data) {
  return BuildRoot(data.size(), data.dim(), &DatasetRowAt, &data);
}

SnapshotPtr DatasetSnapshot::FromRows(const std::vector<Vec>& rows) {
  const size_t d = rows.empty() ? 0 : rows.front().dim();
  for (const Vec& row : rows) CHECK_EQ(row.dim(), d);
  return BuildRoot(rows.size(), d, &VecRowAt, &rows);
}

int DatasetBuilder::Append(const Vec& row) {
  if (dim_ == 0) dim_ = row.dim();
  CHECK_EQ(row.dim(), dim_);
  rows_.push_back(row);
  return static_cast<int>(rows_.size()) - 1;
}

SnapshotPtr DatasetBuilder::Build() {
  SnapshotPtr snapshot = DatasetSnapshot::FromRows(rows_);
  rows_.clear();
  return snapshot;
}

MutableCatalog::MutableCatalog(SnapshotPtr initial)
    : current_(std::move(initial)) {
  CHECK(current_ != nullptr);
}

MutableCatalog::MutableCatalog(const Dataset& data)
    : current_(DatasetSnapshot::FromDataset(data)) {}

SnapshotPtr MutableCatalog::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t MutableCatalog::CurrentId() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_->id();
}

int MutableCatalog::StageInsert(const Vec& row) {
  std::lock_guard<std::mutex> lock(mu_);
  CHECK_GT(row.dim(), 0u);
  // The parent dim governs; an empty root adopts the first staged row's.
  size_t d = current_->dim();
  if (d == 0 && !staged_alive_.empty()) {
    d = staged_values_.size() / staged_alive_.size();
  }
  if (d != 0) {
    CHECK_EQ(row.dim(), d);
  }
  staged_values_.insert(staged_values_.end(), row.begin(), row.end());
  staged_alive_.push_back(1);
  return static_cast<int>(current_->rows() + staged_alive_.size()) - 1;
}

bool MutableCatalog::StageDelete(int row_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (row_id < 0) return false;
  const size_t id = static_cast<size_t>(row_id);
  if (id >= current_->rows()) {
    // A staged insert of this cycle: un-stage it (the row is materialized
    // as a tombstone at Publish so later staged ids keep their promise).
    const size_t idx = id - current_->rows();
    if (idx >= staged_alive_.size() || staged_alive_[idx] == 0) return false;
    staged_alive_[idx] = 0;
    return true;
  }
  if (!current_->IsLive(id)) return false;
  for (const int staged : staged_deleted_) {
    if (staged == row_id) return false;  // already staged
  }
  staged_deleted_.push_back(row_id);
  return true;
}

size_t MutableCatalog::staged_inserts() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t alive = 0;
  for (const uint8_t a : staged_alive_) alive += a;
  return alive;
}

size_t MutableCatalog::staged_deletes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return staged_deleted_.size();
}

void MutableCatalog::DiscardStaged() {
  std::lock_guard<std::mutex> lock(mu_);
  staged_values_.clear();
  staged_alive_.clear();
  staged_deleted_.clear();
}

bool MutableCatalog::PredictPublish(uint64_t* child_id,
                                    uint64_t* child_seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (staged_alive_.empty() && staged_deleted_.empty()) return false;
  const DatasetSnapshot& parent = *current_;
  const size_t d = parent.dim() != 0
                       ? parent.dim()
                       : staged_values_.size() / staged_alive_.size();
  const size_t old_rows = parent.rows();

  // Mirrors Publish()'s chain mix exactly: sorted deletes, then the
  // alive staged ids with their row bytes, under the same section
  // markers. Any drift between the two is a logic bug the durable
  // publish path turns into a typed error (and a test failure).
  std::vector<int> deleted(staged_deleted_);
  std::sort(deleted.begin(), deleted.end());
  uint64_t h = MixU64(parent.id(), 0x64656c65ull);  // "dele"
  for (const int id : deleted) {
    h = MixU64(h, static_cast<uint64_t>(id));
  }
  h = MixU64(h, 0x696e7372ull);  // "insr"
  for (size_t idx = 0; idx < staged_alive_.size(); ++idx) {
    if (staged_alive_[idx] == 0) continue;
    h = MixU64(h, static_cast<uint64_t>(old_rows + idx));
    h = MixRow(h, staged_values_.data() + idx * d, d);
  }
  *child_id = h;
  *child_seq = parent.seq() + 1;
  return true;
}

SnapshotPtr MutableCatalog::Publish() {
  std::lock_guard<std::mutex> lock(mu_);
  if (staged_alive_.empty() && staged_deleted_.empty()) return current_;

  const DatasetSnapshot& parent = *current_;
  const size_t d = parent.dim() != 0
                       ? parent.dim()
                       : staged_values_.size() / staged_alive_.size();
  const size_t old_rows = parent.rows();
  const size_t new_rows = old_rows + staged_alive_.size();

  auto snapshot = std::shared_ptr<DatasetSnapshot>(new DatasetSnapshot());
  snapshot->dim_ = d;
  snapshot->rows_ = new_rows;
  snapshot->parent_id_ = parent.id();
  snapshot->seq_ = parent.seq() + 1;

  // Copy-on-write chunk table: every full parent chunk is shared by
  // pointer; only the partial tail chunk (when inserts extend it) is
  // cloned. Staged rows -- including ones deleted again before Publish,
  // which materialize as tombstones so every promised id stays physical
  // -- fill the tail and fresh chunks.
  snapshot->chunks_ = parent.chunks_;
  std::vector<double>* open = nullptr;  // the chunk currently being filled
  for (size_t idx = 0; idx < staged_alive_.size(); ++idx) {
    const size_t row = old_rows + idx;
    const size_t within = row & (DatasetSnapshot::kChunkRows - 1);
    if (within == 0) {
      auto chunk = std::make_shared<std::vector<double>>();
      chunk->reserve(
          std::min(DatasetSnapshot::kChunkRows, new_rows - row) * d);
      open = chunk.get();
      snapshot->chunks_.push_back(std::move(chunk));
    } else if (open == nullptr) {
      // First insert lands mid-chunk: clone the parent's tail chunk.
      auto clone = std::make_shared<std::vector<double>>(
          *snapshot->chunks_.back());
      open = clone.get();
      snapshot->chunks_.back() = std::move(clone);
    }
    const double* values = staged_values_.data() + idx * d;
    open->insert(open->end(), values, values + d);
  }
  snapshot->chunk_bases_.reserve(snapshot->chunks_.size());
  for (const auto& chunk : snapshot->chunks_) {
    snapshot->chunk_bases_.push_back(chunk->data());
  }

  // Tombstone bitmap and delta.
  snapshot->live_ = parent.live_;
  snapshot->live_.resize(new_rows);
  for (size_t idx = 0; idx < staged_alive_.size(); ++idx) {
    snapshot->live_[old_rows + idx] = staged_alive_[idx];
    if (staged_alive_[idx] != 0) {
      snapshot->delta_.inserted.push_back(
          static_cast<int>(old_rows + idx));
    }
  }
  std::sort(staged_deleted_.begin(), staged_deleted_.end());
  for (const int id : staged_deleted_) {
    snapshot->live_[static_cast<size_t>(id)] = 0;
    snapshot->delta_.deleted.push_back(id);
  }
  snapshot->live_ids_.reserve(parent.live_ids_.size() +
                              snapshot->delta_.inserted.size());
  for (size_t row = 0; row < new_rows; ++row) {
    if (snapshot->live_[row] != 0) {
      snapshot->live_ids_.push_back(static_cast<int>(row));
    }
  }

  // O(delta) content id: parent id mixed with the delta's ids and the
  // inserted rows' bytes (section markers keep insert/delete ambiguity
  // out of the stream).
  uint64_t h = MixU64(parent.id(), 0x64656c65ull);  // "dele"
  for (const int id : snapshot->delta_.deleted) {
    h = MixU64(h, static_cast<uint64_t>(id));
  }
  h = MixU64(h, 0x696e7372ull);  // "insr"
  for (const int id : snapshot->delta_.inserted) {
    h = MixU64(h, static_cast<uint64_t>(id));
    h = MixRow(h, snapshot->Row(static_cast<size_t>(id)), d);
  }
  snapshot->id_ = h;

  staged_values_.clear();
  staged_alive_.clear();
  staged_deleted_.clear();
  current_ = snapshot;
  return current_;
}

}  // namespace toprr
