// Append-only write-ahead log for the mutable catalog -- the framing,
// checksumming, and fsync-policy half of the durability story (the
// checkpoint/replay half lives in data/recovery.h).
//
// Every record on disk is a little-endian frame
//
//   [u32 payload_len][u32 crc32c(payload)][payload bytes]
//
// written in one Append() so a crash can only tear the tail. Readers
// (ReadWalRecords) validate every frame: a frame that runs past EOF, or
// whose checksum mismatches on the final frame, is a torn tail and is
// truncated away (the prefix before it stays valid); a checksum or
// header failure with MORE valid-looking bytes after it cannot be a
// crash artifact and is reported as corruption -- a typed error, never
// an abort, so adversarial inputs cannot take the process down.
//
// WalWriter owns the append path behind a WalFile byte sink. The
// default sink is a POSIX fd (PosixWalFile); tests wrap it in
// FaultyFile, the file-system analog of serve::FaultyStream, to inject
// short writes, bit flips, and hard failures with seeded randomness.
//
// Fsync policy trades durability for publish latency:
//   kAlways  -- fsync before every Append() returns (acked == durable).
//   kBatched -- group commit: fsync once >= batch_bytes are unsynced.
//   kOff     -- leave flushing to the OS (crash loses the page cache).
#ifndef TOPRR_DATA_WAL_H_
#define TOPRR_DATA_WAL_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace toprr {

/// Software CRC32C (Castagnoli, the iSCSI/ext4 polynomial), table-driven.
/// Seedable for incremental use; Crc32c("123456789") == 0xE3069283.
uint32_t Crc32c(const void* bytes, size_t len, uint32_t seed = 0);

enum class FsyncPolicy : int { kOff = 0, kBatched = 1, kAlways = 2 };

/// Parses "off"/"batched"/"always" (case-insensitive).
bool ParseFsyncPolicy(const std::string& text, FsyncPolicy* policy);
const char* FsyncPolicyName(FsyncPolicy policy);

// ---------------------------------------------------------------------------
// Little-endian byte encoding shared by WAL records and checkpoint files.
// (The serve layer has its own wire codec; the data layer must not depend
// on serve, so these few helpers are duplicated deliberately.)

inline void PutU32(std::string* out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(b, 4);
}

inline void PutU64(std::string* out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(b, 8);
}

inline void PutBytes(std::string* out, const void* data, size_t len) {
  out->append(static_cast<const char*>(data), len);
}

/// Bounds-checked little-endian cursor over one record payload. Every
/// getter returns false once the payload is exhausted or malformed, so
/// decoding hostile bytes degrades to a typed decode failure.
class ByteReader {
 public:
  ByteReader(const void* data, size_t len)
      : p_(static_cast<const unsigned char*>(data)), len_(len) {}

  bool U32(uint32_t* v) {
    if (len_ - pos_ < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(p_[pos_ + static_cast<size_t>(i)])
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool U64(uint64_t* v) {
    if (len_ - pos_ < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(p_[pos_ + static_cast<size_t>(i)])
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool Bytes(void* out, size_t len) {
    if (len_ - pos_ < len) return false;
    std::memcpy(out, p_ + pos_, len);
    pos_ += len;
    return true;
  }

  size_t remaining() const { return len_ - pos_; }
  bool Done() const { return pos_ == len_; }

 private:
  const unsigned char* p_;
  size_t len_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Byte sinks.

/// Minimal appendable-file interface the WAL writes through. Append()
/// must write all of `len` or return false; partial progress after a
/// failure leaves the file with a torn tail, which is exactly what the
/// reader's truncation path recovers from.
class WalFile {
 public:
  virtual ~WalFile() = default;
  virtual bool Append(const void* data, size_t len) = 0;
  virtual bool Sync() = 0;
  virtual const std::string& last_error() const = 0;
};

/// O_APPEND POSIX file. Append loops over short write()s; Sync is fsync.
class PosixWalFile : public WalFile {
 public:
  /// Opens (creating if absent) for append. Null + *error on failure.
  static std::unique_ptr<PosixWalFile> OpenAppend(const std::string& path,
                                                  std::string* error);
  ~PosixWalFile() override;

  bool Append(const void* data, size_t len) override;
  bool Sync() override;
  const std::string& last_error() const override { return error_; }

 private:
  explicit PosixWalFile(int fd) : fd_(fd) {}
  int fd_;
  std::string error_;
};

/// Seeded fault plan for FaultyFile (the file-system analog of
/// serve::FaultPlan): probabilities are per Append() call.
struct FileFaultPlan {
  uint64_t seed = 1;
  double short_write_probability = 0.0;  // write a prefix, then fail
  double bit_flip_probability = 0.0;     // corrupt one byte, then succeed
  uint64_t fail_after_bytes = 0;         // hard-fail once N bytes written
};

/// Decorator injecting write-side faults into any WalFile. Telemetry
/// counters let tests assert the plan actually fired.
class FaultyFile : public WalFile {
 public:
  FaultyFile(std::unique_ptr<WalFile> inner, const FileFaultPlan& plan);

  bool Append(const void* data, size_t len) override;
  bool Sync() override;
  const std::string& last_error() const override { return error_; }

  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t short_writes() const { return short_writes_; }
  uint64_t bit_flips() const { return bit_flips_; }
  uint64_t hard_failures() const { return hard_failures_; }

 private:
  double NextUniform();

  std::unique_ptr<WalFile> inner_;
  FileFaultPlan plan_;
  uint64_t rng_state_;
  std::string error_;
  uint64_t bytes_written_ = 0;
  uint64_t short_writes_ = 0;
  uint64_t bit_flips_ = 0;
  uint64_t hard_failures_ = 0;
};

// ---------------------------------------------------------------------------
// Record framing.

/// Frame header: u32 payload length + u32 CRC32C of the payload.
constexpr size_t kWalHeaderBytes = 8;
/// Upper bound on one payload; larger declared lengths are garbage
/// headers (a hostile-length guard, like serve's frame cap).
constexpr uint32_t kMaxWalRecordBytes = 1u << 30;

/// Appends the framed record for `payload` to `out`.
void FrameWalRecord(const std::string& payload, std::string* out);

/// Append path over a WalFile: frames each record and applies the fsync
/// policy. Not thread-safe; callers serialize (the catalog publish lock).
class WalWriter {
 public:
  WalWriter(std::unique_ptr<WalFile> file, FsyncPolicy policy,
            size_t batch_bytes = size_t{1} << 20);

  /// Frames + appends + (per policy) syncs. False on any failure, after
  /// which the log must be treated as torn at this record.
  bool AppendRecord(const std::string& payload);

  /// Forces an fsync regardless of policy (checkpoint barriers).
  bool Sync();

  uint64_t appends() const { return appends_; }
  uint64_t bytes() const { return bytes_; }
  uint64_t syncs() const { return syncs_; }
  const std::string& last_error() const { return error_; }

 private:
  std::unique_ptr<WalFile> file_;
  FsyncPolicy policy_;
  size_t batch_bytes_;
  size_t unsynced_bytes_ = 0;
  uint64_t appends_ = 0;
  uint64_t bytes_ = 0;
  uint64_t syncs_ = 0;
  std::string error_;
};

/// Outcome of scanning one log file. `records` holds every payload of
/// the longest valid prefix; what follows that prefix decides the rest:
///   * nothing            -- a clean log (ok, no flags),
///   * a torn tail        -- ok, torn_tail = true, the tail is ignored
///                           (valid_bytes says where to truncate),
///   * corruption         -- ok = false (typed rejection): an invalid
///                           frame with further plausible frames behind
///                           it means the file was damaged, not torn,
///                           and silently dropping the suffix could
///                           resurrect deleted data.
struct WalReadResult {
  bool ok = true;
  bool torn_tail = false;
  std::vector<std::string> records;
  uint64_t valid_bytes = 0;  // file offset just past the last valid frame
  std::string detail;        // human-readable reason for torn/corrupt
};

/// Scans the framed records of the file at `path`. A missing file reads
/// as an empty, clean log. Never aborts on any input.
WalReadResult ReadWalRecords(const std::string& path);

}  // namespace toprr

#endif  // TOPRR_DATA_WAL_H_
