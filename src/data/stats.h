// Descriptive statistics over datasets: per-attribute moments and the
// pairwise Pearson correlation structure. Used to validate that generated
// workloads match their intended COR/IND/ANTI shape (paper Sec. 6.1) and
// to characterize user-supplied CSV catalogs in the CLI.
#ifndef TOPRR_DATA_STATS_H_
#define TOPRR_DATA_STATS_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "geom/linalg.h"

namespace toprr {

struct ColumnStats {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};

/// Per-column summary statistics.
std::vector<ColumnStats> ComputeColumnStats(const Dataset& data);

/// The d x d Pearson correlation matrix. Constant columns yield 0
/// correlation with everything (and 1 on the diagonal).
Matrix CorrelationMatrix(const Dataset& data);

/// Mean of the off-diagonal correlation entries: > 0 for correlated
/// datasets, < 0 for anticorrelated, ~0 for independent.
double MeanPairwiseCorrelation(const Dataset& data);

/// Human-readable one-dataset report for CLI / example output.
std::string DescribeDataset(const Dataset& data);

}  // namespace toprr

#endif  // TOPRR_DATA_STATS_H_
