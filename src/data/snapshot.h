// Immutable, refcounted dataset snapshots with a staging writer -- the
// live-catalog half of the serving story (ROADMAP "snapshot-versioned
// dataset"; Polynesia in PAPERS.md frames the same shape: a transactional
// update stream co-existing with analytical serving).
//
// Ownership model:
//  * DatasetSnapshot is a frozen, shared_ptr-held row-major table. Rows
//    live in fixed-size value chunks held by shared_ptr, so publishing a
//    new snapshot shares every unchanged chunk with its parent
//    (copy-on-write: an insert copies at most the partial tail chunk).
//  * Row ids are physical and stable forever: a delete only flips a
//    tombstone bit, it never renumbers. Cached skybands, region-cache
//    candidate lists, and solver results therefore stay id-compatible
//    across publishes; readers enumerate live rows via live_ids().
//  * MutableCatalog is the single writer: it stages inserts/deletes and
//    Publish()es a new snapshot. Readers (ToprrEngine solves) pin the
//    snapshot they started on via shared_ptr and never observe a write.
//
// Every snapshot carries a 64-bit FNV-1a content id: root snapshots hash
// the full table, published snapshots mix the parent id with the delta
// (O(delta) per publish). The id keys the engine's versioned skyband
// cache and the region-cache signature, replacing the old debug-only
// double fingerprint.
#ifndef TOPRR_DATA_SNAPSHOT_H_
#define TOPRR_DATA_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "data/dataset.h"
#include "geom/vec.h"

namespace toprr {

class DatasetSnapshot;
using SnapshotPtr = std::shared_ptr<const DatasetSnapshot>;

/// 64-bit FNV-1a over a byte range, seedable for incremental mixing.
uint64_t Fnv1a64(const void* bytes, size_t len,
                 uint64_t seed = 14695981039346656037ull);

/// Content id of a plain Dataset: dims, then every row's bytes. Equal
/// tables hash equal; the engine's debug mutation check compares this.
uint64_t DatasetContentHash(const Dataset& data);

/// The row-id delta between a snapshot and its parent. Ids are physical:
/// `inserted` rows did not exist in the parent, `deleted` rows were live
/// in the parent and are tombstoned here. Inserts that were deleted again
/// before Publish() net out and appear in neither list.
struct SnapshotDelta {
  std::vector<int> inserted;  // ascending
  std::vector<int> deleted;   // ascending
  bool empty() const { return inserted.empty() && deleted.empty(); }
};

/// One frozen version of the catalog. Immutable after construction;
/// always held by shared_ptr (SnapshotPtr) so every reader -- an
/// in-flight solve, a cached skyband, a pinned region-cache entry --
/// keeps its version alive for exactly as long as it needs it.
class DatasetSnapshot {
 public:
  /// Rows per value chunk (power of two). 1024 rows keeps the COW unit
  /// small (32 KiB at d = 4) while the chunk-base indirection stays out
  /// of the way of the solvers' row scans.
  static constexpr unsigned kChunkShift = 10;
  static constexpr size_t kChunkRows = size_t{1} << kChunkShift;

  /// Roots: snapshot an existing contiguous Dataset (copies once) or an
  /// explicit row list. parent_id() is 0 and delta() is empty.
  static SnapshotPtr FromDataset(const Dataset& data);
  static SnapshotPtr FromRows(const std::vector<Vec>& rows);

  /// Rehydrates a snapshot from checkpointed state (data/recovery.cc):
  /// value chunks, tombstone bitmap, and the recorded id/seq/parent --
  /// recovery trusts the per-record checksums, not a re-hash, because a
  /// published snapshot's id is a chain mix that cannot be recomputed
  /// from its bytes alone. Returns null (never aborts) when the shapes
  /// are inconsistent: wrong chunk count, wrong chunk sizes, or a
  /// bitmap that does not cover `rows`. delta() is empty, like a root.
  static SnapshotPtr Restore(
      std::vector<std::shared_ptr<const std::vector<double>>> chunks,
      std::vector<uint8_t> live, size_t rows, size_t dim, uint64_t id,
      uint64_t seq, uint64_t parent_id);

  /// Physical rows, including tombstones. Valid row ids are [0, rows()).
  size_t rows() const { return rows_; }
  size_t dim() const { return dim_; }
  /// Live (non-tombstoned) rows; the dataset size a query observes.
  size_t live_rows() const { return live_ids_.size(); }
  bool IsLive(size_t row) const { return live_[row] != 0; }
  /// Ascending ids of all live rows.
  const std::vector<int>& live_ids() const { return live_ids_; }

  const double* Row(size_t row) const {
    DCHECK_LT(row, rows_);
    return chunk_bases_[row >> kChunkShift] +
           (row & (kChunkRows - 1)) * dim_;
  }

  /// The solver-facing view (physical rows; see DatasetView's tombstone
  /// note). Valid while this snapshot is alive.
  DatasetView View() const {
    return DatasetView(rows_, dim_, chunk_bases_.data(), kChunkShift);
  }

  /// 64-bit FNV-1a content id; equal only when the live table is equal
  /// (modulo hash collisions). Keys the versioned skyband cache and the
  /// region-cache signature.
  uint64_t id() const { return id_; }
  /// Monotone publish sequence number: 1 for roots, parent + 1 for every
  /// published successor. Unlike id() (a content hash with no order),
  /// seq() totally orders a snapshot chain, which is what the serving
  /// protocol's read-your-writes contract compares (a client that saw a
  /// publish ack with seq S is promised every later response has
  /// seq >= S).
  uint64_t seq() const { return seq_; }
  /// The parent snapshot's id (0 for roots). With delta(), lets the
  /// engine maintain caches incrementally instead of rebuilding.
  uint64_t parent_id() const { return parent_id_; }
  const SnapshotDelta& delta() const { return delta_; }

  /// COW introspection for tests: the shared chunk holding `row`.
  std::shared_ptr<const std::vector<double>> ChunkForRow(size_t row) const {
    DCHECK_LT(row, rows_);
    return chunks_[row >> kChunkShift];
  }

 private:
  friend class MutableCatalog;
  DatasetSnapshot() = default;

  /// Shared root construction: n rows of d doubles through `row_at`.
  using RowAtFn = const double* (*)(const void*, size_t);
  static SnapshotPtr BuildRoot(size_t n, size_t d, RowAtFn row_at,
                               const void* source);

  std::vector<std::shared_ptr<const std::vector<double>>> chunks_;
  std::vector<const double*> chunk_bases_;  // chunks_[c]->data()
  std::vector<uint8_t> live_;               // tombstone bitmap, 1 = live
  std::vector<int> live_ids_;               // ascending
  size_t rows_ = 0;
  size_t dim_ = 0;
  uint64_t id_ = 0;
  uint64_t seq_ = 1;
  uint64_t parent_id_ = 0;
  SnapshotDelta delta_;
};

/// Builds a root snapshot row by row -- the from-scratch construction
/// path (file loaders, generators). One-shot: Build() seals the rows
/// into a snapshot; the builder is empty again afterwards.
class DatasetBuilder {
 public:
  explicit DatasetBuilder(size_t dim = 0) : dim_(dim) {}

  /// Appends a row (dimension must match; the first row sets it when the
  /// builder was constructed with dim = 0). Returns the row id.
  int Append(const Vec& row);

  size_t rows() const { return rows_.size(); }

  SnapshotPtr Build();

 private:
  size_t dim_;
  std::vector<Vec> rows_;
};

/// The single-writer staging area over a snapshot chain. Thread-safe:
/// Current() may be called from any thread (readers pin their version);
/// staging and Publish() serialize internally, so one logical writer may
/// be multiple threads.
class MutableCatalog {
 public:
  explicit MutableCatalog(SnapshotPtr initial);
  /// Convenience root: snapshots `data` (copies once).
  explicit MutableCatalog(const Dataset& data);

  /// The latest published snapshot. Pin it (keep the shared_ptr) for the
  /// duration of whatever you compute from it.
  SnapshotPtr Current() const;
  uint64_t CurrentId() const;

  /// Stages a row insert; returns the id the row will have once
  /// published. Ids are assigned past the current snapshot's physical
  /// rows, so they are stable across the publish.
  int StageInsert(const Vec& row);

  /// Stages a delete of a live row (or un-stages a staged insert).
  /// Returns false when `row_id` is unknown or already dead.
  bool StageDelete(int row_id);

  size_t staged_inserts() const;
  size_t staged_deletes() const;

  /// The id and seq the snapshot produced by Publish() WILL carry,
  /// computed from the staged state without publishing. The WAL append
  /// path (data/recovery.cc) logs this id BEFORE mutating memory, so a
  /// failed append leaves the catalog untouched and replay can verify
  /// it re-derived the recorded id bit-for-bit. Returns false when
  /// nothing is staged (Publish would be a no-op).
  bool PredictPublish(uint64_t* child_id, uint64_t* child_seq) const;

  /// Applies the staged delta as a new immutable snapshot, shares every
  /// untouched value chunk with the parent, clears the staging area, and
  /// returns the new current snapshot. With nothing staged this is a
  /// no-op returning the unchanged current snapshot.
  SnapshotPtr Publish();

  /// Drops every staged (unpublished) insert and delete. The durable
  /// publish path (data/recovery.cc) rolls staging back with this when
  /// the WAL append fails, so a failed publish leaves no trace.
  void DiscardStaged();

 private:
  mutable std::mutex mu_;
  SnapshotPtr current_;
  std::vector<double> staged_values_;    // staged rows, row-major
  std::vector<uint8_t> staged_alive_;    // staged row still wanted?
  std::vector<int> staged_deleted_;      // parent-live ids to tombstone
};

}  // namespace toprr

#endif  // TOPRR_DATA_SNAPSHOT_H_
