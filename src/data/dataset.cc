#include "data/dataset.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace toprr {

Dataset Dataset::FromRows(const std::vector<Vec>& rows) {
  Dataset ds;
  for (const Vec& r : rows) ds.Append(r);
  return ds;
}

Vec Dataset::Option(size_t row) const {
  DCHECK_LT(row, n_);
  Vec out(d_);
  const double* p = Row(row);
  for (size_t j = 0; j < d_; ++j) out[j] = p[j];
  return out;
}

void Dataset::Append(const Vec& option) {
  if (n_ == 0 && d_ == 0) {
    d_ = option.dim();
  }
  CHECK_EQ(option.dim(), d_);
  values_.insert(values_.end(), option.begin(), option.end());
  ++n_;
}

std::vector<std::pair<double, double>> Dataset::NormalizeUnit() {
  std::vector<std::pair<double, double>> ranges(d_);
  for (size_t j = 0; j < d_; ++j) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n_; ++i) {
      lo = std::min(lo, At(i, j));
      hi = std::max(hi, At(i, j));
    }
    ranges[j] = {lo, hi};
    const double span = hi - lo;
    for (size_t i = 0; i < n_; ++i) {
      At(i, j) = span > 0.0 ? (At(i, j) - lo) / span : 0.5;
    }
  }
  return ranges;
}

double Dataset::Score(size_t row, const Vec& w) const {
  DCHECK_EQ(w.dim(), d_);
  const double* p = Row(row);
  double acc = 0.0;
  for (size_t j = 0; j < d_; ++j) acc += p[j] * w[j];
  return acc;
}

std::string Dataset::DebugString(size_t max_rows) const {
  std::ostringstream out;
  out << "Dataset(n=" << n_ << ", d=" << d_ << ")\n";
  for (size_t i = 0; i < std::min(n_, max_rows); ++i) {
    out << "  " << Option(i).ToString() << "\n";
  }
  if (n_ > max_rows) out << "  ...\n";
  return out.str();
}

}  // namespace toprr
