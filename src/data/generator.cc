#include "data/generator.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace toprr {
namespace {

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

// A normal draw clamped into (0,1); redraws a few times before clamping to
// avoid probability mass piling up at the ends.
double ClampedGaussian(Rng& rng, double mean, double stddev) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    const double v = rng.Gaussian(mean, stddev);
    if (v > 0.0 && v < 1.0) return v;
  }
  return Clamp01(rng.Gaussian(mean, stddev));
}

// One COR point: all attributes close to a common "quality" level.
Vec CorrelatedPoint(Rng& rng, size_t d, double jitter) {
  const double level = ClampedGaussian(rng, 0.5, 0.18);
  Vec p(d);
  for (size_t j = 0; j < d; ++j) {
    p[j] = Clamp01(level + rng.Uniform(-jitter, jitter));
  }
  return p;
}

// One ANTI point: attributes trade off against each other; the attribute
// sum concentrates around d/2 while individual values spread widely.
Vec AnticorrelatedPoint(Rng& rng, size_t d, double jitter) {
  const double level = ClampedGaussian(rng, 0.5, 0.06);
  const double total = level * static_cast<double>(d);
  for (int attempt = 0; attempt < 64; ++attempt) {
    Vec u(d);
    double sum = 0.0;
    for (size_t j = 0; j < d; ++j) {
      u[j] = rng.Uniform() + 1e-9;
      sum += u[j];
    }
    bool ok = true;
    Vec p(d);
    for (size_t j = 0; j < d; ++j) {
      p[j] = u[j] * total / sum + rng.Uniform(-jitter, jitter);
      if (p[j] < 0.0 || p[j] > 1.0) {
        ok = false;
        break;
      }
    }
    if (ok) return p;
  }
  // Fallback after repeated rejection: clamped proportional split.
  Vec u(d);
  double sum = 0.0;
  for (size_t j = 0; j < d; ++j) {
    u[j] = rng.Uniform() + 1e-9;
    sum += u[j];
  }
  Vec p(d);
  for (size_t j = 0; j < d; ++j) p[j] = Clamp01(u[j] * total / sum);
  return p;
}

Vec IndependentPoint(Rng& rng, size_t d) {
  Vec p(d);
  for (size_t j = 0; j < d; ++j) p[j] = rng.Uniform();
  return p;
}

// Blended real-like point: mixes an IND draw with a COR or ANTI draw so
// real datasets land between the synthetic extremes (paper Table 6).
Vec BlendedPoint(Rng& rng, size_t d, Distribution flavor, double blend,
                 double jitter) {
  Vec base = IndependentPoint(rng, d);
  Vec shaped = flavor == Distribution::kCorrelated
                   ? CorrelatedPoint(rng, d, jitter)
                   : AnticorrelatedPoint(rng, d, jitter);
  Vec p(d);
  for (size_t j = 0; j < d; ++j) {
    p[j] = Clamp01((1.0 - blend) * base[j] + blend * shaped[j]);
  }
  return p;
}

size_t ScaledCount(size_t full, double scale) {
  CHECK_GT(scale, 0.0);
  CHECK_LE(scale, 1.0);
  return std::max<size_t>(64, static_cast<size_t>(full * scale));
}

}  // namespace

bool ParseDistribution(const std::string& text, Distribution* dist) {
  std::string lower(text);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "ind" || lower == "independent") {
    *dist = Distribution::kIndependent;
  } else if (lower == "cor" || lower == "correlated") {
    *dist = Distribution::kCorrelated;
  } else if (lower == "anti" || lower == "anticorrelated") {
    *dist = Distribution::kAnticorrelated;
  } else {
    return false;
  }
  return true;
}

const char* DistributionName(Distribution dist) {
  switch (dist) {
    case Distribution::kIndependent:
      return "IND";
    case Distribution::kCorrelated:
      return "COR";
    case Distribution::kAnticorrelated:
      return "ANTI";
  }
  return "?";
}

Dataset GenerateSynthetic(size_t n, size_t d, Distribution dist,
                          uint64_t seed) {
  CHECK_GE(d, 2u);
  Rng rng(seed);
  Dataset ds(n, d);
  for (size_t i = 0; i < n; ++i) {
    Vec p;
    switch (dist) {
      case Distribution::kIndependent:
        p = IndependentPoint(rng, d);
        break;
      case Distribution::kCorrelated:
        p = CorrelatedPoint(rng, d, 0.06);
        break;
      case Distribution::kAnticorrelated:
        p = AnticorrelatedPoint(rng, d, 0.12);
        break;
    }
    for (size_t j = 0; j < d; ++j) ds.At(i, j) = p[j];
  }
  return ds;
}

Dataset GenerateHotelLike(uint64_t seed, double scale) {
  const size_t n = ScaledCount(418843, scale);
  const size_t d = 4;
  Rng rng(seed);
  Dataset ds(n, d);
  for (size_t i = 0; i < n; ++i) {
    Vec p = BlendedPoint(rng, d, Distribution::kAnticorrelated, 0.45, 0.15);
    // Star rating: 5 discrete levels.
    p[0] = std::round(p[0] * 4.0) / 4.0;
    for (size_t j = 0; j < d; ++j) ds.At(i, j) = p[j];
  }
  return ds;
}

Dataset GenerateHouseLike(uint64_t seed, double scale) {
  const size_t n = ScaledCount(315265, scale);
  const size_t d = 6;
  Rng rng(seed);
  Dataset ds(n, d);
  for (size_t i = 0; i < n; ++i) {
    const Vec p =
        BlendedPoint(rng, d, Distribution::kAnticorrelated, 0.5, 0.18);
    for (size_t j = 0; j < d; ++j) ds.At(i, j) = p[j];
  }
  return ds;
}

Dataset GenerateNbaLike(uint64_t seed, double scale) {
  const size_t n = ScaledCount(21960, scale);
  const size_t d = 8;
  Rng rng(seed);
  Dataset ds(n, d);
  for (size_t i = 0; i < n; ++i) {
    const Vec p = BlendedPoint(rng, d, Distribution::kCorrelated, 0.6, 0.12);
    for (size_t j = 0; j < d; ++j) ds.At(i, j) = p[j];
  }
  return ds;
}

Dataset GenerateCnetLaptops(uint64_t seed) {
  const size_t n = 149;
  Rng rng(seed);
  Dataset ds(n, 2);
  for (size_t i = 0; i < n; ++i) {
    // Performance vs battery life trade-off with a few all-round models.
    const double performance = ClampedGaussian(rng, 0.55, 0.22);
    const double tradeoff = 1.05 - 0.8 * performance;
    const double battery = Clamp01(rng.Gaussian(tradeoff, 0.13));
    ds.At(i, 0) = performance;
    ds.At(i, 1) = battery;
  }
  ds.NormalizeUnit();
  return ds;
}

}  // namespace toprr
