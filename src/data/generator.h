// Synthetic workload generators.
//
// GenerateSynthetic implements the standard benchmark generator of
// Börzsönyi, Kossmann & Stocker (ICDE 2001) used by the paper (Sec. 6.1):
// Independent (IND), Correlated (COR) and Anticorrelated (ANTI) point
// clouds in the unit option space.
//
// The real datasets the paper evaluates (HOTEL, HOUSE, NBA, and the CNET
// laptop crawl of the case study) are not redistributable, so this module
// also provides deterministic stand-ins with the same cardinality,
// dimensionality, and correlation structure (see DESIGN.md, substitutions).
#ifndef TOPRR_DATA_GENERATOR_H_
#define TOPRR_DATA_GENERATOR_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace toprr {

enum class Distribution {
  kIndependent,
  kCorrelated,
  kAnticorrelated,
};

/// Parses "IND"/"COR"/"ANTI" (case-insensitive). Returns true on success.
bool ParseDistribution(const std::string& text, Distribution* dist);

/// Short name for report printing.
const char* DistributionName(Distribution dist);

/// Standard benchmark generator: n options, d attributes in [0,1].
Dataset GenerateSynthetic(size_t n, size_t d, Distribution dist,
                          uint64_t seed);

/// HOTEL stand-in: 418,843 x 4 (stars, price value, rooms, facilities),
/// mildly anticorrelated, first attribute quantized to 5 levels.
/// `scale` in (0,1] shrinks the cardinality proportionally (1-core runs).
Dataset GenerateHotelLike(uint64_t seed, double scale = 1.0);

/// HOUSE stand-in: 315,265 x 6 (gas, electricity, water, heating,
/// insurance, tax), mildly anticorrelated.
Dataset GenerateHouseLike(uint64_t seed, double scale = 1.0);

/// NBA stand-in: 21,960 x 8 (points, rebounds, assists, ...), fairly
/// correlated (good players are good across stats).
Dataset GenerateNbaLike(uint64_t seed, double scale = 1.0);

/// CNET laptop-ratings stand-in used by the case study (Fig. 7): 149 x 2
/// (performance, battery) with a moderate performance/battery trade-off,
/// min-max normalized to the unit square.
Dataset GenerateCnetLaptops(uint64_t seed);

}  // namespace toprr

#endif  // TOPRR_DATA_GENERATOR_H_
