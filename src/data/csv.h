// CSV import/export for option datasets, so users can run TopRR on their
// own product tables.
#ifndef TOPRR_DATA_CSV_H_
#define TOPRR_DATA_CSV_H_

#include <optional>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace toprr {

struct CsvReadOptions {
  char separator = ',';
  /// Skip the first line (column names).
  bool has_header = true;
  /// Columns to load (empty = all numeric columns).
  std::vector<size_t> columns;
};

/// Reads a numeric CSV file into a Dataset. Returns std::nullopt (and logs)
/// when the file is missing or a selected cell fails to parse.
std::optional<Dataset> ReadCsv(const std::string& path,
                               const CsvReadOptions& options = {});

/// Writes the dataset as CSV with optional header names (must match dim()).
/// Returns false on I/O failure.
bool WriteCsv(const std::string& path, const Dataset& dataset,
              const std::vector<std::string>& header = {});

}  // namespace toprr

#endif  // TOPRR_DATA_CSV_H_
