#include "data/recovery.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"

namespace toprr {
namespace {

// Record kinds (first u32 of every payload). ASCII tags so a hexdump of
// a log is self-describing.
constexpr uint32_t kPublishKind = 0x4c425550u;     // "PUBL"
constexpr uint32_t kCkptHeaderKind = 0x48504b43u;  // "CKPH"
constexpr uint32_t kCkptChunkKind = 0x43504b43u;   // "CKPC"
constexpr uint32_t kCkptLiveKind = 0x4c504b43u;    // "CKPL"
constexpr uint32_t kCkptDedupeKind = 0x44504b43u;  // "CKPD"
constexpr uint32_t kCkptFooterKind = 0x46504b43u;  // "CKPF"

constexpr uint32_t kCheckpointVersion = 1;
// Hostile-input guards: decoded counts larger than these are garbage
// regardless of what the (checksummed but possibly stale) payload says.
constexpr uint32_t kMaxDim = 4096;
constexpr uint64_t kMaxRecordRows = 1u << 22;

std::string CheckpointName(uint64_t seq) {
  char name[64];
  std::snprintf(name, sizeof(name), "checkpoint-%016" PRIx64 ".ckpt", seq);
  return name;
}

std::string WalName(uint64_t base_seq) {
  char name[64];
  std::snprintf(name, sizeof(name), "wal-%016" PRIx64 ".log", base_seq);
  return name;
}

// Parses "<prefix><16 hex digits><suffix>"; false on anything else.
bool ParseSeqName(const std::string& name, const char* prefix,
                  const char* suffix, uint64_t* seq) {
  const size_t prefix_len = std::strlen(prefix);
  const size_t suffix_len = std::strlen(suffix);
  if (name.size() != prefix_len + 16 + suffix_len) return false;
  if (name.compare(0, prefix_len, prefix) != 0) return false;
  if (name.compare(prefix_len + 16, suffix_len, suffix) != 0) return false;
  uint64_t value = 0;
  for (size_t i = prefix_len; i < prefix_len + 16; ++i) {
    const char c = name[i];
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  *seq = value;
  return true;
}

bool MakeDirs(const std::string& path, std::string* error) {
  std::string partial;
  size_t pos = 0;
  while (pos <= path.size()) {
    const size_t slash = path.find('/', pos);
    const size_t end = slash == std::string::npos ? path.size() : slash;
    partial = path.substr(0, end);
    pos = end + 1;
    if (partial.empty()) continue;  // leading '/'
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      *error = "mkdir " + partial + ": " + std::strerror(errno);
      return false;
    }
    if (slash == std::string::npos) break;
  }
  return true;
}

bool SyncDir(const std::string& dir, std::string* error) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    *error = "open dir " + dir + ": " + std::strerror(errno);
    return false;
  }
  const bool ok = ::fsync(fd) == 0;
  if (!ok) *error = "fsync dir " + dir + ": " + std::strerror(errno);
  ::close(fd);
  return ok;
}

struct DirListing {
  std::vector<uint64_t> checkpoint_seqs;  // sorted descending
  std::vector<uint64_t> wal_bases;        // sorted ascending
};

bool ListDataDir(const std::string& dir, DirListing* listing,
                 std::string* error) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    *error = "opendir " + dir + ": " + std::strerror(errno);
    return false;
  }
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    uint64_t seq;
    if (ParseSeqName(name, "checkpoint-", ".ckpt", &seq)) {
      listing->checkpoint_seqs.push_back(seq);
    } else if (ParseSeqName(name, "wal-", ".log", &seq)) {
      listing->wal_bases.push_back(seq);
    }
  }
  ::closedir(d);
  std::sort(listing->checkpoint_seqs.rbegin(),
            listing->checkpoint_seqs.rend());
  std::sort(listing->wal_bases.begin(), listing->wal_bases.end());
  return true;
}

void EncodeAppliedEntry(const AppliedPublishRecord& entry, std::string* out) {
  PutU64(out, entry.token);
  PutU64(out, entry.publish_id);
  PutU64(out, entry.snapshot_id);
  PutU64(out, entry.snapshot_seq);
  PutU64(out, entry.live_rows);
  PutU64(out, entry.physical_rows);
}

bool DecodeAppliedEntry(ByteReader* reader, AppliedPublishRecord* entry) {
  return reader->U64(&entry->token) && reader->U64(&entry->publish_id) &&
         reader->U64(&entry->snapshot_id) &&
         reader->U64(&entry->snapshot_seq) &&
         reader->U64(&entry->live_rows) &&
         reader->U64(&entry->physical_rows);
}

}  // namespace

// ---------------------------------------------------------------------------
// Publish WAL records.

std::string EncodePublishWalRecord(const PublishWalRecord& record) {
  std::string payload;
  PutU32(&payload, kPublishKind);
  PutU64(&payload, record.parent_id);
  PutU64(&payload, record.parent_seq);
  PutU64(&payload, record.child_id);
  PutU64(&payload, record.child_seq);
  PutU64(&payload, record.token);
  PutU64(&payload, record.publish_id);
  PutU64(&payload, record.first_insert_id);
  PutU32(&payload, record.dim);
  PutU32(&payload, static_cast<uint32_t>(record.deletes.size()));
  for (const int id : record.deletes) {
    PutU64(&payload, static_cast<uint64_t>(id));
  }
  PutU32(&payload, static_cast<uint32_t>(record.inserts.size()));
  for (const Vec& row : record.inserts) {
    PutBytes(&payload, row.data(), record.dim * sizeof(double));
  }
  return payload;
}

bool DecodePublishWalRecord(const std::string& payload,
                            PublishWalRecord* record, std::string* error) {
  ByteReader reader(payload.data(), payload.size());
  uint32_t kind = 0;
  if (!reader.U32(&kind) || kind != kPublishKind) {
    *error = "not a publish record";
    return false;
  }
  uint32_t n_deletes = 0;
  if (!reader.U64(&record->parent_id) || !reader.U64(&record->parent_seq) ||
      !reader.U64(&record->child_id) || !reader.U64(&record->child_seq) ||
      !reader.U64(&record->token) || !reader.U64(&record->publish_id) ||
      !reader.U64(&record->first_insert_id) || !reader.U32(&record->dim) ||
      !reader.U32(&n_deletes)) {
    *error = "publish record truncated";
    return false;
  }
  if (record->dim == 0 || record->dim > kMaxDim) {
    *error = "publish record: implausible dim";
    return false;
  }
  if (n_deletes > kMaxRecordRows ||
      reader.remaining() < static_cast<size_t>(n_deletes) * 8) {
    *error = "publish record: implausible delete count";
    return false;
  }
  record->deletes.clear();
  record->deletes.reserve(n_deletes);
  for (uint32_t i = 0; i < n_deletes; ++i) {
    uint64_t id = 0;
    reader.U64(&id);
    if (id > static_cast<uint64_t>(INT32_MAX)) {
      *error = "publish record: delete id out of range";
      return false;
    }
    record->deletes.push_back(static_cast<int>(id));
  }
  uint32_t n_inserts = 0;
  if (!reader.U32(&n_inserts)) {
    *error = "publish record truncated";
    return false;
  }
  const size_t row_bytes = static_cast<size_t>(record->dim) * sizeof(double);
  if (n_inserts > kMaxRecordRows ||
      reader.remaining() != static_cast<size_t>(n_inserts) * row_bytes) {
    *error = "publish record: insert payload size mismatch";
    return false;
  }
  record->inserts.clear();
  record->inserts.reserve(n_inserts);
  for (uint32_t i = 0; i < n_inserts; ++i) {
    Vec row(record->dim);
    if (!reader.Bytes(row.data(), row_bytes)) {
      *error = "publish record truncated";
      return false;
    }
    record->inserts.push_back(std::move(row));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Checkpoints.

bool WriteCheckpointFile(const std::string& path,
                         const DatasetSnapshot& snapshot,
                         const std::vector<AppliedPublishRecord>& applied,
                         std::string* error) {
  const std::string tmp = path + ".tmp";
  ::unlink(tmp.c_str());
  auto file = PosixWalFile::OpenAppend(tmp, error);
  if (file == nullptr) return false;

  const size_t n_chunks =
      (snapshot.rows() + DatasetSnapshot::kChunkRows - 1) >>
      DatasetSnapshot::kChunkShift;
  std::string out;
  {
    std::string payload;
    PutU32(&payload, kCkptHeaderKind);
    PutU32(&payload, kCheckpointVersion);
    PutU64(&payload, snapshot.id());
    PutU64(&payload, snapshot.seq());
    PutU64(&payload, snapshot.parent_id());
    PutU64(&payload, static_cast<uint64_t>(snapshot.rows()));
    PutU32(&payload, static_cast<uint32_t>(snapshot.dim()));
    PutU32(&payload, static_cast<uint32_t>(n_chunks));
    FrameWalRecord(payload, &out);
  }
  for (size_t c = 0; c < n_chunks; ++c) {
    const auto chunk = snapshot.ChunkForRow(c << DatasetSnapshot::kChunkShift);
    std::string payload;
    PutU32(&payload, kCkptChunkKind);
    PutU32(&payload, static_cast<uint32_t>(c));
    PutU32(&payload, static_cast<uint32_t>(chunk->size()));
    PutBytes(&payload, chunk->data(), chunk->size() * sizeof(double));
    FrameWalRecord(payload, &out);
  }
  {
    std::string payload;
    PutU32(&payload, kCkptLiveKind);
    PutU64(&payload, static_cast<uint64_t>(snapshot.rows()));
    for (size_t row = 0; row < snapshot.rows(); ++row) {
      payload.push_back(snapshot.IsLive(row) ? '\1' : '\0');
    }
    FrameWalRecord(payload, &out);
  }
  {
    std::string payload;
    PutU32(&payload, kCkptDedupeKind);
    PutU32(&payload, static_cast<uint32_t>(applied.size()));
    for (const AppliedPublishRecord& entry : applied) {
      EncodeAppliedEntry(entry, &payload);
    }
    FrameWalRecord(payload, &out);
  }
  {
    std::string payload;
    PutU32(&payload, kCkptFooterKind);
    PutU64(&payload, snapshot.id());
    FrameWalRecord(payload, &out);
  }

  if (!file->Append(out.data(), out.size()) || !file->Sync()) {
    *error = "checkpoint write: " + file->last_error();
    file.reset();
    ::unlink(tmp.c_str());
    return false;
  }
  file.reset();  // close before rename
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    *error = "rename " + tmp + ": " + std::strerror(errno);
    ::unlink(tmp.c_str());
    return false;
  }
  const size_t slash = path.rfind('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash);
  return SyncDir(dir, error);
}

SnapshotPtr LoadCheckpointFile(const std::string& path,
                               std::vector<AppliedPublishRecord>* applied,
                               std::string* error) {
  WalReadResult scan = ReadWalRecords(path);
  if (!scan.ok || scan.torn_tail) {
    // Checkpoints land atomically via rename, so a torn tail here is
    // damage, not a crash artifact -- reject the whole file.
    *error = "checkpoint damaged: " +
             (scan.detail.empty() ? std::string("unreadable") : scan.detail);
    return nullptr;
  }
  if (scan.records.empty()) {
    *error = "checkpoint empty";
    return nullptr;
  }

  uint64_t id = 0;
  uint64_t seq = 0;
  uint64_t parent_id = 0;
  uint64_t rows = 0;
  uint32_t dim = 0;
  uint32_t n_chunks = 0;
  {
    ByteReader reader(scan.records[0].data(), scan.records[0].size());
    uint32_t kind = 0;
    uint32_t version = 0;
    if (!reader.U32(&kind) || kind != kCkptHeaderKind ||
        !reader.U32(&version) || version != kCheckpointVersion ||
        !reader.U64(&id) || !reader.U64(&seq) || !reader.U64(&parent_id) ||
        !reader.U64(&rows) || !reader.U32(&dim) || !reader.U32(&n_chunks) ||
        !reader.Done()) {
      *error = "checkpoint header malformed";
      return nullptr;
    }
  }
  if (rows > 0 && (dim == 0 || dim > kMaxDim)) {
    *error = "checkpoint header: implausible dim";
    return nullptr;
  }
  const uint64_t want_chunks =
      (rows + DatasetSnapshot::kChunkRows - 1) >> DatasetSnapshot::kChunkShift;
  if (n_chunks != want_chunks ||
      scan.records.size() != 1 + n_chunks + 3) {
    *error = "checkpoint record count mismatch";
    return nullptr;
  }

  std::vector<std::shared_ptr<const std::vector<double>>> chunks;
  chunks.reserve(n_chunks);
  for (uint32_t c = 0; c < n_chunks; ++c) {
    const std::string& payload = scan.records[1 + c];
    ByteReader reader(payload.data(), payload.size());
    uint32_t kind = 0;
    uint32_t index = 0;
    uint32_t n_values = 0;
    if (!reader.U32(&kind) || kind != kCkptChunkKind ||
        !reader.U32(&index) || index != c || !reader.U32(&n_values) ||
        reader.remaining() != static_cast<size_t>(n_values) *
                                  sizeof(double)) {
      *error = "checkpoint chunk malformed";
      return nullptr;
    }
    auto values = std::make_shared<std::vector<double>>(n_values);
    if (n_values > 0 &&
        !reader.Bytes(values->data(), n_values * sizeof(double))) {
      *error = "checkpoint chunk truncated";
      return nullptr;
    }
    chunks.push_back(std::move(values));
  }

  std::vector<uint8_t> live;
  {
    const std::string& payload = scan.records[1 + n_chunks];
    ByteReader reader(payload.data(), payload.size());
    uint32_t kind = 0;
    uint64_t live_rows = 0;
    if (!reader.U32(&kind) || kind != kCkptLiveKind ||
        !reader.U64(&live_rows) || live_rows != rows ||
        reader.remaining() != rows) {
      *error = "checkpoint live bitmap malformed";
      return nullptr;
    }
    live.resize(rows);
    if (rows > 0 && !reader.Bytes(live.data(), rows)) {
      *error = "checkpoint live bitmap truncated";
      return nullptr;
    }
  }

  std::vector<AppliedPublishRecord> dedupe;
  {
    const std::string& payload = scan.records[1 + n_chunks + 1];
    ByteReader reader(payload.data(), payload.size());
    uint32_t kind = 0;
    uint32_t n_entries = 0;
    if (!reader.U32(&kind) || kind != kCkptDedupeKind ||
        !reader.U32(&n_entries) ||
        reader.remaining() != static_cast<size_t>(n_entries) * 48) {
      *error = "checkpoint dedupe table malformed";
      return nullptr;
    }
    dedupe.resize(n_entries);
    for (uint32_t i = 0; i < n_entries; ++i) {
      if (!DecodeAppliedEntry(&reader, &dedupe[i])) {
        *error = "checkpoint dedupe table truncated";
        return nullptr;
      }
    }
  }

  {
    const std::string& payload = scan.records[1 + n_chunks + 2];
    ByteReader reader(payload.data(), payload.size());
    uint32_t kind = 0;
    uint64_t footer_id = 0;
    if (!reader.U32(&kind) || kind != kCkptFooterKind ||
        !reader.U64(&footer_id) || footer_id != id || !reader.Done()) {
      *error = "checkpoint footer missing or inconsistent";
      return nullptr;
    }
  }

  SnapshotPtr snapshot = DatasetSnapshot::Restore(
      std::move(chunks), std::move(live), static_cast<size_t>(rows), dim, id,
      seq, parent_id);
  if (snapshot == nullptr) {
    *error = "checkpoint shapes inconsistent";
    return nullptr;
  }
  if (applied != nullptr) *applied = std::move(dedupe);
  return snapshot;
}

// ---------------------------------------------------------------------------
// DurableCatalog.

namespace {

/// Replays the WAL tail onto `catalog`. Returns false + *error on any
/// record that fails to decode, chain, or re-derive its recorded id.
bool ReplayWalTail(const std::vector<std::string>& records,
                   MutableCatalog* catalog,
                   std::vector<AppliedPublishRecord>* applied,
                   RecoveryStats* stats, std::string* error) {
  for (const std::string& payload : records) {
    PublishWalRecord record;
    if (!DecodePublishWalRecord(payload, &record, error)) return false;
    SnapshotPtr current = catalog->Current();
    if (record.child_seq <= current->seq()) {
      ++stats->skipped_records;  // already inside the checkpoint
      continue;
    }
    if (record.child_seq != current->seq() + 1 ||
        record.parent_id != current->id() ||
        record.parent_seq != current->seq()) {
      *error = "wal replay: chain break (record does not extend the "
               "recovered snapshot)";
      return false;
    }
    if (current->dim() != 0 && record.dim != current->dim()) {
      *error = "wal replay: dimension mismatch";
      return false;
    }
    if (record.first_insert_id != current->rows()) {
      *error = "wal replay: insert ids do not start at the parent's rows";
      return false;
    }
    for (const Vec& row : record.inserts) catalog->StageInsert(row);
    for (const int id : record.deletes) {
      if (!catalog->StageDelete(id)) {
        catalog->DiscardStaged();
        *error = "wal replay: delete of a dead or unknown row";
        return false;
      }
    }
    uint64_t predicted_id = 0;
    uint64_t predicted_seq = 0;
    if (!catalog->PredictPublish(&predicted_id, &predicted_seq) ||
        predicted_id != record.child_id ||
        predicted_seq != record.child_seq) {
      catalog->DiscardStaged();
      *error = "wal replay: re-derived snapshot id differs from the "
               "recorded one (corrupt or foreign record)";
      return false;
    }
    SnapshotPtr published = catalog->Publish();
    ++stats->replayed_records;
    if (record.token != 0) {
      AppliedPublishRecord entry;
      entry.token = record.token;
      entry.publish_id = record.publish_id;
      entry.snapshot_id = published->id();
      entry.snapshot_seq = published->seq();
      entry.live_rows = published->live_rows();
      entry.physical_rows = published->rows();
      applied->push_back(entry);
    }
  }
  return true;
}

// Takes the single-writer lock: an exclusive, non-blocking flock on
// <data_dir>/LOCK. Returns the held fd, or -1 with *error (EWOULDBLOCK
// means another live DurableCatalog owns the directory). flock (not
// fcntl record locks) on purpose: the lock follows the open file
// description, so it survives fork-without-exec but is released by the
// kernel the instant the owning process dies -- including SIGKILL --
// which is exactly the recovery story this directory needs.
int AcquireDirLock(const std::string& data_dir, std::string* error) {
  const std::string path = data_dir + "/LOCK";
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    *error = "durability: open " + path + ": " + std::strerror(errno);
    return -1;
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    const int saved = errno;
    ::close(fd);
    if (saved == EWOULDBLOCK) {
      *error = "durability: " + data_dir +
               " is locked by another live process (single-writer: stop "
               "it before reopening this directory)";
    } else {
      *error = "durability: flock " + path + ": " + std::strerror(saved);
    }
    return -1;
  }
  return fd;
}

}  // namespace

DurableCatalog::~DurableCatalog() {
  if (lock_fd_ >= 0) ::close(lock_fd_);  // releases the flock
}

std::unique_ptr<DurableCatalog> DurableCatalog::Open(
    const DurabilityOptions& options, const Dataset* bootstrap,
    std::string* error) {
  if (options.data_dir.empty()) {
    *error = "durability: data_dir is empty";
    return nullptr;
  }
  Timer timer;
  if (!MakeDirs(options.data_dir, error)) return nullptr;
  const int lock_fd = AcquireDirLock(options.data_dir, error);
  if (lock_fd < 0) return nullptr;
  DirListing listing;
  if (!ListDataDir(options.data_dir, &listing, error)) {
    ::close(lock_fd);
    return nullptr;
  }

  auto durable = std::unique_ptr<DurableCatalog>(new DurableCatalog());
  durable->options_ = options;
  durable->lock_fd_ = lock_fd;

  if (listing.checkpoint_seqs.empty() && listing.wal_bases.empty()) {
    // Fresh directory: initialize from the bootstrap dataset.
    if (bootstrap == nullptr) {
      *error = "durability: empty data_dir and no bootstrap dataset";
      return nullptr;
    }
    durable->catalog_ = std::make_shared<MutableCatalog>(
        DatasetSnapshot::FromDataset(*bootstrap));
  } else if (listing.checkpoint_seqs.empty()) {
    // A WAL with no checkpoint cannot anchor a replay: the chain's base
    // snapshot is gone. Reject rather than guess.
    *error = "durability: wal files present but no checkpoint";
    return nullptr;
  } else {
    // Recover: newest loadable checkpoint, then the WAL tail.
    std::string last_failure;
    bool recovered = false;
    for (const uint64_t ckpt_seq : listing.checkpoint_seqs) {
      std::vector<AppliedPublishRecord> applied;
      SnapshotPtr base = LoadCheckpointFile(
          options.data_dir + "/" + CheckpointName(ckpt_seq), &applied,
          &last_failure);
      if (base == nullptr) continue;
      if (base->seq() != ckpt_seq) {
        last_failure = "checkpoint seq does not match its filename "
                       "(stale or renamed generation)";
        continue;
      }
      auto catalog = std::make_shared<MutableCatalog>(base);
      RecoveryStats stats;
      stats.checkpoint_seq = ckpt_seq;
      bool tail_ok = true;
      for (const uint64_t wal_base : listing.wal_bases) {
        // Logs below the checkpoint's base are fully covered by it
        // (rotation happens atomically with the checkpoint).
        if (wal_base < ckpt_seq) continue;
        WalReadResult scan = ReadWalRecords(
            options.data_dir + "/" + WalName(wal_base));
        if (!scan.ok) {
          last_failure = "wal-" + std::to_string(wal_base) + ": " +
                         scan.detail;
          tail_ok = false;
          break;
        }
        if (scan.torn_tail) stats.wal_tail_truncated = true;
        if (!ReplayWalTail(scan.records, catalog.get(), &applied, &stats,
                           &last_failure)) {
          tail_ok = false;
          break;
        }
      }
      if (!tail_ok) continue;
      durable->catalog_ = std::move(catalog);
      durable->recovered_publishes_ = std::move(applied);
      durable->recovery_ = stats;
      durable->recovery_.recovered = true;
      recovered = true;
      break;
    }
    if (!recovered) {
      *error = "durability: no recoverable checkpoint/wal generation (" +
               (last_failure.empty() ? std::string("none found")
                                     : last_failure) +
               ")";
      return nullptr;
    }
  }

  // Seal the recovered (or fresh) state: a new checkpoint at the current
  // seq, a new log, and GC of everything older. This is what physically
  // discards torn WAL tails.
  {
    std::lock_guard<std::mutex> lock(durable->mu_);
    if (!durable->CheckpointLocked(error)) return nullptr;
  }
  SnapshotPtr head = durable->catalog_->Current();
  durable->recovery_.snapshot_id = head->id();
  durable->recovery_.snapshot_seq = head->seq();
  durable->recovery_.recovery_seconds = timer.Seconds();
  return durable;
}

bool DurableCatalog::OpenWalForAppend(uint64_t base_seq, std::string* error) {
  if (wal_ != nullptr) {
    retired_.wal_appends += wal_->appends();
    retired_.wal_bytes += wal_->bytes();
    retired_.wal_fsyncs += wal_->syncs();
  }
  std::unique_ptr<WalFile> file = PosixWalFile::OpenAppend(
      options_.data_dir + "/" + WalName(base_seq), error);
  if (file == nullptr) return false;
  if (options_.wrap_wal_file) file = options_.wrap_wal_file(std::move(file));
  wal_ = std::make_unique<WalWriter>(std::move(file), options_.fsync_policy,
                                     options_.wal_batch_bytes);
  wal_base_seq_ = base_seq;
  return true;
}

bool DurableCatalog::CheckpointLocked(std::string* error) {
  SnapshotPtr head = catalog_->Current();
  // The dedupe table snapshot: recovered entries plus everything applied
  // since (the server's bounded cache re-bounds on seeding).
  if (!WriteCheckpointFile(
          options_.data_dir + "/" + CheckpointName(head->seq()), *head,
          recovered_publishes_, error)) {
    return false;
  }
  ++checkpoints_written_;
  if (!OpenWalForAppend(head->seq(), error)) return false;
  std::string sync_error;
  if (!SyncDir(options_.data_dir, &sync_error)) {
    *error = sync_error;
    return false;
  }
  // GC superseded generations; best-effort (a leftover file is only
  // wasted bytes, recovery skips it).
  DirListing listing;
  std::string list_error;
  if (ListDataDir(options_.data_dir, &listing, &list_error)) {
    for (const uint64_t seq : listing.checkpoint_seqs) {
      if (seq != head->seq()) {
        ::unlink(
            (options_.data_dir + "/" + CheckpointName(seq)).c_str());
      }
    }
    for (const uint64_t base : listing.wal_bases) {
      if (base != head->seq()) {
        ::unlink((options_.data_dir + "/" + WalName(base)).c_str());
      }
    }
  }
  publishes_since_checkpoint_ = 0;
  return true;
}

DurableCatalog::PublishOutcome DurableCatalog::Publish(
    const std::vector<Vec>& inserts, const std::vector<uint64_t>& deletes,
    uint64_t token, uint64_t publish_id) {
  std::lock_guard<std::mutex> lock(mu_);
  PublishOutcome outcome;
  SnapshotPtr parent = catalog_->Current();
  if (inserts.empty() && deletes.empty()) {
    outcome.ok = true;
    outcome.snapshot = parent;
    return outcome;
  }

  // Validate the whole delta before staging anything, so a rejected
  // publish has no side effects at all.
  PublishWalRecord record;
  record.deletes.reserve(deletes.size());
  for (const uint64_t id : deletes) {
    if (id >= parent->rows() || !parent->IsLive(id)) {
      outcome.error = "durable publish: delete of a dead or unknown row";
      return outcome;
    }
    record.deletes.push_back(static_cast<int>(id));
  }
  std::sort(record.deletes.begin(), record.deletes.end());
  record.deletes.erase(
      std::unique(record.deletes.begin(), record.deletes.end()),
      record.deletes.end());
  const size_t dim = parent->dim() != 0 ? parent->dim()
                                        : (inserts.empty()
                                               ? 0
                                               : inserts.front().dim());
  for (const Vec& row : inserts) {
    if (row.dim() != dim || dim == 0) {
      outcome.error = "durable publish: insert dimension mismatch";
      return outcome;
    }
  }

  for (const Vec& row : inserts) catalog_->StageInsert(row);
  for (const int id : record.deletes) catalog_->StageDelete(id);

  uint64_t child_id = 0;
  uint64_t child_seq = 0;
  if (!catalog_->PredictPublish(&child_id, &child_seq)) {
    catalog_->DiscardStaged();
    outcome.error = "durable publish: nothing staged after validation";
    return outcome;
  }
  record.parent_id = parent->id();
  record.parent_seq = parent->seq();
  record.child_id = child_id;
  record.child_seq = child_seq;
  record.token = token;
  record.publish_id = publish_id;
  record.first_insert_id = parent->rows();
  record.dim = static_cast<uint32_t>(dim);
  record.inserts = inserts;

  // Append-then-apply: the record must be durable (per policy) before
  // the in-memory state moves. A failed append rolls staging back and
  // nothing is acknowledged.
  if (!wal_->AppendRecord(EncodePublishWalRecord(record))) {
    catalog_->DiscardStaged();
    outcome.error = "wal append failed: " + wal_->last_error();
    return outcome;
  }

  SnapshotPtr published = catalog_->Publish();
  if (published->id() != child_id || published->seq() != child_seq) {
    // Prediction drift would make replay reject this record; surface it
    // loudly instead of serving state the log cannot reproduce.
    outcome.error = "durable publish: published id drifted from the "
                    "logged prediction";
    LOG(ERROR) << outcome.error;
    return outcome;
  }

  if (token != 0) {
    AppliedPublishRecord entry;
    entry.token = token;
    entry.publish_id = publish_id;
    entry.snapshot_id = published->id();
    entry.snapshot_seq = published->seq();
    entry.live_rows = published->live_rows();
    entry.physical_rows = published->rows();
    recovered_publishes_.push_back(entry);
    // The table persists into every checkpoint; bound it like the
    // server's idempotency cache so it cannot grow without limit.
    if (recovered_publishes_.size() > 1024) {
      recovered_publishes_.erase(recovered_publishes_.begin());
    }
  }

  ++publishes_since_checkpoint_;
  if (options_.checkpoint_every > 0 &&
      publishes_since_checkpoint_ >= options_.checkpoint_every) {
    std::string ckpt_error;
    if (!CheckpointLocked(&ckpt_error)) {
      // The WAL still covers everything; the checkpoint retries after
      // the next batch of publishes.
      LOG(WARNING) << "checkpoint failed (will retry): " << ckpt_error;
      publishes_since_checkpoint_ = 0;
    }
  }

  outcome.ok = true;
  outcome.snapshot = std::move(published);
  return outcome;
}

bool DurableCatalog::Checkpoint(std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  return CheckpointLocked(error);
}

bool DurableCatalog::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_ != nullptr ? wal_->Sync() : true;
}

DurableCounters DurableCatalog::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  DurableCounters counters = retired_;
  if (wal_ != nullptr) {
    counters.wal_appends += wal_->appends();
    counters.wal_bytes += wal_->bytes();
    counters.wal_fsyncs += wal_->syncs();
  }
  counters.checkpoints_written = checkpoints_written_;
  return counters;
}

}  // namespace toprr
