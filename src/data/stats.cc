#include "data/stats.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace toprr {

std::vector<ColumnStats> ComputeColumnStats(const Dataset& data) {
  CHECK(!data.empty());
  const size_t n = data.size();
  const size_t d = data.dim();
  std::vector<ColumnStats> stats(d);
  for (size_t j = 0; j < d; ++j) {
    stats[j].min = std::numeric_limits<double>::infinity();
    stats[j].max = -std::numeric_limits<double>::infinity();
  }
  for (size_t i = 0; i < n; ++i) {
    const double* row = data.Row(i);
    for (size_t j = 0; j < d; ++j) {
      stats[j].min = std::min(stats[j].min, row[j]);
      stats[j].max = std::max(stats[j].max, row[j]);
      stats[j].mean += row[j];
    }
  }
  for (size_t j = 0; j < d; ++j) stats[j].mean /= static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    const double* row = data.Row(i);
    for (size_t j = 0; j < d; ++j) {
      const double c = row[j] - stats[j].mean;
      stats[j].stddev += c * c;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    stats[j].stddev = std::sqrt(stats[j].stddev / static_cast<double>(n));
  }
  return stats;
}

Matrix CorrelationMatrix(const Dataset& data) {
  CHECK(!data.empty());
  const size_t n = data.size();
  const size_t d = data.dim();
  const std::vector<ColumnStats> stats = ComputeColumnStats(data);
  Matrix cov(d, d);
  for (size_t i = 0; i < n; ++i) {
    const double* row = data.Row(i);
    for (size_t a = 0; a < d; ++a) {
      const double ca = row[a] - stats[a].mean;
      for (size_t b = a; b < d; ++b) {
        cov.At(a, b) += ca * (row[b] - stats[b].mean);
      }
    }
  }
  Matrix corr(d, d);
  for (size_t a = 0; a < d; ++a) {
    corr.At(a, a) = 1.0;
    for (size_t b = a + 1; b < d; ++b) {
      const double denom =
          stats[a].stddev * stats[b].stddev * static_cast<double>(n);
      const double value = denom > 0.0 ? cov.At(a, b) / denom : 0.0;
      corr.At(a, b) = value;
      corr.At(b, a) = value;
    }
  }
  return corr;
}

double MeanPairwiseCorrelation(const Dataset& data) {
  const size_t d = data.dim();
  if (d < 2) return 0.0;
  const Matrix corr = CorrelationMatrix(data);
  double acc = 0.0;
  size_t pairs = 0;
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a + 1; b < d; ++b) {
      acc += corr.At(a, b);
      ++pairs;
    }
  }
  return acc / static_cast<double>(pairs);
}

std::string DescribeDataset(const Dataset& data) {
  std::ostringstream out;
  out << "n=" << data.size() << " d=" << data.dim()
      << " mean_pairwise_corr=" << MeanPairwiseCorrelation(data) << "\n";
  const std::vector<ColumnStats> stats = ComputeColumnStats(data);
  for (size_t j = 0; j < stats.size(); ++j) {
    out << "  col" << j << ": min=" << stats[j].min
        << " max=" << stats[j].max << " mean=" << stats[j].mean
        << " sd=" << stats[j].stddev << "\n";
  }
  return out.str();
}

}  // namespace toprr
