#include "pref/pref_space.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/logging.h"

namespace toprr {

Vec FullWeight(const Vec& x) {
  const size_t m = x.dim();
  Vec w(m + 1);
  double sum = 0.0;
  for (size_t j = 0; j < m; ++j) {
    w[j] = x[j];
    sum += x[j];
  }
  w[m] = 1.0 - sum;
  return w;
}

Vec ReducedWeight(const Vec& w) {
  const size_t d = w.dim();
  CHECK_GE(d, 2u);
  Vec x(d - 1);
  for (size_t j = 0; j + 1 < d; ++j) x[j] = w[j];
  return x;
}

double ReducedScore(const double* p, const double* x, size_t m) {
  double acc = p[m];
  for (size_t j = 0; j < m; ++j) acc += x[j] * (p[j] - p[m]);
  return acc;
}

double ReducedScore(const double* p, const Vec& x) {
  return ReducedScore(p, x.data(), x.dim());
}

double ReducedScoreDiff(const double* p, const double* q, const double* x,
                        size_t m) {
  double acc = p[m] - q[m];
  for (size_t j = 0; j < m; ++j) {
    acc += x[j] * ((p[j] - p[m]) - (q[j] - q[m]));
  }
  return acc;
}

double ReducedScoreDiff(const double* p, const double* q, const Vec& x) {
  return ReducedScoreDiff(p, q, x.data(), x.dim());
}

Hyperplane ScoreEqualityHyperplane(const double* p, const double* q,
                                   size_t dim) {
  // S_x(p) - S_x(q) = c + n.x with
  //   n[j] = (p[j] - p[m]) - (q[j] - q[m]),   c = p[m] - q[m].
  // wHP(p, q): n.x = -c.
  const size_t m = dim;
  Vec n(m);
  for (size_t j = 0; j < m; ++j) {
    n[j] = (p[j] - p[m]) - (q[j] - q[m]);
  }
  return Hyperplane(std::move(n), q[m] - p[m]);
}

Halfspace ScorePreferenceHalfspace(const double* p, const double* q,
                                   size_t dim) {
  // S_x(p) >= S_x(q)  <=>  n.x >= -c  <=>  (-n).x <= c.
  const size_t m = dim;
  Vec neg(m);
  for (size_t j = 0; j < m; ++j) {
    neg[j] = -((p[j] - p[m]) - (q[j] - q[m]));
  }
  return Halfspace(std::move(neg), p[m] - q[m]);
}

bool PrefBox::Contains(const Vec& x, double tol) const {
  DCHECK_EQ(x.dim(), dim());
  for (size_t j = 0; j < dim(); ++j) {
    if (x[j] < lo[j] - tol || x[j] > hi[j] + tol) return false;
  }
  return true;
}

std::vector<Vec> PrefBox::Vertices() const {
  const size_t m = dim();
  CHECK_LE(m, 24u) << "too many box corners";
  std::vector<Vec> out;
  out.reserve(size_t{1} << m);
  for (uint64_t mask = 0; mask < (uint64_t{1} << m); ++mask) {
    Vec v(m);
    for (size_t j = 0; j < m; ++j) {
      v[j] = ((mask >> j) & 1) ? hi[j] : lo[j];
    }
    out.push_back(std::move(v));
  }
  return out;
}

std::vector<Halfspace> PrefBox::Halfspaces() const {
  return BoxHalfspaces(lo, hi);
}

bool PrefBox::InsideSimplex(double tol) const {
  for (size_t j = 0; j < dim(); ++j) {
    if (lo[j] < -tol) return false;
  }
  return hi.Sum() <= 1.0 + tol;
}

Vec PrefBox::Center() const {
  Vec c(dim());
  for (size_t j = 0; j < dim(); ++j) c[j] = 0.5 * (lo[j] + hi[j]);
  return c;
}

double MinScoreDiffOverBox(const double* p, const double* q,
                           const PrefBox& box) {
  const size_t m = box.dim();
  double acc = p[m] - q[m];
  for (size_t j = 0; j < m; ++j) {
    const double coeff = (p[j] - p[m]) - (q[j] - q[m]);
    acc += coeff * (coeff >= 0.0 ? box.lo[j] : box.hi[j]);
  }
  return acc;
}

double MaxScoreDiffOverBox(const double* p, const double* q,
                           const PrefBox& box) {
  const size_t m = box.dim();
  double acc = p[m] - q[m];
  for (size_t j = 0; j < m; ++j) {
    const double coeff = (p[j] - p[m]) - (q[j] - q[m]);
    acc += coeff * (coeff >= 0.0 ? box.hi[j] : box.lo[j]);
  }
  return acc;
}

namespace {

PrefBox MakeBox(const Vec& lo, const Vec& sides) {
  PrefBox box;
  const size_t m = lo.dim();
  box.lo = lo;
  box.hi = Vec(m);
  for (size_t j = 0; j < m; ++j) box.hi[j] = lo[j] + sides[j];
  return box;
}

PrefBox RandomBoxWithSides(size_t dim, Vec sides, Rng& rng) {
  const size_t m = dim;
  double side_sum = sides.Sum();
  if (side_sum >= 1.0) {
    // A cube with these sides cannot fit inside the simplex; shrink it.
    const double shrink = 0.9 / side_sum;
    LOG(WARNING) << "preference box of total side " << side_sum
                 << " cannot fit in the simplex; shrinking by " << shrink;
    sides *= shrink;
    side_sum = sides.Sum();
  }
  for (int attempt = 0; attempt < 4096; ++attempt) {
    Vec lo(m);
    double hi_sum = 0.0;
    bool valid = true;
    for (size_t j = 0; j < m; ++j) {
      if (sides[j] >= 1.0) {
        valid = false;
        break;
      }
      lo[j] = rng.Uniform(0.0, 1.0 - sides[j]);
      hi_sum += lo[j] + sides[j];
    }
    if (valid && hi_sum <= 1.0) return MakeBox(lo, sides);
  }
  // Rejection failed (large boxes in high dimension): place the box near
  // the origin with simplex-respecting random offsets.
  Vec lo(m);
  const double slack = 1.0 - side_sum;
  double remaining = slack * rng.Uniform(0.0, 1.0);
  for (size_t j = 0; j < m; ++j) {
    const double take = remaining * rng.Uniform(0.0, 1.0);
    lo[j] = take;
    remaining -= take;
  }
  return MakeBox(lo, sides);
}

}  // namespace

PrefBox RandomPrefBox(size_t dim, double sigma, Rng& rng) {
  CHECK_GT(sigma, 0.0);
  CHECK_LT(sigma, 1.0);
  return RandomBoxWithSides(dim, Vec(dim, sigma), rng);
}

PrefBox RandomElongatedPrefBox(size_t dim, double sigma, double gamma,
                               Rng& rng) {
  CHECK_GT(gamma, 0.0);
  const double md = static_cast<double>(dim);
  // One side gamma*s, the rest s, equal volume: gamma * s^dim = sigma^dim.
  const double s = sigma / std::pow(gamma, 1.0 / md);
  Vec sides(dim, s);
  const size_t axis = static_cast<size_t>(rng.UniformInt(0, dim - 1));
  sides[axis] = gamma * s;
  return RandomBoxWithSides(dim, std::move(sides), rng);
}

}  // namespace toprr
