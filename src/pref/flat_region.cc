#include "pref/flat_region.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace toprr {
namespace {

// Capacity-counted scratch sizing: grow geometrically (so repeated
// slightly-larger regions amortize), count every reallocation, and hand
// back a buffer of at least n elements. Within warmed capacity this is a
// plain resize -- no allocation.
template <typename T>
T* GrowTo(std::vector<T>& buf, size_t n, GeomCounters& counters) {
  if (buf.capacity() < n) {
    ++counters.geom_arena_allocations;
    buf.reserve(std::max(n, buf.capacity() * 2));
  }
  if (buf.size() < n) buf.resize(n);
  return buf.data();
}

// Counted reservation for append-style scratch.
template <typename T>
void EnsureAppend(std::vector<T>& buf, size_t extra, GeomCounters& counters) {
  const size_t need = buf.size() + extra;
  if (buf.capacity() < need) {
    ++counters.geom_arena_allocations;
    buf.reserve(std::max(need, buf.capacity() * 2));
  }
}

}  // namespace

FlatRegion FlatRegion::FromRegion(const PrefRegion& region) {
  FlatRegion flat;
  flat.dim_ = region.dim();
  const std::vector<Vec>& vertices = region.vertices();
  flat.coords_.reserve(vertices.size() * flat.dim_);
  for (const Vec& v : vertices) {
    flat.coords_.insert(flat.coords_.end(), v.begin(), v.end());
  }
  const std::vector<RegionFacet>& facets = region.facets();
  flat.facet_planes_.reserve(facets.size() * (flat.dim_ + 1));
  flat.facet_begin_.reserve(facets.size() + 1);
  flat.facet_begin_.push_back(0);
  size_t total_ids = 0;
  for (const RegionFacet& f : facets) total_ids += f.vertex_ids.size();
  flat.facet_ids_.reserve(total_ids);
  for (const RegionFacet& f : facets) {
    flat.facet_planes_.insert(flat.facet_planes_.end(),
                              f.halfspace.normal.begin(),
                              f.halfspace.normal.end());
    flat.facet_planes_.push_back(f.halfspace.offset);
    flat.facet_ids_.insert(flat.facet_ids_.end(), f.vertex_ids.begin(),
                           f.vertex_ids.end());
    flat.facet_begin_.push_back(flat.facet_ids_.size());
  }
  return flat;
}

PrefRegion FlatRegion::ToRegion() const {
  const size_t nv = num_vertices();
  std::vector<Vec> vertices;
  vertices.reserve(nv);
  for (size_t v = 0; v < nv; ++v) vertices.push_back(VertexVec(v));
  const size_t nf = num_facets();
  std::vector<RegionFacet> facets;
  facets.reserve(nf);
  for (size_t f = 0; f < nf; ++f) {
    RegionFacet facet;
    const double* plane = facet_plane(f);
    Vec normal(dim_);
    for (size_t j = 0; j < dim_; ++j) normal[j] = plane[j];
    facet.halfspace = Halfspace(std::move(normal), plane[dim_]);
    facet.vertex_ids.assign(facet_ids(f), facet_ids(f) + facet_size(f));
    facets.push_back(std::move(facet));
  }
  return PrefRegion::FromVerticesAndFacets(std::move(vertices),
                                           std::move(facets));
}

FlatRegion FlatRegion::FromBox(const PrefBox& box) {
  return FromRegion(PrefRegion::FromBox(box));
}

Vec FlatRegion::VertexVec(size_t v) const {
  DCHECK_LT(v, num_vertices());
  Vec out(dim_);
  const double* row = vertex(v);
  for (size_t j = 0; j < dim_; ++j) out[j] = row[j];
  return out;
}

Vec FlatRegion::Centroid() const {
  CHECK(!coords_.empty());
  const size_t nv = num_vertices();
  Vec c(dim_);
  for (size_t v = 0; v < nv; ++v) {
    const double* row = vertex(v);
    for (size_t j = 0; j < dim_; ++j) c[j] += row[j];
  }
  c /= static_cast<double>(nv);
  return c;
}

bool FlatRegion::Contains(const Vec& x, double tol) const {
  DCHECK_EQ(x.dim(), dim_);
  const size_t nf = num_facets();
  for (size_t f = 0; f < nf; ++f) {
    const double* plane = facet_plane(f);
    if (DotSpan(plane, x.data(), dim_) > plane[dim_] + tol) return false;
  }
  return true;
}

void FlatRegion::Split(const Hyperplane& plane, double eps, GeomArena& arena,
                       std::optional<FlatRegion>* below,
                       std::optional<FlatRegion>* above) const {
  below->reset();
  above->reset();
  const size_t m = dim_;
  CHECK_GE(m, 1u);
  GeomCounters& counters = arena.counters_;

  // Classify every vertex in one fused sweep over the flat buffer
  // (bit-identical svals: DotSpan is the same kernel Hyperplane::Eval
  // uses).
  const size_t nv = num_vertices();
  double* sval = GrowTo(arena.sval_, nv, counters);
  Side* side = GrowTo(arena.side_, nv, counters);
  size_t num_below = 0;
  size_t num_above = 0;
  EvalClassifyBatch(plane, coords_.data(), nv, eps, sval, side, &num_below,
                    &num_above);
  counters.split_vertices_classified += nv;
  if (num_above == 0) {
    *below = *this;
    return;
  }
  if (num_below == 0) {
    *above = *this;
    return;
  }

  // Per-vertex facet membership as bitsets (words of 64 facets), exactly
  // as the legacy split builds them.
  const size_t nf = num_facets();
  const size_t words = (nf + 63) / 64;
  uint64_t* member = GrowTo(arena.member_, nv * words, counters);
  std::fill_n(member, nv * words, uint64_t{0});
  for (size_t fi = 0; fi < nf; ++fi) {
    const int* ids = facet_ids(fi);
    const size_t count = facet_size(fi);
    for (size_t i = 0; i < count; ++i) {
      member[static_cast<size_t>(ids[i]) * words + fi / 64] |=
          uint64_t{1} << (fi % 64);
    }
  }

  // The combinatorial adjacency oracle of the legacy split, verbatim but
  // reading the pooled facet spans: u and w span an edge iff no third
  // vertex lies on every facet they share.
  uint64_t* shared = GrowTo(arena.shared_, words, counters);
  const auto adjacent = [&](size_t i, size_t j) {
    const uint64_t* a = member + i * words;
    const uint64_t* b = member + j * words;
    size_t count = 0;
    for (size_t w = 0; w < words; ++w) {
      shared[w] = a[w] & b[w];
      count += static_cast<size_t>(__builtin_popcountll(shared[w]));
    }
    if (count + 1 < m) return false;  // rank can be at most |shared|
    if (count == 0) return true;      // dimension 1: the interval edge
    size_t best_facet = nf;
    size_t best_size = SIZE_MAX;
    for (size_t fi = 0; fi < nf; ++fi) {
      if (((shared[fi / 64] >> (fi % 64)) & 1) != 0 &&
          facet_size(fi) < best_size) {
        best_size = facet_size(fi);
        best_facet = fi;
      }
    }
    DCHECK_LT(best_facet, nf);
    const int* ids = facet_ids(best_facet);
    const size_t id_count = facet_size(best_facet);
    for (size_t t = 0; t < id_count; ++t) {
      const size_t tv = static_cast<size_t>(ids[t]);
      if (tv == i || tv == j) continue;
      const uint64_t* c = member + tv * words;
      bool contains = true;
      for (size_t w = 0; w < words; ++w) {
        if ((shared[w] & ~c[w]) != 0) {
          contains = false;
          break;
        }
      }
      if (contains) return false;  // another vertex on the common face
    }
    return true;
  };

  // Crossing points on below->above edges. The legacy split dedups them
  // online through a std::map of quantize-key vectors (on-plane old
  // vertices registered first, then candidates in generation order,
  // first insertion wins). Here every registration instead appends one
  // fixed-stride packed key to the arena and the dedup happens offline
  // over a sorted handle array -- same equivalence classes, same
  // winners, no node or key allocations.
  const double merge_tol = std::max(eps, 1e-12) * 16.0;
  arena.keys_.clear();
  arena.cross_coords_.clear();
  arena.cross_shared_.clear();
  const auto append_key = [&](const double* point) {
    EnsureAppend(arena.keys_, m, counters);
    for (size_t c = 0; c < m; ++c) {
      arena.keys_.push_back(
          static_cast<int64_t>(std::llround(point[c] / merge_tol)));
    }
  };
  // On-plane old vertices first: coincident crossing points must merge
  // into them instead of duplicating.
  for (size_t i = 0; i < nv; ++i) {
    if (side[i] == Side::kOn) append_key(vertex(i));
  }
  const uint32_t num_existing =
      static_cast<uint32_t>(arena.keys_.size() / m);
  // Generate candidates in the legacy (below-outer, above-inner) order,
  // staging each point and its shared-facet bitset.
  for (size_t i = 0; i < nv; ++i) {
    if (side[i] != Side::kBelow) continue;
    for (size_t j = 0; j < nv; ++j) {
      if (side[j] != Side::kAbove) continue;
      if (!adjacent(i, j)) continue;
      const double t = sval[i] / (sval[i] - sval[j]);
      const double* a = vertex(i);
      const double* b = vertex(j);
      EnsureAppend(arena.cross_coords_, m, counters);
      for (size_t c = 0; c < m; ++c) {
        // Lerp's exact operation order: a + t*(b-a).
        arena.cross_coords_.push_back(a[c] + t * (b[c] - a[c]));
      }
      append_key(arena.cross_coords_.data() + arena.cross_coords_.size() -
                 m);
      EnsureAppend(arena.cross_shared_, words, counters);
      arena.cross_shared_.insert(arena.cross_shared_.end(), shared,
                                 shared + words);
    }
  }

  // Offline first-insertion-wins dedup: sort handles by (key, insertion
  // order); the head of every equal-key run is the map's winner. A run
  // headed by an on-plane registration keeps no candidate; otherwise the
  // earliest candidate survives. Surviving generations sorted ascending
  // reproduce the legacy new-vertex order exactly.
  const size_t num_keys = arena.keys_.size() / m;
  uint32_t* refs = GrowTo(arena.key_refs_, num_keys, counters);
  for (size_t r = 0; r < num_keys; ++r) {
    refs[r] = static_cast<uint32_t>(r);
  }
  const int64_t* keys = arena.keys_.data();
  std::sort(refs, refs + num_keys, [keys, m](uint32_t a, uint32_t b) {
    const int64_t* ka = keys + static_cast<size_t>(a) * m;
    const int64_t* kb = keys + static_cast<size_t>(b) * m;
    for (size_t c = 0; c < m; ++c) {
      if (ka[c] != kb[c]) return ka[c] < kb[c];
    }
    return a < b;
  });
  arena.survivors_.clear();
  EnsureAppend(arena.survivors_, num_keys, counters);
  for (size_t r = 0; r < num_keys;) {
    size_t run_end = r + 1;
    const int64_t* head = keys + static_cast<size_t>(refs[r]) * m;
    while (run_end < num_keys &&
           std::equal(head, head + m,
                      keys + static_cast<size_t>(refs[run_end]) * m)) {
      ++run_end;
    }
    if (refs[r] >= num_existing) {
      arena.survivors_.push_back(refs[r] - num_existing);
    }
    r = run_end;
  }
  std::sort(arena.survivors_.begin(), arena.survivors_.end());
  const size_t num_new = arena.survivors_.size();
  const auto new_point = [&](size_t n) {
    return arena.cross_coords_.data() +
           static_cast<size_t>(arena.survivors_[n]) * m;
  };
  const auto new_on_facet = [&](size_t n, size_t fi) {
    const uint64_t* bits = arena.cross_shared_.data() +
                           static_cast<size_t>(arena.survivors_[n]) * words;
    return ((bits[fi / 64] >> (fi % 64)) & 1) != 0;
  };

  // Assemble one child polytope for the requested side, in the legacy
  // order: kept old vertices, then new vertices; original facets (the
  // paper's cases 1-3), then the splitting facet.
  int* old_to_new = GrowTo(arena.old_to_new_, nv, counters);
  int* new_ids = GrowTo(arena.new_ids_, std::max<size_t>(num_new, 1),
                        counters);
  const auto build_child = [&](bool below_side,
                               std::optional<FlatRegion>* out) {
    FlatRegion child;
    child.dim_ = m;
    size_t kept_old = 0;
    for (size_t i = 0; i < nv; ++i) {
      const bool keep = below_side ? side[i] != Side::kAbove
                                   : side[i] != Side::kBelow;
      old_to_new[i] = keep ? static_cast<int>(kept_old++) : -1;
    }
    const size_t child_nv = kept_old + num_new;
    child.coords_.reserve(child_nv * m);
    for (size_t i = 0; i < nv; ++i) {
      if (old_to_new[i] >= 0) {
        const double* row = vertex(i);
        child.coords_.insert(child.coords_.end(), row, row + m);
      }
    }
    for (size_t n = 0; n < num_new; ++n) {
      new_ids[n] = static_cast<int>(kept_old + n);
      const double* row = new_point(n);
      child.coords_.insert(child.coords_.end(), row, row + m);
    }
    // Distribute original facets; a facet needs at least m vertices to
    // stay (m-1)-dimensional.
    child.facet_begin_.reserve(nf + 2);
    child.facet_begin_.push_back(0);
    child.facet_ids_.reserve(facet_ids_.size());
    child.facet_planes_.reserve((nf + 1) * (m + 1));
    for (size_t fi = 0; fi < nf; ++fi) {
      const size_t mark = child.facet_ids_.size();
      const int* ids = facet_ids(fi);
      const size_t count = facet_size(fi);
      for (size_t i = 0; i < count; ++i) {
        const int mapped = old_to_new[static_cast<size_t>(ids[i])];
        if (mapped >= 0) child.facet_ids_.push_back(mapped);
      }
      for (size_t n = 0; n < num_new; ++n) {
        if (new_on_facet(n, fi)) child.facet_ids_.push_back(new_ids[n]);
      }
      if (child.facet_ids_.size() - mark >= m) {
        const double* plane_row = facet_plane(fi);
        child.facet_planes_.insert(child.facet_planes_.end(), plane_row,
                                   plane_row + m + 1);
        child.facet_begin_.push_back(child.facet_ids_.size());
      } else {
        child.facet_ids_.resize(mark);  // too thin; drop it
      }
    }
    // The splitting facet itself: on-plane old vertices + all new ones.
    const size_t mark = child.facet_ids_.size();
    for (size_t i = 0; i < nv; ++i) {
      if (side[i] == Side::kOn && old_to_new[i] >= 0) {
        child.facet_ids_.push_back(old_to_new[i]);
      }
    }
    for (size_t n = 0; n < num_new; ++n) {
      child.facet_ids_.push_back(new_ids[n]);
    }
    if (child.facet_ids_.size() - mark >= m) {
      // Same sign convention as the legacy split (normal * -1.0 on the
      // above side) so the stored planes match bitwise.
      for (size_t j = 0; j < m; ++j) {
        child.facet_planes_.push_back(below_side ? plane.normal[j]
                                                 : plane.normal[j] * -1.0);
      }
      child.facet_planes_.push_back(below_side ? plane.offset
                                               : -plane.offset);
      child.facet_begin_.push_back(child.facet_ids_.size());
    } else {
      child.facet_ids_.resize(mark);
    }
    // Full-dimensionality sanity: a bounded m-polytope needs >= m+1
    // vertices and >= m+1 facets.
    if (child_nv < m + 1 || child.num_facets() < m + 1) return;
    *out = std::move(child);
  };

  build_child(/*below_side=*/true, below);
  build_child(/*below_side=*/false, above);
}

std::string FlatRegion::DebugString() const {
  std::ostringstream out;
  out << "FlatRegion(m=" << dim_ << ", |V|=" << num_vertices()
      << ", |F|=" << num_facets() << ")";
  return out.str();
}

}  // namespace toprr
