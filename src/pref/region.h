// The facet-based convex polytope representation of preference regions
// (paper Sec. 4.2.2).
//
// A region stores its defining vertices explicitly (supporting the vertex
// tests of Lemma 3 / 5 / 7) and its bounding facets, each a halfspace
// augmented with the ids of incident vertices (supporting exact splits
// without convex-hull recomputation, unlike the vertex-based model, and
// without redundant halfspaces, unlike the halfspace-based model).
#ifndef TOPRR_PREF_REGION_H_
#define TOPRR_PREF_REGION_H_

#include <optional>
#include <string>
#include <vector>

#include "geom/hyperplane.h"
#include "geom/vec.h"
#include "pref/pref_space.h"

namespace toprr {

/// A bounding facet: the halfspace (region side included) plus incident
/// vertex ids.
struct RegionFacet {
  Halfspace halfspace;
  std::vector<int> vertex_ids;
};

struct PrefRegionSplit;

/// A convex polytope in reduced preference coordinates (dimension m >= 1).
class PrefRegion {
 public:
  PrefRegion() = default;

  /// Builds the region for an axis-aligned preference box.
  static PrefRegion FromBox(const PrefBox& box);

  /// Builds a region from explicit vertices and facets (used in tests).
  static PrefRegion FromVerticesAndFacets(std::vector<Vec> vertices,
                                          std::vector<RegionFacet> facets);

  size_t dim() const { return vertices_.empty() ? 0 : vertices_[0].dim(); }
  const std::vector<Vec>& vertices() const { return vertices_; }
  const std::vector<RegionFacet>& facets() const { return facets_; }
  bool empty() const { return vertices_.empty(); }

  /// Mean of the defining vertices (inside the region by convexity).
  Vec Centroid() const;

  /// True if x satisfies all facet halfspaces within tol.
  bool Contains(const Vec& x, double tol = 1e-9) const;

  /// Splits the region by `plane` following the paper's three-case facet
  /// distribution. Vertices within eps of the plane join both children.
  PrefRegionSplit Split(const Hyperplane& plane, double eps = 1e-10) const;

  std::string DebugString() const;

 private:
  std::vector<Vec> vertices_;
  std::vector<RegionFacet> facets_;
};

/// The outcome of splitting by a hyperplane: the sub-region on the
/// negative side (normal.x <= offset) and on the positive side. Either
/// may be absent when the hyperplane does not actually cut the region.
struct PrefRegionSplit {
  std::optional<PrefRegion> below;
  std::optional<PrefRegion> above;
};

}  // namespace toprr

#endif  // TOPRR_PREF_REGION_H_
