// The continuous preference space W (paper Sec. 3.1).
//
// A weight vector w has d non-negative components summing to 1; the last
// component is implied, so W is the (d-1)-dimensional simplex
// { x >= 0, sum(x) <= 1 } in "reduced coordinates" x = (w[0..d-2]).
//
// Scores in reduced coordinates:
//   S_x(p) = p[m] + sum_j x[j] * (p[j] - p[m])        with m = d-1,
// so score comparisons between two options become hyperplanes in W --
// the wHP(p_i, p_j) objects at the heart of the paper's algorithms.
#ifndef TOPRR_PREF_PREF_SPACE_H_
#define TOPRR_PREF_PREF_SPACE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geom/hyperplane.h"
#include "geom/vec.h"

namespace toprr {

/// Lifts reduced coordinates x (dim d-1) to the full weight vector (dim d).
Vec FullWeight(const Vec& x);

/// Drops the last (implied) weight: w (dim d) -> x (dim d-1).
Vec ReducedWeight(const Vec& w);

/// Score of option p (d contiguous doubles) at reduced weights x (dim d-1).
double ReducedScore(const double* p, const Vec& x);

/// Raw-buffer variant for flat vertex storage (pref/flat_region.h): x is
/// m contiguous doubles. Same accumulation order as the Vec overload, so
/// results are bit-identical.
double ReducedScore(const double* p, const double* x, size_t m);

/// S_x(p) - S_x(q) for options p, q of dimension x.dim()+1.
double ReducedScoreDiff(const double* p, const double* q, const Vec& x);

/// Raw-buffer variant, bit-identical to the Vec overload.
double ReducedScoreDiff(const double* p, const double* q, const double* x,
                        size_t m);

/// The hyperplane wHP(p, q) = { x : S_x(p) = S_x(q) } in reduced
/// coordinates. Options are given as raw rows of dimension dim+1.
Hyperplane ScoreEqualityHyperplane(const double* p, const double* q,
                                   size_t dim);

/// The halfspace wH(p, q) = { x : S_x(p) >= S_x(q) } in a.x <= b form.
Halfspace ScorePreferenceHalfspace(const double* p, const double* q,
                                   size_t dim);

/// An axis-aligned preference box [lo, hi] in reduced coordinates -- the
/// hyper-rectangular wR used throughout the paper's evaluation.
struct PrefBox {
  Vec lo;
  Vec hi;

  size_t dim() const { return lo.dim(); }

  /// True if x is inside (with tolerance).
  bool Contains(const Vec& x, double tol = 1e-12) const;

  /// All 2^dim corner vertices. CHECK-fails for dim > 24.
  std::vector<Vec> Vertices() const;

  /// The 2*dim bounding halfspaces.
  std::vector<Halfspace> Halfspaces() const;

  /// True if every corner is a valid preference (x >= 0, sum(x) <= 1).
  bool InsideSimplex(double tol = 1e-12) const;

  /// Center point.
  Vec Center() const;
};

/// Closed-form minimum of S_x(p) - S_x(q) over a preference box (used by
/// the r-dominance test of the r-skyband filter; see topk/rskyband.h).
double MinScoreDiffOverBox(const double* p, const double* q,
                           const PrefBox& box);

/// Maximum counterpart.
double MaxScoreDiffOverBox(const double* p, const double* q,
                           const PrefBox& box);

/// Generates a random hyper-cubic wR with side `sigma` (fraction of the
/// unit axis, e.g. 0.01 for the paper's 1%), fully inside the preference
/// simplex. When the cube cannot fit (sigma * (d-1) near 1), the side is
/// shrunk to fit and a warning is logged.
PrefBox RandomPrefBox(size_t dim, double sigma, Rng& rng);

/// Table-7 variant: one random side has length gamma * s and the others s,
/// with s chosen so the box volume equals sigma^dim.
PrefBox RandomElongatedPrefBox(size_t dim, double sigma, double gamma,
                               Rng& rng);

}  // namespace toprr

#endif  // TOPRR_PREF_PREF_SPACE_H_
