#include "pref/region.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "common/check.h"
#include "common/logging.h"

namespace toprr {
namespace {

// Quantization used to merge duplicate vertices produced by degenerate
// edge intersections.
std::vector<int64_t> QuantizeKey(const Vec& v, double tol) {
  std::vector<int64_t> key(v.dim());
  for (size_t i = 0; i < v.dim(); ++i) {
    key[i] = static_cast<int64_t>(std::llround(v[i] / tol));
  }
  return key;
}

}  // namespace

PrefRegion PrefRegion::FromBox(const PrefBox& box) {
  const size_t m = box.dim();
  CHECK_GE(m, 1u);
  PrefRegion region;
  region.vertices_ = box.Vertices();  // corner `mask` has bit j = hi side

  // Facets: per axis j, the lo facet holds corners with bit j = 0, the hi
  // facet those with bit j = 1.
  for (size_t j = 0; j < m; ++j) {
    RegionFacet lo_facet;
    Vec lo_normal(m);
    lo_normal[j] = -1.0;
    lo_facet.halfspace = Halfspace(std::move(lo_normal), -box.lo[j]);
    RegionFacet hi_facet;
    Vec hi_normal(m);
    hi_normal[j] = 1.0;
    hi_facet.halfspace = Halfspace(std::move(hi_normal), box.hi[j]);
    for (uint64_t mask = 0; mask < (uint64_t{1} << m); ++mask) {
      if ((mask >> j) & 1) {
        hi_facet.vertex_ids.push_back(static_cast<int>(mask));
      } else {
        lo_facet.vertex_ids.push_back(static_cast<int>(mask));
      }
    }
    region.facets_.push_back(std::move(lo_facet));
    region.facets_.push_back(std::move(hi_facet));
  }
  return region;
}

PrefRegion PrefRegion::FromVerticesAndFacets(std::vector<Vec> vertices,
                                             std::vector<RegionFacet> facets) {
  PrefRegion region;
  region.vertices_ = std::move(vertices);
  region.facets_ = std::move(facets);
  return region;
}

Vec PrefRegion::Centroid() const {
  CHECK(!vertices_.empty());
  Vec c(dim());
  for (const Vec& v : vertices_) c += v;
  c /= static_cast<double>(vertices_.size());
  return c;
}

bool PrefRegion::Contains(const Vec& x, double tol) const {
  for (const RegionFacet& f : facets_) {
    if (!f.halfspace.Contains(x, tol)) return false;
  }
  return true;
}

PrefRegionSplit PrefRegion::Split(const Hyperplane& plane,
                                  double eps) const {
  const size_t m = dim();
  CHECK_GE(m, 1u);
  PrefRegionSplit result;

  // Classify defining vertices by signed distance to the plane.
  const size_t nv = vertices_.size();
  std::vector<double> sval(nv);
  std::vector<Side> side(nv);
  size_t num_below = 0;
  size_t num_above = 0;
  for (size_t i = 0; i < nv; ++i) {
    sval[i] = plane.Eval(vertices_[i]);
    side[i] = plane.Classify(vertices_[i], eps);
    if (side[i] == Side::kBelow) ++num_below;
    if (side[i] == Side::kAbove) ++num_above;
  }
  if (num_above == 0) {
    result.below = *this;
    return result;
  }
  if (num_below == 0) {
    result.above = *this;
    return result;
  }

  // Per-vertex facet membership as bitsets (words of 64 facets).
  const size_t nf = facets_.size();
  const size_t words = (nf + 63) / 64;
  std::vector<uint64_t> member(nv * words, 0);
  const auto member_of = [&](size_t v) { return member.data() + v * words; };
  for (size_t fi = 0; fi < nf; ++fi) {
    for (int vid : facets_[fi].vertex_ids) {
      member[static_cast<size_t>(vid) * words + fi / 64] |=
          uint64_t{1} << (fi % 64);
    }
  }

  // New vertices on edges that cross the plane. Vertex adjacency uses the
  // exact combinatorial oracle of the double-description method: u and w
  // span an edge iff no third vertex lies on every facet they share. (The
  // naive "share >= m-1 facets" rule admits spurious edges on degenerate
  // polytopes, whose fake vertices then cascade exponentially across
  // recursive splits.)
  // Smallest facet (by incident-vertex count) per vertex pair is scanned
  // instead of all vertices: any vertex containing the shared facet set is
  // in particular on every shared facet.
  const auto adjacent = [&](size_t i, size_t j, std::vector<uint64_t>& shared) {
    const uint64_t* a = member_of(i);
    const uint64_t* b = member_of(j);
    size_t count = 0;
    for (size_t w = 0; w < words; ++w) {
      shared[w] = a[w] & b[w];
      count += static_cast<size_t>(__builtin_popcountll(shared[w]));
    }
    if (count + 1 < m) return false;  // rank can be at most |shared|
    // Dimension 1: the polytope is an interval, every (below, above) pair
    // is the edge, and there are no shared facets to scan.
    if (count == 0) return true;
    // Scan candidates from the smallest shared facet only.
    size_t best_facet = nf;
    size_t best_size = SIZE_MAX;
    for (size_t fi = 0; fi < nf; ++fi) {
      if (((shared[fi / 64] >> (fi % 64)) & 1) != 0 &&
          facets_[fi].vertex_ids.size() < best_size) {
        best_size = facets_[fi].vertex_ids.size();
        best_facet = fi;
      }
    }
    DCHECK_LT(best_facet, nf);
    for (int tv : facets_[best_facet].vertex_ids) {
      const size_t t = static_cast<size_t>(tv);
      if (t == i || t == j) continue;
      const uint64_t* c = member_of(t);
      bool contains = true;
      for (size_t w = 0; w < words; ++w) {
        if ((shared[w] & ~c[w]) != 0) {
          contains = false;
          break;
        }
      }
      if (contains) return false;  // another vertex on the common face
    }
    return true;
  };

  struct NewVertex {
    Vec point;
    std::vector<int> shared_facets;  // sorted facet ids
  };
  std::vector<NewVertex> new_vertices;
  std::map<std::vector<int64_t>, size_t> seen;
  const double merge_tol = std::max(eps, 1e-12) * 16.0;
  // Register on-plane old vertices so coincident new points merge into
  // them instead of duplicating (duplicates would defeat the adjacency
  // oracle in descendant regions).
  for (size_t i = 0; i < nv; ++i) {
    if (side[i] == Side::kOn) {
      seen.emplace(QuantizeKey(vertices_[i], merge_tol), SIZE_MAX);
    }
  }
  std::vector<uint64_t> shared(words);
  for (size_t i = 0; i < nv; ++i) {
    if (side[i] != Side::kBelow) continue;
    for (size_t j = 0; j < nv; ++j) {
      if (side[j] != Side::kAbove) continue;
      if (!adjacent(i, j, shared)) continue;
      const double t = sval[i] / (sval[i] - sval[j]);
      Vec point = Lerp(vertices_[i], vertices_[j], t);
      const auto key = QuantizeKey(point, merge_tol);
      auto [it, inserted] = seen.emplace(key, new_vertices.size());
      if (!inserted) continue;  // coincides with an existing vertex
      std::vector<int> shared_ids;
      for (size_t fi = 0; fi < nf; ++fi) {
        if ((shared[fi / 64] >> (fi % 64)) & 1) {
          shared_ids.push_back(static_cast<int>(fi));
        }
      }
      new_vertices.push_back({std::move(point), std::move(shared_ids)});
    }
  }

  // Assemble one child polytope for the requested side.
  const auto build_child = [&](bool below_side) -> std::optional<PrefRegion> {
    PrefRegion child;
    std::vector<int> old_to_new(nv, -1);
    // Old vertices kept on this side (strict side + on-plane).
    for (size_t i = 0; i < nv; ++i) {
      const bool keep = below_side ? side[i] != Side::kAbove
                                   : side[i] != Side::kBelow;
      if (keep) {
        old_to_new[i] = static_cast<int>(child.vertices_.size());
        child.vertices_.push_back(vertices_[i]);
      }
    }
    std::vector<int> new_ids(new_vertices.size());
    for (size_t i = 0; i < new_vertices.size(); ++i) {
      new_ids[i] = static_cast<int>(child.vertices_.size());
      child.vertices_.push_back(new_vertices[i].point);
    }
    // Distribute original facets (the paper's cases 1-3).
    for (size_t fi = 0; fi < facets_.size(); ++fi) {
      const RegionFacet& f = facets_[fi];
      RegionFacet nf;
      nf.halfspace = f.halfspace;
      for (int vid : f.vertex_ids) {
        if (old_to_new[vid] >= 0) nf.vertex_ids.push_back(old_to_new[vid]);
      }
      for (size_t i = 0; i < new_vertices.size(); ++i) {
        if (std::binary_search(new_vertices[i].shared_facets.begin(),
                               new_vertices[i].shared_facets.end(),
                               static_cast<int>(fi))) {
          nf.vertex_ids.push_back(new_ids[i]);
        }
      }
      // A facet needs at least m vertices to be (m-1)-dimensional.
      if (nf.vertex_ids.size() >= m) child.facets_.push_back(std::move(nf));
    }
    // The splitting facet itself: on-plane old vertices + all new ones.
    RegionFacet split_facet;
    if (below_side) {
      split_facet.halfspace = Halfspace(plane.normal, plane.offset);
    } else {
      split_facet.halfspace = Halfspace(plane.normal * -1.0, -plane.offset);
    }
    for (size_t i = 0; i < nv; ++i) {
      if (side[i] == Side::kOn && old_to_new[i] >= 0) {
        split_facet.vertex_ids.push_back(old_to_new[i]);
      }
    }
    for (size_t i = 0; i < new_vertices.size(); ++i) {
      split_facet.vertex_ids.push_back(new_ids[i]);
    }
    if (split_facet.vertex_ids.size() >= m) {
      child.facets_.push_back(std::move(split_facet));
    }
    // Full-dimensionality sanity: a bounded m-polytope needs >= m+1
    // vertices and >= m+1 facets.
    if (child.vertices_.size() < m + 1 || child.facets_.size() < m + 1) {
      return std::nullopt;
    }
    return child;
  };

  result.below = build_child(/*below_side=*/true);
  result.above = build_child(/*below_side=*/false);
  return result;
}

std::string PrefRegion::DebugString() const {
  std::ostringstream out;
  out << "PrefRegion(m=" << dim() << ", |V|=" << vertices_.size()
      << ", |F|=" << facets_.size() << ")\n";
  for (const Vec& v : vertices_) out << "  v " << v.ToString() << "\n";
  for (const RegionFacet& f : facets_) {
    out << "  f " << f.halfspace.ToString() << " verts=[";
    for (size_t i = 0; i < f.vertex_ids.size(); ++i) {
      if (i > 0) out << ",";
      out << f.vertex_ids[i];
    }
    out << "]\n";
  }
  return out.str();
}

}  // namespace toprr
