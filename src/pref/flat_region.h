// Flat-geometry region engine: the SoA counterpart of PrefRegion for the
// partition hot path (paper Sec. 4.2.2 splitting, re-laid-out for the
// hardware).
//
// PrefRegion stores one heap-allocated Vec per vertex and one id vector
// per facet, and its Split dedups new vertices through a std::map keyed
// on freshly allocated quantize vectors -- scattered allocation on every
// region test. FlatRegion keeps the same polytope in four contiguous
// buffers:
//
//  * coords_:        nv x m row-major vertex coordinates (m fixed per
//                    query), consumed directly by the scoring kernel's
//                    sweeps -- no std::vector<Vec> re-gather;
//  * facet_planes_:  nf x (m+1) halfspace rows (normal then offset);
//  * facet_ids_ + facet_begin_: every facet's incident-vertex id list in
//                    one pooled index buffer with prefix offsets.
//
// Split runs as one fused EvalClassifyBatch sweep over coords_, replaces
// the quantize map with a sorted scratch array of fixed-stride packed
// keys, and keeps every piece of scratch in a per-worker GeomArena (owned
// by the scheduler's WorkerSlots next to the ScoreArena), so steady-state
// splits grow no scratch at all -- growth events are counted and tests
// assert the steady state (flat_geometry_test).
//
// Bit-identical contract: Split performs the same arithmetic in the same
// order as PrefRegion::Split (classification through DotSpan, crossing
// points in Lerp's operation order, first-insertion-wins dedup at the
// same quantize tolerance, children assembled in the same vertex and
// facet order), so its output polytopes equal the legacy ones bit for
// bit. Asserted region-by-region and through the whole solver by
// flat_geometry_test; the legacy path stays reachable behind
// ToprrOptions::use_flat_geometry.
#ifndef TOPRR_PREF_FLAT_REGION_H_
#define TOPRR_PREF_FLAT_REGION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geom/hyperplane.h"
#include "geom/vec.h"
#include "pref/region.h"

namespace toprr {

/// Flat-geometry telemetry, accumulated per GeomArena (one per scheduler
/// worker) and folded into SchedulerWorkerStats at merge time.
struct GeomCounters {
  uint64_t split_vertices_classified = 0;  // vertices swept by flat Split
  uint64_t geom_arena_allocations = 0;     // scratch growth events
};

/// Per-worker scratch for the flat split: classification rows, incidence
/// bitsets, packed quantize keys, crossing-point staging, and child
/// assembly maps. Buffer capacity never shrinks, so same-shaped splits
/// stop allocating once warm; every growth event increments
/// geom_arena_allocations. Owned by a scheduler worker slot
/// (core/scheduler.cc) next to its ScoreArena; nothing here is
/// thread-safe.
class GeomArena {
 public:
  GeomArena() = default;
  GeomArena(const GeomArena&) = delete;
  GeomArena& operator=(const GeomArena&) = delete;

  const GeomCounters& counters() const { return counters_; }
  GeomCounters& counters() { return counters_; }

 private:
  friend class FlatRegion;

  std::vector<double> sval_;            // signed distances, one per vertex
  std::vector<Side> side_;              // classifications, one per vertex
  std::vector<uint64_t> member_;        // nv x words incidence bitsets
  std::vector<uint64_t> shared_;        // one pair's shared-facet words
  std::vector<int64_t> keys_;           // packed quantize keys, stride m
  std::vector<uint32_t> key_refs_;      // sort handles over keys_
  std::vector<double> cross_coords_;    // crossing points, stride m
  std::vector<uint64_t> cross_shared_;  // per-crossing shared bitsets
  std::vector<uint32_t> survivors_;     // deduped crossing generations
  std::vector<int> old_to_new_;         // child vertex renumbering
  std::vector<int> new_ids_;            // child ids of the new vertices
  GeomCounters counters_;
};

/// A convex polytope in reduced preference coordinates with flat SoA
/// storage. Same geometry model as PrefRegion (defining vertices +
/// bounding facets with incident-vertex ids); conversions are exact
/// coordinate copies in both directions.
class FlatRegion {
 public:
  FlatRegion() = default;

  /// Exact conversion from the legacy representation (and back).
  static FlatRegion FromRegion(const PrefRegion& region);
  PrefRegion ToRegion() const;

  /// Builds the region for an axis-aligned preference box, identical to
  /// FromRegion(PrefRegion::FromBox(box)).
  static FlatRegion FromBox(const PrefBox& box);

  size_t dim() const { return dim_; }
  bool empty() const { return coords_.empty(); }
  size_t num_vertices() const {
    return dim_ == 0 ? 0 : coords_.size() / dim_;
  }
  /// Row-major vertex buffer (num_vertices() x dim()); the scoring
  /// kernel sweeps it directly.
  const std::vector<double>& coords() const { return coords_; }
  const double* vertex(size_t v) const { return coords_.data() + v * dim_; }
  Vec VertexVec(size_t v) const;

  size_t num_facets() const {
    return facet_begin_.empty() ? 0 : facet_begin_.size() - 1;
  }
  /// Facet f's bounding halfspace: dim() normal coefficients then offset.
  const double* facet_plane(size_t f) const {
    return facet_planes_.data() + f * (dim_ + 1);
  }
  double facet_offset(size_t f) const { return facet_plane(f)[dim_]; }
  /// Facet f's incident-vertex ids (a span of the pooled index buffer).
  const int* facet_ids(size_t f) const {
    return facet_ids_.data() + facet_begin_[f];
  }
  size_t facet_size(size_t f) const {
    return facet_begin_[f + 1] - facet_begin_[f];
  }

  /// Mean of the defining vertices; same accumulation order as
  /// PrefRegion::Centroid.
  Vec Centroid() const;

  /// True if x satisfies all facet halfspaces within tol.
  bool Contains(const Vec& x, double tol = 1e-9) const;

  /// Splits by `plane` into the negative-side and positive-side children
  /// (either may come back empty when the plane does not cut), with all
  /// scratch in `arena`. Bit-identical to PrefRegion::Split -- see the
  /// file comment.
  void Split(const Hyperplane& plane, double eps, GeomArena& arena,
             std::optional<FlatRegion>* below,
             std::optional<FlatRegion>* above) const;

  std::string DebugString() const;

 private:
  size_t dim_ = 0;
  std::vector<double> coords_;        // nv x dim, row-major
  std::vector<double> facet_planes_;  // nf x (dim+1)
  std::vector<int> facet_ids_;        // pooled incident-vertex ids
  std::vector<size_t> facet_begin_;   // nf+1 prefix offsets
};

}  // namespace toprr

#endif  // TOPRR_PREF_FLAT_REGION_H_
