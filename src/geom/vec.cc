#include "geom/vec.h"

#include <cmath>
#include <sstream>

namespace toprr {

Vec& Vec::operator+=(const Vec& other) {
  DCHECK_EQ(dim(), other.dim());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Vec& Vec::operator-=(const Vec& other) {
  DCHECK_EQ(dim(), other.dim());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Vec& Vec::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Vec& Vec::operator/=(double s) {
  DCHECK_NE(s, 0.0);
  for (double& v : data_) v /= s;
  return *this;
}

double Vec::Norm() const { return std::sqrt(SquaredNorm()); }

double Vec::SquaredNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return acc;
}

double Vec::Sum() const {
  double acc = 0.0;
  for (double v : data_) acc += v;
  return acc;
}

double Vec::MaxAbs() const {
  double acc = 0.0;
  for (double v : data_) acc = std::max(acc, std::fabs(v));
  return acc;
}

std::string Vec::ToString(int digits) const {
  std::ostringstream out;
  out.precision(digits);
  out << "(";
  for (size_t i = 0; i < data_.size(); ++i) {
    if (i > 0) out << ", ";
    out << data_[i];
  }
  out << ")";
  return out.str();
}

double Dot(const Vec& a, const Vec& b) {
  DCHECK_EQ(a.dim(), b.dim());
  return DotSpan(a.data(), b.data(), a.dim());
}

double SquaredDistance(const Vec& a, const Vec& b) {
  DCHECK_EQ(a.dim(), b.dim());
  double acc = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) {
    const double diff = a[i] - b[i];
    acc += diff * diff;
  }
  return acc;
}

double Distance(const Vec& a, const Vec& b) {
  return std::sqrt(SquaredDistance(a, b));
}

bool ApproxEqual(const Vec& a, const Vec& b, double tol) {
  if (a.dim() != b.dim()) return false;
  for (size_t i = 0; i < a.dim(); ++i) {
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

Vec Lerp(const Vec& a, const Vec& b, double t) {
  DCHECK_EQ(a.dim(), b.dim());
  Vec out(a.dim());
  for (size_t i = 0; i < a.dim(); ++i) out[i] = a[i] + t * (b[i] - a[i]);
  return out;
}

}  // namespace toprr
