// Hyperplanes and halfspaces in arbitrary dimension.
//
// A Hyperplane is the locus  normal . x = offset.
// A Halfspace is the closed region  normal . x <= offset.
// These back both spaces of the paper: preference-space score hyperplanes
// wHP(p_i, p_j) and option-space impact halfspaces oH(w).
#ifndef TOPRR_GEOM_HYPERPLANE_H_
#define TOPRR_GEOM_HYPERPLANE_H_

#include <string>
#include <vector>

#include "geom/vec.h"

namespace toprr {

/// Side classification of a point against a hyperplane, with tolerance.
enum class Side {
  kBelow,  // normal . x < offset - tol
  kOn,     // |normal . x - offset| <= tol
  kAbove,  // normal . x > offset + tol
};

/// The locus normal . x = offset.
struct Hyperplane {
  Vec normal;
  double offset = 0.0;

  Hyperplane() = default;
  Hyperplane(Vec n, double b) : normal(std::move(n)), offset(b) {}

  size_t dim() const { return normal.dim(); }

  /// Signed evaluation normal . x - offset (positive on the kAbove side).
  double Eval(const Vec& x) const { return Dot(normal, x) - offset; }

  /// Classifies `x` with absolute tolerance `tol`.
  Side Classify(const Vec& x, double tol) const {
    const double v = Eval(x);
    if (v > tol) return Side::kAbove;
    if (v < -tol) return Side::kBelow;
    return Side::kOn;
  }

  /// Scales the equation so ||normal|| = 1. CHECK-fails on a zero normal.
  void Normalize();

  std::string ToString() const;
};

/// The closed region normal . x <= offset.
struct Halfspace {
  Vec normal;
  double offset = 0.0;

  Halfspace() = default;
  Halfspace(Vec n, double b) : normal(std::move(n)), offset(b) {}

  size_t dim() const { return normal.dim(); }

  /// True if x satisfies the constraint within `tol`.
  bool Contains(const Vec& x, double tol = 1e-9) const {
    return Dot(normal, x) <= offset + tol;
  }

  /// Amount by which x violates the constraint (<= 0 means inside).
  double Violation(const Vec& x) const { return Dot(normal, x) - offset; }

  /// The bounding hyperplane normal . x = offset.
  Hyperplane Boundary() const { return Hyperplane(normal, offset); }

  /// Scales the inequality so ||normal|| = 1.
  void Normalize();

  std::string ToString() const;
};

/// Batched evaluation + classification of `count` points stored row-major
/// in `coords` (point i at coords + i*dim) against one hyperplane: one
/// fused sweep writes sval[i] = Eval(point i) and side[i] =
/// Classify(point i, tol), and tallies the strict sides. Accumulation per
/// point routes through DotSpan exactly like Eval, so the svals are
/// bit-identical to per-point calls. The flat-geometry split
/// (pref/flat_region.h) is the hot caller.
void EvalClassifyBatch(const Hyperplane& plane, const double* coords,
                       size_t count, double tol, double* sval, Side* side,
                       size_t* num_below, size_t* num_above);

/// Axis-aligned box constraints lo <= x <= hi as a list of 2*dim halfspaces.
std::vector<Halfspace> BoxHalfspaces(const Vec& lo, const Vec& hi);

}  // namespace toprr

#endif  // TOPRR_GEOM_HYPERPLANE_H_
