// Vertex enumeration of an intersection of halfspaces (qhull's "H-mode"),
// via point/hyperplane duality about a strictly interior point:
//
//   halfspace a.x <= b with interior x0  <->  dual point a / (b - a.x0)
//
// Facets of the dual hull correspond one-to-one to vertices of the primal
// intersection. Redundant halfspaces become interior dual points and drop
// out automatically.
#ifndef TOPRR_GEOM_HALFSPACE_INTERSECTION_H_
#define TOPRR_GEOM_HALFSPACE_INTERSECTION_H_

#include <optional>
#include <vector>

#include "geom/hyperplane.h"
#include "geom/vec.h"

namespace toprr {

struct HalfspaceIntersectionResult {
  /// Vertices of the intersection polytope (deduplicated).
  std::vector<Vec> vertices;
  /// Indices (into the input halfspace list) that support at least one
  /// vertex, i.e. the non-redundant constraints.
  std::vector<size_t> active_halfspaces;
  /// True when a dual facet at infinity was detected, i.e. the primal
  /// intersection is unbounded (vertices lists only the finite ones).
  bool unbounded = false;
};

struct HalfspaceIntersectionOptions {
  double eps = 1e-9;
  /// Vertices closer than this (L-inf) are merged.
  double merge_tol = 1e-7;
};

/// Enumerates the vertices of the intersection of `halfspaces` given a
/// strictly interior point (every constraint satisfied with slack > eps;
/// CHECK-fails otherwise). Returns std::nullopt when the dual hull is
/// degenerate (intersection not full-dimensional around `interior`).
std::optional<HalfspaceIntersectionResult> IntersectHalfspaces(
    const std::vector<Halfspace>& halfspaces, const Vec& interior,
    const HalfspaceIntersectionOptions& options = {});

/// Convenience overload that finds the interior point itself via the
/// Chebyshev center. Returns std::nullopt when the system is infeasible or
/// has empty interior.
std::optional<HalfspaceIntersectionResult> IntersectHalfspaces(
    const std::vector<Halfspace>& halfspaces, size_t dim,
    const HalfspaceIntersectionOptions& options = {});

}  // namespace toprr

#endif  // TOPRR_GEOM_HALFSPACE_INTERSECTION_H_
