#include "geom/qp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/logging.h"
#include "geom/linalg.h"
#include "geom/lp.h"

namespace toprr {
namespace {

constexpr double kTol = 1e-9;

// Solves the equality-constrained step for the active set W at point x:
//   minimize 0.5 ||x + p - target||^2  s.t.  a_i . p = 0 for i in W.
// With an identity Hessian: p = g - A^T lambda, A A^T lambda = A g,
// where g = target - x. Returns false if the active-set Gram matrix is
// singular (linearly dependent working set).
bool SolveStep(const std::vector<Halfspace>& constraints,
               const std::vector<size_t>& working, const Vec& x,
               const Vec& target, Vec* step, Vec* lambda) {
  const size_t d = x.dim();
  const Vec g = target - x;
  const size_t w = working.size();
  if (w == 0) {
    *step = g;
    *lambda = Vec();
    return true;
  }
  Matrix gram(w, w);
  Vec rhs(w);
  for (size_t i = 0; i < w; ++i) {
    const Vec& ai = constraints[working[i]].normal;
    for (size_t j = 0; j < w; ++j) {
      gram.At(i, j) = Dot(ai, constraints[working[j]].normal);
    }
    rhs[i] = Dot(ai, g);
  }
  auto solved = SolveLinearSystem(std::move(gram), std::move(rhs));
  if (!solved.has_value()) return false;
  *lambda = std::move(*solved);
  Vec p = g;
  for (size_t i = 0; i < w; ++i) {
    p -= (*lambda)[i] * constraints[working[i]].normal;
  }
  *step = std::move(p);
  (void)d;
  return true;
}

}  // namespace

QpResult ProjectOntoPolytope(const Vec& target,
                             const std::vector<Halfspace>& constraints,
                             const Vec* start, int max_iterations) {
  const size_t d = target.dim();
  QpResult result;

  Vec x;
  if (start != nullptr) {
    x = *start;
  } else {
    double radius = 0.0;
    const LpResult center = ChebyshevCenter(constraints, d, &radius);
    if (!center.ok() || radius < -kTol) {
      result.status = QpStatus::kInfeasible;
      return result;
    }
    x = center.x;
  }
  for (const Halfspace& h : constraints) {
    CHECK_EQ(h.dim(), d);
    if (h.Violation(x) > 1e-6) {
      result.status = QpStatus::kInfeasible;
      return result;
    }
  }

  // Working set: indices of constraints treated as equalities.
  std::vector<size_t> working;
  for (size_t i = 0; i < constraints.size(); ++i) {
    if (std::fabs(constraints[i].Violation(x)) <= kTol) {
      // Only add if linearly independent of the current working set (lazy:
      // SolveStep detects dependence and we drop then).
      working.push_back(i);
      if (working.size() >= d) break;
    }
  }

  for (int iter = 0; iter < max_iterations; ++iter) {
    Vec step;
    Vec lambda;
    while (!SolveStep(constraints, working, x, target, &step, &lambda)) {
      // Dependent working set: drop the most recently added constraint.
      CHECK(!working.empty());
      working.pop_back();
    }

    if (step.Norm() <= kTol) {
      // Stationary on the working set; check multipliers for optimality.
      if (working.empty()) {
        result.status = QpStatus::kOptimal;
        result.x = x;
        result.objective = 0.5 * SquaredDistance(x, target);
        return result;
      }
      size_t drop = working.size();
      double most_negative = -kTol;
      for (size_t i = 0; i < working.size(); ++i) {
        if (lambda[i] < most_negative) {
          most_negative = lambda[i];
          drop = i;
        }
      }
      if (drop == working.size()) {
        result.status = QpStatus::kOptimal;
        result.x = x;
        result.objective = 0.5 * SquaredDistance(x, target);
        return result;
      }
      working.erase(working.begin() + static_cast<long>(drop));
      continue;
    }

    // Line search to the nearest blocking constraint.
    double alpha = 1.0;
    size_t blocking = constraints.size();
    for (size_t i = 0; i < constraints.size(); ++i) {
      if (std::find(working.begin(), working.end(), i) != working.end()) {
        continue;
      }
      const double along = Dot(constraints[i].normal, step);
      if (along > kTol) {
        const double room =
            constraints[i].offset - Dot(constraints[i].normal, x);
        const double limit = std::max(0.0, room) / along;
        if (limit < alpha) {
          alpha = limit;
          blocking = i;
        }
      }
    }
    x += alpha * step;
    if (blocking < constraints.size()) {
      working.push_back(blocking);
    }
  }

  LOG(WARNING) << "QP hit the iteration limit";
  result.status = QpStatus::kIterationLimit;
  result.x = x;
  result.objective = 0.5 * SquaredDistance(x, target);
  return result;
}

QpResult MinimumQuadraticCostPoint(const std::vector<Halfspace>& constraints,
                                   size_t dim) {
  return ProjectOntoPolytope(Vec(dim, 0.0), constraints);
}

}  // namespace toprr
