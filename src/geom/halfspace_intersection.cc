#include "geom/halfspace_intersection.h"

#include <cmath>
#include <map>
#include <vector>

#include "common/check.h"
#include "common/logging.h"
#include "geom/convex_hull.h"
#include "geom/lp.h"

namespace toprr {
namespace {

// Quantized coordinate key for merging near-identical vertices.
std::vector<int64_t> QuantizeKey(const Vec& v, double tol) {
  std::vector<int64_t> key(v.dim());
  for (size_t i = 0; i < v.dim(); ++i) {
    key[i] = static_cast<int64_t>(std::llround(v[i] / tol));
  }
  return key;
}

}  // namespace

std::optional<HalfspaceIntersectionResult> IntersectHalfspaces(
    const std::vector<Halfspace>& halfspaces, const Vec& interior,
    const HalfspaceIntersectionOptions& options) {
  const size_t d = interior.dim();
  CHECK(!halfspaces.empty());

  // Dual points; constraints with tiny slack get large dual coordinates,
  // which the hull handles as long as slack > eps.
  std::vector<Vec> dual;
  dual.reserve(halfspaces.size());
  std::vector<size_t> dual_to_input;
  for (size_t i = 0; i < halfspaces.size(); ++i) {
    const Halfspace& h = halfspaces[i];
    CHECK_EQ(h.dim(), d);
    const double slack = h.offset - Dot(h.normal, interior);
    CHECK_GT(slack, options.eps)
        << "interior point not strictly inside halfspace " << i;
    dual.push_back(h.normal / slack);
    dual_to_input.push_back(i);
  }

  ConvexHullOptions hull_options;
  hull_options.eps = options.eps;
  auto hull = ComputeConvexHull(dual, hull_options);
  if (!hull.has_value()) return std::nullopt;

  HalfspaceIntersectionResult result;
  std::map<std::vector<int64_t>, size_t> seen;
  std::vector<bool> active(halfspaces.size(), false);
  for (const HullFacet& f : hull->facets) {
    // Dual facet plane: normal.y = offset. The primal vertex is
    // x0 + normal/offset; offset <= 0 means the primal region recedes to
    // infinity in direction `normal`.
    if (f.offset <= options.eps) {
      result.unbounded = true;
      continue;
    }
    Vec vertex = interior + f.normal / f.offset;
    const auto key = QuantizeKey(vertex, options.merge_tol);
    if (seen.emplace(key, result.vertices.size()).second) {
      result.vertices.push_back(std::move(vertex));
    }
    for (int dv : f.vertices) active[dual_to_input[dv]] = true;
  }
  for (size_t i = 0; i < halfspaces.size(); ++i) {
    if (active[i]) result.active_halfspaces.push_back(i);
  }
  return result;
}

std::optional<HalfspaceIntersectionResult> IntersectHalfspaces(
    const std::vector<Halfspace>& halfspaces, size_t dim,
    const HalfspaceIntersectionOptions& options) {
  double radius = 0.0;
  const LpResult center = ChebyshevCenter(halfspaces, dim, &radius);
  if (!center.ok() || radius <= options.eps) {
    LOG(DEBUG) << "halfspace intersection: no full-dimensional interior "
               << "(radius=" << radius << ")";
    return std::nullopt;
  }
  return IntersectHalfspaces(halfspaces, center.x, options);
}

}  // namespace toprr
