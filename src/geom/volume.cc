#include "geom/volume.h"

#include "common/check.h"
#include "geom/convex_hull.h"
#include "geom/halfspace_intersection.h"

namespace toprr {

double PolytopeVolume(const std::vector<Halfspace>& halfspaces, size_t dim) {
  auto enumeration = IntersectHalfspaces(halfspaces, dim);
  if (!enumeration.has_value() || enumeration->unbounded) return 0.0;
  if (enumeration->vertices.size() < dim + 1) return 0.0;
  return ConvexHullVolume(enumeration->vertices);
}

double EstimatePolytopeVolume(const std::vector<Halfspace>& halfspaces,
                              const Vec& lo, const Vec& hi, size_t samples,
                              Rng& rng) {
  CHECK_EQ(lo.dim(), hi.dim());
  CHECK_GT(samples, 0u);
  const size_t d = lo.dim();
  double box_volume = 1.0;
  for (size_t j = 0; j < d; ++j) {
    CHECK_GE(hi[j], lo[j]);
    box_volume *= hi[j] - lo[j];
  }
  size_t inside = 0;
  Vec x(d);
  for (size_t s = 0; s < samples; ++s) {
    for (size_t j = 0; j < d; ++j) x[j] = rng.Uniform(lo[j], hi[j]);
    bool ok = true;
    for (const Halfspace& h : halfspaces) {
      if (!h.Contains(x, 0.0)) {
        ok = false;
        break;
      }
    }
    if (ok) ++inside;
  }
  return box_volume * static_cast<double>(inside) /
         static_cast<double>(samples);
}

}  // namespace toprr
