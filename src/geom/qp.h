// Convex quadratic programming for cost-optimal option placement:
//
//   minimize   0.5 ||x - target||^2
//   subject to A x <= b
//
// The paper derives the cost-optimal new option / minimum-modification
// enhanced option by quadratic programming over the (convex polytope) TopRR
// result region oR [Sec. 1, Sec. 6.2]. With a Euclidean objective this is a
// projection onto a polytope; we solve it with a primal active-set method
// (Nocedal & Wright Ch. 16 specialization for identity Hessian).
#ifndef TOPRR_GEOM_QP_H_
#define TOPRR_GEOM_QP_H_

#include <vector>

#include "geom/hyperplane.h"
#include "geom/vec.h"

namespace toprr {

enum class QpStatus {
  kOptimal,
  kInfeasible,
  kIterationLimit,
};

struct QpResult {
  QpStatus status = QpStatus::kInfeasible;
  Vec x;                   // the projection (valid when kOptimal)
  double objective = 0.0;  // 0.5 * ||x - target||^2

  bool ok() const { return status == QpStatus::kOptimal; }
};

/// Projects `target` onto the polytope {x : constraints hold}, i.e. finds
/// the feasible point closest (Euclidean) to `target`. A feasible starting
/// point is obtained via the Chebyshev center when `start` is null.
QpResult ProjectOntoPolytope(const Vec& target,
                             const std::vector<Halfspace>& constraints,
                             const Vec* start = nullptr,
                             int max_iterations = 1000);

/// Cost-optimal creation under quadratic manufacturing cost sum_j x_j^2:
/// equivalent to projecting the origin onto the polytope.
QpResult MinimumQuadraticCostPoint(const std::vector<Halfspace>& constraints,
                                   size_t dim);

}  // namespace toprr

#endif  // TOPRR_GEOM_QP_H_
