#include "geom/lp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/logging.h"

namespace toprr {
namespace {

constexpr double kEps = 1e-9;

// Dense tableau for the standard-form program
//   maximize  obj . y   s.t.  T y = rhs,  y >= 0
// produced from the user's free-variable inequality form by the caller.
class SimplexTableau {
 public:
  SimplexTableau(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), cells_((rows + 1) * (cols + 1), 0.0) {}

  // Constraint coefficients are cells (r, c) for r < rows, c < cols.
  double& At(size_t r, size_t c) { return cells_[r * (cols_ + 1) + c]; }
  double At(size_t r, size_t c) const { return cells_[r * (cols_ + 1) + c]; }

  double& Rhs(size_t r) { return cells_[r * (cols_ + 1) + cols_]; }
  double Rhs(size_t r) const { return cells_[r * (cols_ + 1) + cols_]; }

  // Objective row is stored at row index rows_ (reduced costs), with the
  // negated objective value in its RHS cell.
  double& Obj(size_t c) { return cells_[rows_ * (cols_ + 1) + c]; }
  double Obj(size_t c) const { return cells_[rows_ * (cols_ + 1) + c]; }
  double& ObjValue() { return cells_[rows_ * (cols_ + 1) + cols_]; }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  // Gauss-Jordan pivot on (pivot_row, pivot_col) covering the objective row.
  void Pivot(size_t pivot_row, size_t pivot_col) {
    const double pivot = At(pivot_row, pivot_col);
    DCHECK_GT(std::fabs(pivot), 0.0);
    const double inv = 1.0 / pivot;
    for (size_t c = 0; c <= cols_; ++c) {
      cells_[pivot_row * (cols_ + 1) + c] *= inv;
    }
    for (size_t r = 0; r <= rows_; ++r) {
      if (r == pivot_row) continue;
      const double factor = cells_[r * (cols_ + 1) + pivot_col];
      if (factor == 0.0) continue;
      for (size_t c = 0; c <= cols_; ++c) {
        cells_[r * (cols_ + 1) + c] -=
            factor * cells_[pivot_row * (cols_ + 1) + c];
      }
      cells_[r * (cols_ + 1) + pivot_col] = 0.0;  // exact zero for stability
    }
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> cells_;
};

// Runs primal simplex iterations until optimality / unboundedness /
// iteration cap. `allowed_cols` restricts entering-variable choices (used
// in phase 1 vs phase 2). Returns the resulting status.
LpStatus RunSimplex(SimplexTableau& t, std::vector<size_t>& basis,
                    size_t allowed_cols, int max_iterations) {
  const size_t m = t.rows();
  int iteration = 0;
  const int bland_threshold = max_iterations / 2;
  while (true) {
    if (++iteration > max_iterations) return LpStatus::kIterationLimit;
    const bool use_bland = iteration > bland_threshold;

    // Entering variable: reduced cost > eps (we maximize; objective row
    // stores negated coefficients after pivoting, so "improving" means
    // Obj(c) < -eps in the canonical min form). We keep the convention
    // that Obj holds -(reduced cost), improving columns have Obj < -eps.
    size_t enter = allowed_cols;
    double best = -kEps;
    for (size_t c = 0; c < allowed_cols; ++c) {
      const double rc = t.Obj(c);
      if (rc < best) {
        if (use_bland) {
          enter = c;
          break;
        }
        best = rc;
        enter = c;
      }
    }
    if (enter == allowed_cols) return LpStatus::kOptimal;

    // Leaving variable: minimum ratio test.
    size_t leave = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (size_t r = 0; r < m; ++r) {
      const double coeff = t.At(r, enter);
      if (coeff > kEps) {
        const double ratio = t.Rhs(r) / coeff;
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps &&
             (leave == m || basis[r] < basis[leave]))) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave == m) return LpStatus::kUnbounded;

    t.Pivot(leave, enter);
    basis[leave] = enter;
  }
}

}  // namespace

LpResult SolveLp(const Vec& c, const std::vector<Halfspace>& constraints,
                 int max_iterations) {
  const size_t n = c.dim();
  const size_t m = constraints.size();
  LpResult result;

  // Column layout: [x+ (n)] [x- (n)] [slack (m)] [artificial (m, lazily)].
  // Equalities: sign_i * (A_i x+ - A_i x- + s_i) = sign_i * b_i with
  // sign chosen so RHS >= 0; artificial added when sign flips the slack.
  std::vector<int> sign(m, 1);
  size_t num_artificial = 0;
  std::vector<size_t> artificial_col(m, static_cast<size_t>(-1));
  for (size_t i = 0; i < m; ++i) {
    CHECK_EQ(constraints[i].dim(), n);
    if (constraints[i].offset < 0.0) {
      sign[i] = -1;
      ++num_artificial;
    }
  }
  const size_t slack0 = 2 * n;
  const size_t art0 = slack0 + m;
  const size_t total_cols = art0 + num_artificial;

  SimplexTableau t(m, total_cols);
  std::vector<size_t> basis(m);
  size_t next_art = art0;
  for (size_t i = 0; i < m; ++i) {
    const Halfspace& h = constraints[i];
    const double s = static_cast<double>(sign[i]);
    for (size_t j = 0; j < n; ++j) {
      t.At(i, j) = s * h.normal[j];
      t.At(i, n + j) = -s * h.normal[j];
    }
    t.At(i, slack0 + i) = s;
    t.Rhs(i) = s * h.offset;
    if (sign[i] < 0) {
      artificial_col[i] = next_art;
      t.At(i, next_art) = 1.0;
      basis[i] = next_art;
      ++next_art;
    } else {
      basis[i] = slack0 + i;
    }
  }

  // ---- Phase 1: minimize sum of artificials (maximize the negation). ----
  if (num_artificial > 0) {
    // Objective row: for each artificial column coefficient +1 in the
    // minimized sum; in our "Obj stores -(reduced cost of maximization)"
    // convention we maximize -sum(artificials): Obj(art) = +1 initially,
    // then price out basic artificials.
    for (size_t c = art0; c < total_cols; ++c) t.Obj(c) = 1.0;
    for (size_t i = 0; i < m; ++i) {
      if (basis[i] >= art0) {
        // Subtract row i from objective row to zero the basic column.
        for (size_t c = 0; c <= total_cols; ++c) {
          if (c < total_cols) {
            t.Obj(c) -= t.At(i, c);
          }
        }
        t.ObjValue() -= t.Rhs(i);
      }
    }
    const LpStatus phase1 =
        RunSimplex(t, basis, total_cols, max_iterations);
    if (phase1 == LpStatus::kIterationLimit) {
      result.status = LpStatus::kIterationLimit;
      return result;
    }
    // Infeasible if artificials cannot all reach zero.
    const double artificial_sum = -t.ObjValue();
    if (artificial_sum > 1e-7) {
      result.status = LpStatus::kInfeasible;
      return result;
    }
    // Drive any artificial still in the basis out (degenerate, RHS ~ 0).
    for (size_t i = 0; i < m; ++i) {
      if (basis[i] < art0) continue;
      size_t enter = art0;
      for (size_t c = 0; c < art0; ++c) {
        if (std::fabs(t.At(i, c)) > 1e-7) {
          enter = c;
          break;
        }
      }
      if (enter < art0) {
        t.Pivot(i, enter);
        basis[i] = enter;
      }
      // If the row is all zeros over structural columns it is a redundant
      // equality; leaving the artificial basic at value 0 is harmless as
      // long as phase 2 never lets it re-enter (enforced via allowed_cols).
    }
  }

  // ---- Phase 2: install the real objective and re-optimize. ----
  for (size_t c = 0; c <= total_cols; ++c) {
    if (c < total_cols) t.Obj(c) = 0.0;
  }
  t.ObjValue() = 0.0;
  for (size_t j = 0; j < n; ++j) {
    t.Obj(j) = -c[j];     // maximize c.x -> reduced-cost row starts at -c
    t.Obj(n + j) = c[j];  // x- contributes -c
  }
  // Price out basic variables.
  for (size_t i = 0; i < m; ++i) {
    const double coeff = t.Obj(basis[i]);
    if (coeff == 0.0) continue;
    for (size_t col = 0; col <= total_cols; ++col) {
      if (col < total_cols) {
        t.Obj(col) -= coeff * t.At(i, col);
      }
    }
    t.ObjValue() -= coeff * t.Rhs(i);
    t.Obj(basis[i]) = 0.0;
  }

  const LpStatus phase2 = RunSimplex(t, basis, art0, max_iterations);
  if (phase2 != LpStatus::kOptimal) {
    result.status = phase2;
    return result;
  }

  Vec x(n);
  for (size_t i = 0; i < m; ++i) {
    if (basis[i] < n) {
      x[basis[i]] += t.Rhs(i);
    } else if (basis[i] < 2 * n) {
      x[basis[i] - n] -= t.Rhs(i);
    }
  }
  result.status = LpStatus::kOptimal;
  result.x = std::move(x);
  result.objective = Dot(c, result.x);
  return result;
}

LpResult ChebyshevCenter(const std::vector<Halfspace>& constraints,
                         size_t dim, double* radius_out) {
  // Variables (x, r): maximize r s.t. a_i.x + ||a_i|| r <= b_i, r <= R_cap.
  // The radius cap keeps the LP bounded for unbounded polytopes.
  std::vector<Halfspace> lifted;
  lifted.reserve(constraints.size() + 1);
  for (const Halfspace& h : constraints) {
    Vec normal(dim + 1);
    for (size_t j = 0; j < dim; ++j) normal[j] = h.normal[j];
    normal[dim] = h.normal.Norm();
    lifted.emplace_back(std::move(normal), h.offset);
  }
  Vec cap(dim + 1);
  cap[dim] = 1.0;
  lifted.emplace_back(std::move(cap), 1e6);  // r <= 1e6

  Vec c(dim + 1);
  c[dim] = 1.0;
  LpResult lifted_result = SolveLp(c, lifted);
  LpResult result;
  result.status = lifted_result.status;
  if (!lifted_result.ok()) return result;

  const double radius = lifted_result.x[dim];
  if (radius_out != nullptr) *radius_out = radius;
  Vec x(dim);
  for (size_t j = 0; j < dim; ++j) x[j] = lifted_result.x[j];
  result.x = std::move(x);
  result.objective = radius;
  if (radius < -1e-9) result.status = LpStatus::kInfeasible;
  return result;
}

bool IsFeasible(const std::vector<Halfspace>& constraints, size_t dim) {
  double radius = 0.0;
  const LpResult r = ChebyshevCenter(constraints, dim, &radius);
  return r.ok() && radius > -1e-9;
}

std::vector<size_t> IrredundantHalfspaces(
    const std::vector<Halfspace>& constraints, size_t dim, double tol) {
  (void)dim;
  std::vector<size_t> kept;
  const size_t m = constraints.size();
  std::vector<bool> removed(m, false);
  for (size_t i = 0; i < m; ++i) {
    // Test constraint i against all others not yet removed.
    std::vector<Halfspace> others;
    others.reserve(m);
    for (size_t j = 0; j < m; ++j) {
      if (j != i && !removed[j]) others.push_back(constraints[j]);
    }
    if (others.empty()) continue;  // single constraint: trivially needed
    // Bound the LP: maximizing a_i.x over an unbounded region would report
    // kUnbounded, which also proves irredundancy.
    const LpResult r = SolveLp(constraints[i].normal, others);
    if (r.status == LpStatus::kOptimal &&
        r.objective <= constraints[i].offset + tol) {
      removed[i] = true;  // implied by the others
    }
  }
  for (size_t i = 0; i < m; ++i) {
    if (!removed[i]) kept.push_back(i);
  }
  return kept;
}

}  // namespace toprr
