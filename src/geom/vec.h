// Dynamic-dimension dense vector used throughout the library for options
// (points in option space) and weight vectors (points in preference space).
//
// Dimensions in this problem are small (d <= ~12), so a simple contiguous
// double buffer with value semantics is both fast and simple.
#ifndef TOPRR_GEOM_VEC_H_
#define TOPRR_GEOM_VEC_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.h"

namespace toprr {

/// A dense real vector of runtime dimension.
class Vec {
 public:
  Vec() = default;
  explicit Vec(size_t dim, double fill = 0.0) : data_(dim, fill) {}
  Vec(std::initializer_list<double> values) : data_(values) {}
  explicit Vec(std::vector<double> values) : data_(std::move(values)) {}

  size_t dim() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator[](size_t i) {
    DCHECK_LT(i, data_.size());
    return data_[i];
  }
  double operator[](size_t i) const {
    DCHECK_LT(i, data_.size());
    return data_[i];
  }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

  std::vector<double>& raw() { return data_; }
  const std::vector<double>& raw() const { return data_; }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  Vec& operator+=(const Vec& other);
  Vec& operator-=(const Vec& other);
  Vec& operator*=(double s);
  Vec& operator/=(double s);

  friend Vec operator+(Vec a, const Vec& b) { return a += b; }
  friend Vec operator-(Vec a, const Vec& b) { return a -= b; }
  friend Vec operator*(Vec a, double s) { return a *= s; }
  friend Vec operator*(double s, Vec a) { return a *= s; }
  friend Vec operator/(Vec a, double s) { return a /= s; }
  friend bool operator==(const Vec& a, const Vec& b) {
    return a.data_ == b.data_;
  }

  /// Euclidean norm.
  double Norm() const;
  /// Squared Euclidean norm.
  double SquaredNorm() const;
  /// Sum of components.
  double Sum() const;
  /// L-infinity norm.
  double MaxAbs() const;

  std::string ToString(int digits = 6) const;

 private:
  std::vector<double> data_;
};

/// Inner product over raw buffers, accumulated in index order. The one
/// dot-product kernel of the library: Dot(Vec, Vec), Hyperplane::Eval,
/// and the batched flat-geometry sweeps all route through it, so every
/// caller sees bit-identical accumulation.
inline double DotSpan(const double* a, const double* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

/// Inner product; dimensions must match.
double Dot(const Vec& a, const Vec& b);

/// Squared Euclidean distance.
double SquaredDistance(const Vec& a, const Vec& b);

/// Euclidean distance.
double Distance(const Vec& a, const Vec& b);

/// True if every |a[i]-b[i]| <= tol.
bool ApproxEqual(const Vec& a, const Vec& b, double tol);

/// Linear interpolation a + t*(b-a).
Vec Lerp(const Vec& a, const Vec& b, double t);

}  // namespace toprr

#endif  // TOPRR_GEOM_VEC_H_
