#include "geom/linalg.h"

#include <cmath>

namespace toprr {

void Matrix::SetRow(size_t r, const Vec& v) {
  DCHECK_EQ(v.dim(), cols_);
  for (size_t c = 0; c < cols_; ++c) At(r, c) = v[c];
}

Vec Matrix::Row(size_t r) const {
  Vec out(cols_);
  for (size_t c = 0; c < cols_; ++c) out[c] = At(r, c);
  return out;
}

Vec Matrix::Apply(const Vec& x) const {
  DCHECK_EQ(x.dim(), cols_);
  Vec out(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += At(r, c) * x[c];
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

std::optional<Vec> SolveLinearSystem(Matrix a, Vec b, double pivot_tol) {
  const size_t n = a.rows();
  CHECK_EQ(a.cols(), n);
  CHECK_EQ(b.dim(), n);

  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;

  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting: pick the largest-magnitude entry in this column.
    size_t pivot = col;
    double best = std::fabs(a.At(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double mag = std::fabs(a.At(r, col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best <= pivot_tol) return std::nullopt;
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a.At(pivot, c), a.At(col, c));
      std::swap(b[pivot], b[col]);
    }
    const double inv = 1.0 / a.At(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a.At(r, col) * inv;
      if (factor == 0.0) continue;
      a.At(r, col) = 0.0;
      for (size_t c = col + 1; c < n; ++c) {
        a.At(r, c) -= factor * a.At(col, c);
      }
      b[r] -= factor * b[col];
    }
  }

  Vec x(n);
  for (size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (size_t c = i + 1; c < n; ++c) acc -= a.At(i, c) * x[c];
    x[i] = acc / a.At(i, i);
  }
  return x;
}

double Determinant(Matrix a) {
  const size_t n = a.rows();
  CHECK_EQ(a.cols(), n);
  double det = 1.0;
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    double best = std::fabs(a.At(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double mag = std::fabs(a.At(r, col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best == 0.0) return 0.0;
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a.At(pivot, c), a.At(col, c));
      det = -det;
    }
    det *= a.At(col, col);
    const double inv = 1.0 / a.At(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a.At(r, col) * inv;
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) a.At(r, c) -= factor * a.At(col, c);
    }
  }
  return det;
}

std::optional<Vec> SolveHyperplanes(const std::vector<Vec>& normals,
                                    const std::vector<double>& offsets,
                                    double pivot_tol) {
  CHECK_EQ(normals.size(), offsets.size());
  CHECK(!normals.empty());
  const size_t n = normals[0].dim();
  CHECK_EQ(normals.size(), n);
  Matrix a(n, n);
  Vec b(n);
  for (size_t r = 0; r < n; ++r) {
    a.SetRow(r, normals[r]);
    b[r] = offsets[r];
  }
  return SolveLinearSystem(std::move(a), std::move(b), pivot_tol);
}

}  // namespace toprr
