// Polytope volume utilities: exact volume via vertex enumeration + hull
// triangulation (low dimension), and Monte-Carlo estimation within a
// bounding box (any dimension). Used by the market-analysis example and
// for sensitivity-style region measurements (cf. Zhang et al. [54], who
// use preference-region volume as a sensitivity measure).
#ifndef TOPRR_GEOM_VOLUME_H_
#define TOPRR_GEOM_VOLUME_H_

#include <cstdint>

#include "common/rng.h"
#include "geom/hyperplane.h"
#include "geom/vec.h"

namespace toprr {

/// Exact volume of the (bounded) intersection of halfspaces, computed by
/// enumerating vertices and triangulating their hull. Returns 0 when the
/// intersection is empty, lower-dimensional, or enumeration fails.
double PolytopeVolume(const std::vector<Halfspace>& halfspaces, size_t dim);

/// Monte-Carlo volume of {x in [lo,hi] : halfspaces hold}: fraction of
/// `samples` uniform box draws inside, times the box volume.
double EstimatePolytopeVolume(const std::vector<Halfspace>& halfspaces,
                              const Vec& lo, const Vec& hi, size_t samples,
                              Rng& rng);

}  // namespace toprr

#endif  // TOPRR_GEOM_VOLUME_H_
