// Dense linear algebra: small matrices, Gaussian elimination with partial
// pivoting, determinants. Sized for the tiny systems (d <= ~13) that arise
// in polytope vertex computation and QP KKT systems.
#ifndef TOPRR_GEOM_LINALG_H_
#define TOPRR_GEOM_LINALG_H_

#include <optional>
#include <vector>

#include "geom/vec.h"

namespace toprr {

/// A dense row-major matrix of runtime shape.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) {
    DCHECK_LT(r, rows_);
    DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    DCHECK_LT(r, rows_);
    DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  /// Sets row r from a Vec (dimension must equal cols()).
  void SetRow(size_t r, const Vec& v);

  /// Returns row r as a Vec.
  Vec Row(size_t r) const;

  /// Matrix-vector product (dimension of x must equal cols()).
  Vec Apply(const Vec& x) const;

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// Returns std::nullopt when A is (numerically) singular w.r.t. `pivot_tol`.
std::optional<Vec> SolveLinearSystem(Matrix a, Vec b,
                                     double pivot_tol = 1e-12);

/// Determinant via LU decomposition (destroys a copy of A).
double Determinant(Matrix a);

/// Solves the linear system whose rows are hyperplane equations
/// normals[i] . x = offsets[i]. Convenience wrapper for vertex computation.
std::optional<Vec> SolveHyperplanes(const std::vector<Vec>& normals,
                                    const std::vector<double>& offsets,
                                    double pivot_tol = 1e-12);

}  // namespace toprr

#endif  // TOPRR_GEOM_LINALG_H_
