// Dense two-phase simplex solver for small linear programs.
//
//   maximize    c . x
//   subject to  A x <= b        (x free)
//
// This is the workhorse behind polytope feasibility tests, Chebyshev
// centers (interior points for halfspace intersection), and redundant
// halfspace elimination. Problems in this library are small (tens of
// variables, at most a few thousand constraints), so a dense tableau with
// Dantzig pricing and a Bland anti-cycling fallback is simple and adequate.
#ifndef TOPRR_GEOM_LP_H_
#define TOPRR_GEOM_LP_H_

#include <vector>

#include "geom/hyperplane.h"
#include "geom/vec.h"

namespace toprr {

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  Vec x;                   // primal solution (valid when kOptimal)
  double objective = 0.0;  // c . x at the solution

  bool ok() const { return status == LpStatus::kOptimal; }
};

/// Solves max c.x s.t. constraints[i].normal . x <= constraints[i].offset.
/// Variables are free (unbounded in sign).
LpResult SolveLp(const Vec& c, const std::vector<Halfspace>& constraints,
                 int max_iterations = 20000);

/// Returns a strictly feasible point of the halfspace system, if one
/// exists: the Chebyshev center (center of the largest inscribed ball).
/// `radius_out`, if non-null, receives the inscribed-ball radius; a radius
/// <= 0 means the system is feasible only in a degenerate (empty-interior)
/// sense.
LpResult ChebyshevCenter(const std::vector<Halfspace>& constraints,
                         size_t dim, double* radius_out = nullptr);

/// True if the halfspace system has any feasible point (within tolerance).
bool IsFeasible(const std::vector<Halfspace>& constraints, size_t dim);

/// Removes halfspaces that are implied by the others. A constraint i is
/// redundant iff maximizing its normal over the remaining system cannot
/// exceed offset_i (+tol). Returns the indices of retained (irredundant)
/// halfspaces in the original ordering.
std::vector<size_t> IrredundantHalfspaces(
    const std::vector<Halfspace>& constraints, size_t dim, double tol = 1e-9);

}  // namespace toprr

#endif  // TOPRR_GEOM_LP_H_
