// d-dimensional convex hull via the incremental (quickhull-style) algorithm
// with conflict lists, after Barber et al.'s Qhull. The paper's methods call
// on qhull for halfspace intersection and hull computation; this module is
// our from-scratch replacement.
//
// Facets are simplicial (d vertices each); a non-simplicial geometric facet
// appears as several coplanar simplicial facets, which is harmless for every
// use in this library (vertex enumeration, onion layers, volumes).
#ifndef TOPRR_GEOM_CONVEX_HULL_H_
#define TOPRR_GEOM_CONVEX_HULL_H_

#include <optional>
#include <vector>

#include "geom/hyperplane.h"
#include "geom/vec.h"

namespace toprr {

/// One simplicial hull facet: `vertices` are indices into the input point
/// set; the outward halfspace is normal . x <= offset for hull-interior x.
struct HullFacet {
  std::vector<int> vertices;  // exactly dim indices
  Vec normal;                 // outward unit normal
  double offset = 0.0;        // normal . v for v on the facet
};

/// The result of a hull computation.
struct ConvexHullResult {
  /// Indices of input points that are hull vertices (strictly extreme;
  /// points on a facet's interior within tolerance are not reported).
  std::vector<int> vertex_indices;
  /// All (simplicial) facets of the hull.
  std::vector<HullFacet> facets;
};

struct ConvexHullOptions {
  /// Absolute tolerance for "above facet" tests. Inputs in this library
  /// live in [0,1]-ish boxes, so an absolute epsilon is appropriate.
  double eps = 1e-9;
};

/// Computes the convex hull of `points` (each of the same dimension d >= 1).
/// Returns std::nullopt when the points are degenerate: fewer than d+1
/// points, or affine dimension < d (all points within `eps` of a common
/// hyperplane). Dimension 1 is handled specially (hull = [min, max]).
std::optional<ConvexHullResult> ComputeConvexHull(
    const std::vector<Vec>& points, const ConvexHullOptions& options = {});

/// Convenience: hull vertex indices only; empty vector when degenerate.
std::vector<int> ConvexHullVertices(const std::vector<Vec>& points,
                                    const ConvexHullOptions& options = {});

/// Volume of the hull (sum of simplex volumes against an interior point).
/// Returns 0 for degenerate inputs.
double ConvexHullVolume(const std::vector<Vec>& points,
                        const ConvexHullOptions& options = {});

}  // namespace toprr

#endif  // TOPRR_GEOM_CONVEX_HULL_H_
