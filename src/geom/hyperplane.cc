#include "geom/hyperplane.h"

#include <cmath>
#include <sstream>

namespace toprr {

void Hyperplane::Normalize() {
  const double norm = normal.Norm();
  CHECK_GT(norm, 0.0) << "cannot normalize zero hyperplane";
  normal /= norm;
  offset /= norm;
}

std::string Hyperplane::ToString() const {
  std::ostringstream out;
  out << normal.ToString() << " . x = " << offset;
  return out.str();
}

void Halfspace::Normalize() {
  const double norm = normal.Norm();
  CHECK_GT(norm, 0.0) << "cannot normalize zero halfspace";
  normal /= norm;
  offset /= norm;
}

std::string Halfspace::ToString() const {
  std::ostringstream out;
  out << normal.ToString() << " . x <= " << offset;
  return out.str();
}

std::vector<Halfspace> BoxHalfspaces(const Vec& lo, const Vec& hi) {
  CHECK_EQ(lo.dim(), hi.dim());
  const size_t d = lo.dim();
  std::vector<Halfspace> out;
  out.reserve(2 * d);
  for (size_t j = 0; j < d; ++j) {
    Vec up(d);
    up[j] = 1.0;
    out.emplace_back(up, hi[j]);  // x[j] <= hi[j]
    Vec down(d);
    down[j] = -1.0;
    out.emplace_back(down, -lo[j]);  // -x[j] <= -lo[j]
  }
  return out;
}

}  // namespace toprr
