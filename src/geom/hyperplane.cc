#include "geom/hyperplane.h"

#include <cmath>
#include <sstream>

namespace toprr {

void Hyperplane::Normalize() {
  const double norm = normal.Norm();
  CHECK_GT(norm, 0.0) << "cannot normalize zero hyperplane";
  normal /= norm;
  offset /= norm;
}

std::string Hyperplane::ToString() const {
  std::ostringstream out;
  out << normal.ToString() << " . x = " << offset;
  return out.str();
}

void Halfspace::Normalize() {
  const double norm = normal.Norm();
  CHECK_GT(norm, 0.0) << "cannot normalize zero halfspace";
  normal /= norm;
  offset /= norm;
}

std::string Halfspace::ToString() const {
  std::ostringstream out;
  out << normal.ToString() << " . x <= " << offset;
  return out.str();
}

void EvalClassifyBatch(const Hyperplane& plane, const double* coords,
                       size_t count, double tol, double* sval, Side* side,
                       size_t* num_below, size_t* num_above) {
  const size_t m = plane.dim();
  const double* normal = plane.normal.data();
  const double offset = plane.offset;
  size_t below = 0;
  size_t above = 0;
  for (size_t i = 0; i < count; ++i) {
    const double v = DotSpan(normal, coords + i * m, m) - offset;
    sval[i] = v;
    if (v > tol) {
      side[i] = Side::kAbove;
      ++above;
    } else if (v < -tol) {
      side[i] = Side::kBelow;
      ++below;
    } else {
      side[i] = Side::kOn;
    }
  }
  *num_below = below;
  *num_above = above;
}

std::vector<Halfspace> BoxHalfspaces(const Vec& lo, const Vec& hi) {
  CHECK_EQ(lo.dim(), hi.dim());
  const size_t d = lo.dim();
  std::vector<Halfspace> out;
  out.reserve(2 * d);
  for (size_t j = 0; j < d; ++j) {
    Vec up(d);
    up[j] = 1.0;
    out.emplace_back(up, hi[j]);  // x[j] <= hi[j]
    Vec down(d);
    down[j] = -1.0;
    out.emplace_back(down, -lo[j]);  // -x[j] <= -lo[j]
  }
  return out;
}

}  // namespace toprr
