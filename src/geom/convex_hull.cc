#include "geom/convex_hull.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <unordered_map>

#include "common/check.h"
#include "common/logging.h"
#include "geom/linalg.h"

namespace toprr {
namespace {

// Internal mutable facet with adjacency and conflict list.
struct Facet {
  std::vector<int> vertices;   // d point indices, position i opposite
                               // neighbor i across the ridge missing v_i
  std::vector<int> neighbors;  // facet ids, aligned with `vertices`
  Vec normal;
  double offset = 0.0;
  std::vector<int> outside;  // conflict list (points strictly above)
  bool alive = true;

  double Eval(const Vec& x) const { return Dot(normal, x) - offset; }
};

// Computes an (unnormalized) normal of the affine hull of d points in R^d
// via the generalized cross product: normal[j] is the signed cofactor of
// the (d-1) x d matrix of edge vectors with column j removed.
Vec GeneralizedCross(const std::vector<Vec>& points,
                     const std::vector<int>& vertex_ids) {
  const size_t d = points[vertex_ids[0]].dim();
  DCHECK_EQ(vertex_ids.size(), d);
  Vec normal(d);
  if (d == 1) {
    normal[0] = 1.0;
    return normal;
  }
  // Edge matrix rows: v_i - v_0 for i = 1..d-1  (shape (d-1) x d).
  Matrix edges(d - 1, d);
  const Vec& base = points[vertex_ids[0]];
  for (size_t i = 1; i < d; ++i) {
    const Vec& v = points[vertex_ids[i]];
    for (size_t c = 0; c < d; ++c) edges.At(i - 1, c) = v[c] - base[c];
  }
  for (size_t skip = 0; skip < d; ++skip) {
    Matrix minor(d - 1, d - 1);
    for (size_t r = 0; r < d - 1; ++r) {
      size_t mc = 0;
      for (size_t c = 0; c < d; ++c) {
        if (c == skip) continue;
        minor.At(r, mc++) = edges.At(r, c);
      }
    }
    const double cof = Determinant(std::move(minor));
    normal[skip] = ((skip % 2) == 0) ? cof : -cof;
  }
  return normal;
}

// Builds a facet plane from vertex ids, oriented away from `interior`.
// Returns false when the vertices are affinely degenerate.
bool MakePlane(const std::vector<Vec>& points, const std::vector<int>& ids,
               const Vec& interior, double eps, Facet* facet) {
  Vec normal = GeneralizedCross(points, ids);
  const double norm = normal.Norm();
  if (norm <= eps) return false;
  normal /= norm;
  double offset = Dot(normal, points[ids[0]]);
  if (Dot(normal, interior) - offset > 0.0) {
    normal *= -1.0;
    offset = -offset;
  }
  facet->vertices = ids;
  facet->normal = std::move(normal);
  facet->offset = offset;
  return true;
}

// Finds d+1 affinely independent points to seed the hull. Returns empty on
// degeneracy. Uses a greedy max-distance-to-current-affine-hull selection
// with Gram-Schmidt orthogonalization.
std::vector<int> InitialSimplex(const std::vector<Vec>& points, double eps) {
  const size_t d = points[0].dim();
  const size_t n = points.size();
  std::vector<int> chosen;

  // Start with the two extremes of the coordinate with the widest spread.
  size_t best_axis = 0;
  int lo = 0;
  int hi = 0;
  double best_spread = -1.0;
  for (size_t axis = 0; axis < d; ++axis) {
    int axis_lo = 0;
    int axis_hi = 0;
    for (size_t i = 1; i < n; ++i) {
      if (points[i][axis] < points[axis_lo][axis]) axis_lo = static_cast<int>(i);
      if (points[i][axis] > points[axis_hi][axis]) axis_hi = static_cast<int>(i);
    }
    const double spread = points[axis_hi][axis] - points[axis_lo][axis];
    if (spread > best_spread) {
      best_spread = spread;
      best_axis = axis;
      lo = axis_lo;
      hi = axis_hi;
    }
  }
  (void)best_axis;
  if (best_spread <= eps) return {};
  chosen.push_back(lo);
  chosen.push_back(hi);

  // Orthonormal basis of the current affine hull's direction space.
  std::vector<Vec> basis;
  {
    Vec dir = points[hi] - points[lo];
    dir /= dir.Norm();
    basis.push_back(std::move(dir));
  }

  while (chosen.size() < d + 1) {
    const Vec& origin = points[chosen[0]];
    int best_point = -1;
    double best_dist = eps;
    Vec best_residual;
    for (size_t i = 0; i < n; ++i) {
      Vec residual = points[i] - origin;
      for (const Vec& b : basis) residual -= Dot(residual, b) * b;
      const double dist = residual.Norm();
      if (dist > best_dist) {
        best_dist = dist;
        best_point = static_cast<int>(i);
        best_residual = std::move(residual);
      }
    }
    if (best_point < 0) return {};  // all points within eps of affine hull
    chosen.push_back(best_point);
    best_residual /= best_residual.Norm();
    basis.push_back(std::move(best_residual));
  }
  return chosen;
}

// Key for ridge matching: the sorted vertex ids of a (d-1)-vertex ridge.
struct RidgeKey {
  std::vector<int> ids;
  bool operator<(const RidgeKey& other) const { return ids < other.ids; }
};

ConvexHullResult ExtractResult(const std::vector<Vec>& points,
                               const std::vector<Facet>& facets) {
  ConvexHullResult result;
  std::vector<bool> on_hull(points.size(), false);
  for (const Facet& f : facets) {
    if (!f.alive) continue;
    HullFacet out;
    out.vertices = f.vertices;
    out.normal = f.normal;
    out.offset = f.offset;
    result.facets.push_back(std::move(out));
    for (int v : f.vertices) on_hull[v] = true;
  }
  for (size_t i = 0; i < points.size(); ++i) {
    if (on_hull[i]) result.vertex_indices.push_back(static_cast<int>(i));
  }
  return result;
}

std::optional<ConvexHullResult> Hull1D(const std::vector<Vec>& points,
                                       double eps) {
  int lo = 0;
  int hi = 0;
  for (size_t i = 1; i < points.size(); ++i) {
    if (points[i][0] < points[lo][0]) lo = static_cast<int>(i);
    if (points[i][0] > points[hi][0]) hi = static_cast<int>(i);
  }
  if (points[hi][0] - points[lo][0] <= eps) return std::nullopt;
  ConvexHullResult result;
  result.vertex_indices = {std::min(lo, hi), std::max(lo, hi)};
  HullFacet left;
  left.vertices = {lo};
  left.normal = Vec{-1.0};
  left.offset = -points[lo][0];
  HullFacet right;
  right.vertices = {hi};
  right.normal = Vec{1.0};
  right.offset = points[hi][0];
  result.facets.push_back(std::move(left));
  result.facets.push_back(std::move(right));
  return result;
}

}  // namespace

std::optional<ConvexHullResult> ComputeConvexHull(
    const std::vector<Vec>& points, const ConvexHullOptions& options) {
  if (points.empty()) return std::nullopt;
  const size_t d = points[0].dim();
  CHECK_GE(d, 1u);
  for (const Vec& p : points) CHECK_EQ(p.dim(), d);
  if (points.size() < d + 1) return std::nullopt;
  const double eps = options.eps;
  if (d == 1) return Hull1D(points, eps);

  const std::vector<int> simplex = InitialSimplex(points, eps);
  if (simplex.empty()) return std::nullopt;

  // Interior reference point: centroid of the initial simplex.
  Vec interior(d);
  for (int id : simplex) interior += points[id];
  interior /= static_cast<double>(simplex.size());

  // Build the d+1 facets of the simplex (each omits one chosen vertex).
  std::vector<Facet> facets;
  facets.reserve(64);
  for (size_t skip = 0; skip < simplex.size(); ++skip) {
    std::vector<int> ids;
    for (size_t i = 0; i < simplex.size(); ++i) {
      if (i != skip) ids.push_back(simplex[i]);
    }
    Facet f;
    if (!MakePlane(points, ids, interior, eps, &f)) return std::nullopt;
    facets.push_back(std::move(f));
  }
  // Simplex adjacency: every pair of facets is adjacent; align neighbor i
  // with the ridge omitting vertices[i] via ridge matching.
  {
    std::map<RidgeKey, std::vector<std::pair<int, int>>> ridge_map;
    for (size_t fi = 0; fi < facets.size(); ++fi) {
      Facet& f = facets[fi];
      f.neighbors.assign(f.vertices.size(), -1);
      for (size_t vi = 0; vi < f.vertices.size(); ++vi) {
        RidgeKey key;
        for (size_t j = 0; j < f.vertices.size(); ++j) {
          if (j != vi) key.ids.push_back(f.vertices[j]);
        }
        std::sort(key.ids.begin(), key.ids.end());
        ridge_map[key].push_back({static_cast<int>(fi), static_cast<int>(vi)});
      }
    }
    for (const auto& [key, uses] : ridge_map) {
      CHECK_EQ(uses.size(), 2u) << "simplex ridge must join two facets";
      facets[uses[0].first].neighbors[uses[0].second] = uses[1].first;
      facets[uses[1].first].neighbors[uses[1].second] = uses[0].first;
    }
  }

  // Assign every remaining point to the conflict list of some facet above
  // which it lies; interior points are discarded immediately.
  std::vector<bool> in_simplex(points.size(), false);
  for (int id : simplex) in_simplex[id] = true;
  std::deque<int> pending_facets;
  for (size_t i = 0; i < points.size(); ++i) {
    if (in_simplex[i]) continue;
    for (Facet& f : facets) {
      if (f.Eval(points[i]) > eps) {
        f.outside.push_back(static_cast<int>(i));
        break;
      }
    }
  }
  for (size_t fi = 0; fi < facets.size(); ++fi) {
    if (!facets[fi].outside.empty()) pending_facets.push_back(static_cast<int>(fi));
  }

  // Main quickhull loop.
  while (!pending_facets.empty()) {
    const int fi = pending_facets.front();
    pending_facets.pop_front();
    Facet& f = facets[fi];
    if (!f.alive || f.outside.empty()) continue;

    // Furthest conflict point of this facet.
    int apex = -1;
    double best = -1.0;
    for (int pid : f.outside) {
      const double dist = f.Eval(points[pid]);
      if (dist > best) {
        best = dist;
        apex = pid;
      }
    }
    DCHECK_GE(apex, 0);
    const Vec& apex_point = points[apex];

    // Visible set via BFS over facet adjacency.
    std::vector<int> visible;
    std::vector<int> stack = {fi};
    std::vector<bool> visited(facets.size(), false);
    visited[fi] = true;
    while (!stack.empty()) {
      const int cur = stack.back();
      stack.pop_back();
      if (!facets[cur].alive) continue;
      if (facets[cur].Eval(apex_point) > eps) {
        visible.push_back(cur);
        for (int nb : facets[cur].neighbors) {
          if (nb >= 0 && !visited[nb]) {
            visited[nb] = true;
            stack.push_back(nb);
          }
        }
      }
    }
    std::vector<bool> is_visible(facets.size(), false);
    for (int v : visible) is_visible[v] = true;

    // Horizon ridges: (visible facet, ridge index) whose neighbor is not
    // visible. Each spawns one new facet = ridge + apex.
    struct Horizon {
      std::vector<int> ridge;  // d-1 vertex ids
      int outside_facet;       // the non-visible neighbor
    };
    std::vector<Horizon> horizon;
    for (int v : visible) {
      const Facet& vf = facets[v];
      for (size_t i = 0; i < vf.vertices.size(); ++i) {
        const int nb = vf.neighbors[i];
        DCHECK_GE(nb, 0);
        if (is_visible[nb]) continue;
        Horizon h;
        for (size_t j = 0; j < vf.vertices.size(); ++j) {
          if (j != i) h.ridge.push_back(vf.vertices[j]);
        }
        h.outside_facet = nb;
        horizon.push_back(std::move(h));
      }
    }
    if (horizon.empty()) {
      // Numerically possible when apex is barely above a facet that is
      // surrounded by facets it is below; treat the apex as non-extreme.
      f.outside.erase(std::remove(f.outside.begin(), f.outside.end(), apex),
                      f.outside.end());
      if (!f.outside.empty()) pending_facets.push_back(fi);
      continue;
    }

    // Gather orphaned conflict points before killing the visible facets.
    std::vector<int> orphans;
    for (int v : visible) {
      for (int pid : facets[v].outside) {
        if (pid != apex) orphans.push_back(pid);
      }
      facets[v].outside.clear();
      facets[v].alive = false;
    }

    // Create the new cone facets.
    std::vector<int> new_ids;
    new_ids.reserve(horizon.size());
    for (const Horizon& h : horizon) {
      std::vector<int> ids = h.ridge;
      ids.push_back(apex);
      Facet nf;
      if (!MakePlane(points, ids, interior, eps, &nf)) {
        // Degenerate cone facet (apex nearly coplanar with the ridge):
        // orient it using the neighbor's normal as a fallback so the hull
        // stays watertight.
        nf.vertices = ids;
        nf.normal = facets[h.outside_facet].normal;
        nf.offset = Dot(nf.normal, apex_point);
      }
      nf.neighbors.assign(nf.vertices.size(), -1);
      const int nid = static_cast<int>(facets.size());
      // Outer neighbor: across the original ridge (opposite the apex, which
      // is the last vertex).
      nf.neighbors[nf.vertices.size() - 1] = h.outside_facet;
      // Fix the outer facet's back-pointer.
      Facet& outer = facets[h.outside_facet];
      for (size_t i = 0; i < outer.vertices.size(); ++i) {
        // Neighbors rewired to cone facets created earlier in this round
        // have ids past is_visible's range; they are never visible.
        if (outer.neighbors[i] >= 0 &&
            static_cast<size_t>(outer.neighbors[i]) < is_visible.size() &&
            is_visible[outer.neighbors[i]]) {
          // Verify this slot's ridge equals h.ridge before rewiring.
          std::vector<int> outer_ridge;
          for (size_t j = 0; j < outer.vertices.size(); ++j) {
            if (j != i) outer_ridge.push_back(outer.vertices[j]);
          }
          std::vector<int> a = outer_ridge;
          std::vector<int> b = h.ridge;
          std::sort(a.begin(), a.end());
          std::sort(b.begin(), b.end());
          if (a == b) {
            outer.neighbors[i] = nid;
            break;
          }
        }
      }
      facets.push_back(std::move(nf));
      new_ids.push_back(nid);
    }

    // Wire adjacency among the new facets: ridges that contain the apex.
    std::map<RidgeKey, std::vector<std::pair<int, int>>> ridge_map;
    for (int nid : new_ids) {
      Facet& nf = facets[nid];
      for (size_t vi = 0; vi + 1 < nf.vertices.size(); ++vi) {
        // Skip the last slot (outer neighbor already set). Ridge omits
        // vertices[vi] and therefore contains the apex.
        RidgeKey key;
        for (size_t j = 0; j < nf.vertices.size(); ++j) {
          if (j != vi) key.ids.push_back(nf.vertices[j]);
        }
        std::sort(key.ids.begin(), key.ids.end());
        ridge_map[key].push_back({nid, static_cast<int>(vi)});
      }
    }
    bool wiring_ok = true;
    for (const auto& [key, uses] : ridge_map) {
      if (uses.size() != 2) {
        wiring_ok = false;
        continue;
      }
      facets[uses[0].first].neighbors[uses[0].second] = uses[1].first;
      facets[uses[1].first].neighbors[uses[1].second] = uses[0].first;
    }
    if (!wiring_ok) {
      LOG(DEBUG) << "quickhull: non-manifold ridge wiring near apex " << apex
                 << " (degenerate input); results remain usable";
    }

    // Redistribute orphans over the new facets.
    for (int pid : orphans) {
      const Vec& p = points[pid];
      int target = -1;
      double best_above = eps;
      for (int nid : new_ids) {
        const double v = facets[nid].Eval(p);
        if (v > best_above) {
          best_above = v;
          target = nid;
          break;  // first-above assignment is sufficient
        }
      }
      if (target >= 0) facets[target].outside.push_back(pid);
    }
    if (static_cast<size_t>(fi) < visited.size()) {
      // no-op: keeps clang-tidy quiet about unused capture patterns
    }
    for (int nid : new_ids) {
      if (!facets[nid].outside.empty()) pending_facets.push_back(nid);
    }
  }

  return ExtractResult(points, facets);
}

std::vector<int> ConvexHullVertices(const std::vector<Vec>& points,
                                    const ConvexHullOptions& options) {
  auto hull = ComputeConvexHull(points, options);
  if (!hull.has_value()) return {};
  return std::move(hull->vertex_indices);
}

double ConvexHullVolume(const std::vector<Vec>& points,
                        const ConvexHullOptions& options) {
  auto hull = ComputeConvexHull(points, options);
  if (!hull.has_value()) return 0.0;
  const size_t d = points[0].dim();
  if (d == 1) {
    return points[hull->vertex_indices.back()][0] -
           points[hull->vertex_indices.front()][0];
  }
  // Interior point: centroid of hull vertices.
  Vec centroid(d);
  for (int id : hull->vertex_indices) centroid += points[id];
  centroid /= static_cast<double>(hull->vertex_indices.size());

  double volume = 0.0;
  double factorial = 1.0;
  for (size_t i = 2; i <= d; ++i) factorial *= static_cast<double>(i);
  for (const HullFacet& f : hull->facets) {
    // Simplex (centroid, facet vertices): volume = |det(edges)| / d!.
    Matrix edges(d, d);
    for (size_t r = 0; r < d; ++r) {
      const Vec& v = points[f.vertices[r]];
      for (size_t c = 0; c < d; ++c) edges.At(r, c) = v[c] - centroid[c];
    }
    volume += std::fabs(Determinant(std::move(edges))) / factorial;
  }
  return volume;
}

}  // namespace toprr
