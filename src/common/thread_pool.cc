#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace toprr {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t count = std::max<size_t>(1, num_threads);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  DCHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    DCHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& SharedThreadPool() {
  // Leaked intentionally: pool threads must outlive every static-duration
  // user, and thread joins in static destructors are deadlock-prone.
  static ThreadPool* pool =
      new ThreadPool(std::max(1u, std::thread::hardware_concurrency()));
  return *pool;
}

size_t ResolveThreadCount(int num_threads) {
  if (num_threads <= 0) {
    return std::max(1u, std::thread::hardware_concurrency());
  }
  return static_cast<size_t>(num_threads);
}

}  // namespace toprr
