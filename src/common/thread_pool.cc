#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace toprr {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t count = std::max<size_t>(1, num_threads);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  DCHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    DCHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& SharedThreadPool() {
  // Leaked intentionally: pool threads must outlive every static-duration
  // user, and thread joins in static destructors are deadlock-prone.
  static ThreadPool* pool =
      new ThreadPool(std::max(1u, std::thread::hardware_concurrency()));
  return *pool;
}

size_t ResolveThreadCount(int num_threads) {
  if (num_threads <= 0) {
    return std::max(1u, std::thread::hardware_concurrency());
  }
  return static_cast<size_t>(num_threads);
}

namespace {

// splitmix64 (Steele/Lea/Flood): cheap, well-scrambled, and already the
// idiom used to salt split-pair rotation in the partitioner.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::vector<size_t> StealVictimOrder(size_t worker, size_t num_workers,
                                     uint64_t seed) {
  std::vector<size_t> order;
  if (num_workers <= 1) return order;
  order.reserve(num_workers - 1);
  for (size_t v = 0; v < num_workers; ++v) {
    if (v != worker) order.push_back(v);
  }
  // Fisher-Yates driven by splitmix64 over (seed, worker): deterministic
  // per slot, decorrelated across slots.
  uint64_t state = seed ^ (0x51ed2701a3c7b97bULL * (worker + 1));
  for (size_t i = order.size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(SplitMix64(state) % i);
    std::swap(order[i - 1], order[j]);
  }
  return order;
}

}  // namespace toprr
