// Minimal leveled logging: LOG(INFO) << ...; controlled by a global level.
#ifndef TOPRR_COMMON_LOGGING_H_
#define TOPRR_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace toprr {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Returns the mutable global minimum level; messages below it are dropped.
LogLevel& GlobalLogLevel();

/// Parses "debug"/"info"/"warning"/"error"/"off" (case-insensitive).
/// Returns true on success.
bool ParseLogLevel(const std::string& text, LogLevel* level);

/// Formats "context: strerror(errno)" for the CURRENT errno, e.g.
/// "accept failed: Too many open files". Call it in the same statement
/// as (or immediately after) the failing syscall -- streaming other
/// values first may clobber errno. The one spelling every errno log in
/// the server routes through, so failure messages stay greppable.
std::string LogErrno(const std::string& context);

namespace internal_log {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_log
}  // namespace toprr

#define LOG_DEBUG \
  ::toprr::internal_log::LogMessage(::toprr::LogLevel::kDebug, __FILE__, __LINE__)
#define LOG_INFO \
  ::toprr::internal_log::LogMessage(::toprr::LogLevel::kInfo, __FILE__, __LINE__)
#define LOG_WARNING                                                    \
  ::toprr::internal_log::LogMessage(::toprr::LogLevel::kWarning, __FILE__, \
                                    __LINE__)
#define LOG_ERROR \
  ::toprr::internal_log::LogMessage(::toprr::LogLevel::kError, __FILE__, __LINE__)
#define LOG(severity) LOG_##severity

#endif  // TOPRR_COMMON_LOGGING_H_
