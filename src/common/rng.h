// Deterministic pseudo-random number generation for reproducible
// experiments. All generators, benchmarks, and tests draw from Rng seeded
// explicitly, never from global entropy.
#ifndef TOPRR_COMMON_RNG_H_
#define TOPRR_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace toprr {

/// A seedable 64-bit Mersenne-Twister wrapper with convenience draws.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Standard normal draw.
  double Gaussian() { return normal_(engine_); }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Access to the underlying engine for std:: distributions / shuffles.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace toprr

#endif  // TOPRR_COMMON_RNG_H_
