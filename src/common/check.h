// Assertion macros in the spirit of glog/absl CHECK.
//
// CHECK(cond) aborts (with file:line and the failed expression) when `cond`
// is false, in every build mode. DCHECK compiles away in NDEBUG builds.
// Both stream additional context: CHECK(x > 0) << "x=" << x;
#ifndef TOPRR_COMMON_CHECK_H_
#define TOPRR_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace toprr {
namespace internal_check {

// Accumulates the user-streamed message and aborts on destruction.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* file, int line, const char* expr) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << expr;
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Swallows the streamed message when the check passes (or in NDEBUG DCHECK).
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_check
}  // namespace toprr

#define TOPRR_CHECK(cond)                                           \
  ((cond)) ? (void)0                                                \
           : (void)(::toprr::internal_check::CheckFailureStream(    \
                 __FILE__, __LINE__, #cond))

// CHECK with streaming support requires the ternary trick above to not work
// with <<; provide a statement-expression-free variant instead.
#define CHECK(cond)                                                       \
  switch (0)                                                              \
  case 0:                                                                 \
  default:                                                                \
    if (cond)                                                             \
      ;                                                                   \
    else                                                                  \
      ::toprr::internal_check::CheckFailureStream(__FILE__, __LINE__, #cond)

#define CHECK_EQ(a, b) CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ")"
#define CHECK_NE(a, b) CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ")"
#define CHECK_LT(a, b) CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ")"
#define CHECK_LE(a, b) CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ")"
#define CHECK_GT(a, b) CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ")"
#define CHECK_GE(a, b) CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ")"

#ifdef NDEBUG
#define DCHECK(cond) \
  if (true)          \
    ;                \
  else               \
    ::toprr::internal_check::NullStream()
#define DCHECK_EQ(a, b) DCHECK((a) == (b))
#define DCHECK_NE(a, b) DCHECK((a) != (b))
#define DCHECK_LT(a, b) DCHECK((a) < (b))
#define DCHECK_LE(a, b) DCHECK((a) <= (b))
#define DCHECK_GT(a, b) DCHECK((a) > (b))
#define DCHECK_GE(a, b) DCHECK((a) >= (b))
#else
#define DCHECK(cond) CHECK(cond)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_NE(a, b) CHECK_NE(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#define DCHECK_GT(a, b) CHECK_GT(a, b)
#define DCHECK_GE(a, b) CHECK_GE(a, b)
#endif

#endif  // TOPRR_COMMON_CHECK_H_
