// A reusable fixed-size thread pool and the work-stealing primitives
// built on top of it.
//
// Workers block on a shared FIFO task queue; Submit enqueues a callable
// and returns immediately. The pool is intentionally minimal -- no
// futures, no priorities -- because both users (the parallel partition
// scheduler and the batch query engine) manage their own completion
// tracking and never block inside pool threads waiting on other pool
// tasks, which keeps the design deadlock-free even when the two levels
// share one pool.
//
// A process-wide shared pool sized to the hardware is available through
// SharedThreadPool(); per-call thread counts are throttled by the caller,
// not the pool.
//
// WorkStealingDeque is the per-worker scheduling primitive of the
// partition executor: the owning worker pushes and pops at the bottom
// (LIFO, cache-hot children first) while any other thread steals from the
// top (FIFO, the oldest -- and for a region tree typically the largest --
// subtree). StealVictimOrder gives each worker a seeded pseudo-random
// victim permutation; the executor telemetry these feed lives in
// common/scheduler_stats.h so public headers need not include this one.
#ifndef TOPRR_COMMON_THREAD_POOL_H_
#define TOPRR_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace toprr {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  /// Enqueues `task` for execution on some worker. Never blocks (beyond
  /// the queue lock). Must not be called after destruction has begun.
  void Submit(std::function<void()> task);

  /// Blocks the calling thread until every task submitted so far has
  /// finished executing (not merely been dequeued).
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // dequeued but not yet finished
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// A lazily constructed process-lifetime pool with one worker per
/// hardware thread (minimum 1). Shared by the parallel partition
/// executor and ToprrEngine::SolveBatch.
ThreadPool& SharedThreadPool();

/// Resolves a user-facing thread-count knob: 0 means "all hardware
/// threads", anything else is clamped to at least 1.
size_t ResolveThreadCount(int num_threads);

// ---------------------------------------------------------------------------
// Work stealing.
// ---------------------------------------------------------------------------

/// A Chase-Lev-style work-stealing deque of raw pointers (Chase & Lev,
/// SPAA'05). Exactly one thread -- the owner -- may call Push and Pop;
/// any thread may call Steal. The owner works LIFO at the bottom (the
/// most recently split child is cache-hot); thieves take FIFO from the
/// top, which for a region tree is the oldest and therefore typically
/// the largest pending subtree.
///
/// All cross-thread accesses go through std::atomic. The orderings are
/// the conservative seq_cst variant of the published algorithm (no
/// standalone fences: ThreadSanitizer does not model
/// atomic_thread_fence, and the deque must stay TSan-clean). The hot
/// owner path still touches only its own cache lines when no thief is
/// active.
///
/// The deque never owns the pointed-to objects; whoever drains it last
/// is responsible for deleting leftovers (the partition scheduler does
/// this for budget-abandoned tasks). Buffers retired by growth are kept
/// alive until destruction so a racing thief can never read freed
/// memory.
template <typename T>
class WorkStealingDeque {
 public:
  explicit WorkStealingDeque(size_t capacity = 64) {
    size_t cap = 8;
    while (cap < capacity) cap <<= 1;
    buffer_.store(new Buffer(cap), std::memory_order_relaxed);
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  ~WorkStealingDeque() {
    delete buffer_.load(std::memory_order_relaxed);
    for (Buffer* old : retired_) delete old;
  }

  /// Owner only: pushes `item` at the bottom. Grows (power-of-two
  /// doubling) when full; growth preserves indices, so concurrent
  /// thieves holding the old buffer still read correct entries.
  void Push(T* item) {
    const int64_t b = bottom_.load(std::memory_order_relaxed);
    const int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<int64_t>(buf->capacity)) buf = Grow(buf, t, b);
    buf->slots[static_cast<size_t>(b) & buf->mask].store(
        item, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only: pops the most recently pushed item, or nullptr when the
  /// deque is empty (including when a thief won the race for the last
  /// item).
  T* Pop() {
    const int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // already empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T* item =
        buf->slots[static_cast<size_t>(b) & buf->mask].load(
            std::memory_order_relaxed);
    if (t == b) {
      // Last item: race thieves for it via the shared top counter.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        item = nullptr;  // a thief got it
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread: steals the oldest item, or nullptr when the deque is
  /// empty or another claimant (owner or thief) won the race.
  T* Steal() {
    int64_t t = top_.load(std::memory_order_seq_cst);
    const int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    T* item = buf->slots[static_cast<size_t>(t) & buf->mask].load(
        std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race; caller may retry elsewhere
    }
    return item;
  }

  /// Racy size estimate (exact when called by an idle owner). Used for
  /// telemetry and final drains, never for correctness decisions.
  size_t SizeApprox() const {
    const int64_t b = bottom_.load(std::memory_order_seq_cst);
    const int64_t t = top_.load(std::memory_order_seq_cst);
    return b > t ? static_cast<size_t>(b - t) : 0;
  }

 private:
  struct Buffer {
    explicit Buffer(size_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<T*>[cap]) {}
    const size_t capacity;
    const size_t mask;
    std::unique_ptr<std::atomic<T*>[]> slots;
  };

  Buffer* Grow(Buffer* old, int64_t t, int64_t b) {
    Buffer* bigger = new Buffer(old->capacity * 2);
    for (int64_t i = t; i < b; ++i) {
      bigger->slots[static_cast<size_t>(i) & bigger->mask].store(
          old->slots[static_cast<size_t>(i) & old->mask].load(
              std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    buffer_.store(bigger, std::memory_order_release);
    retired_.push_back(old);  // thieves may still hold it; free at dtor
    return bigger;
  }

  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_{nullptr};
  std::vector<Buffer*> retired_;  // owner-only
};

/// The seeded pseudo-random order in which worker `worker` tries to
/// steal from its peers: a permutation of {0..num_workers-1} \ {worker},
/// deterministic in (worker, num_workers, seed) so executor behavior is
/// reproducible in tests while different workers hammer different
/// victims first (a shared fixed order would reintroduce contention on
/// worker 0's deque).
std::vector<size_t> StealVictimOrder(size_t worker, size_t num_workers,
                                     uint64_t seed);

}  // namespace toprr

#endif  // TOPRR_COMMON_THREAD_POOL_H_
