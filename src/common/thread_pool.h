// A reusable fixed-size thread pool.
//
// Workers block on a shared FIFO task queue; Submit enqueues a callable
// and returns immediately. The pool is intentionally minimal -- no
// futures, no priorities -- because both users (the parallel partition
// scheduler and the batch query engine) manage their own completion
// tracking and never block inside pool threads waiting on other pool
// tasks, which keeps the design deadlock-free even when the two levels
// share one pool.
//
// A process-wide shared pool sized to the hardware is available through
// SharedThreadPool(); per-call thread counts are throttled by the caller,
// not the pool.
#ifndef TOPRR_COMMON_THREAD_POOL_H_
#define TOPRR_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace toprr {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  /// Enqueues `task` for execution on some worker. Never blocks (beyond
  /// the queue lock). Must not be called after destruction has begun.
  void Submit(std::function<void()> task);

  /// Blocks the calling thread until every task submitted so far has
  /// finished executing (not merely been dequeued).
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // dequeued but not yet finished
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// A lazily constructed process-lifetime pool with one worker per
/// hardware thread (minimum 1). Shared by the parallel partition
/// executor and ToprrEngine::SolveBatch.
ThreadPool& SharedThreadPool();

/// Resolves a user-facing thread-count knob: 0 means "all hardware
/// threads", anything else is clamped to at least 1.
size_t ResolveThreadCount(int num_threads);

}  // namespace toprr

#endif  // TOPRR_COMMON_THREAD_POOL_H_
