#include "common/strings.h"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace toprr {

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

std::string Trim(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& items,
                 const std::string& sep) {
  std::ostringstream out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out << sep;
    out << items[i];
  }
  return out.str();
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  }
  return buf;
}

}  // namespace toprr
