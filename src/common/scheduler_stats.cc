#include "common/scheduler_stats.h"

#include <algorithm>
#include <sstream>

namespace toprr {

uint64_t SchedulerStats::TotalExecuted() const {
  uint64_t total = 0;
  for (const SchedulerWorkerStats& w : workers) total += w.tasks_executed;
  return total;
}

uint64_t SchedulerStats::TotalStolen() const {
  uint64_t total = 0;
  for (const SchedulerWorkerStats& w : workers) total += w.tasks_stolen;
  return total;
}

uint64_t SchedulerStats::TotalStealFailures() const {
  uint64_t total = 0;
  for (const SchedulerWorkerStats& w : workers) total += w.steal_failures;
  return total;
}

uint64_t SchedulerStats::MaxDequeHighWater() const {
  uint64_t high = 0;
  for (const SchedulerWorkerStats& w : workers) {
    high = std::max(high, w.deque_high_water);
  }
  return high;
}

uint64_t SchedulerStats::TotalCandidatesScored() const {
  uint64_t total = 0;
  for (const SchedulerWorkerStats& w : workers) total += w.candidates_scored;
  return total;
}

uint64_t SchedulerStats::TotalGatherBytes() const {
  uint64_t total = 0;
  for (const SchedulerWorkerStats& w : workers) total += w.block_gather_bytes;
  return total;
}

uint64_t SchedulerStats::TotalReuseHits() const {
  uint64_t total = 0;
  for (const SchedulerWorkerStats& w : workers) total += w.reuse_hits;
  return total;
}

uint64_t SchedulerStats::TotalArenaAllocations() const {
  uint64_t total = 0;
  for (const SchedulerWorkerStats& w : workers) total += w.arena_allocations;
  return total;
}

uint64_t SchedulerStats::TotalSplitVerticesClassified() const {
  uint64_t total = 0;
  for (const SchedulerWorkerStats& w : workers) {
    total += w.split_vertices_classified;
  }
  return total;
}

uint64_t SchedulerStats::TotalGeomArenaAllocations() const {
  uint64_t total = 0;
  for (const SchedulerWorkerStats& w : workers) {
    total += w.geom_arena_allocations;
  }
  return total;
}

std::string SchedulerStats::DebugString() const {
  std::ostringstream out;
  out << "workers=" << workers.size() << " executed=" << TotalExecuted()
      << " stolen=" << TotalStolen()
      << " steal_failures=" << TotalStealFailures()
      << " deque_high_water=" << MaxDequeHighWater()
      << " cands_scored=" << TotalCandidatesScored()
      << " gather_bytes=" << TotalGatherBytes()
      << " reuse_hits=" << TotalReuseHits()
      << " arena_allocs=" << TotalArenaAllocations()
      << " split_verts=" << TotalSplitVerticesClassified()
      << " geom_allocs=" << TotalGeomArenaAllocations() << " wall="
      << wall_seconds << "s";
  if (cache_hits + cache_partial_hits + cache_misses > 0) {
    const char* kind = cache_hits > 0
                           ? "hit"
                           : (cache_partial_hits > 0 ? "partial" : "miss");
    out << " cache=" << kind << " cache_tasks_saved=" << cache_tasks_saved
        << " cache_evicted_bytes=" << cache_evicted_bytes;
  }
  for (size_t i = 0; i < workers.size(); ++i) {
    const SchedulerWorkerStats& w = workers[i];
    out << "\n  worker " << i << ": executed=" << w.tasks_executed
        << " stolen=" << w.tasks_stolen
        << " steal_failures=" << w.steal_failures
        << " deque_high_water=" << w.deque_high_water
        << " cands_scored=" << w.candidates_scored
        << " reuse_hits=" << w.reuse_hits;
  }
  return out.str();
}

}  // namespace toprr
