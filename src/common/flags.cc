#include "common/flags.h"

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace toprr {

void FlagParser::AddInt(const std::string& name, int64_t* target,
                        const std::string& help) {
  flags_.push_back({name, Type::kInt64, target, help});
}

void FlagParser::AddInt(const std::string& name, int* target,
                        const std::string& help) {
  flags_.push_back({name, Type::kInt, target, help});
}

void FlagParser::AddDouble(const std::string& name, double* target,
                           const std::string& help) {
  flags_.push_back({name, Type::kDouble, target, help});
}

void FlagParser::AddBool(const std::string& name, bool* target,
                         const std::string& help) {
  flags_.push_back({name, Type::kBool, target, help});
}

void FlagParser::AddString(const std::string& name, std::string* target,
                           const std::string& help) {
  flags_.push_back({name, Type::kString, target, help});
}

bool FlagParser::Assign(const Flag& flag, const std::string& value) {
  char* end = nullptr;
  switch (flag.type) {
    case Type::kInt64: {
      const int64_t v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') return false;
      *static_cast<int64_t*>(flag.target) = v;
      return true;
    }
    case Type::kInt: {
      const long v = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') return false;
      *static_cast<int*>(flag.target) = static_cast<int>(v);
      return true;
    }
    case Type::kDouble: {
      const double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') return false;
      *static_cast<double*>(flag.target) = v;
      return true;
    }
    case Type::kBool: {
      if (value == "true" || value == "1" || value.empty()) {
        *static_cast<bool*>(flag.target) = true;
        return true;
      }
      if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.target) = false;
        return true;
      }
      return false;
    }
    case Type::kString: {
      *static_cast<std::string*>(flag.target) = value;
      return true;
    }
  }
  return false;
}

bool FlagParser::Parse(int* argc, char** argv) {
  std::vector<char*> keep;
  keep.push_back(argv[0]);
  for (int i = 1; i < *argc; ++i) {
    std::string arg(argv[i]);
    if (arg.rfind("--", 0) != 0) {
      keep.push_back(argv[i]);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name = body;
    std::string value;
    bool has_value = false;
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    }
    const Flag* match = nullptr;
    for (const Flag& f : flags_) {
      if (f.name == name) {
        match = &f;
        break;
      }
    }
    if (match == nullptr) {
      keep.push_back(argv[i]);
      continue;
    }
    if (!has_value && match->type != Type::kBool) {
      if (i + 1 >= *argc) {
        std::cerr << "flag --" << name << " requires a value\n";
        return false;
      }
      value = argv[++i];
      has_value = true;
    }
    if (!Assign(*match, value)) {
      std::cerr << "bad value for flag --" << name << ": '" << value << "'\n";
      return false;
    }
  }
  for (size_t i = 0; i < keep.size(); ++i) argv[i] = keep[i];
  *argc = static_cast<int>(keep.size());
  return true;
}

std::string FlagParser::HelpString() const {
  std::ostringstream out;
  out << "flags:\n";
  for (const Flag& f : flags_) {
    out << "  --" << f.name << "  " << f.help << "\n";
  }
  return out.str();
}

}  // namespace toprr
