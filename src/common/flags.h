// A tiny command-line flag parser used by benchmarks and examples.
//
// Usage:
//   FlagParser flags;
//   int n = 1000;
//   flags.AddInt("n", &n, "dataset size");
//   flags.Parse(argc, argv);            // accepts --n=5 or --n 5
#ifndef TOPRR_COMMON_FLAGS_H_
#define TOPRR_COMMON_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace toprr {

/// Registers typed flags backed by caller-owned variables and parses argv.
/// Unrecognized arguments are preserved (so google-benchmark flags pass
/// through untouched).
class FlagParser {
 public:
  FlagParser() = default;
  FlagParser(const FlagParser&) = delete;
  FlagParser& operator=(const FlagParser&) = delete;

  void AddInt(const std::string& name, int64_t* target,
              const std::string& help);
  void AddInt(const std::string& name, int* target, const std::string& help);
  void AddDouble(const std::string& name, double* target,
                 const std::string& help);
  void AddBool(const std::string& name, bool* target, const std::string& help);
  void AddString(const std::string& name, std::string* target,
                 const std::string& help);

  /// Parses argv in place. Recognized flags are removed from argv/argc.
  /// Returns false (after printing an error) on a malformed value.
  bool Parse(int* argc, char** argv);

  /// Human-readable flag listing.
  std::string HelpString() const;

 private:
  enum class Type { kInt64, kInt, kDouble, kBool, kString };

  struct Flag {
    std::string name;
    Type type;
    void* target;
    std::string help;
  };

  bool Assign(const Flag& flag, const std::string& value);

  std::vector<Flag> flags_;
};

}  // namespace toprr

#endif  // TOPRR_COMMON_FLAGS_H_
