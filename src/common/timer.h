// Wall-clock timing helpers for the benchmark harness.
#ifndef TOPRR_COMMON_TIMER_H_
#define TOPRR_COMMON_TIMER_H_

#include <chrono>

namespace toprr {

/// Measures elapsed wall-clock time from construction (or the last Reset).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Reset.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace toprr

#endif  // TOPRR_COMMON_TIMER_H_
