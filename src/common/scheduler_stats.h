// Telemetry of the work-stealing partition executor, kept in its own
// small header so the public solver surface (core/partition.h,
// core/toprr.h) can carry the stats without pulling in the thread pool
// and deque internals from common/thread_pool.h.
#ifndef TOPRR_COMMON_SCHEDULER_STATS_H_
#define TOPRR_COMMON_SCHEDULER_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace toprr {

/// Telemetry of one worker of the stealing executor.
struct SchedulerWorkerStats {
  uint64_t tasks_executed = 0;   // tasks this worker tested
  uint64_t tasks_stolen = 0;     // of those, taken from a victim's deque
  uint64_t steal_failures = 0;   // failed Steal() attempts
  uint64_t deque_high_water = 0; // own-deque depth high-water mark
};

/// Aggregate telemetry of one partition-scheduler run, surfaced through
/// PartitionOutput and ToprrResult::stats and printed by
/// `toprr_cli --stats`. Collected from per-worker locals at merge time;
/// the hot path never touches shared counters for it.
struct SchedulerStats {
  std::vector<SchedulerWorkerStats> workers;  // one entry per worker slot
  double wall_seconds = 0.0;  // partition-phase wall time

  uint64_t TotalExecuted() const;
  uint64_t TotalStolen() const;
  uint64_t TotalStealFailures() const;
  uint64_t MaxDequeHighWater() const;

  std::string DebugString() const;
};

}  // namespace toprr

#endif  // TOPRR_COMMON_SCHEDULER_STATS_H_
