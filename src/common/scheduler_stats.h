// Telemetry of the work-stealing partition executor, kept in its own
// small header so the public solver surface (core/partition.h,
// core/toprr.h) can carry the stats without pulling in the thread pool
// and deque internals from common/thread_pool.h.
#ifndef TOPRR_COMMON_SCHEDULER_STATS_H_
#define TOPRR_COMMON_SCHEDULER_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace toprr {

/// Telemetry of one worker of the stealing executor.
struct SchedulerWorkerStats {
  uint64_t tasks_executed = 0;   // tasks this worker tested
  uint64_t tasks_stolen = 0;     // of those, taken from a victim's deque
  uint64_t steal_failures = 0;   // failed Steal() attempts
  uint64_t deque_high_water = 0; // own-deque depth high-water mark

  // Scoring-kernel telemetry (topk/score_kernel.h), copied from the
  // worker's ScoreArena at merge time. The totals across workers are
  // deterministic (pure functions of the region tree), so the
  // bit-identical sequential == parallel guarantee covers them; the
  // per-worker breakdown, like the fields above, depends on timing.
  uint64_t candidates_scored = 0;   // candidate dot products evaluated
  uint64_t block_gather_bytes = 0;  // bytes gathered into SoA blocks
  uint64_t reuse_hits = 0;          // vertex rows reused from parent caches
  uint64_t arena_allocations = 0;   // arena growth events (0 once warm)

  // Flat-geometry telemetry (pref/flat_region.h), copied from the
  // worker's GeomArena at merge time with the same determinism contract:
  // totals are pure functions of the region tree, the per-worker
  // breakdown is timing-dependent. Both stay zero on the legacy
  // (use_flat_geometry = false) path.
  uint64_t split_vertices_classified = 0;  // vertices swept by flat splits
  uint64_t geom_arena_allocations = 0;     // geometry scratch growth events
};

/// Aggregate telemetry of one partition-scheduler run, surfaced through
/// PartitionOutput and ToprrResult::stats and printed by
/// `toprr_cli --stats`. Collected from per-worker locals at merge time;
/// the hot path never touches shared counters for it.
struct SchedulerStats {
  std::vector<SchedulerWorkerStats> workers;  // one entry per worker slot
  double wall_seconds = 0.0;  // partition-phase wall time

  // Cross-query region-cache telemetry (core/region_cache.h), stamped by
  // the engine per solve: the lookup class this query fell into (0/1
  // flags), the partition tasks it did not have to run because cached
  // cells were reused, and the bytes the accompanying insert evicted.
  // All zero when the cache is disabled or bypassed.
  uint64_t cache_hits = 0;          // solved by clipping a cached superset
  uint64_t cache_partial_hits = 0;  // resumed from an overlap's frontier
  uint64_t cache_misses = 0;        // solved cold (and inserted)
  uint64_t cache_tasks_saved = 0;   // partition tasks avoided via reuse
  uint64_t cache_evicted_bytes = 0; // LRU bytes evicted by this insert

  uint64_t TotalExecuted() const;
  uint64_t TotalStolen() const;
  uint64_t TotalStealFailures() const;
  uint64_t MaxDequeHighWater() const;
  uint64_t TotalCandidatesScored() const;
  uint64_t TotalGatherBytes() const;
  uint64_t TotalReuseHits() const;
  uint64_t TotalArenaAllocations() const;
  uint64_t TotalSplitVerticesClassified() const;
  uint64_t TotalGeomArenaAllocations() const;

  std::string DebugString() const;
};

}  // namespace toprr

#endif  // TOPRR_COMMON_SCHEDULER_STATS_H_
