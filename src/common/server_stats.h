// Serving-side counters, kept next to the scheduler telemetry in
// src/common/ so stats types stay independent of the socket code in
// src/serve/ (benches and tests can consume snapshots without linking
// the server).
//
// ServerStats is the live, thread-safe counter block the server mutates
// from its connection threads; Snapshot() copies it into the plain
// ServerStatsSnapshot for printing or assertions. Counters are
// monotonic; relaxed atomics suffice (they are telemetry, never control
// flow).
#ifndef TOPRR_COMMON_SERVER_STATS_H_
#define TOPRR_COMMON_SERVER_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace toprr {

/// A point-in-time copy of the serving counters.
struct ServerStatsSnapshot {
  uint64_t connections_accepted = 0;
  uint64_t frames_received = 0;
  uint64_t queries_received = 0;
  uint64_t queries_completed = 0;       // solved and answered kOk
  uint64_t queries_rejected_overload = 0;  // admission control said no
  uint64_t queries_budget_exceeded = 0;
  uint64_t queries_cancelled = 0;  // cut loose by shutdown
  uint64_t protocol_errors = 0;    // frames that failed to decode/frame
  uint64_t bytes_received = 0;
  uint64_t bytes_sent = 0;

  // Cross-query region cache outcomes (zero unless the server enabled
  // the cache; bypassed queries bump none of them).
  uint64_t cache_hits = 0;
  uint64_t cache_partial_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_tasks_saved = 0;  // partition tasks avoided via reuse

  // Protocol v3 mutation path (zero on a read-only workload).
  uint64_t mutations_staged = 0;     // rows + delete ids accepted
  uint64_t mutations_rejected = 0;   // rows/ids refused (validation/limit)
  uint64_t publishes_applied = 0;    // deltas published + SyncCatalog run
  uint64_t publishes_rejected = 0;   // conflict/empty/shutdown publishes
  uint64_t publishes_deduped = 0;    // retried publishes answered from the
                                     // applied-publish record (idempotency)
  uint64_t version_mismatches = 0;   // connections rejected at handshake

  // Failure-hardening counters (PR 9): socket timeouts, deadline
  // expiries, draining rejections, and overload brownouts.
  uint64_t timeouts_idle = 0;   // connections dropped: no frame started
  uint64_t timeouts_read = 0;   // connections dropped: stalled mid-frame
  uint64_t timeouts_write = 0;  // connections dropped: reply write stalled
  uint64_t queries_deadline_exceeded = 0;
  uint64_t queries_rejected_draining = 0;
  uint64_t brownout_clamps = 0;  // budgets clamped under sustained overload

  // Durability (PR 10): mirrored from the durable catalog after each
  // publish so `--stats` readers see WAL traffic without linking data/.
  // All zero when the server runs without a durable catalog.
  uint64_t wal_appends = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_fsyncs = 0;
  uint64_t checkpoints_written = 0;
  // Startup recovery outcome (set once, before serving begins).
  bool recovered = false;               // true: state rebuilt from disk
  uint64_t recovery_replayed_records = 0;
  uint64_t recovery_skipped_records = 0;  // already in the checkpoint
  uint64_t recovery_snapshot_seq = 0;     // seq recovery landed on
  double recovery_seconds = 0.0;

  std::string DebugString() const;
};

/// Thread-safe monotonic counters of one server instance.
class ServerStats {
 public:
  ServerStats() = default;
  ServerStats(const ServerStats&) = delete;
  ServerStats& operator=(const ServerStats&) = delete;

  void OnConnectionAccepted() { Bump(connections_accepted_); }
  void OnFrameReceived(uint64_t bytes) {
    Bump(frames_received_);
    bytes_received_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void OnQueriesReceived(uint64_t count) {
    queries_received_.fetch_add(count, std::memory_order_relaxed);
  }
  void OnQueryCompleted() { Bump(queries_completed_); }
  void OnQueriesRejectedOverload(uint64_t count) {
    queries_rejected_overload_.fetch_add(count, std::memory_order_relaxed);
  }
  void OnQueryBudgetExceeded() { Bump(queries_budget_exceeded_); }
  void OnQueryCancelled() { Bump(queries_cancelled_); }
  void OnProtocolError() { Bump(protocol_errors_); }
  void OnBytesSent(uint64_t bytes) {
    bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void OnCacheHit() { Bump(cache_hits_); }
  void OnCachePartialHit() { Bump(cache_partial_hits_); }
  void OnCacheMiss() { Bump(cache_misses_); }
  void OnCacheTasksSaved(uint64_t count) {
    cache_tasks_saved_.fetch_add(count, std::memory_order_relaxed);
  }
  void OnMutationsStaged(uint64_t count) {
    mutations_staged_.fetch_add(count, std::memory_order_relaxed);
  }
  void OnMutationsRejected(uint64_t count) {
    mutations_rejected_.fetch_add(count, std::memory_order_relaxed);
  }
  void OnPublishApplied() { Bump(publishes_applied_); }
  void OnPublishRejected() { Bump(publishes_rejected_); }
  void OnPublishDeduped() { Bump(publishes_deduped_); }
  void OnVersionMismatch() { Bump(version_mismatches_); }
  void OnIdleTimeout() { Bump(timeouts_idle_); }
  void OnReadTimeout() { Bump(timeouts_read_); }
  void OnWriteTimeout() { Bump(timeouts_write_); }
  void OnQueryDeadlineExceeded() { Bump(queries_deadline_exceeded_); }
  void OnQueriesRejectedDraining(uint64_t count) {
    queries_rejected_draining_.fetch_add(count, std::memory_order_relaxed);
  }
  void OnBrownoutClamp() { Bump(brownout_clamps_); }

  /// Mirrors the durable catalog's monotonic counters (absolute values,
  /// not increments -- the catalog owns the counts, stats just reflect
  /// them). Plain uint64 parameters keep this header free of data/
  /// includes: toprr_data depends on toprr_common, never the reverse.
  void SetDurableCounters(uint64_t wal_appends, uint64_t wal_bytes,
                          uint64_t wal_fsyncs, uint64_t checkpoints_written) {
    wal_appends_.store(wal_appends, std::memory_order_relaxed);
    wal_bytes_.store(wal_bytes, std::memory_order_relaxed);
    wal_fsyncs_.store(wal_fsyncs, std::memory_order_relaxed);
    checkpoints_written_.store(checkpoints_written,
                               std::memory_order_relaxed);
  }

  /// Records the startup-recovery outcome. Called once, before the
  /// accept loop starts, so the non-atomic double is never raced.
  void SetRecovery(bool recovered, uint64_t replayed_records,
                   uint64_t skipped_records, uint64_t snapshot_seq,
                   double seconds) {
    recovered_.store(recovered, std::memory_order_relaxed);
    recovery_replayed_records_.store(replayed_records,
                                     std::memory_order_relaxed);
    recovery_skipped_records_.store(skipped_records,
                                    std::memory_order_relaxed);
    recovery_snapshot_seq_.store(snapshot_seq, std::memory_order_relaxed);
    recovery_seconds_ = seconds;
  }

  ServerStatsSnapshot Snapshot() const;

 private:
  static void Bump(std::atomic<uint64_t>& counter) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> queries_received_{0};
  std::atomic<uint64_t> queries_completed_{0};
  std::atomic<uint64_t> queries_rejected_overload_{0};
  std::atomic<uint64_t> queries_budget_exceeded_{0};
  std::atomic<uint64_t> queries_cancelled_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_partial_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> cache_tasks_saved_{0};
  std::atomic<uint64_t> mutations_staged_{0};
  std::atomic<uint64_t> mutations_rejected_{0};
  std::atomic<uint64_t> publishes_applied_{0};
  std::atomic<uint64_t> publishes_rejected_{0};
  std::atomic<uint64_t> publishes_deduped_{0};
  std::atomic<uint64_t> version_mismatches_{0};
  std::atomic<uint64_t> timeouts_idle_{0};
  std::atomic<uint64_t> timeouts_read_{0};
  std::atomic<uint64_t> timeouts_write_{0};
  std::atomic<uint64_t> queries_deadline_exceeded_{0};
  std::atomic<uint64_t> queries_rejected_draining_{0};
  std::atomic<uint64_t> brownout_clamps_{0};
  std::atomic<uint64_t> wal_appends_{0};
  std::atomic<uint64_t> wal_bytes_{0};
  std::atomic<uint64_t> wal_fsyncs_{0};
  std::atomic<uint64_t> checkpoints_written_{0};
  std::atomic<bool> recovered_{false};
  std::atomic<uint64_t> recovery_replayed_records_{0};
  std::atomic<uint64_t> recovery_skipped_records_{0};
  std::atomic<uint64_t> recovery_snapshot_seq_{0};
  // Written once in SetRecovery before the accept loop exists; read by
  // Snapshot afterwards. No concurrent writer, so a plain double is safe.
  double recovery_seconds_ = 0.0;
};

}  // namespace toprr

#endif  // TOPRR_COMMON_SERVER_STATS_H_
