// Small string helpers shared by CSV I/O and report printing.
#ifndef TOPRR_COMMON_STRINGS_H_
#define TOPRR_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace toprr {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(const std::string& text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string Trim(const std::string& text);

/// Joins items with `sep`.
std::string Join(const std::vector<std::string>& items,
                 const std::string& sep);

/// Formats a double with `digits` significant digits (for table printing).
std::string FormatDouble(double value, int digits = 4);

/// Human-readable duration, e.g. "1.24s" / "83ms".
std::string FormatSeconds(double seconds);

}  // namespace toprr

#endif  // TOPRR_COMMON_STRINGS_H_
