#include "common/logging.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

namespace toprr {

std::string LogErrno(const std::string& context) {
  const int saved = errno;  // capture before any allocation can clobber it
  std::string message = context;
  message += ": ";
  message += std::strerror(saved);
  return message;
}

LogLevel& GlobalLogLevel() {
  static LogLevel level = LogLevel::kWarning;
  return level;
}

bool ParseLogLevel(const std::string& text, LogLevel* level) {
  std::string lower(text);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "debug") {
    *level = LogLevel::kDebug;
  } else if (lower == "info") {
    *level = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *level = LogLevel::kWarning;
  } else if (lower == "error") {
    *level = LogLevel::kError;
  } else if (lower == "off" || lower == "none") {
    *level = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

namespace internal_log {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    default:
      return "?";
  }
}

}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               static_cast<int>(GlobalLogLevel())) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

}  // namespace internal_log
}  // namespace toprr
