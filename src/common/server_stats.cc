#include "common/server_stats.h"

#include <sstream>

namespace toprr {

std::string ServerStatsSnapshot::DebugString() const {
  std::ostringstream out;
  out << "connections=" << connections_accepted
      << " frames=" << frames_received << " queries=" << queries_received
      << " completed=" << queries_completed
      << " rejected=" << queries_rejected_overload
      << " budget_exceeded=" << queries_budget_exceeded
      << " cancelled=" << queries_cancelled
      << " protocol_errors=" << protocol_errors << " rx=" << bytes_received
      << "B tx=" << bytes_sent << "B";
  if (cache_hits + cache_partial_hits + cache_misses > 0) {
    out << " cache_hits=" << cache_hits
        << " cache_partial=" << cache_partial_hits
        << " cache_misses=" << cache_misses
        << " cache_tasks_saved=" << cache_tasks_saved;
  }
  if (mutations_staged + mutations_rejected + publishes_applied +
          publishes_rejected + publishes_deduped + version_mismatches >
      0) {
    out << " mutations_staged=" << mutations_staged
        << " mutations_rejected=" << mutations_rejected
        << " publishes=" << publishes_applied
        << " publishes_rejected=" << publishes_rejected
        << " publishes_deduped=" << publishes_deduped
        << " version_mismatches=" << version_mismatches;
  }
  if (timeouts_idle + timeouts_read + timeouts_write +
          queries_deadline_exceeded + queries_rejected_draining +
          brownout_clamps >
      0) {
    out << " timeouts_idle=" << timeouts_idle
        << " timeouts_read=" << timeouts_read
        << " timeouts_write=" << timeouts_write
        << " deadline_exceeded=" << queries_deadline_exceeded
        << " rejected_draining=" << queries_rejected_draining
        << " brownout_clamps=" << brownout_clamps;
  }
  if (recovered || wal_appends + wal_bytes + checkpoints_written > 0) {
    out << " wal_appends=" << wal_appends << " wal_bytes=" << wal_bytes
        << " wal_fsyncs=" << wal_fsyncs
        << " checkpoints=" << checkpoints_written
        << " recovered=" << (recovered ? 1 : 0)
        << " recovery_replayed=" << recovery_replayed_records
        << " recovery_skipped=" << recovery_skipped_records
        << " recovery_seq=" << recovery_snapshot_seq
        << " recovery_ms=" << recovery_seconds * 1e3;
  }
  return out.str();
}

ServerStatsSnapshot ServerStats::Snapshot() const {
  ServerStatsSnapshot snap;
  snap.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  snap.frames_received = frames_received_.load(std::memory_order_relaxed);
  snap.queries_received = queries_received_.load(std::memory_order_relaxed);
  snap.queries_completed = queries_completed_.load(std::memory_order_relaxed);
  snap.queries_rejected_overload =
      queries_rejected_overload_.load(std::memory_order_relaxed);
  snap.queries_budget_exceeded =
      queries_budget_exceeded_.load(std::memory_order_relaxed);
  snap.queries_cancelled = queries_cancelled_.load(std::memory_order_relaxed);
  snap.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  snap.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  snap.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  snap.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  snap.cache_partial_hits =
      cache_partial_hits_.load(std::memory_order_relaxed);
  snap.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  snap.cache_tasks_saved = cache_tasks_saved_.load(std::memory_order_relaxed);
  snap.mutations_staged = mutations_staged_.load(std::memory_order_relaxed);
  snap.mutations_rejected =
      mutations_rejected_.load(std::memory_order_relaxed);
  snap.publishes_applied = publishes_applied_.load(std::memory_order_relaxed);
  snap.publishes_rejected =
      publishes_rejected_.load(std::memory_order_relaxed);
  snap.publishes_deduped = publishes_deduped_.load(std::memory_order_relaxed);
  snap.version_mismatches =
      version_mismatches_.load(std::memory_order_relaxed);
  snap.timeouts_idle = timeouts_idle_.load(std::memory_order_relaxed);
  snap.timeouts_read = timeouts_read_.load(std::memory_order_relaxed);
  snap.timeouts_write = timeouts_write_.load(std::memory_order_relaxed);
  snap.queries_deadline_exceeded =
      queries_deadline_exceeded_.load(std::memory_order_relaxed);
  snap.queries_rejected_draining =
      queries_rejected_draining_.load(std::memory_order_relaxed);
  snap.brownout_clamps = brownout_clamps_.load(std::memory_order_relaxed);
  snap.wal_appends = wal_appends_.load(std::memory_order_relaxed);
  snap.wal_bytes = wal_bytes_.load(std::memory_order_relaxed);
  snap.wal_fsyncs = wal_fsyncs_.load(std::memory_order_relaxed);
  snap.checkpoints_written =
      checkpoints_written_.load(std::memory_order_relaxed);
  snap.recovered = recovered_.load(std::memory_order_relaxed);
  snap.recovery_replayed_records =
      recovery_replayed_records_.load(std::memory_order_relaxed);
  snap.recovery_skipped_records =
      recovery_skipped_records_.load(std::memory_order_relaxed);
  snap.recovery_snapshot_seq =
      recovery_snapshot_seq_.load(std::memory_order_relaxed);
  snap.recovery_seconds = recovery_seconds_;
  return snap;
}

}  // namespace toprr
