#include "topk/skyband.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace toprr {

bool Dominates(const DatasetView& data, int a, int b) {
  const size_t d = data.dim();
  const double* pa = data.Row(a);
  const double* pb = data.Row(b);
  bool strict = false;
  for (size_t j = 0; j < d; ++j) {
    if (pa[j] < pb[j]) return false;
    if (pa[j] > pb[j]) strict = true;
  }
  return strict;
}

std::vector<int> SortBasedKSkyband(const DatasetView& data, int k) {
  std::vector<int> pool(data.size());
  std::iota(pool.begin(), pool.end(), 0);
  return SortBasedKSkybandPool(data, pool, k).ids;
}

KSkybandState SortBasedKSkybandPool(const DatasetView& data,
                                    const std::vector<int>& pool, int k) {
  CHECK_GT(k, 0);
  const size_t d = data.dim();
  std::vector<int> order(pool);
  std::vector<double> sums(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    const double* p = data.Row(pool[i]);
    double s = 0.0;
    for (size_t j = 0; j < d; ++j) s += p[j];
    sums[i] = s;
  }
  std::vector<size_t> perm(pool.size());
  std::iota(perm.begin(), perm.end(), 0);
  // Decreasing attribute sum: any dominator of p precedes p (a dominator
  // has componentwise >= values, hence a >= sum; exact ties with equal sum
  // imply equal points, which do not dominate). Ties break id ascending.
  std::sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
    if (sums[a] != sums[b]) return sums[a] > sums[b];
    return pool[a] < pool[b];
  });

  KSkybandState state;
  for (const size_t pi : perm) {
    const int id = pool[pi];
    int dominators = 0;
    bool keep = true;
    for (const int s : state.ids) {
      if (Dominates(data, s, id) && ++dominators >= k) {
        keep = false;
        break;
      }
    }
    if (keep) {
      // The scan ran over every accepted member, and every dominator of
      // `id` in the pool precedes it in sum order and was accepted (by
      // transitivity a rejected dominator implies >= k accepted ones),
      // so `dominators` is id's exact pool-wide dominator count.
      state.ids.push_back(id);
      state.counts.push_back(dominators);
    }
  }
  // Ascending id order, counts kept aligned.
  std::vector<size_t> by_id(state.ids.size());
  std::iota(by_id.begin(), by_id.end(), 0);
  std::sort(by_id.begin(), by_id.end(), [&](size_t a, size_t b) {
    return state.ids[a] < state.ids[b];
  });
  KSkybandState sorted;
  sorted.ids.reserve(state.ids.size());
  sorted.counts.reserve(state.ids.size());
  for (const size_t i : by_id) {
    sorted.ids.push_back(state.ids[i]);
    sorted.counts.push_back(state.counts[i]);
  }
  return sorted;
}

bool KSkybandDeleteHitsMember(const std::vector<int>& deleted,
                              const std::vector<int>& ids) {
  for (const int id : deleted) {
    if (std::binary_search(ids.begin(), ids.end(), id)) return true;
  }
  return false;
}

void KSkybandApplyInserts(const DatasetView& data, int k,
                          const std::vector<int>& inserted,
                          KSkybandState* state) {
  CHECK_GT(k, 0);
  if (inserted.empty()) return;
  const size_t d = data.dim();
  const auto row_sum = [&](int id) {
    const double* p = data.Row(id);
    double s = 0.0;
    for (size_t j = 0; j < d; ++j) s += p[j];
    return s;
  };

  // Work in decreasing-attribute-sum order (ties id-ascending), the same
  // order the rebuild scan uses. Dominance is componentwise >=, and
  // left-to-right floating-point summation is monotone in each addend, so
  // every dominator of a row has sum >= the row's sum and every row it
  // dominates has sum <= it. Each insert therefore only has to scan the
  // higher-sum prefix for dominators -- stopping as soon as k are found,
  // since the exact count only matters for rows that join -- and the
  // lower-sum suffix for dominatees. Equal-sum members (where rounding
  // may have absorbed a strict difference) get the two-way check.
  const size_t n0 = state->ids.size();
  std::vector<int> ids;
  std::vector<int> counts;
  std::vector<double> sums;
  ids.reserve(n0 + inserted.size());
  counts.reserve(n0 + inserted.size());
  sums.reserve(n0 + inserted.size());
  {
    std::vector<double> s0(n0);
    for (size_t i = 0; i < n0; ++i) s0[i] = row_sum(state->ids[i]);
    std::vector<size_t> perm(n0);
    std::iota(perm.begin(), perm.end(), 0);
    std::sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
      if (s0[a] != s0[b]) return s0[a] > s0[b];
      return state->ids[a] < state->ids[b];
    });
    for (const size_t i : perm) {
      ids.push_back(state->ids[i]);
      counts.push_back(state->counts[i]);
      sums.push_back(s0[i]);
    }
  }

  const auto sum_greater = [](double a, double b) { return a > b; };
  for (const int r : inserted) {
    const double s = row_sum(r);
    // Prefix [0, lo): sum > s, the only members that can dominate r.
    // Band [lo, hi): sum == s, either direction possible under rounding.
    // Suffix [hi, n): sum < s, the only members r can dominate.
    const size_t lo = static_cast<size_t>(
        std::lower_bound(sums.begin(), sums.end(), s, sum_greater) -
        sums.begin());
    const size_t hi = static_cast<size_t>(
        std::upper_bound(sums.begin(), sums.end(), s, sum_greater) -
        sums.begin());
    int dominators = 0;
    for (size_t i = 0; i < lo && dominators < k; ++i) {
      if (Dominates(data, ids[i], r)) ++dominators;
    }
    bool bumped = false;
    for (size_t i = lo; i < hi; ++i) {
      if (dominators < k && Dominates(data, ids[i], r)) {
        ++dominators;
      } else if (Dominates(data, r, ids[i])) {
        ++counts[i];
        bumped = true;
      }
    }
    for (size_t i = hi; i < ids.size(); ++i) {
      if (Dominates(data, r, ids[i])) {
        ++counts[i];
        bumped = true;
      }
    }
    if (bumped) {
      // Evict members whose dominator count reached k. They remain live
      // rows of the dataset, so surviving members' counts (which may
      // include them) are untouched.
      size_t w = 0;
      for (size_t i = 0; i < ids.size(); ++i) {
        if (counts[i] < k) {
          ids[w] = ids[i];
          counts[w] = counts[i];
          sums[w] = sums[i];
          ++w;
        }
      }
      ids.resize(w);
      counts.resize(w);
      sums.resize(w);
    }
    if (dominators < k) {
      // The prefix and band scans covered every member with sum >= s, so
      // `dominators` is r's exact member-dominator count (and, while
      // < k, its exact pool-wide count by the transitivity argument in
      // the header). Insert at r's sorted position.
      size_t pos = static_cast<size_t>(
          std::lower_bound(sums.begin(), sums.end(), s, sum_greater) -
          sums.begin());
      while (pos < sums.size() && sums[pos] == s && ids[pos] < r) ++pos;
      const auto at = static_cast<ptrdiff_t>(pos);
      ids.insert(ids.begin() + at, r);
      counts.insert(counts.begin() + at, dominators);
      sums.insert(sums.begin() + at, s);
    }
  }

  // Back to the state's ascending-id representation.
  std::vector<size_t> by_id(ids.size());
  std::iota(by_id.begin(), by_id.end(), 0);
  std::sort(by_id.begin(), by_id.end(),
            [&](size_t a, size_t b) { return ids[a] < ids[b]; });
  state->ids.clear();
  state->counts.clear();
  for (const size_t i : by_id) {
    state->ids.push_back(ids[i]);
    state->counts.push_back(counts[i]);
  }
}

}  // namespace toprr
