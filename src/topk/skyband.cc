#include "topk/skyband.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace toprr {

bool Dominates(const Dataset& data, int a, int b) {
  const size_t d = data.dim();
  const double* pa = data.Row(a);
  const double* pb = data.Row(b);
  bool strict = false;
  for (size_t j = 0; j < d; ++j) {
    if (pa[j] < pb[j]) return false;
    if (pa[j] > pb[j]) strict = true;
  }
  return strict;
}

std::vector<int> SortBasedKSkyband(const Dataset& data, int k) {
  CHECK_GT(k, 0);
  const size_t n = data.size();
  const size_t d = data.dim();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> sums(n);
  for (size_t i = 0; i < n; ++i) {
    const double* p = data.Row(i);
    double s = 0.0;
    for (size_t j = 0; j < d; ++j) s += p[j];
    sums[i] = s;
  }
  // Decreasing attribute sum: any dominator of p precedes p (a dominator
  // has componentwise >= values, hence a >= sum; exact ties with equal sum
  // imply equal points, which do not dominate).
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (sums[a] != sums[b]) return sums[a] > sums[b];
    return a < b;
  });

  std::vector<int> skyband;
  for (int id : order) {
    int dominators = 0;
    bool keep = true;
    for (int s : skyband) {
      if (Dominates(data, s, id) && ++dominators >= k) {
        keep = false;
        break;
      }
    }
    if (keep) skyband.push_back(id);
  }
  std::sort(skyband.begin(), skyband.end());
  return skyband;
}

}  // namespace toprr
