// Linear top-k evaluation, in full weight coordinates (over a whole
// dataset) and in reduced preference coordinates (over candidate subsets;
// the hot loop of the TAS algorithms).
//
// Ties are broken by option id ascending everywhere, so "same top-k set /
// same top-k-th option" (Definition 3) is deterministic.
#ifndef TOPRR_TOPK_TOPK_H_
#define TOPRR_TOPK_TOPK_H_

#include <vector>

#include "data/dataset.h"
#include "geom/vec.h"

namespace toprr {

/// One scored option.
struct ScoredOption {
  int id = -1;
  double score = 0.0;
};

/// The library-wide ranking order: score descending, ties id ascending
/// (Definition 3's deterministic tie-break). Shared by the naive path and
/// the SoA scoring kernel (topk/score_kernel.h) so both select identical
/// top-k sequences.
inline bool ScoredBetter(const ScoredOption& a, const ScoredOption& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

/// The top-k result at one weight vector: ids sorted by score descending
/// (ties id ascending). `kth` duplicates the last entry for convenience.
struct TopkResult {
  std::vector<ScoredOption> entries;  // size k (or fewer if |D| < k)

  int KthId() const { return entries.back().id; }
  double KthScore() const { return entries.back().score; }

  /// Sorted id list (ascending) for set comparisons.
  std::vector<int> IdSet() const;
};

/// Top-k over the full dataset at full weight vector w (dim d).
TopkResult ComputeTopK(const DatasetView& data, const Vec& w, int k);

/// Top-k over the candidate subset `ids` at reduced weights x (dim d-1).
TopkResult ComputeTopKReduced(const DatasetView& data,
                              const std::vector<int>& ids, const Vec& x,
                              int k);

/// Exact rank of option `id` at reduced weights x within `ids` (1-based;
/// options scoring strictly higher, or equal with smaller id, rank above).
int RankOfOption(const DatasetView& data, const std::vector<int>& ids,
                 const Vec& x, int id);

/// RankOfOption from a precomputed score row aligned with `ids` (e.g. a
/// live ScoreKernel buffer): same rank, no rescoring. `id` must be in
/// `ids`.
int RankFromScores(const std::vector<int>& ids, const double* scores,
                   int id);

}  // namespace toprr

#endif  // TOPRR_TOPK_TOPK_H_
