#include "topk/onion.h"

#include <algorithm>

#include "common/check.h"
#include "geom/convex_hull.h"

namespace toprr {

std::vector<int> OnionLayers(const Dataset& data, int k) {
  CHECK_GT(k, 0);
  std::vector<int> remaining(data.size());
  for (size_t i = 0; i < data.size(); ++i) remaining[i] = static_cast<int>(i);

  std::vector<int> result;
  for (int layer = 0; layer < k && !remaining.empty(); ++layer) {
    std::vector<Vec> points;
    points.reserve(remaining.size());
    for (int id : remaining) points.push_back(data.Option(id));
    auto hull = ComputeConvexHull(points);
    if (!hull.has_value()) {
      // Degenerate residual: everything left forms the last layer.
      result.insert(result.end(), remaining.begin(), remaining.end());
      remaining.clear();
      break;
    }
    std::vector<bool> on_hull(remaining.size(), false);
    for (int local : hull->vertex_indices) on_hull[local] = true;
    std::vector<int> next;
    for (size_t i = 0; i < remaining.size(); ++i) {
      if (on_hull[i]) {
        result.push_back(remaining[i]);
      } else {
        next.push_back(remaining[i]);
      }
    }
    remaining = std::move(next);
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace toprr
