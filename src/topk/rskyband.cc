#include "topk/rskyband.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/check.h"
#include "topk/skyband.h"

namespace toprr {

bool RDominates(const DatasetView& data, int a, int b, const PrefBox& region) {
  if (a == b) return false;
  const double* pa = data.Row(a);
  const double* pb = data.Row(b);
  const double lo = MinScoreDiffOverBox(pa, pb, region);
  if (lo < 0.0) return false;
  const double hi = MaxScoreDiffOverBox(pa, pb, region);
  if (hi > 0.0) return true;
  // Scores identical everywhere on the box (e.g. duplicate rows): order by
  // id so one representative of a duplicate block survives per slot.
  return a < b;
}

namespace {

// Shared scan: sorts the pool by score at a region-interior point and
// counts dominators among accepted members only (valid by transitivity of
// r-dominance, same argument as the classic k-skyband scan).
template <typename DominatesFn>
std::vector<int> RSkybandScan(const DatasetView& data, std::vector<int> pool,
                              const Vec& interior, int k,
                              const DominatesFn& dominates) {
  std::vector<double> interior_score(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    interior_score[i] = ReducedScore(data.Row(pool[i]), interior);
  }
  std::vector<size_t> order(pool.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (interior_score[a] != interior_score[b]) {
      return interior_score[a] > interior_score[b];
    }
    return pool[a] < pool[b];
  });

  std::vector<int> result;
  for (size_t oi : order) {
    const int id = pool[oi];
    int dominators = 0;
    bool keep = true;
    for (int s : result) {
      if (dominates(s, id) && ++dominators >= k) {
        keep = false;
        break;
      }
    }
    if (keep) result.push_back(id);
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<int> FullPool(const DatasetView& data,
                          const std::vector<int>* candidates) {
  if (candidates != nullptr) return *candidates;
  std::vector<int> pool(data.size());
  std::iota(pool.begin(), pool.end(), 0);
  return pool;
}

}  // namespace

std::vector<int> RSkyband(const DatasetView& data, const PrefBox& region, int k,
                          const std::vector<int>* candidates) {
  CHECK_GT(k, 0);
  CHECK_EQ(region.dim() + 1, data.dim());
  // Any r-dominator of p scores >= p at the center, so all potential
  // dominators of p precede p in decreasing center-score order (ties are
  // broken by id, matching the duplicate rule in RDominates).
  return RSkybandScan(data, FullPool(data, candidates), region.Center(), k,
                      [&](int a, int b) {
                        return RDominates(data, a, b, region);
                      });
}

bool RDominatesVertices(const DatasetView& data, int a, int b,
                        const std::vector<Vec>& vertices) {
  if (a == b) return false;
  const double* pa = data.Row(a);
  const double* pb = data.Row(b);
  bool strict = false;
  for (const Vec& v : vertices) {
    const double diff = ReducedScoreDiff(pa, pb, v);
    if (diff < 0.0) return false;
    if (diff > 0.0) strict = true;
  }
  // Equal everywhere (at all vertices hence, by Lemma 1, on the whole
  // polytope): order duplicates by id.
  return strict || a < b;
}

std::vector<int> RSkybandVertices(const DatasetView& data,
                                  const std::vector<Vec>& vertices, int k,
                                  const std::vector<int>* candidates) {
  CHECK_GT(k, 0);
  CHECK(!vertices.empty());
  CHECK_EQ(vertices[0].dim() + 1, data.dim());
  Vec interior(vertices[0].dim());
  for (const Vec& v : vertices) interior += v;
  interior /= static_cast<double>(vertices.size());
  return RSkybandScan(data, FullPool(data, candidates), interior, k,
                      [&](int a, int b) {
                        return RDominatesVertices(data, a, b, vertices);
                      });
}

}  // namespace toprr
