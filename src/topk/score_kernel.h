// Cache-aware scoring kernel for the partition phase's per-vertex top-k
// scans (the inner loop of TAS/TAS*/PAC; see core/partition.cc).
//
// The naive path scores a region's candidate pool one vertex at a time
// with an indirect data.Row(id) gather per candidate and a fresh
// std::vector<ScoredOption> per vertex. This kernel replaces that with:
//
//  * a structure-of-arrays candidate block: the pool's rows are gathered
//    once per region into a dense, 64-byte-aligned dim-major buffer
//    holding the reduced-score operands (p[j] - p[m] per dimension, plus
//    the p[m] base column), so scoring every region vertex is a
//    contiguous column sweep instead of |V| pointer-chasing loops;
//  * a per-worker ScoreArena that owns the block, the score matrix, the
//    selection scratch, and the pooled profile storage, eliminating every
//    per-vertex heap allocation once buffers are warm (growth events are
//    counted, so tests can assert the steady state allocates nothing);
//  * parent-to-child vertex-score memoization: a split hands the
//    surviving candidates' score columns to both children through a
//    VertexScoreCache, so a child vertex inherited from its parent costs
//    a row copy instead of a full rescore (candidates only shrink under
//    Lemma 5, and the child pool at profile time is exactly the parent's
//    post-Lemma-5 pool, so reuse is a masked copy, never a recompute).
//
// Bit-identical contract: for every candidate the kernel accumulates
// partial scores in exactly the order of ReducedScore (base p[m], then
// dimensions 0..m-1), and top-k selection uses the same comparator and
// partial_sort as ComputeTopKReduced over the same pool order. Kernel
// output therefore equals the naive path bit for bit, which preserves the
// scheduler's sequential == parallel determinism guarantee
// (core/scheduler.h, asserted by scheduler_test and score_kernel_test).
#ifndef TOPRR_TOPK_SCORE_KERNEL_H_
#define TOPRR_TOPK_SCORE_KERNEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "geom/vec.h"
#include "topk/topk.h"

namespace toprr {

/// Kernel telemetry, accumulated per ScoreArena (one arena per scheduler
/// worker) and folded into SchedulerWorkerStats at merge time.
struct ScoreKernelCounters {
  uint64_t candidates_scored = 0;   // candidate dot products evaluated
  uint64_t block_gather_bytes = 0;  // bytes written gathering SoA blocks
  uint64_t reuse_hits = 0;          // vertex rows copied from a parent cache
  uint64_t arena_allocations = 0;   // arena buffer growth events
};

/// Parent-to-child score memoization payload: the score rows of a split
/// region's vertices over the candidate pool its children inherit.
/// Shared (read-only) by both children; a child vertex whose coordinates
/// bitwise-match a cached vertex reuses the row verbatim, which is exact
/// because a score depends only on the vertex value and the candidate row.
/// Stored flat (row-major coordinate and score buffers) so building and
/// probing it never allocates per vertex; the flat-geometry region buffers
/// (pref/flat_region.h) feed it directly.
struct VertexScoreCache {
  size_t dim = 0;               // vertex dimension m
  std::vector<double> coords;   // parent vertices, row-major nv x dim
  std::vector<int> candidates;  // pool the rows are aligned with
  std::vector<double> rows;     // nv x candidates.size(), pool order

  size_t num_vertices() const { return dim == 0 ? 0 : coords.size() / dim; }

  /// The cached score row (candidates.size() doubles) for a
  /// bitwise-equal vertex of `vdim` doubles, or nullptr.
  const double* RowFor(const double* vertex, size_t vdim) const;
};

/// 64-byte-aligned growable double buffer (geometric growth, never
/// shrinks). Growth events are reported so the arena can count them.
class AlignedDoubles {
 public:
  AlignedDoubles() = default;
  ~AlignedDoubles();
  AlignedDoubles(const AlignedDoubles&) = delete;
  AlignedDoubles& operator=(const AlignedDoubles&) = delete;

  /// Ensures capacity for n doubles. Returns true when it (re)allocated.
  bool Reserve(size_t n);

  double* data() { return data_; }
  const double* data() const { return data_; }
  size_t capacity() const { return capacity_; }

 private:
  double* data_ = nullptr;
  size_t capacity_ = 0;
};

/// Per-worker scratch state for the scoring kernel: the SoA block, the
/// vertex-score matrix, selection scratch, and pooled profile storage.
/// Owned by a scheduler worker slot (core/scheduler.cc) and reused across
/// every region that worker tests; nothing here is thread-safe.
class ScoreArena {
 public:
  ScoreArena() = default;
  ScoreArena(const ScoreArena&) = delete;
  ScoreArena& operator=(const ScoreArena&) = delete;

  const ScoreKernelCounters& counters() const { return counters_; }
  ScoreKernelCounters& counters() { return counters_; }

  /// Pooled per-region profile storage: a vector of at least `count`
  /// TopkResults whose entry buffers keep their capacity across regions
  /// (it never shrinks, so a small region after a large one does not
  /// forfeit warmed slots). Contents are stale on return; the caller
  /// overwrites and uses exactly the first `count` slots.
  std::vector<TopkResult>& Profiles(size_t count);

 private:
  friend class ScoreKernel;

  AlignedDoubles block_;            // (m+1) columns x padded pool size
  AlignedDoubles scores_;           // |V| rows x padded pool size
  std::vector<int> pool_ids_;       // stable copy of the loaded pool
  std::vector<ScoredOption> scratch_;  // selection input, pool order
  std::vector<TopkResult> profiles_;   // pooled per-vertex results
  ScoreKernelCounters counters_;
};

/// The scoring kernel over one region's candidate pool. Stateless apart
/// from views into the arena; create one per region test (cheap).
class ScoreKernel {
 public:
  explicit ScoreKernel(ScoreArena& arena) : arena_(arena) {}

  /// Gathers the SoA candidate block for `ids` (ascending option ids,
  /// reduced dimension data.dim() - 1). Column j < m holds
  /// p[j] - p[m] per candidate; column m holds the p[m] base scores.
  /// The pool is copied into the arena, so later mutation of `ids` (e.g.
  /// a Lemma-5 reduction of the task's candidate vector) cannot skew the
  /// block's column alignment.
  void LoadBlock(const DatasetView& data, const std::vector<int>& ids);

  /// Scores every vertex against the loaded block into the arena's score
  /// matrix. A vertex bitwise-matching an entry of `reuse` (when non-null)
  /// takes a row copy instead of a sweep.
  void ScoreVertices(const std::vector<Vec>& vertices,
                     const VertexScoreCache* reuse);

  /// Flat-buffer variant: `count` vertices of dim() doubles each, stored
  /// row-major (e.g. FlatRegion::coords()). No Vec bridging: the sweep
  /// reads the buffer in place. Bit-identical to the Vec overload.
  void ScoreVertices(const double* coords, size_t count,
                     const VertexScoreCache* reuse);

  size_t pool_size() const { return pool_ == nullptr ? 0 : pool_->size(); }
  const std::vector<int>& pool() const { return *pool_; }

  /// Score row of vertex v: pool_size() doubles in pool order.
  const double* Scores(size_t vertex) const {
    return arena_.scores_.data() + vertex * stride_;
  }

  /// Score of candidate `id` at a vertex (binary search over the
  /// ascending pool; `id` must be in the pool).
  double ScoreOf(size_t vertex, int id) const;

  /// Top-k of a vertex's row, bit-identical to
  /// ComputeTopKReduced(data, pool, vertex, k). Reuses out's capacity.
  void TopKInto(size_t vertex, int k, TopkResult& out);

  /// 1-based rank of `id` at a vertex within the pool, identical to
  /// RankOfOption but read from the live scored buffer (no rescoring).
  int RankOf(size_t vertex, int id) const;

  /// Builds the memoization cache handed to a split's children:
  /// `surviving` must be a subsequence of the loaded pool (the post-
  /// Lemma-5 candidates); each vertex's row is masked-copied onto it.
  std::shared_ptr<const VertexScoreCache> MakeCache(
      const std::vector<Vec>& vertices,
      const std::vector<int>& surviving) const;

  /// Flat-buffer variant over `count` row-major vertices.
  std::shared_ptr<const VertexScoreCache> MakeCache(
      const double* coords, size_t count,
      const std::vector<int>& surviving) const;

 private:
  /// Scores (or reuse-copies) one vertex row; `x` is dim() doubles.
  void ScoreVertexRow(const double* x, size_t vertex,
                      const VertexScoreCache* reuse);

  ScoreArena& arena_;
  const std::vector<int>* pool_ = nullptr;
  size_t dim_ = 0;     // reduced dimension m
  size_t stride_ = 0;  // padded pool size (64-byte multiples)
};

}  // namespace toprr

#endif  // TOPRR_TOPK_SCORE_KERNEL_H_
