// k-skyband computation (Sec. 2.3 / 6.3 of the paper).
//
// The k-skyband is the set of options dominated by fewer than k others; it
// is a superset of the top-k result of every possible weight vector, and
// the first of the four fast-filtering alternatives compared in Fig. 8.
//
// Two implementations are provided: a sort-based scan (fast in practice,
// no index needed) and index-based BBS (see index/rtree.h). They return
// identical sets; tests verify this.
//
// For a live catalog (data/snapshot.h) the skyband is additionally
// maintainable *incrementally* across snapshot deltas: KSkybandState
// keeps, next to the member ids, each member's exact dominator count
// (necessarily < k), which is all the state needed to fold an inserted
// row in at O(|skyband| * d) -- count the member dominators of the new
// row, bump the counts of members it dominates, evict any that reach k --
// and to recognize that deleting a non-member is free. Only deleting a
// member invalidates the counts of what it dominated, forcing a rebuild
// over the live rows. Correctness rests on the same transitivity argument
// as the sort-based scan: while an option's dominator count is < k, its
// member-dominator count equals its total dominator count (any non-member
// dominator is itself dominated by >= k members, all of which dominate the
// option too). engine_test/skyband_test assert bit-identical equality
// between the incremental path and a full rebuild across insert / delete /
// mixed delta matrices.
#ifndef TOPRR_TOPK_SKYBAND_H_
#define TOPRR_TOPK_SKYBAND_H_

#include <vector>

#include "data/dataset.h"

namespace toprr {

/// True if option a dominates option b (componentwise >=, one strict).
bool Dominates(const DatasetView& data, int a, int b);

/// Sort-based k-skyband: scans options in decreasing attribute-sum order,
/// counting dominators among already-accepted skyband members (sufficient
/// by transitivity). Returns ids sorted ascending.
std::vector<int> SortBasedKSkyband(const DatasetView& data, int k);

/// The k-skyband plus per-member dominator counts -- the carry state of
/// incremental maintenance. Invariants: `ids` ascending; `counts[i]` is
/// the exact number of dominators of ids[i] in the pool it was built
/// over, and counts[i] < k.
struct KSkybandState {
  std::vector<int> ids;
  std::vector<int> counts;
};

/// Sort-based k-skyband restricted to `pool` (e.g. a snapshot's live
/// rows), with dominator counts. The id set equals SortBasedKSkyband over
/// a dataset containing exactly the pool rows.
KSkybandState SortBasedKSkybandPool(const DatasetView& data,
                                    const std::vector<int>& pool, int k);

/// True when any of `deleted` (ascending or not) is a member of the
/// ascending `ids` -- the rebuild trigger for a snapshot delta.
bool KSkybandDeleteHitsMember(const std::vector<int>& deleted,
                              const std::vector<int>& ids);

/// Folds inserted rows into the skyband state in place: for each row,
/// counts its member dominators (joining when < k), increments the counts
/// of members it dominates, and evicts members whose count reaches k.
/// Exact for any one-at-a-time insert order; rows must be live in `data`
/// and absent from the state. Deletions of non-members need no call (the
/// state is unchanged); a member deletion requires a rebuild instead.
/// Internally the members are kept in decreasing attribute-sum order, so
/// each insert scans only the higher-sum prefix for dominators (stopping
/// at k) and the lower-sum suffix for dominatees, which keeps the common
/// weak-insert case far below the O(|skyband| * d) worst case.
void KSkybandApplyInserts(const DatasetView& data, int k,
                          const std::vector<int>& inserted,
                          KSkybandState* state);

}  // namespace toprr

#endif  // TOPRR_TOPK_SKYBAND_H_
