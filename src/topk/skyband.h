// k-skyband computation (Sec. 2.3 / 6.3 of the paper).
//
// The k-skyband is the set of options dominated by fewer than k others; it
// is a superset of the top-k result of every possible weight vector, and
// the first of the four fast-filtering alternatives compared in Fig. 8.
//
// Two implementations are provided: a sort-based scan (fast in practice,
// no index needed) and index-based BBS (see index/rtree.h). They return
// identical sets; tests verify this.
#ifndef TOPRR_TOPK_SKYBAND_H_
#define TOPRR_TOPK_SKYBAND_H_

#include <vector>

#include "data/dataset.h"

namespace toprr {

/// True if option a dominates option b (componentwise >=, one strict).
bool Dominates(const Dataset& data, int a, int b);

/// Sort-based k-skyband: scans options in decreasing attribute-sum order,
/// counting dominators among already-accepted skyband members (sufficient
/// by transitivity). Returns ids sorted ascending.
std::vector<int> SortBasedKSkyband(const Dataset& data, int k);

}  // namespace toprr

#endif  // TOPRR_TOPK_SKYBAND_H_
