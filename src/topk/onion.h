// k-onion layers (Chang et al., "The Onion Technique", SIGMOD 2000) --
// the second fast-filtering alternative of paper Sec. 6.3 / Fig. 8.
//
// Layer 1 is the convex hull of D; layer i+1 is the hull of what remains.
// The union of the first k layers contains the top-k result of every
// linear scoring function, hence is a valid filter superset.
#ifndef TOPRR_TOPK_ONION_H_
#define TOPRR_TOPK_ONION_H_

#include <vector>

#include "data/dataset.h"

namespace toprr {

/// Returns the ids of options in the first k onion (convex hull) layers,
/// sorted ascending. When a residual layer turns degenerate (fewer than
/// d+1 affinely independent points), all remaining points join the final
/// layer, which keeps the result a valid superset.
std::vector<int> OnionLayers(const Dataset& data, int k);

}  // namespace toprr

#endif  // TOPRR_TOPK_ONION_H_
