#include "topk/score_kernel.h"

#include <algorithm>
#include <cstring>
#include <new>

#include "common/check.h"

namespace toprr {
namespace {

// Columns are padded to a multiple of 8 doubles so each starts on a
// 64-byte boundary (cache-line / AVX-512 width).
constexpr size_t kPadDoubles = 8;
constexpr size_t kAlignBytes = 64;

size_t PaddedStride(size_t n) {
  return ((n + kPadDoubles - 1) / kPadDoubles) * kPadDoubles;
}

// One fused sweep of a vertex over the block: for every candidate c the
// accumulation is base[c], then + x[j] * diff_j[c] for j = 0..M-1 -- the
// exact operation sequence of ReducedScore, so results are bit-identical
// to the naive path. The candidate loop's iterations are independent,
// which lets the compiler vectorize across c (each lane keeps its own
// sequential accumulation order); the compile-time M unrolls the inner
// loop so the column pointers stay in registers.
template <size_t M>
void SweepFixed(const double* block, size_t stride, const double* x,
                const double* base, size_t count, double* row) {
  for (size_t c = 0; c < count; ++c) {
    double acc = base[c];
    for (size_t j = 0; j < M; ++j) acc += x[j] * block[j * stride + c];
    row[c] = acc;
  }
}

void SweepGeneric(const double* block, size_t stride, const double* x,
                  const double* base, size_t m, size_t count, double* row) {
  for (size_t c = 0; c < count; ++c) {
    double acc = base[c];
    for (size_t j = 0; j < m; ++j) acc += x[j] * block[j * stride + c];
    row[c] = acc;
  }
}

void Sweep(const double* block, size_t stride, const double* x,
           const double* base, size_t m, size_t count, double* row) {
  switch (m) {
    case 1: SweepFixed<1>(block, stride, x, base, count, row); break;
    case 2: SweepFixed<2>(block, stride, x, base, count, row); break;
    case 3: SweepFixed<3>(block, stride, x, base, count, row); break;
    case 4: SweepFixed<4>(block, stride, x, base, count, row); break;
    case 5: SweepFixed<5>(block, stride, x, base, count, row); break;
    case 6: SweepFixed<6>(block, stride, x, base, count, row); break;
    case 7: SweepFixed<7>(block, stride, x, base, count, row); break;
    default: SweepGeneric(block, stride, x, base, m, count, row); break;
  }
}

}  // namespace

const double* VertexScoreCache::RowFor(const double* vertex,
                                       size_t vdim) const {
  if (vdim != dim || dim == 0) return nullptr;
  const size_t nv = num_vertices();
  const size_t stride = candidates.size();
  for (size_t v = 0; v < nv; ++v) {
    const double* cached = coords.data() + v * dim;
    bool match = true;
    for (size_t j = 0; j < dim; ++j) {
      if (cached[j] != vertex[j]) {
        match = false;
        break;
      }
    }
    if (match) return rows.data() + v * stride;
  }
  return nullptr;
}

AlignedDoubles::~AlignedDoubles() {
  if (data_ != nullptr) {
    ::operator delete[](data_, std::align_val_t(kAlignBytes));
  }
}

bool AlignedDoubles::Reserve(size_t n) {
  if (n <= capacity_) return false;
  size_t grown = capacity_ == 0 ? kPadDoubles : capacity_;
  while (grown < n) grown *= 2;
  double* fresh = static_cast<double*>(::operator new[](
      grown * sizeof(double), std::align_val_t(kAlignBytes)));
  if (data_ != nullptr) {
    ::operator delete[](data_, std::align_val_t(kAlignBytes));
  }
  data_ = fresh;
  capacity_ = grown;
  return true;
}

std::vector<TopkResult>& ScoreArena::Profiles(size_t count) {
  if (profiles_.capacity() < count) ++counters_.arena_allocations;
  if (profiles_.size() < count) profiles_.resize(count);
  return profiles_;
}

void ScoreKernel::LoadBlock(const DatasetView& data,
                            const std::vector<int>& ids) {
  CHECK(!ids.empty());
  const size_t m = data.dim() - 1;
  const size_t count = ids.size();
  if (arena_.pool_ids_.capacity() < count) {
    ++arena_.counters_.arena_allocations;
  }
  arena_.pool_ids_.assign(ids.begin(), ids.end());
  pool_ = &arena_.pool_ids_;
  dim_ = m;
  stride_ = PaddedStride(count);
  DCHECK(std::is_sorted(ids.begin(), ids.end()))
      << "candidate pools are ascending everywhere (rskyband output and "
         "Lemma-5 reductions preserve order); ScoreOf relies on it";

  if (arena_.block_.Reserve((m + 1) * stride_)) {
    ++arena_.counters_.arena_allocations;
  }
  double* block = arena_.block_.data();
  // Candidate-outer gather: one contiguous source row read per candidate,
  // strided writes into the dim-major columns. Row addressing goes
  // through the view so chunked snapshot storage gathers identically to
  // a contiguous Dataset (the read is per-row either way).
  for (size_t c = 0; c < count; ++c) {
    const double* row = data.Row(static_cast<size_t>(ids[c]));
    const double base = row[m];
    for (size_t j = 0; j < m; ++j) {
      block[j * stride_ + c] = row[j] - base;
    }
    block[m * stride_ + c] = base;
  }
  arena_.counters_.block_gather_bytes +=
      static_cast<uint64_t>((m + 1) * count * sizeof(double));
}

void ScoreKernel::ScoreVertexRow(const double* x, size_t vertex,
                                 const VertexScoreCache* reuse) {
  const size_t count = pool_->size();
  const size_t m = dim_;
  double* row = arena_.scores_.data() + vertex * stride_;
  if (reuse != nullptr) {
    const double* cached = reuse->RowFor(x, m);
    if (cached != nullptr) {
      DCHECK_EQ(reuse->candidates.size(), count);
      std::memcpy(row, cached, count * sizeof(double));
      ++arena_.counters_.reuse_hits;
      return;
    }
  }
  const double* block = arena_.block_.data();
  const double* base = block + m * stride_;
  Sweep(block, stride_, x, base, m, count, row);
  arena_.counters_.candidates_scored += count;
}

void ScoreKernel::ScoreVertices(const std::vector<Vec>& vertices,
                                const VertexScoreCache* reuse) {
  CHECK(pool_ != nullptr) << "LoadBlock first";
  if (arena_.scores_.Reserve(vertices.size() * stride_)) {
    ++arena_.counters_.arena_allocations;
  }
  for (size_t v = 0; v < vertices.size(); ++v) {
    ScoreVertexRow(vertices[v].data(), v, reuse);
  }
}

void ScoreKernel::ScoreVertices(const double* coords, size_t count,
                                const VertexScoreCache* reuse) {
  CHECK(pool_ != nullptr) << "LoadBlock first";
  if (arena_.scores_.Reserve(count * stride_)) {
    ++arena_.counters_.arena_allocations;
  }
  for (size_t v = 0; v < count; ++v) {
    ScoreVertexRow(coords + v * dim_, v, reuse);
  }
}

double ScoreKernel::ScoreOf(size_t vertex, int id) const {
  const std::vector<int>& ids = *pool_;
  const auto it = std::lower_bound(ids.begin(), ids.end(), id);
  DCHECK(it != ids.end() && *it == id) << "id " << id << " not in pool";
  return Scores(vertex)[static_cast<size_t>(it - ids.begin())];
}

void ScoreKernel::TopKInto(size_t vertex, int k, TopkResult& out) {
  CHECK_GT(k, 0);
  const std::vector<int>& ids = *pool_;
  const double* row = Scores(vertex);
  const size_t count = ids.size();
  const size_t kk = std::min<size_t>(k, count);

  // Bounded-heap selection over the raw score row: keep the k best seen
  // so far in a heap whose front is the worst of them (ScoredBetter as
  // the heap's "less"), and reject most candidates with one double
  // compare against that threshold. ScoredBetter is a strict total order
  // (ids are unique), so the selected set and its sort_heap order are
  // exactly ComputeTopKReduced's partial_sort output -- bit-identical,
  // without materializing a pool-sized (id, score) array per vertex.
  std::vector<ScoredOption>& heap = arena_.scratch_;
  if (heap.capacity() < kk) {
    heap.reserve(kk);
    ++arena_.counters_.arena_allocations;
  }
  heap.clear();
  size_t c = 0;
  for (; c < kk; ++c) heap.push_back({ids[c], row[c]});
  std::make_heap(heap.begin(), heap.end(), ScoredBetter);
  for (; c < count; ++c) {
    const double s = row[c];
    const ScoredOption& worst = heap.front();
    if (s < worst.score) continue;  // fast path: strictly worse
    const ScoredOption candidate{ids[c], s};
    if (!ScoredBetter(candidate, worst)) continue;  // tie lost on id
    std::pop_heap(heap.begin(), heap.end(), ScoredBetter);
    heap.back() = candidate;
    std::push_heap(heap.begin(), heap.end(), ScoredBetter);
  }
  std::sort_heap(heap.begin(), heap.end(), ScoredBetter);
  if (out.entries.capacity() < kk) ++arena_.counters_.arena_allocations;
  out.entries.assign(heap.begin(), heap.end());
}

int ScoreKernel::RankOf(size_t vertex, int id) const {
  return RankFromScores(*pool_, Scores(vertex), id);
}

std::shared_ptr<const VertexScoreCache> ScoreKernel::MakeCache(
    const double* coords, size_t count,
    const std::vector<int>& surviving) const {
  auto cache = std::make_shared<VertexScoreCache>();
  cache->dim = dim_;
  cache->coords.assign(coords, coords + count * dim_);
  cache->candidates = surviving;
  cache->rows.reserve(count * surviving.size());
  const std::vector<int>& ids = *pool_;
  for (size_t v = 0; v < count; ++v) {
    const double* row = Scores(v);
    // `surviving` is a subsequence of the loaded pool; a two-pointer walk
    // picks out its columns.
    size_t c = 0;
    for (const int id : surviving) {
      while (c < ids.size() && ids[c] != id) ++c;
      DCHECK_LT(c, ids.size()) << "surviving pool not a subsequence";
      cache->rows.push_back(row[c]);
      ++c;
    }
  }
  return cache;
}

std::shared_ptr<const VertexScoreCache> ScoreKernel::MakeCache(
    const std::vector<Vec>& vertices,
    const std::vector<int>& surviving) const {
  std::vector<double> coords;
  coords.reserve(vertices.size() * dim_);
  for (const Vec& v : vertices) {
    coords.insert(coords.end(), v.begin(), v.end());
  }
  return MakeCache(coords.data(), vertices.size(), surviving);
}

}  // namespace toprr
