#include "topk/topk.h"

#include <algorithm>

#include "common/check.h"
#include "pref/pref_space.h"

namespace toprr {
namespace {

TopkResult SelectTopK(std::vector<ScoredOption> scored, int k) {
  const size_t kk = std::min<size_t>(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + kk, scored.end(),
                    ScoredBetter);
  scored.resize(kk);
  TopkResult result;
  result.entries = std::move(scored);
  return result;
}

}  // namespace

std::vector<int> TopkResult::IdSet() const {
  std::vector<int> ids;
  ids.reserve(entries.size());
  for (const ScoredOption& e : entries) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TopkResult ComputeTopK(const DatasetView& data, const Vec& w, int k) {
  CHECK_GT(k, 0);
  CHECK(!data.empty());
  std::vector<ScoredOption> scored;
  scored.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    scored.push_back({static_cast<int>(i), data.Score(i, w)});
  }
  return SelectTopK(std::move(scored), k);
}

TopkResult ComputeTopKReduced(const DatasetView& data,
                              const std::vector<int>& ids, const Vec& x,
                              int k) {
  CHECK_GT(k, 0);
  CHECK(!ids.empty());
  CHECK_EQ(x.dim() + 1, data.dim());
  std::vector<ScoredOption> scored;
  scored.reserve(ids.size());
  for (int id : ids) {
    scored.push_back({id, ReducedScore(data.Row(id), x)});
  }
  return SelectTopK(std::move(scored), k);
}

int RankOfOption(const DatasetView& data, const std::vector<int>& ids,
                 const Vec& x, int id) {
  const double target_score = ReducedScore(data.Row(id), x);
  int rank = 1;
  for (int other : ids) {
    if (other == id) continue;
    const double s = ReducedScore(data.Row(other), x);
    if (s > target_score || (s == target_score && other < id)) ++rank;
  }
  return rank;
}

int RankFromScores(const std::vector<int>& ids, const double* scores,
                   int id) {
  double target_score = 0.0;
  bool found = false;
  for (size_t c = 0; c < ids.size(); ++c) {
    if (ids[c] == id) {
      target_score = scores[c];
      found = true;
      break;
    }
  }
  CHECK(found) << "option " << id << " not in the scored id list";
  int rank = 1;
  for (size_t c = 0; c < ids.size(); ++c) {
    const int other = ids[c];
    if (other == id) continue;
    const double s = scores[c];
    if (s > target_score || (s == target_score && other < id)) ++rank;
  }
  return rank;
}

}  // namespace toprr
