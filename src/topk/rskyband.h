// r-skyband filtering (Ciaccia & Martinenghi [14]; paper Sec. 6.3).
//
// Option p r-dominates option q w.r.t. a preference region wR when p
// scores at least as high as q for every w in wR (strictly somewhere).
// For a convex wR this reduces to score comparisons at wR's vertices
// (Lemma 1); for the axis-aligned boxes of the evaluation it collapses
// further to a closed-form per-coordinate minimization.
//
// The r-skyband (options r-dominated by fewer than k others) is a superset
// of the top-k result of every w in wR -- the filter the paper selects for
// all TopRR methods (Fig. 8).
#ifndef TOPRR_TOPK_RSKYBAND_H_
#define TOPRR_TOPK_RSKYBAND_H_

#include <vector>

#include "data/dataset.h"
#include "pref/pref_space.h"

namespace toprr {

/// True if option a r-dominates option b over the preference box: the
/// minimum of S_x(a) - S_x(b) over the box is >= 0 and the maximum > 0.
/// Exact duplicates (identical rows) are ordered by id so that duplicate
/// blocks cannot inflate the r-skyband.
bool RDominates(const DatasetView& data, int a, int b, const PrefBox& region);

/// The r-skyband of the dataset: ids of options r-dominated by fewer than
/// k others, sorted ascending. `candidates` optionally restricts the
/// computation to a known superset (e.g. the k-skyband) -- by transitivity
/// the result is unchanged.
std::vector<int> RSkyband(const DatasetView& data, const PrefBox& region, int k,
                          const std::vector<int>* candidates = nullptr);

/// General-polytope variant: r-dominance over an arbitrary convex wR given
/// by its vertex set (Lemma 1: a linear score difference is minimized at a
/// vertex). Used for the paper's general convex-polytope preference
/// regions (Sec. 3.1).
bool RDominatesVertices(const DatasetView& data, int a, int b,
                        const std::vector<Vec>& vertices);

std::vector<int> RSkybandVertices(const DatasetView& data,
                                  const std::vector<Vec>& vertices, int k,
                                  const std::vector<int>* candidates =
                                      nullptr);

}  // namespace toprr

#endif  // TOPRR_TOPK_RSKYBAND_H_
