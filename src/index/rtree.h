// An STR (Sort-Tile-Recursive) bulk-loaded R-tree over option points.
//
// This is the spatial access method behind the branch-and-bound algorithms
// the paper builds on: BBS skyline / k-skyband computation (Papadias et
// al. [34]) and branch-and-bound ranked (top-k) queries (Tao et al. [42]).
#ifndef TOPRR_INDEX_RTREE_H_
#define TOPRR_INDEX_RTREE_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "geom/vec.h"

namespace toprr {

/// A static, bulk-loaded R-tree over the points of a Dataset.
class RTree {
 public:
  struct Options {
    size_t leaf_capacity = 64;
    size_t fanout = 16;
  };

  struct Node {
    Vec lo;                        // MBR lower corner
    Vec hi;                        // MBR upper corner
    bool is_leaf = false;
    std::vector<int32_t> children;  // point ids (leaf) or node ids (inner)
  };

  /// Builds the tree with the STR packing algorithm. The dataset must
  /// outlive the tree (points are referenced by id, not copied).
  static RTree BulkLoad(const Dataset& data, const Options& options);
  static RTree BulkLoad(const Dataset& data) {
    return BulkLoad(data, Options());
  }

  int root() const { return root_; }
  const Node& node(int id) const {
    DCHECK_GE(id, 0);
    DCHECK_LT(static_cast<size_t>(id), nodes_.size());
    return nodes_[id];
  }
  size_t num_nodes() const { return nodes_.size(); }
  size_t size() const { return num_points_; }
  size_t dim() const { return dim_; }

 private:
  std::vector<Node> nodes_;
  int root_ = -1;
  size_t num_points_ = 0;
  size_t dim_ = 0;
};

/// Best-first branch-and-bound top-k under a full weight vector w >= 0
/// (Tao et al. [42]). Returns the k point ids ordered by score descending,
/// ties by id ascending.
std::vector<int> RTreeTopK(const Dataset& data, const RTree& tree,
                           const Vec& w, int k);

/// BBS k-skyband (Papadias et al. [34]): ids of options dominated by fewer
/// than k others. k = 1 yields the skyline.
std::vector<int> BbsKSkyband(const Dataset& data, const RTree& tree, int k);

}  // namespace toprr

#endif  // TOPRR_INDEX_RTREE_H_
