#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/check.h"

namespace toprr {
namespace {

// Recursive STR tiling: sorts `ids` so that consecutive runs of
// `leaf_capacity` points form spatially coherent leaves.
void StrTile(const Dataset& data, std::vector<int32_t>& ids, size_t begin,
             size_t end, size_t axis, size_t leaf_capacity) {
  const size_t d = data.dim();
  const size_t count = end - begin;
  if (count <= leaf_capacity) return;
  std::sort(ids.begin() + begin, ids.begin() + end,
            [&](int32_t a, int32_t b) {
              return data.At(a, axis) < data.At(b, axis);
            });
  if (axis + 1 >= d) return;
  const double leaves =
      std::ceil(static_cast<double>(count) / leaf_capacity);
  const double remaining_dims = static_cast<double>(d - axis);
  const size_t slabs = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(std::pow(leaves, 1.0 / remaining_dims))));
  const size_t slab_size = (count + slabs - 1) / slabs;
  for (size_t s = begin; s < end; s += slab_size) {
    StrTile(data, ids, s, std::min(end, s + slab_size), axis + 1,
            leaf_capacity);
  }
}

struct HeapEntry {
  double priority;
  int32_t id;       // node id or point id
  bool is_point;

  bool operator<(const HeapEntry& other) const {
    if (priority != other.priority) return priority < other.priority;
    // Deterministic order on ties: points before nodes, then smaller id.
    if (is_point != other.is_point) return !is_point;
    return id > other.id;
  }
};

// True if option `dominator` dominates `dominated` (componentwise >= with
// at least one strict >).
bool Dominates(const double* dominator, const double* dominated, size_t d) {
  bool strict = false;
  for (size_t j = 0; j < d; ++j) {
    if (dominator[j] < dominated[j]) return false;
    if (dominator[j] > dominated[j]) strict = true;
  }
  return strict;
}

// True if option `p` dominates every point of the box with upper corner
// `hi` (componentwise p >= hi).
bool DominatesBox(const double* p, const Vec& hi, size_t d) {
  for (size_t j = 0; j < d; ++j) {
    if (p[j] < hi[j]) return false;
  }
  return true;
}

}  // namespace

RTree RTree::BulkLoad(const Dataset& data, const Options& options) {
  CHECK_GE(options.leaf_capacity, 2u);
  CHECK_GE(options.fanout, 2u);
  RTree tree;
  tree.num_points_ = data.size();
  tree.dim_ = data.dim();
  const size_t n = data.size();
  const size_t d = data.dim();
  CHECK_GT(n, 0u);

  std::vector<int32_t> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<int32_t>(i);
  StrTile(data, ids, 0, n, 0, options.leaf_capacity);

  // Build leaves over consecutive runs.
  std::vector<int32_t> level;
  for (size_t begin = 0; begin < n; begin += options.leaf_capacity) {
    const size_t end = std::min(n, begin + options.leaf_capacity);
    Node leaf;
    leaf.is_leaf = true;
    leaf.lo = Vec(d, std::numeric_limits<double>::infinity());
    leaf.hi = Vec(d, -std::numeric_limits<double>::infinity());
    for (size_t i = begin; i < end; ++i) {
      leaf.children.push_back(ids[i]);
      const double* p = data.Row(ids[i]);
      for (size_t j = 0; j < d; ++j) {
        leaf.lo[j] = std::min(leaf.lo[j], p[j]);
        leaf.hi[j] = std::max(leaf.hi[j], p[j]);
      }
    }
    level.push_back(static_cast<int32_t>(tree.nodes_.size()));
    tree.nodes_.push_back(std::move(leaf));
  }

  // Pack upper levels by consecutive grouping (children are already in
  // STR order, so consecutive groups are spatially coherent).
  while (level.size() > 1) {
    std::vector<int32_t> next;
    for (size_t begin = 0; begin < level.size(); begin += options.fanout) {
      const size_t end = std::min(level.size(), begin + options.fanout);
      Node inner;
      inner.is_leaf = false;
      inner.lo = Vec(d, std::numeric_limits<double>::infinity());
      inner.hi = Vec(d, -std::numeric_limits<double>::infinity());
      for (size_t i = begin; i < end; ++i) {
        inner.children.push_back(level[i]);
        const Node& child = tree.nodes_[level[i]];
        for (size_t j = 0; j < d; ++j) {
          inner.lo[j] = std::min(inner.lo[j], child.lo[j]);
          inner.hi[j] = std::max(inner.hi[j], child.hi[j]);
        }
      }
      next.push_back(static_cast<int32_t>(tree.nodes_.size()));
      tree.nodes_.push_back(std::move(inner));
    }
    level = std::move(next);
  }
  tree.root_ = level[0];
  return tree;
}

std::vector<int> RTreeTopK(const Dataset& data, const RTree& tree,
                           const Vec& w, int k) {
  CHECK_EQ(w.dim(), data.dim());
  CHECK_GT(k, 0);
  for (size_t j = 0; j < w.dim(); ++j) {
    DCHECK_GE(w[j], -1e-12) << "branch-and-bound bound needs w >= 0";
  }
  std::priority_queue<HeapEntry> heap;
  const auto node_bound = [&](const RTree::Node& node) {
    return Dot(w, node.hi);
  };
  heap.push({node_bound(tree.node(tree.root())), tree.root(), false});
  std::vector<int> result;
  while (!heap.empty() && result.size() < static_cast<size_t>(k)) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (top.is_point) {
      result.push_back(top.id);
      continue;
    }
    const RTree::Node& node = tree.node(top.id);
    if (node.is_leaf) {
      for (int32_t pid : node.children) {
        heap.push({data.Score(pid, w), pid, true});
      }
    } else {
      for (int32_t cid : node.children) {
        heap.push({node_bound(tree.node(cid)), cid, false});
      }
    }
  }
  return result;
}

std::vector<int> BbsKSkyband(const Dataset& data, const RTree& tree, int k) {
  CHECK_GT(k, 0);
  const size_t d = data.dim();
  std::priority_queue<HeapEntry> heap;
  const auto corner_sum = [&](const Vec& hi) { return hi.Sum(); };
  heap.push({corner_sum(tree.node(tree.root()).hi), tree.root(), false});
  std::vector<int> skyband;

  // Counts how many current skyband members dominate the given target:
  // a point, or a box upper corner (every-point-in-box dominance).
  const auto dominated_at_least_k = [&](const double* point,
                                        const Vec* box_hi) {
    int count = 0;
    for (int sid : skyband) {
      const double* s = data.Row(sid);
      const bool dominates =
          box_hi != nullptr ? DominatesBox(s, *box_hi, d)
                            : Dominates(s, point, d);
      if (dominates && ++count >= k) return true;
    }
    return false;
  };

  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (top.is_point) {
      if (!dominated_at_least_k(data.Row(top.id), nullptr)) {
        skyband.push_back(top.id);
      }
      continue;
    }
    const RTree::Node& node = tree.node(top.id);
    if (dominated_at_least_k(nullptr, &node.hi)) continue;
    if (node.is_leaf) {
      for (int32_t pid : node.children) {
        const double* p = data.Row(pid);
        double point_sum = 0.0;
        for (size_t j = 0; j < d; ++j) point_sum += p[j];
        heap.push({point_sum, pid, true});
      }
    } else {
      for (int32_t cid : node.children) {
        heap.push({corner_sum(tree.node(cid).hi), cid, false});
      }
    }
  }
  std::sort(skyband.begin(), skyband.end());
  return skyband;
}

}  // namespace toprr
