// Snapshot-update skyband maintenance: cost of carrying the per-k
// skyband across a MutableCatalog publish incrementally vs rebuilding it
// from scratch over the new snapshot's live rows.
//
// Each config stages a delta of `delta_pct` percent of n (half inserts,
// half deletes of non-skyband rows -- the common case the incremental
// path is built for), publishes it, and then times two pure-function
// payloads over the published snapshot:
//  * rebuild     -- SortBasedKSkybandPool over all live ids (what every
//                   publish would cost without incremental maintenance);
//  * incremental -- copy the parent version's state and apply the delta
//                   via KSkybandApplyInserts (deletes of non-members are
//                   free by construction).
// Both series run on identical inputs; the incremental points carry
// `speedup_vs_rebuild` against the matching rebuild point (registered
// and therefore run first), `equal` asserting bit-identity of the two
// states (ids and counts), and `publish_ms` for the catalog publish
// itself (COW chunk sharing keeps it O(delta)). CI's bench-smoke job
// gates `snapshot_update/incremental/d:4/k:10/delta:1pct` at >= 5x with
// equal == 1 (ci/check_bench_smoke.py --snapshot).
//
// Emit the committed JSON trajectory with the stock flags:
//   bench_snapshot_update --benchmark_format=json
//                         --benchmark_out=BENCH_snapshot_update.json
#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "data/snapshot.h"
#include "topk/skyband.h"

namespace toprr {
namespace bench {
namespace {

constexpr int kWarmupRounds = 1;
constexpr int kMeasuredRounds = 3;

struct UpdateConfig {
  size_t n;
  size_t d;
  int k;
  int delta_pct;  // staged rows as a percentage of n (half ins, half del)

  std::string Label() const {
    return "d:" + std::to_string(d) + "/k:" + std::to_string(k) +
           "/delta:" + std::to_string(delta_pct) + "pct";
  }
};

// The sweep; the last entry is the CI-gated configuration.
const UpdateConfig kConfigs[] = {
    {50000, 3, 5, 1},
    {50000, 4, 10, 1},
};

// Rebuild per-round median seconds per config, seeded by the rebuild
// series (registered first) and read by the matching incremental point.
std::map<std::string, double>& RebuildSeconds() {
  static auto& seconds = *new std::map<std::string, double>();
  return seconds;
}

// One prepared publish per config, shared by both series so they time
// the exact same inputs: the parent skyband state, the published
// snapshot, and the Publish() wall time.
struct Prepared {
  KSkybandState base;     // parent version's skyband (ids + counts)
  SnapshotPtr snap;       // the published child snapshot
  double publish_seconds = 0.0;
};

// `count` staged inserts drawn uniform, `count` staged deletes of rows
// outside the base skyband -- the non-member-delete common case the
// incremental path is built for.
const Prepared& PrepareOnce(const UpdateConfig& config, uint64_t seed) {
  static auto& prepared = *new std::map<std::string, Prepared*>();
  Prepared*& slot = prepared[config.Label()];
  if (slot != nullptr) return *slot;
  slot = new Prepared();

  const Dataset& data = CachedSynthetic(config.n, config.d,
                                        Distribution::kIndependent, seed);
  MutableCatalog catalog(data);
  const SnapshotPtr v1 = catalog.Current();
  slot->base = SortBasedKSkybandPool(v1->View(), v1->live_ids(), config.k);

  const int count = static_cast<int>(config.n) * config.delta_pct / 200;
  Rng rng(seed * 31 + config.d);
  for (int i = 0; i < count; ++i) {
    Vec row(config.d);
    for (size_t j = 0; j < config.d; ++j) row[j] = rng.Uniform();
    catalog.StageInsert(row);
  }
  int staged = 0;
  for (const int id : v1->live_ids()) {
    if (staged == count) break;
    if (!std::binary_search(slot->base.ids.begin(), slot->base.ids.end(),
                            id)) {
      catalog.StageDelete(id);
      ++staged;
    }
  }
  Timer publish_timer;
  slot->snap = catalog.Publish();
  slot->publish_seconds = publish_timer.Seconds();
  return *slot;
}

void RunPoint(::benchmark::State& state, const UpdateConfig& config,
              bool incremental) {
  const BenchConfig& global = GlobalConfig();
  const Prepared& prep = PrepareOnce(config, global.seed);
  const KSkybandState& base = prep.base;
  const SnapshotPtr& snap = prep.snap;
  const DatasetView view = snap->View();

  // Bit-identity of the two maintenance paths, asserted on the same
  // inputs the timed payloads run on (the CI gate requires equal == 1).
  KSkybandState carried = base;
  KSkybandApplyInserts(view, config.k, snap->delta().inserted, &carried);
  const KSkybandState rebuilt =
      SortBasedKSkybandPool(view, snap->live_ids(), config.k);
  const bool equal =
      carried.ids == rebuilt.ids && carried.counts == rebuilt.counts;

  double checksum = 0.0;
  const auto payload = [&]() {
    if (incremental) {
      KSkybandState s = base;
      KSkybandApplyInserts(view, config.k, snap->delta().inserted, &s);
      checksum += static_cast<double>(s.ids.size());
    } else {
      const KSkybandState s =
          SortBasedKSkybandPool(view, snap->live_ids(), config.k);
      checksum += static_cast<double>(s.ids.size());
    }
  };

  RoundTiming timing;
  for (auto _ : state) {
    timing = RunTimedRounds(kWarmupRounds, kMeasuredRounds, payload);
    state.SetIterationTime(timing.median_seconds);
  }
  ::benchmark::DoNotOptimize(checksum);

  state.counters["skyband_size"] =
      static_cast<double>(rebuilt.ids.size());
  state.counters["delta_rows"] = static_cast<double>(
      snap->delta().inserted.size() + snap->delta().deleted.size());
  state.counters["round_median_ms"] = timing.median_seconds * 1e3;
  if (!incremental) {
    RebuildSeconds()[config.Label()] = timing.median_seconds;
    return;
  }
  state.counters["equal"] = equal ? 1.0 : 0.0;
  state.counters["publish_ms"] = prep.publish_seconds * 1e3;
  const auto it = RebuildSeconds().find(config.Label());
  if (it != RebuildSeconds().end() && it->second > 0.0 &&
      timing.median_seconds > 0.0) {
    state.counters["speedup_vs_rebuild"] =
        it->second / timing.median_seconds;
  }
}

void RegisterAll() {
  // The rebuild series registers (and runs) first so every incremental
  // point finds its baseline.
  for (const bool incremental : {false, true}) {
    for (const UpdateConfig& config : kConfigs) {
      const std::string name = std::string("snapshot_update/") +
                               (incremental ? "incremental/" : "rebuild/") +
                               config.Label();
      ::benchmark::RegisterBenchmark(
          name.c_str(),
          [config, incremental](::benchmark::State& state) {
            RunPoint(state, config, incremental);
          })
          ->UseManualTime();
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace toprr

int main(int argc, char** argv) {
  if (!toprr::bench::ParseBenchFlags(&argc, argv)) return 1;
  toprr::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
