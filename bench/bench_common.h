// Shared infrastructure for the paper-reproduction benchmarks.
//
// Every bench binary accepts:
//   --full            paper-scale parameters (hours on a laptop core!)
//   --queries=N       TopRR queries averaged per data point (default 3)
//   --budget=SECONDS  per-query time budget before reporting DNF
//   --seed=S          RNG seed for datasets and wR boxes
// plus the standard google-benchmark flags.
//
// Paper defaults (Table 5 boldface, adopted per DESIGN.md): n = 400K,
// d = 4, k = 10, sigma = 1%, IND. The scaled defaults below keep total
// bench runtime reasonable on the 1-core CI machine while preserving the
// figures' shapes.
#ifndef TOPRR_BENCH_BENCH_COMMON_H_
#define TOPRR_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/flags.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/toprr.h"
#include "data/generator.h"
#include "pref/pref_space.h"

namespace toprr {
namespace bench {

struct BenchConfig {
  bool full = false;
  int queries = 2;
  double budget_seconds = 5.0;
  uint64_t seed = 2019;

  // Defaults at the current scale.
  size_t default_n() const { return full ? 400000 : 50000; }
  size_t default_d() const { return 4; }
  int default_k() const { return 10; }
  double default_sigma() const { return 0.01; }

  std::vector<size_t> n_values() const {
    if (full) return {100000, 200000, 400000, 800000, 1600000};
    return {12500, 25000, 50000, 100000, 200000};
  }
  std::vector<size_t> d_values() const {
    if (full) return {2, 4, 6, 8, 10, 12};
    return {2, 3, 4, 5, 6};
  }
  std::vector<int> k_values() const { return {1, 5, 10, 20, 40}; }
  std::vector<double> sigma_values() const {
    return {0.001, 0.005, 0.01, 0.05, 0.10};
  }
};

inline BenchConfig& GlobalConfig() {
  static BenchConfig config;
  return config;
}

/// Parses our flags out of argv (leaving benchmark flags in place).
inline bool ParseBenchFlags(int* argc, char** argv) {
  BenchConfig& config = GlobalConfig();
  FlagParser flags;
  flags.AddBool("full", &config.full, "paper-scale parameters");
  flags.AddInt("queries", &config.queries, "queries per data point");
  flags.AddDouble("budget", &config.budget_seconds,
                  "per-query time budget (s)");
  int64_t seed = static_cast<int64_t>(config.seed);
  flags.AddInt("seed", &seed, "rng seed");
  if (!flags.Parse(argc, argv)) return false;
  config.seed = static_cast<uint64_t>(seed);
  return true;
}

/// Process-lifetime dataset cache so sweeps over k / sigma reuse data.
inline const Dataset& CachedSynthetic(size_t n, size_t d,
                                      Distribution dist, uint64_t seed) {
  using Key = std::tuple<size_t, size_t, int, uint64_t>;
  static std::map<Key, Dataset>& cache = *new std::map<Key, Dataset>();
  const Key key{n, d, static_cast<int>(dist), seed};
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, GenerateSynthetic(n, d, dist, seed)).first;
  }
  return it->second;
}

/// Min / median / mean over the measured rounds of one payload.
struct RoundTiming {
  double min_seconds = 0.0;
  double median_seconds = 0.0;
  double mean_seconds = 0.0;
  int rounds = 0;
};

/// Runs `payload` for `warmup` untimed rounds (caches fill, frequencies
/// settle) then `rounds` timed ones, reporting min / median-of-N / mean.
/// Shared by the bench binaries so single-shot numbers stop swinging with
/// scheduler noise (first step toward the csbench-grade harness on the
/// ROADMAP). Median is the robust headline; min bounds the noise floor.
template <typename Payload>
inline RoundTiming RunTimedRounds(int warmup, int rounds, Payload&& payload) {
  for (int i = 0; i < warmup; ++i) payload();
  std::vector<double> seconds;
  const int measured = rounds > 0 ? rounds : 1;
  seconds.reserve(static_cast<size_t>(measured));
  for (int i = 0; i < measured; ++i) {
    Timer timer;
    payload();
    seconds.push_back(timer.Seconds());
  }
  std::sort(seconds.begin(), seconds.end());
  RoundTiming timing;
  timing.rounds = measured;
  timing.min_seconds = seconds.front();
  const size_t mid = seconds.size() / 2;
  timing.median_seconds =
      seconds.size() % 2 == 1 ? seconds[mid]
                              : 0.5 * (seconds[mid - 1] + seconds[mid]);
  double total = 0.0;
  for (const double s : seconds) total += s;
  timing.mean_seconds = total / static_cast<double>(seconds.size());
  return timing;
}

/// Aggregated outcome of `queries` TopRR solves at one parameter point.
struct SweepPoint {
  double avg_seconds = 0.0;
  double avg_vall = 0.0;
  double avg_candidates = 0.0;
  double avg_halfspaces = 0.0;
  // Scheduler telemetry averages (work-stealing executor; zero when the
  // solves ran sequentially). Consumed by bench_parallel_scale so the
  // JSON trajectory records steal rates alongside speedups.
  double avg_tasks_executed = 0.0;
  double avg_tasks_stolen = 0.0;
  double avg_steal_failures = 0.0;
  // Scoring-kernel telemetry averages (topk/score_kernel.h).
  double avg_candidates_scored = 0.0;
  double avg_gather_bytes = 0.0;
  double avg_reuse_hits = 0.0;
  // Flat-geometry telemetry averages (pref/flat_region.h).
  double avg_split_vertices = 0.0;
  double avg_geom_allocations = 0.0;
  int dnf = 0;  // queries that exceeded the budget
};

/// Runs `queries` solves with distinct random wR boxes and averages.
inline SweepPoint RunSweepPoint(const Dataset& data, int k, double sigma,
                                const ToprrOptions& base_options,
                                double gamma = 1.0) {
  const BenchConfig& config = GlobalConfig();
  SweepPoint point;
  Rng rng(config.seed * 7919 + static_cast<uint64_t>(k * 131) +
          static_cast<uint64_t>(sigma * 1e6));
  int completed = 0;
  for (int q = 0; q < config.queries; ++q) {
    const PrefBox box =
        gamma == 1.0
            ? RandomPrefBox(data.dim() - 1, sigma, rng)
            : RandomElongatedPrefBox(data.dim() - 1, sigma, gamma, rng);
    ToprrOptions options = base_options;
    options.time_budget_seconds = config.budget_seconds;
    options.build_geometry = false;  // timing the core algorithm
    const ToprrResult result = SolveToprr(data, k, box, options);
    if (result.timed_out) {
      ++point.dnf;
      continue;
    }
    ++completed;
    point.avg_seconds += result.stats.total_seconds;
    point.avg_vall += static_cast<double>(result.stats.vall_unique);
    point.avg_candidates +=
        static_cast<double>(result.stats.candidates_after_filter);
    point.avg_halfspaces +=
        static_cast<double>(result.impact_halfspaces.size());
    point.avg_tasks_executed +=
        static_cast<double>(result.stats.scheduler.TotalExecuted());
    point.avg_tasks_stolen +=
        static_cast<double>(result.stats.scheduler.TotalStolen());
    point.avg_steal_failures +=
        static_cast<double>(result.stats.scheduler.TotalStealFailures());
    point.avg_candidates_scored +=
        static_cast<double>(result.stats.scheduler.TotalCandidatesScored());
    point.avg_gather_bytes +=
        static_cast<double>(result.stats.scheduler.TotalGatherBytes());
    point.avg_reuse_hits +=
        static_cast<double>(result.stats.scheduler.TotalReuseHits());
    point.avg_split_vertices += static_cast<double>(
        result.stats.scheduler.TotalSplitVerticesClassified());
    point.avg_geom_allocations += static_cast<double>(
        result.stats.scheduler.TotalGeomArenaAllocations());
  }
  if (completed > 0) {
    point.avg_seconds /= completed;
    point.avg_vall /= completed;
    point.avg_candidates /= completed;
    point.avg_halfspaces /= completed;
    point.avg_tasks_executed /= completed;
    point.avg_tasks_stolen /= completed;
    point.avg_steal_failures /= completed;
    point.avg_candidates_scored /= completed;
    point.avg_gather_bytes /= completed;
    point.avg_reuse_hits /= completed;
    point.avg_split_vertices /= completed;
    point.avg_geom_allocations /= completed;
  }
  return point;
}

/// Reports a sweep point through google-benchmark counters, marking DNF
/// runs with an error state so the tables read like the paper's charts.
inline void ReportSweepPoint(::benchmark::State& state,
                             const SweepPoint& point) {
  state.counters["sec_per_query"] = point.avg_seconds;
  state.counters["Vall"] = point.avg_vall;
  state.counters["Dprime"] = point.avg_candidates;
  state.counters["dnf"] = point.dnf;
  state.SetIterationTime(point.avg_seconds);
}

}  // namespace bench
}  // namespace toprr

#endif  // TOPRR_BENCH_BENCH_COMMON_H_
