// Serving-layer overhead on loopback: ToprrEngine::SolveBatch reached
// through the TCP front-end (serve/server.h + serve/client.h) versus
// called directly, over batch sizes 1/4/16. The wire_overhead_pct
// counter is the headline number: the protocol + framing + socket cost
// as a fraction of the direct solve time. Also reports per-RPC bytes so
// wire-format regressions show up as a counter, not an anecdote.
//
// Emit the JSON trajectory with the stock google-benchmark flags:
//   bench_serve_loopback --benchmark_format=json
//                        --benchmark_out=serve_loopback.json
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/engine.h"
#include "serve/client.h"
#include "serve/server.h"

namespace toprr {
namespace bench {
namespace {

// One process-lifetime loopback server over the cached default dataset
// (starting a listener per benchmark iteration would measure accept(2),
// not serving).
serve::ToprrServer& LoopbackServer() {
  static serve::ToprrServer* server = [] {
    const BenchConfig& config = GlobalConfig();
    const Dataset& data =
        CachedSynthetic(config.default_n() / 4, config.default_d(),
                        Distribution::kIndependent, config.seed);
    serve::ServerConfig server_config;
    server_config.max_inflight_queries = 1024;
    auto* started = new serve::ToprrServer(
        DatasetSnapshot::FromDataset(data), server_config);
    std::string error;
    CHECK(started->Start(&error)) << error;
    started->WarmSkyband(GlobalConfig().default_k());
    return started;
  }();
  return *server;
}

std::vector<ToprrQuery> MakeBatch(int batch) {
  const BenchConfig& config = GlobalConfig();
  Rng rng(config.seed * 13 + static_cast<uint64_t>(batch));
  std::vector<ToprrQuery> queries;
  queries.reserve(static_cast<size_t>(batch));
  for (int q = 0; q < batch; ++q) {
    ToprrOptions options;
    options.build_geometry = false;
    queries.push_back(ToprrQuery::FromBox(
        config.default_k(),
        RandomPrefBox(LoopbackServer().engine().dataset_dim() - 1,
                      config.default_sigma(), rng),
        options));
  }
  return queries;
}

void BM_ServeLoopback(::benchmark::State& state) {
  serve::ToprrServer& server = LoopbackServer();
  const int batch = static_cast<int>(state.range(0));
  const std::vector<ToprrQuery> queries = MakeBatch(batch);

  // Direct-call baseline for the overhead counter (outside the timed
  // loop; one measurement is plenty for a ratio).
  Timer direct_timer;
  server.engine().SolveBatch(queries, 1);
  const double direct_seconds = direct_timer.Seconds();

  serve::ToprrClient client;
  CHECK(client.Connect("127.0.0.1", server.port())) << client.last_error();
  double served_seconds = 0.0;
  int rpcs = 0;
  for (auto _ : state) {
    Timer rpc_timer;
    auto responses = client.SolveBatch(queries);
    const double rpc_seconds = rpc_timer.Seconds();
    CHECK(responses.has_value()) << client.last_error();
    CHECK_EQ(responses->size(), queries.size());
    state.SetIterationTime(rpc_seconds);
    served_seconds += rpc_seconds;
    ++rpcs;
  }
  if (rpcs > 0 && direct_seconds > 0.0) {
    const double avg_served = served_seconds / rpcs;
    state.counters["batch"] = batch;
    state.counters["direct_sec"] = direct_seconds;
    state.counters["served_sec"] = avg_served;
    state.counters["wire_overhead_pct"] =
        100.0 * (avg_served - direct_seconds) / direct_seconds;
    const ServerStatsSnapshot stats = server.stats().Snapshot();
    state.counters["rx_bytes_total"] =
        static_cast<double>(stats.bytes_received);
    state.counters["tx_bytes_total"] = static_cast<double>(stats.bytes_sent);
  }
}

BENCHMARK(BM_ServeLoopback)
    ->Name("serve_loopback/batch")
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace toprr

int main(int argc, char** argv) {
  if (!toprr::bench::ParseBenchFlags(&argc, argv)) return 1;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
