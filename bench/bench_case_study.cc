// Figure 7 (case study): solving TopRR + cost-optimal placement on the
// CNET-like laptop data for the two clientele windows of Sec. 6.2, and the
// cost savings vs existing in-region competitors. The examples/
// laptop_case_study binary prints the narrative version; this bench
// tracks the numbers as counters.
#include <algorithm>

#include "bench/bench_common.h"
#include "core/placement.h"

namespace toprr {
namespace bench {
namespace {

void RunScenario(::benchmark::State& state, double wlo, double whi) {
  const Dataset data = GenerateCnetLaptops(GlobalConfig().seed);
  PrefBox clientele;
  clientele.lo = Vec{wlo};
  clientele.hi = Vec{whi};
  for (auto _ : state) {
    Timer timer;
    const ToprrResult region = SolveToprr(data, 3, clientele);
    const PlacementResult optimal = MinimumCostCreation(region);
    const double seconds = timer.Seconds();
    state.SetIterationTime(seconds);
    state.counters["sec_per_query"] = seconds;
    state.counters["vall"] = static_cast<double>(region.vall.size());
    if (!optimal.ok) continue;
    state.counters["optimal_cost"] = optimal.cost;
    // Savings vs existing laptops inside the region.
    double cheapest = 1e9;
    double priciest = -1e9;
    int competitors = 0;
    for (size_t i = 0; i < data.size(); ++i) {
      const Vec p = data.Option(i);
      if (region.Contains(p)) {
        ++competitors;
        cheapest = std::min(cheapest, p.SquaredNorm());
        priciest = std::max(priciest, p.SquaredNorm());
      }
    }
    state.counters["competitors"] = competitors;
    if (competitors > 0) {
      state.counters["savings_min_pct"] =
          100.0 * (1.0 - optimal.cost / cheapest);
      state.counters["savings_max_pct"] =
          100.0 * (1.0 - optimal.cost / priciest);
    }
  }
}

void RegisterAll() {
  ::benchmark::RegisterBenchmark(
      "fig7a/designers_wR_0.7_0.8",
      [](::benchmark::State& state) { RunScenario(state, 0.7, 0.8); })
      ->Iterations(1)
      ->UseManualTime();
  ::benchmark::RegisterBenchmark(
      "fig7b/business_wR_0.1_0.2",
      [](::benchmark::State& state) { RunScenario(state, 0.1, 0.2); })
      ->Iterations(1)
      ->UseManualTime();
}

}  // namespace
}  // namespace bench
}  // namespace toprr

int main(int argc, char** argv) {
  if (!toprr::bench::ParseBenchFlags(&argc, argv)) return 1;
  toprr::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
