// Figure 8: trade-off between the four fast-filtering alternatives of
// Sec. 6.3 -- k-skyband, k-onion layers, r-skyband, exact UTK -- measured
// as retained candidate count |D'| vs computation time at the default
// parameter point (IND data).
//
// The paper's chart normalizes both axes by the maximum; we report the
// raw values as counters (retained, sec_per_query) from which the
// normalized chart follows.
#include "bench/bench_common.h"
#include "core/utk_filter.h"
#include "topk/onion.h"
#include "topk/rskyband.h"
#include "topk/skyband.h"

namespace toprr {
namespace bench {
namespace {

enum class Filter { kSkyband, kOnion, kRSkyband, kUtk };

void RunFilter(::benchmark::State& state, Filter filter) {
  const BenchConfig& config = GlobalConfig();
  // Onion layers recompute d-dimensional hulls per layer; cap the input
  // size so the bench finishes (the paper's chart likewise shows onion as
  // the slowest filter).
  const size_t n = filter == Filter::kOnion
                       ? std::min<size_t>(config.default_n(), 20000)
                       : config.default_n();
  const Dataset& data = CachedSynthetic(
      n, config.default_d(), Distribution::kIndependent, config.seed);
  const int k = config.default_k();
  Rng rng(config.seed + 17);

  for (auto _ : state) {
    double total_seconds = 0.0;
    double total_retained = 0.0;
    for (int q = 0; q < config.queries; ++q) {
      const PrefBox box =
          RandomPrefBox(data.dim() - 1, config.default_sigma(), rng);
      Timer timer;
      size_t retained = 0;
      switch (filter) {
        case Filter::kSkyband:
          retained = SortBasedKSkyband(data, k).size();
          break;
        case Filter::kOnion:
          retained = OnionLayers(data, k).size();
          break;
        case Filter::kRSkyband:
          retained = RSkyband(data, box, k).size();
          break;
        case Filter::kUtk:
          retained =
              ExactTopkUnion(data, box, k, config.budget_seconds).size();
          break;
      }
      total_seconds += timer.Seconds();
      total_retained += static_cast<double>(retained);
    }
    state.counters["retained"] = total_retained / config.queries;
    state.counters["sec_per_query"] = total_seconds / config.queries;
    state.SetIterationTime(total_seconds / config.queries);
  }
}

void RegisterAll() {
  const struct {
    Filter filter;
    const char* name;
  } filters[] = {{Filter::kSkyband, "k_skyband"},
                 {Filter::kOnion, "k_onion_layers"},
                 {Filter::kRSkyband, "r_skyband"},
                 {Filter::kUtk, "UTK"}};
  for (const auto& f : filters) {
    ::benchmark::RegisterBenchmark(
        (std::string("fig8/") + f.name).c_str(),
        [f](::benchmark::State& state) { RunFilter(state, f.filter); })
        ->Iterations(1)
        ->UseManualTime();
  }
}

}  // namespace
}  // namespace bench
}  // namespace toprr

int main(int argc, char** argv) {
  if (!toprr::bench::ParseBenchFlags(&argc, argv)) return 1;
  toprr::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
