// Figure 14: effectiveness of k-switch splitting hyperplane selection
// (Definition 4, Sec. 5.3). Compares |Vall| with the k-switch strategy
// enabled vs disabled (random violating pair), varying k and sigma on IND
// data. The paper reports up to 8.9x fewer vertices.
#include "bench/bench_common.h"

namespace toprr {
namespace bench {
namespace {

void RunPoint(::benchmark::State& state, int k, double sigma) {
  const BenchConfig& config = GlobalConfig();
  const Dataset& data =
      CachedSynthetic(config.default_n(), config.default_d(),
                      Distribution::kIndependent, config.seed);
  ToprrOptions enabled;
  ToprrOptions disabled;
  disabled.use_kswitch = false;
  for (auto _ : state) {
    const SweepPoint with = RunSweepPoint(data, k, sigma, enabled);
    const SweepPoint without = RunSweepPoint(data, k, sigma, disabled);
    state.counters["vall_enabled"] = with.avg_vall;
    state.counters["vall_disabled"] = without.avg_vall;
    state.counters["dnf"] = with.dnf + without.dnf;
    state.SetIterationTime(with.avg_seconds + without.avg_seconds);
  }
}

void RegisterAll() {
  const BenchConfig& config = GlobalConfig();
  for (int k : config.k_values()) {
    ::benchmark::RegisterBenchmark(
        ("fig14a/k:" + std::to_string(k)).c_str(),
        [k](::benchmark::State& state) {
          RunPoint(state, k, GlobalConfig().default_sigma());
        })
        ->Iterations(1)
        ->UseManualTime();
  }
  for (double sigma : config.sigma_values()) {
    ::benchmark::RegisterBenchmark(
        ("fig14b/sigma_pct:" + std::to_string(sigma * 100.0)).c_str(),
        [sigma](::benchmark::State& state) {
          RunPoint(state, GlobalConfig().default_k(), sigma);
        })
        ->Iterations(1)
        ->UseManualTime();
  }
}

}  // namespace
}  // namespace bench
}  // namespace toprr

int main(int argc, char** argv) {
  if (!toprr::bench::ParseBenchFlags(&argc, argv)) return 1;
  toprr::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
