// Table 7: effect of wR elongation on TAS*. One side of the box has
// length gamma * s, the rest s, at constant volume sigma^(d-1). The paper
// finds TAS* essentially insensitive to gamma in 0.25..4.
#include "bench/bench_common.h"

namespace toprr {
namespace bench {
namespace {

double g_real_scale = 0.05;

void RunPoint(::benchmark::State& state, const std::string& dataset,
              double gamma) {
  static std::map<std::string, Dataset>& cache =
      *new std::map<std::string, Dataset>();
  auto it = cache.find(dataset);
  if (it == cache.end()) {
    const double scale = GlobalConfig().full ? 1.0 : g_real_scale;
    Dataset ds;
    if (dataset == "HOTEL") {
      ds = GenerateHotelLike(GlobalConfig().seed, scale);
    } else if (dataset == "HOUSE") {
      ds = GenerateHouseLike(GlobalConfig().seed, scale);
    } else {
      ds = GenerateNbaLike(GlobalConfig().seed, scale);
    }
    it = cache.emplace(dataset, std::move(ds)).first;
  }
  const BenchConfig& config = GlobalConfig();
  ToprrOptions options;
  for (auto _ : state) {
    const SweepPoint point =
        RunSweepPoint(it->second, config.default_k(),
                      config.default_sigma(), options, gamma);
    ReportSweepPoint(state, point);
  }
}

void RegisterAll() {
  for (const std::string dataset : {"HOTEL", "HOUSE", "NBA"}) {
    for (double gamma : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      ::benchmark::RegisterBenchmark(
          ("table7/" + dataset + "/gamma:" + std::to_string(gamma))
              .c_str(),
          [dataset, gamma](::benchmark::State& state) {
            RunPoint(state, dataset, gamma);
          })
          ->Iterations(1)
          ->UseManualTime();
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace toprr

int main(int argc, char** argv) {
  toprr::FlagParser extra;
  extra.AddDouble("real_scale", &toprr::bench::g_real_scale,
                  "cardinality scale for real-data stand-ins");
  if (!extra.Parse(&argc, argv)) return 1;
  if (!toprr::bench::ParseBenchFlags(&argc, argv)) return 1;
  toprr::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
