// Table 6: TAS* on each real dataset versus COR/IND/ANTI synthetic data
// of the same cardinality and dimensionality (default k and sigma). The
// paper's takeaway -- HOTEL/HOUSE behave between IND and ANTI, NBA close
// to COR -- should reproduce in the sec_per_query ordering.
#include "bench/bench_common.h"

namespace toprr {
namespace bench {
namespace {

double g_real_scale = 0.05;

struct Row {
  const char* name;
  Dataset real;
};

std::vector<Row>& Rows() {
  static std::vector<Row>& rows = *new std::vector<Row>();
  if (rows.empty()) {
    const double scale = GlobalConfig().full ? 1.0 : g_real_scale;
    rows.push_back({"HOTEL", GenerateHotelLike(GlobalConfig().seed, scale)});
    rows.push_back({"HOUSE", GenerateHouseLike(GlobalConfig().seed, scale)});
    rows.push_back({"NBA", GenerateNbaLike(GlobalConfig().seed, scale)});
  }
  return rows;
}

void RunCell(::benchmark::State& state, size_t row_index,
             const char* which) {
  const Row& row = Rows()[row_index];
  const BenchConfig& config = GlobalConfig();
  ToprrOptions options;
  const Dataset* data = &row.real;
  Distribution dist;
  if (ParseDistribution(which, &dist)) {
    data = &CachedSynthetic(row.real.size(), row.real.dim(), dist,
                            config.seed + 3);
  }
  for (auto _ : state) {
    const SweepPoint point = RunSweepPoint(*data, config.default_k(),
                                           config.default_sigma(), options);
    ReportSweepPoint(state, point);
    state.counters["n"] = static_cast<double>(data->size());
    state.counters["d"] = static_cast<double>(data->dim());
  }
}

void RegisterAll() {
  for (size_t r = 0; r < Rows().size(); ++r) {
    for (const char* which : {"COR", "IND", "ANTI", "Real"}) {
      ::benchmark::RegisterBenchmark(
          (std::string("table6/") + Rows()[r].name + "/" + which).c_str(),
          [r, which](::benchmark::State& state) {
            RunCell(state, r, which);
          })
          ->Iterations(1)
          ->UseManualTime();
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace toprr

int main(int argc, char** argv) {
  toprr::FlagParser extra;
  extra.AddDouble("real_scale", &toprr::bench::g_real_scale,
                  "cardinality scale for real-data stand-ins");
  if (!extra.Parse(&argc, argv)) return 1;
  if (!toprr::bench::ParseBenchFlags(&argc, argv)) return 1;
  toprr::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
