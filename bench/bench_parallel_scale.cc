// Parallel scaling of the partition scheduler and the batch query engine.
//
// Part (a) -- region-level parallelism: solve time of the Fig. 9 default
// workload (IND, default n/d/k/sigma) as ToprrOptions.num_threads sweeps
// 1/2/4/8. The speedup_vs_1t counter is the headline number (the 1-thread
// point registers first and seeds the baseline). Each point also records
// the work-stealing telemetry (tasks, steals, steal_failures,
// steal_rate).
//
// Part (a2) -- the same sweep on a deliberately deep anticorrelated
// tree (thousands of tasks): the series CI's bench-smoke job gates on
// (ci/check_bench_smoke.py).
//
// Part (b) -- query-level parallelism: ToprrEngine::SolveBatch throughput
// (queries/sec) for batch sizes 1/4/16/64 across 1/2/4/8 pool workers.
//
// Emit the JSON trajectory with the stock google-benchmark flags:
//   bench_parallel_scale --benchmark_format=json
//                        --benchmark_out=parallel_scale.json
#include <string>

#include "bench/bench_common.h"
#include "core/engine.h"

namespace toprr {
namespace bench {
namespace {

// 1-thread baseline seconds for the speedup counters, one per scheduler
// series, seeded by that series' threads:1 benchmark (registered and
// therefore run first).
double& BaselineSeconds() {
  static double baseline = 0.0;
  return baseline;
}

double& DeepBaselineSeconds() {
  static double baseline = 0.0;
  return baseline;
}

void RunSchedulerPointImpl(::benchmark::State& state, const Dataset& data,
                           int k, double sigma, int threads,
                           double& baseline) {
  ToprrOptions options;
  options.num_threads = threads;
  for (auto _ : state) {
    const SweepPoint point = RunSweepPoint(data, k, sigma, options);
    ReportSweepPoint(state, point);
    state.counters["threads"] = threads;
    // Work-stealing telemetry: steals per executed task is the executor's
    // load-balancing rate; failures per steal measure victim-probe churn.
    state.counters["tasks"] = point.avg_tasks_executed;
    state.counters["steals"] = point.avg_tasks_stolen;
    state.counters["steal_failures"] = point.avg_steal_failures;
    state.counters["steal_rate"] =
        point.avg_tasks_executed > 0.0
            ? point.avg_tasks_stolen / point.avg_tasks_executed
            : 0.0;
    // Scoring-kernel telemetry (topk/score_kernel.h): candidate dot
    // products evaluated, SoA gather traffic, and vertex scans the
    // parent-to-child memoization turned into row copies.
    state.counters["cands_scored"] = point.avg_candidates_scored;
    state.counters["gather_bytes"] = point.avg_gather_bytes;
    state.counters["reuse_hits"] = point.avg_reuse_hits;
    // Flat-geometry telemetry (pref/flat_region.h): vertices classified
    // by the fused split sweeps, and geometry-scratch growth events
    // (near zero once the per-worker GeomArenas are warm).
    state.counters["split_verts"] = point.avg_split_vertices;
    state.counters["geom_allocs"] = point.avg_geom_allocations;
    if (threads == 1 && point.avg_seconds > 0.0) {
      baseline = point.avg_seconds;
    }
    if (baseline > 0.0 && point.avg_seconds > 0.0) {
      state.counters["speedup_vs_1t"] = baseline / point.avg_seconds;
    }
  }
}

void RunSchedulerPoint(::benchmark::State& state, int threads) {
  const BenchConfig& config = GlobalConfig();
  const Dataset& data =
      CachedSynthetic(config.default_n(), config.default_d(),
                      Distribution::kIndependent, config.seed);
  RunSchedulerPointImpl(state, data, config.default_k(),
                        config.default_sigma(), threads, BaselineSeconds());
}

// Part (a2) -- the deep-tree point the CI bench-smoke gate reads. The
// default Fig. 9 workload (IND, sigma 1%) accepts after a few dozen
// regions: too shallow to exercise stealing or show stable speedups. An
// anticorrelated catalog with a wide clientele box drives the partition
// tree to thousands of tasks (deep enough to steal, ~0.15s sequential)
// while staying well under a second per point. k/sigma were bumped from
// 15/0.15 when the SoA scoring kernel landed (it roughly halved the
// per-task cost) and sigma again from 0.22 when the flat-geometry split
// landed (another ~14% off): the gate needs tasks heavy enough that
// stealing overhead stays negligible on the 4-core CI runner.
void RunSchedulerDeepPoint(::benchmark::State& state, int threads) {
  const BenchConfig& config = GlobalConfig();
  const Dataset& data = CachedSynthetic(
      40000, 3, Distribution::kAnticorrelated, config.seed);
  RunSchedulerPointImpl(state, data, /*k=*/20, /*sigma=*/0.25, threads,
                        DeepBaselineSeconds());
}

void RunBatchPoint(::benchmark::State& state, size_t batch_size,
                   int pool_threads) {
  const BenchConfig& config = GlobalConfig();
  const Dataset& data =
      CachedSynthetic(config.default_n(), config.default_d(),
                      Distribution::kIndependent, config.seed);
  ToprrEngine engine(DatasetSnapshot::FromDataset(data));
  engine.KSkyband(config.default_k());  // warm: timing the query path

  Rng rng(config.seed * 31 + batch_size * 7 +
          static_cast<uint64_t>(pool_threads));
  std::vector<ToprrQuery> queries;
  queries.reserve(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    ToprrOptions options;
    options.time_budget_seconds = config.budget_seconds;
    options.build_geometry = false;
    queries.push_back(ToprrQuery::FromBox(
        config.default_k(),
        RandomPrefBox(data.dim() - 1, config.default_sigma(), rng),
        options));
  }

  for (auto _ : state) {
    Timer timer;
    const std::vector<ToprrResult> results =
        engine.SolveBatch(queries, pool_threads);
    const double seconds = timer.Seconds();
    int dnf = 0;
    for (const ToprrResult& r : results) dnf += r.timed_out ? 1 : 0;
    state.counters["batch"] = static_cast<double>(batch_size);
    state.counters["threads"] = pool_threads;
    state.counters["qps"] =
        seconds > 0.0 ? static_cast<double>(batch_size) / seconds : 0.0;
    state.counters["sec_per_query"] =
        static_cast<double>(seconds) / static_cast<double>(batch_size);
    state.counters["dnf"] = dnf;
    state.SetIterationTime(seconds);
  }
}

void RegisterAll() {
  for (int threads : {1, 2, 4, 8}) {
    const std::string name =
        "parallel_scale/scheduler/threads:" + std::to_string(threads);
    ::benchmark::RegisterBenchmark(
        name.c_str(),
        [threads](::benchmark::State& state) {
          RunSchedulerPoint(state, threads);
        })
        ->Iterations(1)
        ->UseManualTime();
  }
  for (int threads : {1, 2, 4, 8}) {
    const std::string name =
        "parallel_scale/scheduler_deep/threads:" + std::to_string(threads);
    ::benchmark::RegisterBenchmark(
        name.c_str(),
        [threads](::benchmark::State& state) {
          RunSchedulerDeepPoint(state, threads);
        })
        ->Iterations(1)
        ->UseManualTime();
  }
  for (size_t batch : {size_t{1}, size_t{4}, size_t{16}, size_t{64}}) {
    for (int threads : {1, 2, 4, 8}) {
      const std::string name = "parallel_scale/batch:" +
                               std::to_string(batch) +
                               "/threads:" + std::to_string(threads);
      ::benchmark::RegisterBenchmark(
          name.c_str(),
          [batch, threads](::benchmark::State& state) {
            RunBatchPoint(state, batch, threads);
          })
          ->Iterations(1)
          ->UseManualTime();
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace toprr

int main(int argc, char** argv) {
  if (!toprr::bench::ParseBenchFlags(&argc, argv)) return 1;
  toprr::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
