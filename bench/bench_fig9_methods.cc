// Figure 9: collective performance evaluation of PAC / TAS / TAS* on IND
// data, varying (a) k, (b) sigma, (c) n, (d) d. One benchmark per
// (method, parameter) point; the sec_per_query counter is the figure's
// y-axis. DNF counters mark queries that exceeded --budget (the paper
// reports PAC unable to finish within 24h for d >= 8).
#include "bench/bench_common.h"

namespace toprr {
namespace bench {
namespace {

void RunPoint(::benchmark::State& state, ToprrMethod method, size_t n,
              size_t d, int k, double sigma) {
  const Dataset& data =
      CachedSynthetic(n, d, Distribution::kIndependent, GlobalConfig().seed);
  ToprrOptions options;
  options.method = method;
  for (auto _ : state) {
    const SweepPoint point = RunSweepPoint(data, k, sigma, options);
    ReportSweepPoint(state, point);
  }
}

void RegisterAll() {
  const BenchConfig& config = GlobalConfig();
  const struct {
    ToprrMethod method;
    const char* name;
  } methods[] = {{ToprrMethod::kPac, "PAC"},
                 {ToprrMethod::kTas, "TAS"},
                 {ToprrMethod::kTasStar, "TASstar"}};

  for (const auto& m : methods) {
    // (a) varying k.
    for (int k : config.k_values()) {
      std::string name = std::string("fig9a/") + m.name + "/k:" +
                         std::to_string(k);
      ::benchmark::RegisterBenchmark(
          name.c_str(),
          [m, k](::benchmark::State& state) {
            RunPoint(state, m.method, GlobalConfig().default_n(),
                     GlobalConfig().default_d(), k,
                     GlobalConfig().default_sigma());
          })
          ->Iterations(1)
          ->UseManualTime();
    }
    // (b) varying sigma.
    for (double sigma : config.sigma_values()) {
      std::string name = std::string("fig9b/") + m.name + "/sigma_pct:" +
                         std::to_string(sigma * 100.0);
      ::benchmark::RegisterBenchmark(
          name.c_str(),
          [m, sigma](::benchmark::State& state) {
            RunPoint(state, m.method, GlobalConfig().default_n(),
                     GlobalConfig().default_d(),
                     GlobalConfig().default_k(), sigma);
          })
          ->Iterations(1)
          ->UseManualTime();
    }
    // (c) varying n.
    for (size_t n : config.n_values()) {
      std::string name = std::string("fig9c/") + m.name + "/n:" +
                         std::to_string(n);
      ::benchmark::RegisterBenchmark(
          name.c_str(),
          [m, n](::benchmark::State& state) {
            RunPoint(state, m.method, n, GlobalConfig().default_d(),
                     GlobalConfig().default_k(),
                     GlobalConfig().default_sigma());
          })
          ->Iterations(1)
          ->UseManualTime();
    }
    // (d) varying d.
    for (size_t d : config.d_values()) {
      std::string name = std::string("fig9d/") + m.name + "/d:" +
                         std::to_string(d);
      ::benchmark::RegisterBenchmark(
          name.c_str(),
          [m, d](::benchmark::State& state) {
            RunPoint(state, m.method, GlobalConfig().default_n(), d,
                     GlobalConfig().default_k(),
                     GlobalConfig().default_sigma());
          })
          ->Iterations(1)
          ->UseManualTime();
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace toprr

int main(int argc, char** argv) {
  if (!toprr::bench::ParseBenchFlags(&argc, argv)) return 1;
  toprr::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
