// Cross-query region-cache replay: queries/sec of a zipf-skewed clientele
// mix through the engine with the cache off (cold) vs on and populated
// (warm).
//
// The mix mirrors examples/toprr_loadgen.cpp --zipf: a fixed set of
// profile boxes whose corners sit at grid-cell centers, sampled by
// Zipf(s) rank weight, each draw shifted by under half a canonicalization
// cell per axis -- so every jittered copy of a profile snaps to the same
// cached region and repeat queries hit. Both series replay the identical
// query sequence; the cold series merely bypasses the cache, so the gap
// is the cache's doing (the per-k skyband is warm for both).
//
// Each benchmark iteration times the replay with the shared
// RunTimedRounds helper (1 warmup round, median of 3) and the warm points
// carry `speedup_vs_cold`, `hit_rate`, and `tasks_saved` counters against
// the matching cold point (registered and therefore run first). CI's
// bench-smoke job gates `query_cache/warm/d:4/k:10` at >= 2x
// (ci/check_bench_smoke.py --cache).
//
// Emit the committed JSON trajectory with the stock flags:
//   bench_query_cache --benchmark_format=json
//                     --benchmark_out=BENCH_query_cache.json
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/engine.h"

namespace toprr {
namespace bench {
namespace {

constexpr double kQuantum = 1.0 / 256.0;  // region-cache default grid
constexpr double kZipfS = 1.2;
constexpr int kWarmupRounds = 1;
constexpr int kMeasuredRounds = 3;

struct ReplayConfig {
  size_t n;
  size_t d;
  int k;
  int profiles;  // distinct clientele boxes in the mix
  int queries;   // replayed per round

  std::string Label() const {
    return "d:" + std::to_string(d) + "/k:" + std::to_string(k);
  }
};

// The sweep; the last entry is the CI-gated configuration.
const ReplayConfig kConfigs[] = {
    {20000, 3, 5, 16, 48},
    {20000, 4, 10, 16, 48},
};

// Cold per-round median seconds per config, seeded by the cold series
// (registered first) and read by the matching warm point.
std::map<std::string, double>& ColdSeconds() {
  static auto& seconds = *new std::map<std::string, double>();
  return seconds;
}

// Profile boxes with corners at grid-cell centers ((m + 0.5) * quantum),
// rejection-sampled until the snapped-out canonical box fits in the
// simplex -- the same construction as the loadgen's BuildZipfMix, so this
// replay and the CI serve-smoke replay exercise the same cache behavior.
std::vector<PrefBox> BuildProfiles(size_t dim, double sigma, int count,
                                   uint64_t seed) {
  const double cells = 1.0 / kQuantum;
  const int64_t width =
      std::max<int64_t>(1, static_cast<int64_t>(std::lround(sigma * cells)));
  Rng rng(seed);
  std::vector<PrefBox> profiles;
  while (profiles.size() < static_cast<size_t>(count)) {
    PrefBox box;
    box.lo = Vec(dim);
    box.hi = Vec(dim);
    PrefBox canonical;
    canonical.lo = Vec(dim);
    canonical.hi = Vec(dim);
    for (size_t j = 0; j < dim; ++j) {
      const int64_t cell =
          rng.UniformInt(1, static_cast<int64_t>(cells) - width - 1);
      box.lo[j] = (static_cast<double>(cell) + 0.5) * kQuantum;
      box.hi[j] = (static_cast<double>(cell + width) + 0.5) * kQuantum;
      canonical.lo[j] = static_cast<double>(cell) * kQuantum;
      canonical.hi[j] = static_cast<double>(cell + width + 1) * kQuantum;
    }
    if (canonical.InsideSimplex()) profiles.push_back(std::move(box));
  }
  return profiles;
}

// The deterministic replay sequence: Zipf(s)-ranked profile picks, each
// shifted whole-box by |delta| <= 0.4 cells per axis (jitter-invariant
// canonical keys).
std::vector<ToprrQuery> BuildReplay(const ReplayConfig& config,
                                    bool use_cache, uint64_t seed) {
  const std::vector<PrefBox> profiles =
      BuildProfiles(config.d - 1, GlobalConfig().default_sigma(),
                    config.profiles, seed);
  std::vector<double> cdf(profiles.size());
  double total = 0.0;
  for (size_t i = 0; i < cdf.size(); ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), kZipfS);
    cdf[i] = total;
  }
  for (double& c : cdf) c /= total;

  Rng rng(seed * 17 + 3);
  std::vector<ToprrQuery> queries;
  queries.reserve(static_cast<size_t>(config.queries));
  for (int q = 0; q < config.queries; ++q) {
    const double u = rng.Uniform();
    const size_t pick =
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin();
    PrefBox box = profiles[std::min(pick, profiles.size() - 1)];
    for (size_t j = 0; j < box.dim(); ++j) {
      const double delta = (rng.Uniform() - 0.5) * 0.8 * kQuantum;
      box.lo[j] += delta;
      box.hi[j] += delta;
    }
    ToprrOptions options;
    options.build_geometry = false;
    options.use_region_cache = use_cache;
    queries.push_back(ToprrQuery::FromBox(config.k, std::move(box), options));
  }
  return queries;
}

void RunPoint(::benchmark::State& state, const ReplayConfig& config,
              bool warm) {
  const BenchConfig& global = GlobalConfig();
  const Dataset& data = CachedSynthetic(config.n, config.d,
                                        Distribution::kIndependent,
                                        global.seed);
  const std::vector<ToprrQuery> queries =
      BuildReplay(config, warm, global.seed * 101 + config.d);

  ToprrEngine engine(DatasetSnapshot::FromDataset(data));
  if (warm) engine.EnableRegionCache({});

  uint64_t hits = 0;
  uint64_t partial = 0;
  uint64_t misses = 0;
  uint64_t tasks_saved = 0;
  double checksum = 0.0;
  const auto replay = [&]() {
    const std::vector<ToprrResult> results = engine.SolveBatch(queries, 1);
    for (const ToprrResult& r : results) {
      hits += r.stats.scheduler.cache_hits;
      partial += r.stats.scheduler.cache_partial_hits;
      misses += r.stats.scheduler.cache_misses;
      tasks_saved += r.stats.scheduler.cache_tasks_saved;
      checksum += static_cast<double>(r.stats.vall_unique);
    }
  };

  uint64_t classified_queries = 0;
  RoundTiming timing;
  for (auto _ : state) {
    // The warmup round fills the per-k skyband for both series and the
    // region cache for the warm one; hit_rate below still counts its
    // mandatory cold misses.
    timing = RunTimedRounds(kWarmupRounds, kMeasuredRounds, replay);
    classified_queries += static_cast<uint64_t>(config.queries) *
                          (kWarmupRounds + kMeasuredRounds);
    state.SetIterationTime(timing.median_seconds);
  }
  ::benchmark::DoNotOptimize(checksum);

  state.counters["qps"] =
      timing.median_seconds > 0.0
          ? static_cast<double>(config.queries) / timing.median_seconds
          : 0.0;
  state.counters["round_min_ms"] = timing.min_seconds * 1e3;
  state.counters["round_median_ms"] = timing.median_seconds * 1e3;
  if (!warm) {
    ColdSeconds()[config.Label()] = timing.median_seconds;
    return;
  }
  const uint64_t classified = hits + partial + misses;
  state.counters["hit_rate"] =
      classified > 0
          ? static_cast<double>(hits + partial) /
                static_cast<double>(classified)
          : 0.0;
  state.counters["tasks_saved"] = static_cast<double>(tasks_saved);
  // Guard against a bypassing replay masquerading as a fast one: a warm
  // series that never classified a query gets no speedup counter, which
  // fails the CI gate loudly.
  if (classified_queries == 0 || classified != classified_queries) return;
  const auto it = ColdSeconds().find(config.Label());
  if (it != ColdSeconds().end() && it->second > 0.0 &&
      timing.median_seconds > 0.0) {
    state.counters["speedup_vs_cold"] = it->second / timing.median_seconds;
  }
}

void RegisterAll() {
  // The cold series registers (and runs) first so every warm point finds
  // its baseline.
  for (const bool warm : {false, true}) {
    for (const ReplayConfig& config : kConfigs) {
      const std::string name = std::string("query_cache/") +
                               (warm ? "warm/" : "cold/") + config.Label();
      ::benchmark::RegisterBenchmark(
          name.c_str(),
          [config, warm](::benchmark::State& state) {
            RunPoint(state, config, warm);
          })
          ->UseManualTime();
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace toprr

int main(int argc, char** argv) {
  if (!toprr::bench::ParseBenchFlags(&argc, argv)) return 1;
  toprr::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
