// Durable publish latency vs WAL fsync policy: what a writer pays, per
// acked publish, for each point on the durability dial.
//
// Each config opens a fresh DurableCatalog (checkpoints disabled so the
// timing isolates the append path) and times whole Publish() calls --
// delta staging, WAL framing + append, the policy's fsync, and the
// in-memory catalog publish -- for deltas of `rows_per_publish` fresh
// inserts. The three series share the bootstrap and delta shape:
//  * off     -- page cache only; the floor (a crash can lose the tail);
//  * batched -- group commit: fsync once per wal_batch_bytes of frames;
//  * always  -- fsync before every ack (the serve-smoke crash phase and
//               the kill -9 durability guarantee run here).
// Points carry fsyncs_per_publish and wal_bytes_per_publish from the
// catalog's own counters, and the non-off series carry
// `slowdown_vs_off` against the matching off point (registered and
// therefore run first).
//
// Emit the committed JSON trajectory with the stock flags:
//   bench_wal_append --benchmark_format=json
//                    --benchmark_out=BENCH_wal_append.json
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "data/recovery.h"

namespace toprr {
namespace bench {
namespace {

constexpr int kWarmupRounds = 2;
constexpr int kMeasuredRounds = 8;

struct WalConfig {
  FsyncPolicy policy;
  size_t rows_per_publish;

  std::string Label() const {
    return "rows:" + std::to_string(rows_per_publish);
  }
  std::string Name() const {
    return std::string("wal_append/") + FsyncPolicyName(policy) + "/" +
           Label();
  }
};

const WalConfig kConfigs[] = {
    {FsyncPolicy::kOff, 16},      {FsyncPolicy::kOff, 256},
    {FsyncPolicy::kBatched, 16},  {FsyncPolicy::kBatched, 256},
    {FsyncPolicy::kAlways, 16},   {FsyncPolicy::kAlways, 256},
};

// Per-delta-shape median seconds of the kOff series (registered first),
// read by the batched/always points for `slowdown_vs_off`.
std::map<std::string, double>& OffSeconds() {
  static auto& seconds = *new std::map<std::string, double>();
  return seconds;
}

void RunPoint(::benchmark::State& state, const WalConfig& config) {
  const BenchConfig& global = GlobalConfig();
  char tmpl[] = "/tmp/toprr_bench_wal_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    state.SkipWithError("mkdtemp failed");
    return;
  }
  const Dataset bootstrap = CachedSynthetic(
      10000, 4, Distribution::kIndependent, global.seed);
  DurabilityOptions options;
  options.data_dir = tmpl;
  options.fsync_policy = config.policy;
  options.checkpoint_every = 0;  // isolate the append path
  std::string error;
  std::unique_ptr<DurableCatalog> durable =
      DurableCatalog::Open(options, &bootstrap, &error);
  if (durable == nullptr) {
    state.SkipWithError(("open failed: " + error).c_str());
    return;
  }

  Rng rng(global.seed * 17 + config.rows_per_publish);
  std::vector<Vec> delta(config.rows_per_publish, Vec(4));
  uint64_t publish_id = 0;
  double checksum = 0.0;
  const auto payload = [&]() {
    for (Vec& row : delta) {
      for (size_t j = 0; j < 4; ++j) row[j] = rng.Uniform();
    }
    const DurableCatalog::PublishOutcome outcome =
        durable->Publish(delta, {}, /*token=*/71, ++publish_id);
    checksum += outcome.ok ? 1.0 : -1e9;  // a failed publish poisons it
  };

  RoundTiming timing;
  for (auto _ : state) {
    timing = RunTimedRounds(kWarmupRounds, kMeasuredRounds, payload);
    state.SetIterationTime(timing.median_seconds);
  }
  ::benchmark::DoNotOptimize(checksum);

  const DurableCounters counters = durable->counters();
  const double publishes = static_cast<double>(publish_id);
  state.counters["publish_ms"] = timing.median_seconds * 1e3;
  state.counters["wal_bytes_per_publish"] =
      publishes > 0 ? static_cast<double>(counters.wal_bytes) / publishes
                    : 0.0;
  state.counters["fsyncs_per_publish"] =
      publishes > 0 ? static_cast<double>(counters.wal_fsyncs) / publishes
                    : 0.0;
  if (config.policy == FsyncPolicy::kOff) {
    OffSeconds()[config.Label()] = timing.median_seconds;
  } else {
    const auto it = OffSeconds().find(config.Label());
    if (it != OffSeconds().end() && it->second > 0.0 &&
        timing.median_seconds > 0.0) {
      state.counters["slowdown_vs_off"] =
          timing.median_seconds / it->second;
    }
  }
  durable.reset();  // releases the directory lock before cleanup
  const std::string cleanup = "rm -rf " + std::string(tmpl);
  if (std::system(cleanup.c_str()) != 0) {
    // Leftover temp dirs are harmless; the timing already happened.
  }
}

void RegisterAll() {
  for (const WalConfig& config : kConfigs) {
    // One manual-timed iteration per point: RunTimedRounds already
    // medians over kMeasuredRounds publishes, and letting the harness
    // iterate would keep growing the catalog, so later iterations (and
    // therefore slower policies, which get fewer of them) would time a
    // bigger snapshot -- the fixed count keeps the series comparable.
    ::benchmark::RegisterBenchmark(
        config.Name().c_str(),
        [config](::benchmark::State& state) { RunPoint(state, config); })
        ->UseManualTime()
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace bench
}  // namespace toprr

int main(int argc, char** argv) {
  if (!toprr::bench::ParseBenchFlags(&argc, argv)) return 1;
  toprr::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
