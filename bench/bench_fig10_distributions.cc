// Figure 10: robustness of TAS* across data distributions (COR, IND,
// ANTI), varying (a) k, (b) sigma, (c) n, (d) d.
#include "bench/bench_common.h"

namespace toprr {
namespace bench {
namespace {

void RunPoint(::benchmark::State& state, Distribution dist, size_t n,
              size_t d, int k, double sigma) {
  const Dataset& data = CachedSynthetic(n, d, dist, GlobalConfig().seed);
  ToprrOptions options;  // TAS* with all optimizations
  for (auto _ : state) {
    const SweepPoint point = RunSweepPoint(data, k, sigma, options);
    ReportSweepPoint(state, point);
  }
}

void RegisterAll() {
  const BenchConfig& config = GlobalConfig();
  for (Distribution dist : {Distribution::kAnticorrelated,
                            Distribution::kIndependent,
                            Distribution::kCorrelated}) {
    const std::string dist_name = DistributionName(dist);
    for (int k : config.k_values()) {
      ::benchmark::RegisterBenchmark(
          ("fig10a/" + dist_name + "/k:" + std::to_string(k)).c_str(),
          [dist, k](::benchmark::State& state) {
            RunPoint(state, dist, GlobalConfig().default_n(),
                     GlobalConfig().default_d(), k,
                     GlobalConfig().default_sigma());
          })
          ->Iterations(1)
          ->UseManualTime();
    }
    for (double sigma : config.sigma_values()) {
      ::benchmark::RegisterBenchmark(
          ("fig10b/" + dist_name + "/sigma_pct:" +
           std::to_string(sigma * 100.0))
              .c_str(),
          [dist, sigma](::benchmark::State& state) {
            RunPoint(state, dist, GlobalConfig().default_n(),
                     GlobalConfig().default_d(), GlobalConfig().default_k(),
                     sigma);
          })
          ->Iterations(1)
          ->UseManualTime();
    }
    for (size_t n : config.n_values()) {
      ::benchmark::RegisterBenchmark(
          ("fig10c/" + dist_name + "/n:" + std::to_string(n)).c_str(),
          [dist, n](::benchmark::State& state) {
            RunPoint(state, dist, n, GlobalConfig().default_d(),
                     GlobalConfig().default_k(),
                     GlobalConfig().default_sigma());
          })
          ->Iterations(1)
          ->UseManualTime();
    }
    for (size_t d : config.d_values()) {
      ::benchmark::RegisterBenchmark(
          ("fig10d/" + dist_name + "/d:" + std::to_string(d)).c_str(),
          [dist, d](::benchmark::State& state) {
            RunPoint(state, dist, GlobalConfig().default_n(), d,
                     GlobalConfig().default_k(),
                     GlobalConfig().default_sigma());
          })
          ->Iterations(1)
          ->UseManualTime();
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace toprr

int main(int argc, char** argv) {
  if (!toprr::bench::ParseBenchFlags(&argc, argv)) return 1;
  toprr::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
