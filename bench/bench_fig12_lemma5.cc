// Figure 12: effectiveness of consistent top-scorer pruning (Lemma 5,
// Sec. 5.1). Compares |D'| after r-skyband alone vs r-skyband + Lemma 5
// applied at the root region, varying k and sigma (IND data). The paper
// reports up to 2.8x fewer options let through.
#include <algorithm>

#include "bench/bench_common.h"
#include "topk/rskyband.h"
#include "topk/topk.h"

namespace toprr {
namespace bench {
namespace {

// Size of D' after removing the root region's consistent top-lambda set
// (the Lemma 5 application the figure isolates).
size_t Lemma5ReducedSize(const Dataset& data, const PrefBox& box, int k,
                         const std::vector<int>& rskyband) {
  const std::vector<Vec> corners = box.Vertices();
  std::vector<std::vector<int>> prefix_sets(corners.size());
  std::vector<TopkResult> profiles;
  profiles.reserve(corners.size());
  for (const Vec& v : corners) {
    profiles.push_back(ComputeTopKReduced(data, rskyband, v, k));
  }
  int lambda = 0;
  for (int cand = k - 1; cand >= 1; --cand) {
    bool same = true;
    std::vector<int> reference;
    for (size_t p = 0; p < profiles.size() && same; ++p) {
      std::vector<int> ids;
      for (int i = 0; i < cand; ++i) {
        ids.push_back(profiles[p].entries[i].id);
      }
      std::sort(ids.begin(), ids.end());
      if (p == 0) {
        reference = ids;
      } else if (ids != reference) {
        same = false;
      }
    }
    if (same) {
      lambda = cand;
      break;
    }
  }
  return rskyband.size() - static_cast<size_t>(lambda);
}

void RunPoint(::benchmark::State& state, int k, double sigma) {
  const BenchConfig& config = GlobalConfig();
  const Dataset& data =
      CachedSynthetic(config.default_n(), config.default_d(),
                      Distribution::kIndependent, config.seed);
  Rng rng(config.seed + k * 1000 + static_cast<uint64_t>(sigma * 1e5));
  for (auto _ : state) {
    double rsky_total = 0.0;
    double lemma5_total = 0.0;
    double seconds = 0.0;
    for (int q = 0; q < config.queries; ++q) {
      const PrefBox box = RandomPrefBox(data.dim() - 1, sigma, rng);
      Timer timer;
      const std::vector<int> rsky = RSkyband(data, box, k);
      rsky_total += static_cast<double>(rsky.size());
      lemma5_total +=
          static_cast<double>(Lemma5ReducedSize(data, box, k, rsky));
      seconds += timer.Seconds();
    }
    state.counters["rskyband"] = rsky_total / config.queries;
    state.counters["rskyband_plus_lemma5"] = lemma5_total / config.queries;
    state.SetIterationTime(seconds / config.queries);
  }
}

void RegisterAll() {
  const BenchConfig& config = GlobalConfig();
  for (int k : config.k_values()) {
    ::benchmark::RegisterBenchmark(
        ("fig12a/k:" + std::to_string(k)).c_str(),
        [k](::benchmark::State& state) {
          RunPoint(state, k, GlobalConfig().default_sigma());
        })
        ->Iterations(1)
        ->UseManualTime();
  }
  for (double sigma : config.sigma_values()) {
    ::benchmark::RegisterBenchmark(
        ("fig12b/sigma_pct:" + std::to_string(sigma * 100.0)).c_str(),
        [sigma](::benchmark::State& state) {
          RunPoint(state, GlobalConfig().default_k(), sigma);
        })
        ->Iterations(1)
        ->UseManualTime();
  }
}

}  // namespace
}  // namespace bench
}  // namespace toprr

int main(int argc, char** argv) {
  if (!toprr::bench::ParseBenchFlags(&argc, argv)) return 1;
  toprr::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
