// Split/classify throughput of the flat-geometry region engine
// (pref/flat_region.h) vs the legacy PrefRegion::Split, swept over
// region dimension x polytope complexity.
//
// Each instance models one partition-phase split: a preference box is
// pre-split r times by random centroid planes (always descending into
// the larger child, so vertex counts grow with r), and the measured
// operation splits the resulting polytope by one more centroid plane.
// The legacy series runs PrefRegion::Split (per-vertex Vec allocations,
// per-facet id vectors, std::map quantize dedup); the flat series runs
// FlatRegion::Split out of a warmed GeomArena (fused EvalClassifyBatch
// sweep, packed-key dedup, zero steady-state scratch growth), exactly as
// TestAndSplitRegion does. Both produce bit-identical children
// (flat_geometry_test).
//
// The flat points carry a `speedup_vs_legacy` counter against the
// matching legacy point (registered and therefore run first). CI's
// bench-smoke job gates `region_split/flat/d:4/r:8` at >= 1.2x
// (ci/check_bench_smoke.py --geometry).
//
// Emit the JSON trajectory with the stock google-benchmark flags:
//   bench_region_split --benchmark_format=json
//                      --benchmark_out=region_split.json
#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "pref/flat_region.h"
#include "pref/region.h"

namespace toprr {
namespace bench {
namespace {

constexpr size_t kInstances = 32;  // (polytope, plane) pairs per config

struct SplitConfig {
  size_t dim;     // region dimension m
  size_t rounds;  // pre-split rounds (polytope complexity)

  std::string Label() const {
    return "d:" + std::to_string(dim) + "/r:" + std::to_string(rounds);
  }
};

// The sweep; `d:4/r:8` is the CI-gated large configuration.
const SplitConfig kConfigs[] = {
    {2, 4}, {3, 4}, {4, 4}, {5, 4}, {3, 8}, {4, 8}, {5, 8},
};

// Legacy per-iteration seconds per config, seeded by the legacy series
// (registered first) and read by the matching flat point.
std::map<std::string, double>& LegacySeconds() {
  static auto& seconds = *new std::map<std::string, double>();
  return seconds;
}

struct SplitInstance {
  FlatRegion region;
  Hyperplane plane;
};

Hyperplane RandomCentroidPlane(const FlatRegion& region, Rng& rng) {
  const size_t m = region.dim();
  Vec normal(m);
  for (size_t j = 0; j < m; ++j) normal[j] = rng.Uniform(-1.0, 1.0);
  if (normal.MaxAbs() < 0.2) normal[0] = 1.0;
  const double offset = Dot(normal, region.Centroid());
  return Hyperplane(std::move(normal), offset);
}

// Deterministic instances: pre-split a random box `rounds` times, always
// descending into the child with more vertices.
std::vector<SplitInstance> MakeInstances(const SplitConfig& config,
                                         uint64_t seed) {
  Rng rng(seed * 9176 + config.dim * 131 + config.rounds);
  GeomArena arena;
  std::vector<SplitInstance> instances;
  instances.reserve(kInstances);
  // Side shrinks with dimension so the box always fits the simplex
  // without the generator's shrink warning.
  const double sigma =
      std::min(0.25, 0.8 / static_cast<double>(config.dim));
  while (instances.size() < kInstances) {
    FlatRegion region =
        FlatRegion::FromBox(RandomPrefBox(config.dim, sigma, rng));
    for (size_t round = 0; round < config.rounds; ++round) {
      std::optional<FlatRegion> below;
      std::optional<FlatRegion> above;
      region.Split(RandomCentroidPlane(region, rng), 1e-10, arena, &below,
                   &above);
      if (!below.has_value() || !above.has_value()) continue;
      region = below->num_vertices() >= above->num_vertices()
                   ? std::move(*below)
                   : std::move(*above);
    }
    instances.push_back({std::move(region), Hyperplane()});
    instances.back().plane = RandomCentroidPlane(instances.back().region, rng);
  }
  return instances;
}

void RunPoint(::benchmark::State& state, const SplitConfig& config,
              bool use_flat) {
  const BenchConfig& global = GlobalConfig();
  const std::vector<SplitInstance> instances =
      MakeInstances(config, global.seed);
  size_t total_vertices = 0;
  for (const SplitInstance& inst : instances) {
    total_vertices += inst.region.num_vertices();
  }
  // Legacy inputs converted up front (exact), so the measured loop times
  // only the split itself on both series.
  std::vector<PrefRegion> legacy_regions;
  if (!use_flat) {
    legacy_regions.reserve(instances.size());
    for (const SplitInstance& inst : instances) {
      legacy_regions.push_back(inst.region.ToRegion());
    }
  }

  GeomArena arena;
  std::optional<FlatRegion> below;
  std::optional<FlatRegion> above;
  if (use_flat) {
    // Warm the arena so the measured loop is the steady state the
    // partition phase runs in.
    for (const SplitInstance& inst : instances) {
      inst.region.Split(inst.plane, 1e-10, arena, &below, &above);
    }
  }

  double total_seconds = 0.0;
  int64_t iterations = 0;
  size_t checksum = 0;  // child vertex total; keeps the optimizer honest
  for (auto _ : state) {
    Timer timer;
    if (use_flat) {
      for (const SplitInstance& inst : instances) {
        inst.region.Split(inst.plane, 1e-10, arena, &below, &above);
        if (below.has_value()) checksum += below->num_vertices();
        if (above.has_value()) checksum += above->num_vertices();
      }
    } else {
      for (size_t i = 0; i < instances.size(); ++i) {
        const PrefRegionSplit split =
            legacy_regions[i].Split(instances[i].plane, 1e-10);
        if (split.below.has_value()) {
          checksum += split.below->vertices().size();
        }
        if (split.above.has_value()) {
          checksum += split.above->vertices().size();
        }
      }
    }
    const double seconds = timer.Seconds();
    total_seconds += seconds;
    ++iterations;
    state.SetIterationTime(seconds);
  }
  ::benchmark::DoNotOptimize(checksum);

  const double per_iter =
      iterations > 0 ? total_seconds / static_cast<double>(iterations) : 0.0;
  state.counters["splits_per_sec"] =
      per_iter > 0.0 ? static_cast<double>(instances.size()) / per_iter : 0.0;
  state.counters["verts_classified_per_sec"] =
      per_iter > 0.0 ? static_cast<double>(total_vertices) / per_iter : 0.0;
  state.counters["avg_vertices"] =
      static_cast<double>(total_vertices) /
      static_cast<double>(instances.size());
  state.counters["dim"] = static_cast<double>(config.dim);
  if (!use_flat) {
    LegacySeconds()[config.Label()] = per_iter;
  } else {
    const auto it = LegacySeconds().find(config.Label());
    if (it != LegacySeconds().end() && it->second > 0.0 && per_iter > 0.0) {
      state.counters["speedup_vs_legacy"] = it->second / per_iter;
    }
  }
}

void RegisterAll() {
  // The legacy series registers (and runs) first so every flat point
  // finds its baseline.
  for (const bool use_flat : {false, true}) {
    for (const SplitConfig& config : kConfigs) {
      const std::string name = std::string("region_split/") +
                               (use_flat ? "flat/" : "legacy/") +
                               config.Label();
      ::benchmark::RegisterBenchmark(
          name.c_str(),
          [config, use_flat](::benchmark::State& state) {
            RunPoint(state, config, use_flat);
          })
          ->UseManualTime();
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace toprr

int main(int argc, char** argv) {
  if (!toprr::bench::ParseBenchFlags(&argc, argv)) return 1;
  toprr::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
