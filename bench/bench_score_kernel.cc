// Scored-candidates/sec of the SoA scoring kernel vs the naive per-vertex
// scan, swept over candidates x vertices x dim.
//
// Each iteration models one region test: the naive series calls
// ComputeTopKReduced once per vertex (indirect row gathers, a fresh
// scored vector per vertex); the soa series gathers the pool into the
// arena block once and sweeps every vertex against it (LoadBlock +
// ScoreVertices + TopKInto), exactly as the partition phase does via
// TestAndSplitRegion.
//
// The soa points carry a `speedup_vs_naive` counter against the matching
// naive point (registered and therefore run first). CI's bench-smoke job
// gates `score_kernel/soa/c:4096/v:16/d:4` at >= 1.3x
// (ci/check_bench_smoke.py --kernel).
//
// Emit the JSON trajectory with the stock google-benchmark flags:
//   bench_score_kernel --benchmark_format=json
//                      --benchmark_out=score_kernel.json
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "topk/score_kernel.h"
#include "topk/topk.h"

namespace toprr {
namespace bench {
namespace {

constexpr int kTopK = 10;

struct KernelConfig {
  size_t candidates;
  size_t vertices;
  size_t dim;

  std::string Label() const {
    return "c:" + std::to_string(candidates) + "/v:" +
           std::to_string(vertices) + "/d:" + std::to_string(dim);
  }
};

// The sweep; the last entry is the CI-gated large configuration.
const KernelConfig kConfigs[] = {
    {256, 4, 3}, {1024, 8, 3},  {1024, 8, 4},
    {4096, 8, 4}, {4096, 16, 6}, {4096, 16, 4},
};

// Naive per-iteration seconds per config, seeded by the naive series
// (registered first) and read by the matching soa point.
std::map<std::string, double>& NaiveSeconds() {
  static auto& seconds = *new std::map<std::string, double>();
  return seconds;
}

// Deterministic region-vertex stand-ins spread over the simplex.
std::vector<Vec> MakeVertices(size_t m, size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> vertices;
  vertices.reserve(count);
  for (size_t v = 0; v < count; ++v) {
    Vec x(m);
    double sum = 0.0;
    for (size_t j = 0; j < m; ++j) {
      x[j] = rng.Uniform();
      sum += x[j];
    }
    // Scale into the simplex interior so the weights are valid.
    const double scale = 0.9 * rng.Uniform() / (sum > 0.0 ? sum : 1.0);
    for (size_t j = 0; j < m; ++j) x[j] *= scale;
    vertices.push_back(std::move(x));
  }
  return vertices;
}

void RunPoint(::benchmark::State& state, const KernelConfig& config,
              bool use_kernel) {
  const BenchConfig& global = GlobalConfig();
  // Candidate pools in the partition phase are scattered subsets of the
  // catalog (skyband survivors), not contiguous prefixes; model that with
  // a strided selection from a 5x larger dataset.
  const Dataset& data =
      CachedSynthetic(config.candidates * 5, config.dim,
                      Distribution::kAnticorrelated, global.seed);
  std::vector<int> ids;
  ids.reserve(config.candidates);
  for (size_t i = 0; i < config.candidates; ++i) {
    ids.push_back(static_cast<int>(i * 5));
  }
  const std::vector<Vec> vertices =
      MakeVertices(config.dim - 1, config.vertices, global.seed * 13 + 7);

  ScoreArena arena;
  double total_seconds = 0.0;
  int64_t iterations = 0;
  // A checksum consumed below keeps the optimizer honest.
  double checksum = 0.0;
  for (auto _ : state) {
    Timer timer;
    if (use_kernel) {
      ScoreKernel kernel(arena);
      kernel.LoadBlock(data, ids);
      kernel.ScoreVertices(vertices, nullptr);
      std::vector<TopkResult>& profiles = arena.Profiles(vertices.size());
      for (size_t v = 0; v < vertices.size(); ++v) {
        kernel.TopKInto(v, kTopK, profiles[v]);
        checksum += profiles[v].KthScore();
      }
    } else {
      for (const Vec& x : vertices) {
        const TopkResult topk = ComputeTopKReduced(data, ids, x, kTopK);
        checksum += topk.KthScore();
      }
    }
    const double seconds = timer.Seconds();
    total_seconds += seconds;
    ++iterations;
    state.SetIterationTime(seconds);
  }
  ::benchmark::DoNotOptimize(checksum);

  const double per_iter =
      iterations > 0 ? total_seconds / static_cast<double>(iterations) : 0.0;
  const double scored =
      static_cast<double>(config.candidates * config.vertices);
  state.counters["scored_per_sec"] =
      per_iter > 0.0 ? scored / per_iter : 0.0;
  state.counters["candidates"] = static_cast<double>(config.candidates);
  state.counters["vertices"] = static_cast<double>(config.vertices);
  state.counters["dim"] = static_cast<double>(config.dim);
  if (!use_kernel) {
    NaiveSeconds()[config.Label()] = per_iter;
  } else {
    const auto it = NaiveSeconds().find(config.Label());
    if (it != NaiveSeconds().end() && it->second > 0.0 && per_iter > 0.0) {
      state.counters["speedup_vs_naive"] = it->second / per_iter;
    }
  }
}

void RegisterAll() {
  // The naive series registers (and runs) first so every soa point finds
  // its baseline.
  for (const bool use_kernel : {false, true}) {
    for (const KernelConfig& config : kConfigs) {
      const std::string name = std::string("score_kernel/") +
                               (use_kernel ? "soa/" : "naive/") +
                               config.Label();
      ::benchmark::RegisterBenchmark(
          name.c_str(),
          [config, use_kernel](::benchmark::State& state) {
            RunPoint(state, config, use_kernel);
          })
          ->UseManualTime();
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace toprr

int main(int argc, char** argv) {
  if (!toprr::bench::ParseBenchFlags(&argc, argv)) return 1;
  toprr::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
