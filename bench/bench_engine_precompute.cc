// Ablation for the pre-computation extension (paper Sec. 7 future work,
// realized in core/engine.h): per-query latency of a cold SolveToprr
// (full-dataset r-skyband each time) vs a warm ToprrEngine (r-skyband
// restricted to the cached k-skyband). The gap grows with n since the
// global filter scan is the per-query O(n) component.
#include "bench/bench_common.h"
#include "core/engine.h"

namespace toprr {
namespace bench {
namespace {

void RunPoint(::benchmark::State& state, size_t n, bool warm) {
  const BenchConfig& config = GlobalConfig();
  const Dataset& data = CachedSynthetic(
      n, config.default_d(), Distribution::kIndependent, config.seed);
  static std::map<const Dataset*, ToprrEngine>& engines =
      *new std::map<const Dataset*, ToprrEngine>();
  auto it = engines.find(&data);
  if (it == engines.end()) {
    it = engines
             .emplace(std::piecewise_construct,
                      std::forward_as_tuple(&data),
                      std::forward_as_tuple(
                          DatasetSnapshot::FromDataset(data)))
             .first;
  }
  ToprrEngine& engine = it->second;
  if (warm) engine.KSkyband(config.default_k());  // precompute outside timing

  Rng rng(config.seed + n);
  ToprrOptions options;
  options.build_geometry = false;
  for (auto _ : state) {
    Timer timer;
    double vall = 0.0;
    for (int q = 0; q < config.queries; ++q) {
      const PrefBox box =
          RandomPrefBox(data.dim() - 1, config.default_sigma(), rng);
      const ToprrResult result =
          warm ? engine.Solve(config.default_k(), box, options)
               : SolveToprr(data, config.default_k(), box, options);
      vall += static_cast<double>(result.stats.vall_unique);
    }
    const double seconds = timer.Seconds() / config.queries;
    state.counters["sec_per_query"] = seconds;
    state.counters["Vall"] = vall / config.queries;
    state.SetIterationTime(seconds);
  }
}

void RegisterAll() {
  for (size_t n : GlobalConfig().n_values()) {
    ::benchmark::RegisterBenchmark(
        ("engine/cold/n:" + std::to_string(n)).c_str(),
        [n](::benchmark::State& state) { RunPoint(state, n, false); })
        ->Iterations(1)
        ->UseManualTime();
    ::benchmark::RegisterBenchmark(
        ("engine/warm/n:" + std::to_string(n)).c_str(),
        [n](::benchmark::State& state) { RunPoint(state, n, true); })
        ->Iterations(1)
        ->UseManualTime();
  }
}

}  // namespace
}  // namespace bench
}  // namespace toprr

int main(int argc, char** argv) {
  if (!toprr::bench::ParseBenchFlags(&argc, argv)) return 1;
  toprr::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
