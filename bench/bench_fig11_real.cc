// Figure 11: TAS* on the real datasets (HOTEL d=4, HOUSE d=6, NBA d=8
// stand-ins; see DESIGN.md substitutions), varying (a) k and (b) sigma.
// Stand-ins use the paper's cardinalities scaled by --real_scale
// (default 0.05 for the 1-core machine; --full uses 1.0).
#include "bench/bench_common.h"

namespace toprr {
namespace bench {
namespace {

double g_real_scale = 0.05;

const Dataset& RealDataset(const std::string& name) {
  static std::map<std::string, Dataset>& cache =
      *new std::map<std::string, Dataset>();
  auto it = cache.find(name);
  if (it == cache.end()) {
    const double scale = GlobalConfig().full ? 1.0 : g_real_scale;
    Dataset ds;
    if (name == "HOTEL") {
      ds = GenerateHotelLike(GlobalConfig().seed, scale);
    } else if (name == "HOUSE") {
      ds = GenerateHouseLike(GlobalConfig().seed, scale);
    } else {
      ds = GenerateNbaLike(GlobalConfig().seed, scale);
    }
    it = cache.emplace(name, std::move(ds)).first;
  }
  return it->second;
}

void RunPoint(::benchmark::State& state, const std::string& dataset, int k,
              double sigma) {
  const Dataset& data = RealDataset(dataset);
  ToprrOptions options;
  for (auto _ : state) {
    const SweepPoint point = RunSweepPoint(data, k, sigma, options);
    ReportSweepPoint(state, point);
    state.counters["n"] = static_cast<double>(data.size());
    state.counters["d"] = static_cast<double>(data.dim());
  }
}

void RegisterAll() {
  const BenchConfig& config = GlobalConfig();
  for (const std::string dataset : {"HOTEL", "HOUSE", "NBA"}) {
    for (int k : config.k_values()) {
      ::benchmark::RegisterBenchmark(
          ("fig11a/" + dataset + "/k:" + std::to_string(k)).c_str(),
          [dataset, k](::benchmark::State& state) {
            RunPoint(state, dataset, k, GlobalConfig().default_sigma());
          })
          ->Iterations(1)
          ->UseManualTime();
    }
    for (double sigma : config.sigma_values()) {
      ::benchmark::RegisterBenchmark(
          ("fig11b/" + dataset + "/sigma_pct:" +
           std::to_string(sigma * 100.0))
              .c_str(),
          [dataset, sigma](::benchmark::State& state) {
            RunPoint(state, dataset, GlobalConfig().default_k(), sigma);
          })
          ->Iterations(1)
          ->UseManualTime();
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace toprr

int main(int argc, char** argv) {
  toprr::FlagParser extra;
  extra.AddDouble("real_scale", &toprr::bench::g_real_scale,
                  "cardinality scale for real-data stand-ins");
  if (!extra.Parse(&argc, argv)) return 1;
  if (!toprr::bench::ParseBenchFlags(&argc, argv)) return 1;
  toprr::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
