#include "geom/linalg.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace toprr {
namespace {

TEST(MatrixTest, RowOperations) {
  Matrix m(2, 3);
  m.SetRow(0, Vec{1.0, 2.0, 3.0});
  m.SetRow(1, Vec{4.0, 5.0, 6.0});
  EXPECT_DOUBLE_EQ(m.At(1, 2), 6.0);
  const Vec r = m.Row(0);
  EXPECT_DOUBLE_EQ(r[1], 2.0);
}

TEST(MatrixTest, Apply) {
  Matrix m(2, 2);
  m.SetRow(0, Vec{1.0, 2.0});
  m.SetRow(1, Vec{3.0, 4.0});
  const Vec y = m.Apply(Vec{1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(MatrixTest, Identity) {
  const Matrix eye = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(eye.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(eye.At(0, 1), 0.0);
  const Vec x{7.0, -1.0, 2.0};
  EXPECT_TRUE(ApproxEqual(eye.Apply(x), x, 1e-15));
}

TEST(SolveTest, TwoByTwo) {
  Matrix a(2, 2);
  a.SetRow(0, Vec{2.0, 1.0});
  a.SetRow(1, Vec{1.0, 3.0});
  const auto x = SolveLinearSystem(a, Vec{5.0, 10.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(SolveTest, SingularReturnsNullopt) {
  Matrix a(2, 2);
  a.SetRow(0, Vec{1.0, 2.0});
  a.SetRow(1, Vec{2.0, 4.0});
  EXPECT_FALSE(SolveLinearSystem(a, Vec{1.0, 2.0}).has_value());
}

TEST(SolveTest, RequiresPivoting) {
  // Zero in the leading position forces a row swap.
  Matrix a(2, 2);
  a.SetRow(0, Vec{0.0, 1.0});
  a.SetRow(1, Vec{1.0, 0.0});
  const auto x = SolveLinearSystem(a, Vec{2.0, 3.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(SolveTest, RandomSystemsRoundTrip) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + static_cast<size_t>(rng.UniformInt(1, 8));
    Matrix a(n, n);
    Vec x_true(n);
    for (size_t i = 0; i < n; ++i) {
      x_true[i] = rng.Uniform(-2.0, 2.0);
      for (size_t j = 0; j < n; ++j) a.At(i, j) = rng.Uniform(-1.0, 1.0);
      a.At(i, i) += 3.0;  // diagonally dominant => well conditioned
    }
    const Vec b = a.Apply(x_true);
    const auto x = SolveLinearSystem(a, b);
    ASSERT_TRUE(x.has_value());
    EXPECT_TRUE(ApproxEqual(*x, x_true, 1e-8)) << "trial " << trial;
  }
}

TEST(DeterminantTest, KnownValues) {
  Matrix a(2, 2);
  a.SetRow(0, Vec{1.0, 2.0});
  a.SetRow(1, Vec{3.0, 4.0});
  EXPECT_NEAR(Determinant(a), -2.0, 1e-12);

  EXPECT_NEAR(Determinant(Matrix::Identity(4)), 1.0, 1e-12);

  Matrix s(2, 2);
  s.SetRow(0, Vec{1.0, 2.0});
  s.SetRow(1, Vec{2.0, 4.0});
  EXPECT_NEAR(Determinant(s), 0.0, 1e-12);
}

TEST(DeterminantTest, SwapChangesSign) {
  Matrix a(2, 2);
  a.SetRow(0, Vec{0.0, 1.0});
  a.SetRow(1, Vec{1.0, 0.0});
  EXPECT_NEAR(Determinant(a), -1.0, 1e-12);
}

TEST(SolveHyperplanesTest, IntersectionOfLines) {
  // x = 1 and y = 2.
  const auto p = SolveHyperplanes({Vec{1.0, 0.0}, Vec{0.0, 1.0}},
                                  {1.0, 2.0});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR((*p)[0], 1.0, 1e-12);
  EXPECT_NEAR((*p)[1], 2.0, 1e-12);
}

}  // namespace
}  // namespace toprr
